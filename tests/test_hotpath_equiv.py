"""Bit-identity of the optimized hot path vs the preserved reference path.

The PR-5 hot-path overhaul (slot bindings + combined-index observer,
packed memo keys, GF(2) batch fills, decode/illegal memoization, softfloat
memoization) must not change ANY observable campaign behaviour: coverage
series, corpus contents, LFSR stream, and the full campaign report have to
match the pre-overhaul semantics exactly.  The pre-overhaul observation
path is preserved (``use_reference_observer`` /
``observe_state_reference``) and every test here runs both and compares.
"""

import pytest

from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.events import AsyncSink, BufferedSink, EventBus
from repro.campaign.session import CampaignSession
from repro.campaign.spec import CampaignSpec
from repro.fuzzer.lfsr import Lfsr
from repro.perf.evict import evict_half

CORES = ("rocket", "cva6", "boom")
STYLES = ("optimized", "legacy")


def _spec(core, style):
    return (CampaignSpec()
            .with_fuzzer("turbofuzz", instructions_per_iteration=300)
            .with_core(core)
            .with_instrumentation(style=style))


def _fingerprint(session):
    """Everything the ISSUE's bit-identity clause names."""
    return {
        "coverage_series": session.coverage_series(),
        "history": session.history_dicts(),
        "lfsr": session.fuzzer.lfsr.state,
        "corpus": session.fuzzer.corpus.state_dict(),
        "counts": session.coverage.counts_by_module(),
        "total_executed": session.total_executed,
        "total_generated": session.total_generated,
    }


class TestObserverEquivalence:
    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("style", STYLES)
    def test_fast_path_matches_reference(self, core, style):
        fast = CampaignSession(_spec(core, style))
        fast.run_iterations(6)

        reference = CampaignSession(_spec(core, style))
        reference.core.use_reference_observer(True)
        reference.run_iterations(6)

        assert _fingerprint(fast) == _fingerprint(reference)

    def test_switching_mid_campaign_is_seamless(self):
        """Reference and fast paths interleave without divergence."""
        mixed = CampaignSession(_spec("rocket", "optimized"))
        for index in range(8):
            mixed.core.use_reference_observer(index % 2 == 0)
            mixed.run_iterations(1)

        fast = CampaignSession(_spec("rocket", "optimized"))
        fast.run_iterations(8)
        assert _fingerprint(mixed) == _fingerprint(fast)

    @pytest.mark.parametrize("core", CORES)
    def test_resume_from_checkpoint_matches_uninterrupted(self, core):
        straight = CampaignSession(_spec(core, "optimized"))
        straight.run_iterations(8)

        first_leg = CampaignSession(_spec(core, "optimized"))
        first_leg.run_iterations(4)
        checkpoint = CampaignCheckpoint.capture(first_leg)
        resumed = CampaignCheckpoint.from_json(checkpoint.to_json()).restore()
        resumed.run_iterations(4)
        assert _fingerprint(resumed) == _fingerprint(straight)

    def test_resume_into_reference_observer_matches(self):
        """A checkpoint taken on the fast path resumes bit-identically
        even if the resumed session observes via the reference path."""
        straight = CampaignSession(_spec("rocket", "legacy"))
        straight.run_iterations(6)

        first_leg = CampaignSession(_spec("rocket", "legacy"))
        first_leg.run_iterations(3)
        resumed = CampaignCheckpoint.capture(first_leg).restore()
        resumed.core.use_reference_observer(True)
        resumed.run_iterations(3)
        assert _fingerprint(resumed) == _fingerprint(straight)


class TestLfsrBatchEquivalence:
    def test_fill_bytes_matches_wordwise_stream(self):
        for seed in (1, 0xDEAD_BEEF, (1 << 64) - 1):
            for count in (0, 1, 7, 8, 9, 255, 2047, 2048, 16384, 16385):
                reference = Lfsr(seed)
                out = bytearray()
                while len(out) < count:
                    out.extend(reference.next().to_bytes(8, "little"))
                batched = Lfsr(seed)
                assert batched.fill_bytes(count) == bytes(out[:count])
                if count:
                    # The draw stream continues exactly where the
                    # word-wise stream would.
                    advanced = Lfsr(seed)
                    for _ in range((count + 7) // 8):
                        advanced.next()
                    assert batched.state == advanced.state

    def test_fill_words_matches_next(self):
        batched = Lfsr(42)
        stepped = Lfsr(42)
        assert batched.fill_words(100) == [stepped.next() for _ in range(100)]


class TestBoundedCaches:
    def test_decoder_caches_stay_bounded(self):
        from repro.isa import decoder

        original_limit = decoder._CACHE_LIMIT
        decoder._CACHE_LIMIT = 64
        decoder._CACHE.clear()
        decoder._ILLEGAL_CACHE.clear()
        try:
            for index in range(500):
                # addi with varying immediates: distinct legal words.
                decoder.try_decode(0x00000013 | ((index & 0xFFF) << 20)
                                   | ((index & 0x1F) << 7))
                # Distinct illegal words populate the illegal memo.
                decoder.try_decode(0x0000007F | (index << 15))
                assert len(decoder._CACHE) <= 64
                assert len(decoder._ILLEGAL_CACHE) <= 64
        finally:
            decoder._CACHE_LIMIT = original_limit

    def test_decoder_caches_serve_identical_results(self):
        from repro.isa.decoder import try_decode

        word = 0x00A3_0313  # addi t1, t1, 10
        first = try_decode(word)
        assert try_decode(word) is first
        assert try_decode(0xFFFF_FFFF) is None
        assert try_decode(0xFFFF_FFFF) is None  # memoized-illegal path

    def test_evict_half_dict_drops_oldest(self):
        cache = {index: index for index in range(10)}
        assert evict_half(cache) == 5
        assert sorted(cache) == [5, 6, 7, 8, 9]

    def test_evict_half_set_and_tiny(self):
        assert evict_half({}) == 0
        assert evict_half({1: 1}) == 0
        seen = set(range(10))
        assert evict_half(seen) == 5
        assert len(seen) == 5


class TestEventBusFastPath:
    def test_publish_without_subscribers_counts_only(self):
        bus = EventBus()
        bus.publish("iteration", session=None)
        assert bus.emitted["iteration"] == 1
        assert not bus.has_subscribers("iteration")

    def test_subscribe_flips_fast_path_flag(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("milestone", lambda **p: seen.append(p))
        assert bus.has_subscribers("milestone")
        bus.milestone("campaign_start")
        assert seen and seen[0]["kind"] == "campaign_start"
        unsubscribe()
        assert not bus.has_subscribers("milestone")
        bus.milestone("ignored")
        assert len(seen) == 1
        assert bus.emitted["milestone"] == 2

    def test_buffered_sink_flushes_in_batches(self):
        batches = []
        sink = BufferedSink(batches.append, capacity=3)
        bus = EventBus()
        bus.subscribe("iteration", sink.push)
        for index in range(7):
            bus.emit("iteration", index=index)
        assert [len(batch) for batch in batches] == [3, 3]
        assert len(sink) == 1
        sink.close()
        assert [len(batch) for batch in batches] == [3, 3, 1]
        assert batches[0][0] == {"index": 0}

    def test_async_sink_consumes_without_blocking(self):
        consumed = []
        with AsyncSink(consumed.append, max_pending=16) as sink:
            bus = EventBus()
            bus.subscribe("new_coverage", sink.push)
            for index in range(10):
                bus.emit("new_coverage", index=index)
        assert [payload["index"] for payload in consumed] == list(range(10))
        assert sink.dropped == 0

    def test_async_sink_survives_consumer_exceptions(self):
        consumed = []

        def flaky(payload):
            if payload["index"] % 2:
                raise RuntimeError("sink hiccup")
            consumed.append(payload)

        with AsyncSink(flaky, max_pending=16) as sink:
            for index in range(6):
                sink.push(index=index)
        assert sink.errors == 3
        assert [payload["index"] for payload in consumed] == [0, 2, 4]

    def test_cached_illegal_raise_does_not_grow_traceback(self):
        from repro.isa.decoder import IllegalInstruction, decode

        word = 0xFFFF_FFFF
        depths = []
        for _ in range(3):
            try:
                decode(word)
            except IllegalInstruction as error:
                depth = 0
                traceback = error.__traceback__
                while traceback is not None:
                    depth += 1
                    traceback = traceback.tb_next
                depths.append(depth)
        assert depths[0] == depths[1] == depths[2]

    def test_async_sink_sheds_oldest_under_backpressure(self):
        import threading

        gate = threading.Event()
        consumed = []

        def slow_consume(payload):
            gate.wait(5.0)
            consumed.append(payload)

        sink = AsyncSink(slow_consume, max_pending=2)
        for index in range(8):
            sink.push(index=index)
        gate.set()
        sink.close()
        assert sink.dropped > 0
        assert sink.dropped + len(consumed) == 8


class TestBlockCompile:
    """Compiled-dispatch equivalence, invalidation, and cache hygiene."""

    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("style", STYLES)
    def test_compiled_off_matches_on(self, core, style):
        """Disabling compiled dispatch changes nothing observable."""
        from repro.ref import blockcompile

        compiled = CampaignSession(_spec(core, style))
        compiled.run_iterations(6)
        stats = blockcompile.compile_stats(compiled.core)
        assert stats["compiled_instructions"] > 0
        assert stats["entries_compiled"] > 0

        previous = blockcompile.set_enabled(False)
        try:
            interpreted = CampaignSession(_spec(core, style))
            interpreted.run_iterations(6)
            off_stats = blockcompile.compile_stats(interpreted.core)
            assert off_stats["compiled_instructions"] == 0
        finally:
            blockcompile.set_enabled(previous)
        assert _fingerprint(compiled) == _fingerprint(interpreted)

    def test_mid_extent_trap_bails_to_interpreter(self):
        """A trapping slot commits nothing; the interpreter re-executes
        it bit-identically (jalr to a misaligned target)."""
        from repro.isa.encoder import encode
        from repro.ref import blockcompile

        sessions = [CampaignSession(_spec("rocket", "optimized"))
                    for _ in range(2)]
        for session in sessions:
            session.run_iterations(1)
        compiled_core, interp_core = (s.core for s in sessions)
        words = [encode("addi", rd=5, rs1=0, imm=2),
                 encode("jalr", rd=1, rs1=5, imm=0)]  # target 2: misaligned
        base = compiled_core.reset_pc
        for core in (compiled_core, interp_core):
            core.memory.write_program(base, words)
            core.executor.state.pc = base

        extent = blockcompile.compile_extent(compiled_core, words)
        assert extent is not None and extent.tail is not None
        before = compiled_core._compile_stats["bailouts"]
        advanced = blockcompile.run_block(compiled_core, extent, base, 10)
        # The addi committed; the trapping jalr did not.
        assert advanced == 1
        assert compiled_core.executor.state.pc == base + 4
        assert compiled_core.executor.state.read_x(5) == 2
        assert compiled_core._compile_stats["bailouts"] == before + 1
        compiled_core.step()  # interpreter re-executes the jalr -> trap

        interp_core.step()
        record = interp_core.step()
        assert record.trap is not None
        assert (compiled_core.executor.state.snapshot()
                == interp_core.executor.state.snapshot())
        assert compiled_core.cycles == interp_core.cycles

    def test_version_heat_gates_fuzz_compilation(self):
        """With fuzz gating on, blocks map only after their version
        recurs; a re-stamped clone goes cold again."""
        from repro.fuzzer.blocks import Iteration
        from repro.harness.image import build_image
        from repro.isa.encoder import encode
        from repro.ref import blockcompile

        session = CampaignSession(_spec("rocket", "optimized"))
        session.run_iterations(1)
        core = session.core
        seed = session.fuzzer.generate_iteration()
        nop = encode("addi", rd=0, rs1=0, imm=0)

        def sighting(blocks, padding):
            iteration = Iteration(blocks=list(blocks), layout=seed.layout,
                                  setup_words=[nop] * padding)
            iteration.assemble()
            image = build_image(iteration)
            return blockcompile.build_block_map(core, image, iteration), image

        previous = blockcompile.set_fuzz_gating(True)
        try:
            map1, image1 = sighting(seed.blocks, 1)
            assert image1.block_bases[0] not in map1  # first sighting: cold
            map2, image2 = sighting(seed.blocks, 2)
            assert image2.block_bases[0] not in map2  # second sighting: cold
            map3, image3 = sighting(seed.blocks, 3)
            assert image3.block_bases[0] in map3  # third sighting: hot
            # Template entries are mapped unconditionally.
            assert seed.layout.reset in map1

            # Copy-on-write re-stamp: the clone's fresh version starts cold
            # while its untouched neighbours stay hot.
            blocks = list(seed.blocks)
            blocks[0] = blocks[0].clone()
            assert blocks[0].version != seed.blocks[0].version
            map4, image4 = sighting(blocks, 4)
            assert image4.block_bases[0] not in map4
            assert image4.block_bases[1] in map4
        finally:
            blockcompile.set_fuzz_gating(previous)

    def test_fuzz_gating_matches_default_dispatch(self):
        """Version-gated fuzz compilation is observably identical to the
        default template-only dispatch (and to pure interpretation, by
        transitivity with test_compiled_off_matches_on)."""
        from repro.ref import blockcompile

        default = CampaignSession(_spec("rocket", "optimized"))
        default.run_iterations(6)

        previous = blockcompile.set_fuzz_gating(True)
        try:
            gated = CampaignSession(_spec("rocket", "optimized"))
            gated.run_iterations(6)
        finally:
            blockcompile.set_fuzz_gating(previous)
        assert gated.core._entry_heat  # the gate actually ran
        assert _fingerprint(gated) == _fingerprint(default)

    def test_resume_starts_cold_and_stays_identical(self):
        """Compile caches are checkpoint-transparent: a resumed session
        recompiles from nothing yet replays bit-identically."""
        straight = CampaignSession(_spec("rocket", "optimized"))
        straight.run_iterations(8)

        first_leg = CampaignSession(_spec("rocket", "optimized"))
        first_leg.run_iterations(4)
        assert first_leg.core._slot_cache  # warm before capture
        checkpoint = CampaignCheckpoint.capture(first_leg)
        resumed = CampaignCheckpoint.from_json(checkpoint.to_json()).restore()
        assert not resumed.core._slot_cache
        assert not resumed.core._template_map
        assert not resumed.core._entry_heat
        resumed.run_iterations(4)
        assert resumed.core._slot_cache  # rewarmed on its own
        assert _fingerprint(resumed) == _fingerprint(straight)

    def test_compile_caches_stay_bounded(self):
        from repro.isa.encoder import encode
        from repro.ref import blockcompile

        session = CampaignSession(_spec("rocket", "optimized"))
        session.run_iterations(1)
        core = session.core
        original = blockcompile._SLOT_CACHE_LIMIT
        blockcompile._SLOT_CACHE_LIMIT = 16
        try:
            core._slot_cache.clear()
            for index in range(100):
                word = encode("addi", rd=5, rs1=6, imm=index)
                blockcompile.compile_extent(core, [word])
                assert len(core._slot_cache) <= 16
        finally:
            blockcompile._SLOT_CACHE_LIMIT = original

    def test_heat_and_template_map_stay_bounded(self):
        from repro.ref import blockcompile

        session = CampaignSession(_spec("rocket", "optimized"))
        core = session.core
        heat_limit = blockcompile._HEAT_LIMIT
        blockcompile._HEAT_LIMIT = 32
        gating = blockcompile.set_fuzz_gating(True)
        try:
            core._entry_heat.clear()
            session.run_iterations(12)
            assert 0 < len(core._entry_heat) <= 32
            assert len(core._template_map) <= blockcompile._TEMPLATE_MAP_LIMIT
        finally:
            blockcompile._HEAT_LIMIT = heat_limit
            blockcompile.set_fuzz_gating(gating)


class TestPerfHarnessPlumbing:
    def test_flat_metrics_and_compare(self):
        from repro.perf.baseline import compare

        baseline = {"metrics": {"macro.speedup_vs_reference": 2.0}}
        ok = compare({"macro.speedup_vs_reference": 1.95}, baseline,
                     metrics=("macro.speedup_vs_reference",))
        assert ok == []
        bad = compare({"macro.speedup_vs_reference": 1.5}, baseline,
                      metrics=("macro.speedup_vs_reference",))
        assert bad and bad[0]["metric"] == "macro.speedup_vs_reference"
        missing = compare({}, baseline,
                          metrics=("macro.speedup_vs_reference",))
        assert missing and missing[0]["reason"] == "metric missing"

    def test_reenact_pre_overhaul_restores(self):
        from repro.fuzzer.lfsr import Lfsr as LfsrClass
        from repro.perf.reference import reenact_pre_overhaul

        original = LfsrClass.fill_bytes
        with reenact_pre_overhaul():
            assert LfsrClass.fill_bytes is not original
            # Re-enacted path produces the identical byte stream.
            assert Lfsr(7).fill_bytes(1000) == original(Lfsr(7), 1000)
        assert LfsrClass.fill_bytes is original
