"""Experiment drivers: tiny-budget runs asserting the paper's *shapes* —
who wins, by roughly what factor, and where the qualitative effects appear.
Full-scale numbers live in the benchmark harness / EXPERIMENTS.md."""

import pytest

from repro.harness import experiments as ex


class TestFig4:
    def test_executable_proportion_shape(self):
        result = ex.fig4_executable_proportion(iterations=6)
        # Prior-work generation wastes most instructions (paper: 19.3%
        # of generated instructions complete execution).
        assert result["executed_fraction"] < 0.35
        # Control flow exceeds 1/6 of generated instructions (paper Fig. 4).
        assert result["control_flow_share_generated"] > 1 / 7
        assert result["generated_total"] > 0


class TestFig6:
    def test_reachability_shape(self):
        rows = ex.fig6_reachable_points(state_sizes=(13, 15))
        for bits, row in rows.items():
            # Optimized reaches everything; legacy leaves big holes.
            assert row["optimized"]["fraction"] > 0.99
            assert row["legacy"]["fraction"] < 0.8
        # Larger instrumented spaces are less reachable (paper trend).
        assert (rows[15]["legacy"]["fraction"]
                <= rows[13]["legacy"]["fraction"] + 0.02)

    def test_poorly_reachable_modules_called_out(self):
        rows = ex.fig6_reachable_points(state_sizes=(15,))
        modules = rows[15]["legacy"]["modules"]
        # The paper singles out FPU / CSRFile / PTW as poorly reachable.
        well_covered = modules["Execute"]["fraction"]
        for name in ("FPU", "CSRFile", "PTW"):
            assert modules[name]["fraction"] < well_covered


class TestFig8:
    def test_prevalence_ordering(self):
        result = ex.fig8_prevalence(iterations=8)
        assert result["difuzzrtl"]["mean"] < 0.2
        assert result["cascade"]["mean"] > 0.85
        assert result["turbofuzz_4000"]["mean"] > 0.93
        # TurboFuzz edges out Cascade (paper: 0.97 vs 0.93).
        assert (result["turbofuzz_4000"]["mean"]
                > result["cascade"]["mean"] - 0.01)


class TestTable1:
    def test_fuzzing_speed_ordering(self):
        rows = ex.table1_fuzzing_speed(iterations=6)
        assert rows["difuzzrtl"]["fuzzing_speed_hz"] == pytest.approx(
            4.13, rel=0.08)
        assert rows["cascade"]["fuzzing_speed_hz"] == pytest.approx(
            12.8, rel=0.10)
        assert rows["turbofuzz"]["fuzzing_speed_hz"] == pytest.approx(
            75.0, rel=0.15)
        assert rows["turbofuzz"]["executed_per_second"] == pytest.approx(
            309_676, rel=0.10)
        assert rows["difuzzrtl"]["executed_per_second"] == pytest.approx(
            728, rel=0.15)


class TestTable2:
    def test_easy_bugs_detected_with_acceleration(self):
        result = ex.table2_bug_detection(
            bug_ids=("C1", "R1"), hw_max_iterations=200,
            sw_max_iterations=2500,
        )
        for bug_id in ("C1", "R1"):
            row = result["bugs"][bug_id]
            assert row["hw_seconds"] is not None, f"{bug_id} HW missed"
            assert row["sw_seconds"] is not None, f"{bug_id} SW missed"
            assert row["acceleration"] > 5, (
                f"{bug_id} acceleration {row['acceleration']}"
            )
        assert result["geomean_acceleration"] > 5


class TestTable3:
    def test_area_report(self):
        report = ex.table3_area()
        assert report["fuzzer_ip"].brams == pytest.approx(176, abs=10)
        assert report["turbofuzz"].brams == pytest.approx(227, abs=10)
        assert report["ila1_bram_ratio"] == pytest.approx(2.05, abs=0.2)


class TestFig7:
    def test_optimized_instrumentation_increases_max_coverage(self):
        result = ex.fig7_instrumentation_gain(
            iterations=8, fuzzers=("turbofuzz",))
        assert result["turbofuzz"]["gain"] > 1.1


class TestFig11:
    def test_convergence_ordering(self):
        result = ex.fig11_convergence(
            budget_seconds=1.2, checkpoints=(1.0,), max_iterations=120)
        row = result["checkpoints"][1.0]
        assert row["turbofuzz_4000"] > row["cascade"] > row["difuzzrtl"]
        assert row["tf_vs_difuzzrtl"] > row["tf_vs_cascade"] > 1.0
