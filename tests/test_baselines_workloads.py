"""Baseline fuzzers, synthetic workloads, deepExplore, FPGA models."""

import pytest

from repro.baselines import CascadeFuzzer, DifuzzRtlFuzzer
from repro.deepexplore import (
    BasicBlockVectorCollector,
    DeepExplore,
    DeepExploreConfig,
    kmeans,
    select_simpoints,
)
from repro.dut import RocketCore
from repro.fpga import (
    ILA_CONFIG1,
    ILA_CONFIG2,
    SidewinderBoard,
    VioInterface,
    estimate_ila,
    framework_area,
    table3_report,
)
from repro.fpga.ila import IlaConfig
from repro.fuzzer import TurboFuzzConfig, TurboFuzzer
from repro.harness import FuzzSession, IterationRunner, SessionConfig
from repro.harness.timing import DIFUZZRTL_FPGA_TIMING
from repro.isa.decoder import try_decode
from repro.workloads import all_workloads, coremark_like, raw_iteration


class TestDifuzzRtl:
    def test_iteration_structure(self):
        fuzzer = DifuzzRtlFuzzer()
        iteration = fuzzer.generate_iteration()
        assert len(iteration.setup_words) == fuzzer.config.setup_instructions
        assert iteration.total_instructions >= 1000

    def test_feedback_fifo(self):
        fuzzer = DifuzzRtlFuzzer()
        for _ in range(fuzzer.config.corpus_capacity + 5):
            iteration = fuzzer.generate_iteration()
            fuzzer.feedback(iteration, 1)
        assert len(fuzzer.corpus) == fuzzer.config.corpus_capacity

    def test_zero_increment_not_stored(self):
        fuzzer = DifuzzRtlFuzzer()
        fuzzer.feedback(fuzzer.generate_iteration(), 0)
        assert len(fuzzer.corpus) == 0

    def test_low_prevalence_operating_point(self):
        session = FuzzSession(
            SessionConfig(timing=DIFUZZRTL_FPGA_TIMING, stop_on_trap=True),
            fuzzer=DifuzzRtlFuzzer(),
        )
        session.run_iterations(10)
        mean_prevalence = sum(
            h.prevalence for h in session.history) / len(session.history)
        assert mean_prevalence < 0.2  # the Fig. 8 bound
        assert session.iteration_rate_hz() == pytest.approx(4.13, rel=0.05)

    def test_setup_preserves_base_registers(self):
        fuzzer = DifuzzRtlFuzzer()
        for word in fuzzer._setup_routine():
            decoded = try_decode(word)
            if (decoded is not None and decoded.rd
                    and not decoded.spec.writes_fp):
                assert decoded.rd not in (5, 6)


class TestCascade:
    def test_high_prevalence_operating_point(self):
        from repro.harness.timing import CASCADE_TIMING

        session = FuzzSession(
            SessionConfig(timing=CASCADE_TIMING), fuzzer=CascadeFuzzer(),
        )
        session.run_iterations(10)
        mean_prevalence = sum(
            h.prevalence for h in session.history) / len(session.history)
        assert mean_prevalence > 0.85
        assert session.iteration_rate_hz() == pytest.approx(12.6, rel=0.08)

    def test_feedback_is_ignored(self):
        fuzzer = CascadeFuzzer()
        iteration = fuzzer.generate_iteration()
        fuzzer.feedback(iteration, 1000)  # must not raise or store anything
        assert not hasattr(fuzzer, "corpus") or not fuzzer.corpus

    def test_no_invalid_rounding_modes(self):
        fuzzer = CascadeFuzzer()
        iteration = fuzzer.generate_iteration()
        for word in iteration.words:
            decoded = try_decode(word)
            if decoded is not None and decoded.spec.fmt in ("FR", "R4"):
                assert decoded.rm in (0, 1, 2, 3, 4, 7)


class TestWorkloads:
    def test_programs_terminate(self):
        for program in all_workloads(scale=1):
            iteration = raw_iteration(program.words)
            core = RocketCore()
            runner = IterationRunner(core)
            result = runner.run(
                iteration,
                instruction_cap=program.approx_dynamic_instructions * 2 + 1000,
            )
            assert result.completed, program.name

    def test_dynamic_instruction_estimate(self):
        program = coremark_like(scale=1)
        iteration = raw_iteration(program.words)
        core = RocketCore()
        runner = IterationRunner(core)
        result = runner.run(
            iteration,
            instruction_cap=program.approx_dynamic_instructions * 2 + 1000,
        )
        ratio = result.executed_fuzzing / program.approx_dynamic_instructions
        assert 0.8 < ratio < 1.2

    def test_distinct_names(self):
        names = {program.name for program in all_workloads()}
        assert names == {"coremark", "dhrystone", "microbench"}


class TestSimpoint:
    def test_kmeans_deterministic(self):
        import numpy as np

        matrix = np.array([[1.0, 0], [0.9, 0.1], [0, 1.0], [0.1, 0.9]])
        a = kmeans(matrix, 2, seed=1)
        b = kmeans(matrix, 2, seed=1)
        assert (a[0] == b[0]).all()

    def test_kmeans_separates_clusters(self):
        import numpy as np

        matrix = np.array([[1.0, 0]] * 5 + [[0, 1.0]] * 5)
        assignments, _ = kmeans(matrix, 2, seed=0)
        assert len(set(assignments[:5])) == 1
        assert assignments[0] != assignments[5]

    def test_simpoint_weights_sum_to_one(self):
        from repro.deepexplore.bbv import IntervalRecord

        intervals = [
            IntervalRecord(index=i, bbv={0x1000 + (i % 3) * 4: 10},
                           start_snapshot={})
            for i in range(9)
        ]
        points = select_simpoints(intervals, k=3, seed=0)
        assert sum(point.weight for point in points) == pytest.approx(1.0)
        assert len(points) <= 3

    def test_empty_intervals(self):
        assert select_simpoints([], k=3) == []


class TestBbvCollection:
    def test_collects_intervals_with_snapshots(self):
        program = coremark_like(scale=1)
        iteration = raw_iteration(program.words)
        from repro.harness.image import build_image

        core = RocketCore()
        image = build_image(iteration)
        core.reset_pc = image.layout.reset
        core.reset()
        image.install(core.memory)
        collector = BasicBlockVectorCollector(core, interval_length=500)
        for _ in range(4000):
            record = core.step()
            if record.pc >= iteration.fuzz_base:
                collector.observe(record)
            if record.next_pc == image.layout.done:
                break
        intervals = collector.finish()
        assert len(intervals) >= 3
        for interval in intervals[:-1]:
            assert interval.instructions == 500
            assert interval.bbv and interval.min_pc <= interval.max_pc
            assert "xregs" in interval.start_snapshot

    def test_loopy_program_has_recurring_bbvs(self):
        program = coremark_like(scale=2)
        iteration = raw_iteration(program.words)
        from repro.harness.image import build_image

        core = RocketCore()
        image = build_image(iteration)
        core.reset_pc = image.layout.reset
        core.reset()
        image.install(core.memory)
        collector = BasicBlockVectorCollector(core, interval_length=400)
        for _ in range(20_000):
            record = core.step()
            if record.pc >= iteration.fuzz_base:
                collector.observe(record)
            if record.next_pc == image.layout.done:
                break
        intervals = collector.finish()
        # Loop phases produce many intervals dominated by few leaders.
        assert len(collector.leader_order()) < 80
        assert len(intervals) > 10


class TestDeepExploreEngine:
    def test_stage1_plants_interval_seeds(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=300)))
        explorer = DeepExplore(session, DeepExploreConfig(
            profile_cap=15_000, clusters=4))
        reports = explorer.run_stage1(all_workloads(scale=1)[:1])
        assert reports[0].marked >= 1
        interval_seeds = [seed for seed in session.fuzzer.corpus.seeds
                          if seed.origin == "interval"]
        assert interval_seeds
        assert session.fuzzer.persistent_data_patches
        assert session.clock.seconds > 0

    def test_interval_seeds_are_runnable(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=300)))
        explorer = DeepExplore(session, DeepExploreConfig(
            profile_cap=10_000, clusters=3))
        explorer.run_stage1(all_workloads(scale=1)[:1])
        # Stage-2 iterations mixing interval blocks must run to completion.
        outcome = session.run_iteration()
        assert outcome.executed_instructions > 0

    def test_refinement_rounds_bounded(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=300)))
        explorer = DeepExplore(session, DeepExploreConfig(
            profile_cap=8_000, clusters=3, refine_rounds=3))
        explorer.run_stage1(all_workloads(scale=1)[:1])
        rounds = explorer.refine_marked_seeds()
        assert 1 <= rounds <= 3


class TestFpgaModels:
    def test_vio_controls_fuzzer(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig())
        vio = VioInterface.for_fuzzer(fuzzer)
        assert "enable_f" in vio.controls()
        vio.write("enable_f", False)
        assert not any(
            spec.name == "fadd.s" for spec in fuzzer.library.active_specs)
        vio.write("jump_window_blocks", 6)
        assert fuzzer.config.jump_window_blocks == 6
        assert vio.read("jump_window_blocks") == 6

    def test_vio_unknown_control(self):
        with pytest.raises(KeyError):
            VioInterface().write("nope", 1)

    def test_ila_presets_match_paper(self):
        assert ILA_CONFIG1.estimate.brams == 465
        assert ILA_CONFIG2.estimate.brams == 578
        assert ILA_CONFIG2.config.depth > ILA_CONFIG1.config.depth

    def test_ila_estimator_scales_with_depth(self):
        small = estimate_ila(IlaConfig("s", probes=256, depth=1024))
        large = estimate_ila(IlaConfig("l", probes=256, depth=65536))
        assert large.estimate.brams > small.estimate.brams

    def test_board_budget_enforced(self):
        board = SidewinderBoard()
        fuzzer_area, _, framework = framework_area()
        board.commit("framework", framework)
        usage = board.utilization()
        assert all(0 < value < 1 for value in usage)

    def test_corpus_placement(self):
        board = SidewinderBoard()
        placement = board.place_corpus(64, 4000)
        assert placement.location == "bram"
        spill = board.place_corpus(100_000, 4000)
        assert spill.location == "ddr"
        assert spill.access_latency_cycles > placement.access_latency_cycles

    def test_table3_shape(self):
        report = table3_report(RocketCore())
        assert report["turbofuzz"].brams > report["fuzzer_ip"].brams
        assert report["ila1_bram_ratio"] == pytest.approx(2.05, abs=0.15)
        assert report["ila2_bram_ratio"] == pytest.approx(2.55, abs=0.15)
        # The DUT dominates LUTs; the framework dominates BRAM.
        assert report["dut"].luts > report["turbofuzz"].luts
        assert report["turbofuzz"].brams > report["dut"].brams
