"""End-to-end integration: full campaigns with detection equivalence."""

import pytest

from repro.deepexplore import DeepExplore, DeepExploreConfig
from repro.fuzzer import TurboFuzzConfig
from repro.harness import FuzzSession, SessionConfig
from repro.workloads import all_workloads


class TestTriggerImpliesMismatch:
    """The Table II fast path (bug condition fires) must agree with the
    ground truth (instruction-level lockstep flags a divergence)."""

    @pytest.mark.parametrize("bug_id,core_name", [
        ("C1", "cva6"), ("C5", "cva6"), ("C9", "cva6"), ("C10", "cva6"),
        ("B2", "boom"),
    ])
    def test_lockstep_catches_what_trigger_reports(self, bug_id, core_name):
        config = SessionConfig(
            core=core_name, bugs=(bug_id,), with_ref=True,
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=800,
                                          seed=7),
        )
        session = FuzzSession(config)
        seconds, mismatch = session.run_until_mismatch(max_iterations=80)
        assert mismatch is not None, f"{bug_id} never detected"
        assert bug_id in session.core.hooks.triggered


class TestCampaignDynamics:
    def test_coverage_growth_has_diminishing_returns(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=500)))
        session.run_iterations(30)
        gains = [h.new_coverage for h in session.history]
        early = sum(gains[:10])
        late = sum(gains[-10:])
        assert late < early  # saturation

    def test_corpus_grows_and_schedules(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=500,
                                          corpus_capacity=4)))
        session.run_iterations(15)
        corpus = session.fuzzer.corpus
        assert len(corpus) == 4
        assert corpus.evictions + corpus.rejected > 0

    def test_deepexplore_full_schedule(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=400)))
        explorer = DeepExplore(session, DeepExploreConfig(
            profile_cap=10_000, clusters=3, refine_rounds=2))
        explorer.run(all_workloads(scale=1)[:2],
                     total_virtual_seconds=session.clock.seconds + 0.05)
        assert session.coverage_total > 1000
        assert any(seed.origin == "interval"
                   for seed in session.fuzzer.corpus.seeds)


class TestDeterminism:
    def test_identical_configs_produce_identical_campaigns(self):
        def run():
            session = FuzzSession(SessionConfig(
                fuzzer_config=TurboFuzzConfig(
                    instructions_per_iteration=300, seed=99)))
            session.run_iterations(5)
            return (session.coverage_total, session.clock.seconds,
                    [h.executed_instructions for h in session.history])

        assert run() == run()
