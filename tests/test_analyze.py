"""repro.analyze: rule families, suppressions, baseline, CLI.

Fixture modules are written under ``tmp_path`` with directory names
(``fuzzer/``, ``dut/``...) chosen to put them on — or keep them off —
the reproducible path the DET rules guard.  ``root=tmp_path`` is passed
explicitly so path-segment scoping sees the intended layout.
"""

import json
import os
import textwrap

import pytest

from repro.analyze import analyze_paths, hot_path
from repro.analyze.baseline import load_baseline, save_baseline, split_by_baseline
from repro.analyze.cli import main as analyze_main
from repro.analyze.findings import Finding

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def scan(tmp_path, **kwargs):
    return analyze_paths([str(tmp_path)], root=str(tmp_path), **kwargs)


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestCheckpointAuditor:
    def test_boom_bug_shape_forgotten_attribute(self, tmp_path):
        """The PR-5 incident in miniature: cross-iteration state mutated
        on the hot path but absent from core_state_dict()."""
        write(tmp_path, "dut/predictor.py", """
            class PredictorCore:
                def __init__(self):
                    self._mispredicts = 0
                    self._branch_predictor = {}

                def _latency(self, record):
                    self._branch_predictor[record.pc] = 1
                    self._mispredicts += 1
                    return 1.0

                def core_state_dict(self):
                    return {"mispredicts": self._mispredicts}

                def load_core_state(self, state):
                    self._mispredicts = int(state.get("mispredicts", 0))
        """)
        findings = scan(tmp_path, select=["CHK"])
        chk1 = [f for f in findings if f.rule == "CHK001"]
        assert len(chk1) == 1
        assert "_branch_predictor" in chk1[0].message
        assert chk1[0].symbol == "PredictorCore._branch_predictor"

    def test_clean_symmetric_class_passes(self, tmp_path):
        write(tmp_path, "fuzzer/gen.py", """
            class Gen:
                def __init__(self, seed):
                    self.state = seed
                    self.count = 0

                def draw(self):
                    self.state = (self.state * 3) & 0xFF
                    self.count += 1
                    return self.state

                def state_dict(self):
                    return {"state": self.state, "count": self.count}

                def load_state(self, state):
                    self.state = state["state"]
                    self.count = state.get("count", 0)
        """)
        assert scan(tmp_path, select=["CHK"]) == []

    def test_key_asymmetry_both_directions(self, tmp_path):
        write(tmp_path, "fuzzer/asym.py", """
            class Asym:
                def __init__(self):
                    self.a = 0

                def state_dict(self):
                    return {"a": self.a, "orphan": 1}

                def load_state(self, state):
                    self.a = state["a"]
                    self.b = state["phantom"]
        """)
        findings = scan(tmp_path, select=["CHK002"])
        keys = sorted(f.symbol for f in findings)
        assert keys == ["Asym[orphan]", "Asym[phantom]"]

    def test_unpaired_halves(self, tmp_path):
        write(tmp_path, "fuzzer/halves.py", """
            class SaveOnly:
                def state_dict(self):
                    return {}

            class LoadOnly:
                def load_state(self, state):
                    pass
        """)
        findings = scan(tmp_path, select=["CHK003"])
        assert len(findings) == 2

    def test_from_state_counts_as_load_half(self, tmp_path):
        write(tmp_path, "fuzzer/valueobj.py", """
            class Seedling:
                def __init__(self, value):
                    self.value = value

                def state_dict(self):
                    return {"value": self.value}

                @classmethod
                def from_state(cls, state):
                    return cls(state["value"])
        """)
        assert scan(tmp_path, select=["CHK"]) == []

    def test_transient_declaration_exempts(self, tmp_path):
        write(tmp_path, "fuzzer/cachey.py", """
            class Cachey:
                _checkpoint_transient = frozenset({"_cache"})

                def __init__(self):
                    self.total = 0
                    self._cache = {}

                def bump(self, key):
                    self.total += 1
                    self._cache[key] = self.total

                def state_dict(self):
                    return {"total": self.total}

                def load_state(self, state):
                    self.total = state["total"]
        """)
        assert scan(tmp_path, select=["CHK"]) == []

    def test_stale_transient_flagged(self, tmp_path):
        write(tmp_path, "fuzzer/stale.py", """
            class Stale:
                _checkpoint_transient = frozenset({"_ghost"})

                def __init__(self):
                    self.n = 0

                def state_dict(self):
                    return {"n": self.n}

                def load_state(self, state):
                    self.n = state["n"]
        """)
        findings = scan(tmp_path, select=["CHK004"])
        assert len(findings) == 1
        assert "_ghost" in findings[0].message

    def test_reset_written_attrs_exempt_for_core_pair_only(self, tmp_path):
        write(tmp_path, "dut/resetty.py", """
            class Resetty:
                def __init__(self):
                    self.cycles = 0
                    self.persistent = {}

                def reset(self):
                    self.cycles = 0

                def tick(self):
                    self.cycles += 1
                    self.persistent["x"] = self.cycles

                def core_state_dict(self):
                    return {"persistent": dict(self.persistent)}

                def load_core_state(self, state):
                    self.persistent = dict(state.get("persistent", {}))
        """)
        # cycles is reset() per-iteration state: exempt; persistent travels.
        assert scan(tmp_path, select=["CHK001"]) == []

    def test_opaque_key_flow_skips_key_comparison(self, tmp_path):
        write(tmp_path, "fuzzer/opaque.py", """
            class Opaque:
                def __init__(self):
                    self.data = {}

                def state_dict(self):
                    return {"data": dict(self.data)}

                def load_state(self, state):
                    for key, value in state.items():
                        self.data[key] = value
        """)
        assert scan(tmp_path, select=["CHK002"]) == []


class TestDeterminismLint:
    def test_banned_imports_on_reproducible_path(self, tmp_path):
        write(tmp_path, "fuzzer/dicey.py", """
            import random
            import time
            from datetime import datetime
        """)
        assert rules_of(scan(tmp_path)) == ["DET001", "DET002"]

    def test_off_path_module_not_checked(self, tmp_path):
        write(tmp_path, "bench/dicey.py", """
            import random
            import time
        """)
        assert scan(tmp_path) == []

    def test_id_keyed_dict(self, tmp_path):
        write(tmp_path, "coverage/ident.py", """
            def index(table, obj):
                table[id(obj)] = 1
                return {id(obj): 2}
        """)
        findings = scan(tmp_path, select=["DET003"])
        assert len(findings) == 2

    def test_set_iteration_feeding_ordered_output(self, tmp_path):
        write(tmp_path, "campaign/sets.py", """
            def bad(items):
                order = list(set(items))
                for element in {1, 2, 3}:
                    order.append(element)
                return ",".join(set(items)), order

            def good(items):
                return sorted(set(items)), len(set(items))
        """)
        findings = scan(tmp_path, select=["DET004"])
        assert len(findings) == 3

    def test_environ_read(self, tmp_path):
        write(tmp_path, "campaign/envy.py", """
            import os

            def pick():
                return os.environ.get("MODE") or os.getenv("MODE")
        """)
        findings = scan(tmp_path, select=["DET005"])
        assert len(findings) == 2


class TestHotPathGuard:
    def test_unmarked_function_not_checked(self, tmp_path):
        write(tmp_path, "fuzzer/cold.py", """
            def build():
                return [x for x in range(4)]
        """)
        assert scan(tmp_path, select=["HOT"]) == []

    def test_marked_function_allocations(self, tmp_path):
        write(tmp_path, "fuzzer/hot.py", """
            from repro.analyze.markers import hot_path

            @hot_path
            def bad(values):
                squares = [v * v for v in values]          # HOT001
                box = {"k": 1}                             # HOT002
                pair = (values[0], values[1])              # HOT002
                fn = lambda v: v                           # HOT003
                label = f"{values}"                        # HOT004
                try:                                       # HOT005
                    return squares, box, pair, fn, label
                except ValueError:
                    return None
        """)
        assert rules_of(scan(tmp_path, select=["HOT"])) == \
            ["HOT001", "HOT002", "HOT003", "HOT004", "HOT005"]

    def test_constant_tuple_is_exempt(self, tmp_path):
        write(tmp_path, "fuzzer/folded.py", """
            from repro.analyze.markers import hot_path

            @hot_path
            def classify(cause):
                if cause in (0, 1, 2):
                    return 1
                if cause in (3, -1, "x"):
                    return 2
                return 0
        """)
        assert scan(tmp_path, select=["HOT"]) == []

    def test_marker_is_runtime_noop(self):
        @hot_path
        def probe(x):
            return x + 1

        assert probe(1) == 2
        assert probe.__hot_path__ is True


class TestRegistryHygiene:
    def test_duplicate_name_across_files(self, tmp_path):
        write(tmp_path, "campaign/plug_a.py", """
            from repro.campaign.registry import register_fuzzer

            @register_fuzzer("dup", config_class=dict, timing="t")
            class A:
                pass
        """)
        write(tmp_path, "campaign/plug_b.py", """
            from repro.campaign.registry import register_fuzzer

            @register_fuzzer("dup", config_class=dict, timing="t")
            class B:
                pass
        """)
        findings = scan(tmp_path, select=["REG001"])
        assert len(findings) == 1
        assert "plug_a.py" in findings[0].message

    def test_replace_true_suppresses_duplicate(self, tmp_path):
        write(tmp_path, "campaign/plug.py", """
            from repro.campaign.registry import register_fuzzer

            @register_fuzzer("dup", config_class=dict, timing="t")
            class A:
                pass

            @register_fuzzer("dup", config_class=dict, timing="t", replace=True)
            class B:
                pass
        """)
        assert scan(tmp_path, select=["REG001"]) == []

    def test_function_local_registration_flagged(self, tmp_path):
        write(tmp_path, "campaign/nested.py", """
            from repro.campaign.registry import register_fuzzer

            def install():
                @register_fuzzer("inner", config_class=dict, timing="t")
                class Hidden:
                    pass
                return Hidden
        """)
        findings = scan(tmp_path, select=["REG002"])
        assert len(findings) == 1
        assert "Hidden" in findings[0].message

    def test_live_registries_are_clean(self):
        findings = analyze_paths([REPO_SRC], select=["REG003", "REG005"])
        assert findings == []


class TestResilienceLint:
    def test_swallowed_broad_exceptions(self, tmp_path):
        write(tmp_path, "campaign/swallow.py", """
            def quiet():
                try:
                    risky()
                except Exception:
                    pass

            def bare():
                try:
                    risky()
                except:
                    ...

            def base():
                try:
                    risky()
                except BaseException:
                    pass
        """)
        findings = scan(tmp_path, select=["RES001"])
        assert len(findings) == 3
        assert {f.symbol for f in findings} == {"quiet", "bare", "base"}

    def test_handled_or_narrow_exceptions_are_fine(self, tmp_path):
        write(tmp_path, "campaign/handled.py", """
            def counted(stats):
                try:
                    risky()
                except Exception:
                    stats["errors"] += 1

            def narrow():
                try:
                    risky()
                except KeyError:
                    pass

            def reraised():
                try:
                    risky()
                except Exception:
                    raise
        """)
        assert scan(tmp_path, select=["RES001"]) == []

    def test_unbounded_retry_loop(self, tmp_path):
        write(tmp_path, "campaign/retry.py", """
            def spin(queue):
                while True:
                    try:
                        return_nothing(queue.get())
                    except Exception:
                        continue
        """)
        findings = scan(tmp_path, select=["RES002"])
        assert len(findings) == 1
        assert findings[0].symbol == "spin"

    def test_bounded_or_exiting_loops_are_fine(self, tmp_path):
        write(tmp_path, "campaign/bounded.py", """
            def drain(queue):
                while True:
                    try:
                        item = queue.get_nowait()
                    except Empty:
                        return
                    handle(item)

            def attempts(policy):
                for attempt in range(policy.max_retries):
                    try:
                        return run()
                    except Exception:
                        continue

            def eventually(queue):
                while True:
                    try:
                        item = queue.get()
                    except Empty:
                        continue
                    if item is None:
                        break
        """)
        assert scan(tmp_path, select=["RES002"]) == []

    def test_nested_loop_break_does_not_count_as_exit(self, tmp_path):
        write(tmp_path, "campaign/nested.py", """
            def outer(tasks):
                while True:
                    try:
                        batch = fetch()
                    except Exception:
                        continue
                    for task in batch:
                        if task.done:
                            break
        """)
        findings = scan(tmp_path, select=["RES002"])
        assert len(findings) == 1

    def test_scoped_to_campaign_segments(self, tmp_path):
        write(tmp_path, "fuzzer/swallow.py", """
            def quiet():
                try:
                    risky()
                except Exception:
                    pass
        """)
        assert scan(tmp_path, select=["RES"]) == []


class TestSuppressions:
    def test_same_line_and_line_above(self, tmp_path):
        write(tmp_path, "fuzzer/quiet.py", """
            import random  # analyze: ignore[DET002] seeded downstream

            # analyze: ignore[DET001] justified
            import time
        """)
        assert scan(tmp_path) == []

    def test_wildcard_and_unrelated_rule(self, tmp_path):
        write(tmp_path, "fuzzer/wild.py", """
            import random  # analyze: ignore[*]

            import time  # analyze: ignore[DET002] wrong rule: does not hide DET001
        """)
        assert rules_of(scan(tmp_path)) == ["DET001"]


class TestBaselineAndCli:
    def _dirty_tree(self, tmp_path):
        write(tmp_path, "src/fuzzer/dicey.py", "import random\n")
        return tmp_path / "src"

    def test_baseline_round_trip(self, tmp_path):
        src = self._dirty_tree(tmp_path)
        findings = analyze_paths([str(src)], root=str(src))
        assert rules_of(findings) == ["DET002"]
        baseline_file = tmp_path / "baseline.json"
        save_baseline(findings, str(baseline_file))
        accepted = load_baseline(str(baseline_file))
        new, baselined = split_by_baseline(findings, accepted)
        assert new == [] and len(baselined) == 1

    def test_check_exit_codes(self, tmp_path, capsys):
        src = self._dirty_tree(tmp_path)
        baseline_file = str(tmp_path / "baseline.json")
        assert analyze_main(["check", "--root", str(src),
                             "--baseline", baseline_file, str(src)]) == 1
        assert analyze_main(["update-baseline", "--root", str(src),
                             "--baseline", baseline_file, str(src)]) == 0
        assert analyze_main(["check", "--root", str(src),
                             "--baseline", baseline_file, str(src)]) == 0
        capsys.readouterr()

    def test_report_always_exits_zero_and_json(self, tmp_path, capsys):
        src = self._dirty_tree(tmp_path)
        assert analyze_main(["report", "--json", "--root", str(src),
                             str(src)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "DET002"
        assert payload[0]["fingerprint"].startswith("DET002::")

    def test_select_and_ignore(self, tmp_path):
        write(tmp_path, "fuzzer/mixed.py", """
            import random
            import time
        """)
        assert rules_of(scan(tmp_path, select=["DET001"])) == ["DET001"]
        assert rules_of(scan(tmp_path, ignore=["DET001"])) == ["DET002"]

    def test_syntax_error_becomes_finding(self, tmp_path):
        write(tmp_path, "fuzzer/broken.py", "def broken(:\n")
        findings = scan(tmp_path)
        assert rules_of(findings) == ["E001"]

    def test_fingerprint_survives_line_churn(self):
        a = Finding(rule="CHK001", message="m", path="/x/y.py", line=10,
                    symbol="C.attr", relpath="y.py")
        b = Finding(rule="CHK001", message="m", path="/x/y.py", line=99,
                    symbol="C.attr", relpath="y.py")
        assert a.fingerprint == b.fingerprint


class TestRealTree:
    def test_repo_source_is_clean(self):
        assert analyze_paths([REPO_SRC]) == []

    def test_reintroducing_boom_bug_fails_check(self, tmp_path):
        """The acceptance criterion: dropping the branch-predictor key from
        BOOM's core_state_dict must produce a checkpoint-protocol finding
        naming the attribute."""
        boom = os.path.join(REPO_SRC, "dut", "boom.py")
        with open(boom, encoding="utf-8") as handle:
            source = handle.read()
        needle = '"branch_predictor": {str(pc): counter for pc, counter\n'
        assert needle in source
        mutated = source.replace(needle, "").replace(
            "                                 in self._branch_predictor.items()},\n",
            "")
        assert mutated != source
        write(tmp_path, "dut/boom.py", mutated)
        findings = analyze_paths([str(tmp_path)], root=str(tmp_path),
                                 select=["CHK"])
        assert any(f.rule == "CHK001"
                   and f.symbol == "BoomCore._branch_predictor"
                   for f in findings)
