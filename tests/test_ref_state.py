"""Architectural state container: fcsr aliasing, snapshots, diff."""

from hypothesis import given, strategies as st

from repro.isa import csr as CSR
from repro.ref import ArchState


class TestRegisters:
    def test_x0_is_hardwired(self):
        state = ArchState()
        state.write_x(0, 123)
        assert state.read_x(0) == 0

    def test_write_masks_to_64_bits(self):
        state = ArchState()
        state.write_x(1, 1 << 70)
        assert state.read_x(1) == 0

    def test_fp_write_sets_dirty(self):
        state = ArchState()
        state.write_f(3, 42)
        status = state.csrs[CSR.MSTATUS]
        assert status & CSR.MSTATUS_FS_MASK == CSR.MSTATUS_FS_DIRTY


class TestFcsr:
    @given(flags=st.integers(min_value=0, max_value=31),
           rm=st.integers(min_value=0, max_value=7))
    def test_fflags_frm_pack_independently(self, flags, rm):
        state = ArchState()
        state.fflags = flags
        state.frm = rm
        assert state.fflags == flags and state.frm == rm
        assert state.csrs[CSR.FCSR] == CSR.pack_fcsr(flags, rm)

    def test_accrue_is_sticky(self):
        state = ArchState()
        state.accrue_fflags(CSR.FFLAGS_NX)
        state.accrue_fflags(CSR.FFLAGS_DZ)
        assert state.fflags == CSR.FFLAGS_NX | CSR.FFLAGS_DZ

    def test_unpack_roundtrip(self):
        assert CSR.unpack_fcsr(CSR.pack_fcsr(0b10101, 0b011)) == (0b10101, 0b011)


class TestSnapshotDiff:
    def test_snapshot_restore(self):
        state = ArchState()
        state.write_x(5, 77)
        state.write_f(2, 99)
        state.pc = 0x1234
        snapshot = state.snapshot()
        state.write_x(5, 0)
        state.pc = 0
        state.restore(snapshot)
        assert state.read_x(5) == 77 and state.pc == 0x1234

    def test_diff_reports_changes(self):
        a, b = ArchState(), ArchState()
        b.write_x(3, 9)
        b.csrs[CSR.MSCRATCH] = 1
        differences = a.diff(b)
        kinds = {(kind, index) for kind, index, _, _ in differences}
        assert ("x", 3) in kinds and ("csr", CSR.MSCRATCH) in kinds

    def test_identical_states_diff_empty(self):
        assert ArchState().diff(ArchState()) == []

    def test_misa_encodes_extensions(self):
        state = ArchState(misa_extensions="IMAFD")
        misa = state.csrs[CSR.MISA]
        for letter in "IMAFD":
            assert misa & (1 << (ord(letter) - ord("A")))
        assert misa >> 62 == 2  # RV64
