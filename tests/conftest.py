"""Shared fixtures for the test suite."""

import pytest

from tests.helpers import make_executor


@pytest.fixture
def executor_factory():
    return make_executor
