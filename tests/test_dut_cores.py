"""DUT cores: netlists, stepping, latency, caches, microarch domains."""

import pytest

from repro.coverage import instrument_design
from repro.dut import BoomCore, Cva6Core, RocketCore, make_core
from repro.dut.caches import DirectMappedCache
from repro.isa.encoder import assemble_all
from repro.rtl import estimate_area
from repro.rtl.netlist import control_registers

CORES = [RocketCore, Cva6Core, BoomCore]


@pytest.fixture(params=CORES, ids=[cls.name for cls in CORES])
def core(request):
    return request.param()


PROGRAM = assemble_all([
    "addi a0, zero, 100",
    "addi a1, zero, 7",
    "div a2, a0, a1",
    "mul a3, a0, a1",
    "fcvt.d.w ft0, a0",
    "fcvt.d.w ft1, a1",
    "fdiv.d ft2, ft0, ft1",
    "lui t0, 0x10",
    "sd a2, 0(t0)",
    "ld a4, 0(t0)",
    "beq a4, a2, 8",
    "ebreak",
    "csrrs a5, 0xb02, zero",
    "fence",
    "ecall",
])


class TestCoreConstruction:
    def test_make_core_by_name(self):
        assert make_core("rocket").name == "rocket"
        assert make_core("CVA6").name == "cva6"
        with pytest.raises(ValueError):
            make_core("z80")

    def test_netlist_has_common_modules(self, core):
        names = {module.name for module in core.top.walk()}
        for expected in ("Frontend", "Decode", "Execute", "MulDiv", "FPU",
                         "LSU", "CSRFile", "PTW"):
            assert expected in names

    def test_boom_has_ooo_modules(self):
        names = {module.name for module in BoomCore().top.walk()}
        assert {"ROB", "Rename", "IssueQueue", "LSQ"} <= names

    def test_cva6_has_scoreboard(self):
        names = {module.name for module in Cva6Core().top.walk()}
        assert "Scoreboard" in names

    def test_control_registers_exist_per_module(self, core):
        for name in ("Frontend", "FPU", "CSRFile"):
            module = next(m for m in core.top.walk() if m.name == name)
            assert control_registers(module)

    def test_area_is_positive(self, core):
        area = estimate_area(core.top)
        assert area.luts > 10_000 and area.registers > 10_000


class TestExecution:
    def test_program_runs_to_ecall(self, core):
        core.load_program(core.reset_pc, PROGRAM)
        records = core.run(100, stop_on=lambda r: r.trap is not None
                           and r.trap.cause == 11)
        assert records[-1].trap is not None
        assert core.retired == len(records)
        assert core.cycles > len(records)  # multi-cycle ops accrued

    def test_reset_clears_state(self, core):
        core.load_program(core.reset_pc, PROGRAM)
        core.run(5)
        core.reset()
        assert core.cycles == 0 and core.retired == 0
        assert all(value == 0 for value in core.vals.values())

    def test_div_costs_more_than_add(self, core):
        core.load_program(core.reset_pc, assemble_all(
            ["addi a0, zero, 9", "addi a1, zero, 3"]))
        core.run(2)
        add_cycles = core.cycles
        core.reset()
        core.load_program(core.reset_pc, assemble_all(
            ["div a2, a0, a1", "div a3, a0, a1"]))
        core.run(2)
        assert core.cycles > add_cycles

    def test_seconds_elapsed(self, core):
        core.load_program(core.reset_pc, PROGRAM)
        core.run(5)
        assert core.seconds_elapsed() == pytest.approx(
            core.cycles / 100e6
        )

    def test_microarch_values_stay_in_domains(self, core):
        cov = instrument_design(core.top, max_state_size=15)
        core.attach_coverage(cov)
        core.load_program(core.reset_pc, PROGRAM)
        core.run(30, stop_on=lambda r: r.trap is not None
                 and r.trap.cause == 11)
        for name, register in core.regs.items():
            if register.domain is None or name not in core.vals:
                continue
            assert core.vals[name] in register.domain, (
                f"{name}={core.vals[name]} outside domain"
            )

    def test_coverage_accumulates(self, core):
        cov = instrument_design(core.top, max_state_size=15)
        core.attach_coverage(cov)
        core.load_program(core.reset_pc, PROGRAM)
        core.run(len(PROGRAM))
        assert cov.total_points > 5


class TestCaches:
    def test_direct_mapped_hit_miss(self):
        cache = DirectMappedCache(sets=4, line_shift=4)
        assert cache.access(0x100) is False
        assert cache.access(0x104) is True  # same line
        assert cache.access(0x100 + 4 * 16) is False  # conflict: same set
        assert cache.misses == 2 and cache.hits == 1

    def test_flush(self):
        cache = DirectMappedCache(sets=4)
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False

    def test_miss_rate(self):
        cache = DirectMappedCache(sets=16)
        for address in range(0, 1 << 12, 64):
            cache.access(address)
        assert cache.miss_rate > 0


class TestBoomSpecifics:
    def test_mispredict_penalty(self):
        core = BoomCore()
        # A loop whose branch alternates: the 2-bit predictor mispredicts.
        program = assemble_all([
            "addi a0, zero, 8",
            "andi a1, a0, 1",
            "bne a1, zero, 4",
            "addi a0, a0, -1",
            "bne a0, zero, -12",
            "ecall",
        ])
        core.load_program(core.reset_pc, program)
        core.run(100, stop_on=lambda r: r.trap is not None)
        assert core._mispredicts > 0

    def test_rob_occupancy_tracks_long_ops(self):
        core = BoomCore()
        program = assemble_all(["div a2, a0, a1"] * 4 + ["ecall"])
        core.load_program(core.reset_pc, program)
        core.run(4)
        assert core.vals["rob_occupancy"] > 0
