"""Harness: templates, images, runner, checker, snapshot, clock, session."""

import pytest

from repro.dut import RocketCore, make_core
from repro.fuzzer import TurboFuzzConfig, TurboFuzzer
from repro.fuzzer.context import MemoryLayout
from repro.fuzzer.templates import (
    build_done_loop,
    build_prologue,
    build_trap_handler,
    template_instruction_count,
)
from repro.harness import (
    DifferentialChecker,
    FuzzSession,
    HardwareSnapshot,
    IterationRunner,
    SessionConfig,
    VirtualClock,
    build_image,
)
from repro.harness.image import INTERESTING_TABLE, build_data_segment
from repro.harness.timing import (
    CASCADE_TIMING,
    DIFUZZRTL_FPGA_TIMING,
    TURBOFUZZ_TIMING,
)
from repro.ref.executor import CommitRecord


class TestVirtualClock:
    def test_cycles_to_seconds(self):
        clock = VirtualClock(100e6)
        clock.advance_cycles(100e6)
        assert clock.seconds == pytest.approx(1.0)

    def test_mixed_advance(self):
        clock = VirtualClock(100e6)
        clock.advance_cycles(50e6)
        clock.advance_seconds(0.5)
        assert clock.seconds == pytest.approx(1.0)
        assert clock.minutes == pytest.approx(1 / 60)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_seconds(-1)


class TestTemplates:
    def test_prologue_reaches_blocks(self):
        layout = MemoryLayout()
        core = RocketCore(reset_pc=layout.reset)
        core.memory.write_program(layout.reset, build_prologue(layout))
        core.memory.write_program(layout.handler, build_trap_handler(layout))
        records = core.run(40, stop_on=lambda r: r.next_pc == layout.blocks)
        assert records[-1].next_pc == layout.blocks
        # Base registers established:
        assert core.state.xregs[5] == layout.data_base_reg_value
        assert core.state.xregs[6] == layout.instr_base_reg_value
        # FPU enabled and FP registers preloaded from the table:
        assert not core.state.fs_off
        assert core.state.fregs[0] == INTERESTING_TABLE[0]

    def test_handler_skips_faulting_instruction(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=4))
        iteration = fuzzer.generate_iteration()
        iteration.words = [0xFFFFFFFF] + iteration.words[1:]  # illegal first
        core = RocketCore()
        runner = IterationRunner(core)
        result = runner.run(iteration)
        assert result.completed
        assert result.traps >= 2  # illegal + final ecall

    def test_handler_repairs_frm(self):
        from repro.isa.encoder import assemble_all, encode

        words = assemble_all(["csrrwi zero, 0x002, 5"]) + [
            encode("fadd.d", rd=2, rs1=0, rs2=1, rm=7),  # traps once
            encode("fadd.d", rd=3, rs1=0, rs2=1, rm=7),  # then runs clean
        ]
        from tests.test_dut_bugs import _iteration_from_words

        core = RocketCore()
        runner = IterationRunner(core, with_ref=True)
        result = runner.run(_iteration_from_words(words))
        assert result.completed and result.mismatch is None

    def test_template_count(self):
        assert template_instruction_count() == (
            len(build_prologue()) + len(build_trap_handler())
            + len(build_done_loop())
        )


class TestImage:
    def test_data_segment_has_interesting_table(self):
        layout = MemoryLayout()
        data = build_data_segment(layout, data_seed=9)
        offset = layout.data_base_reg_value - layout.data
        for index, value in enumerate(INTERESTING_TABLE):
            start = offset + index * 8
            assert data[start:start + 8] == value.to_bytes(8, "little")

    def test_patches_applied(self):
        layout = MemoryLayout()
        data = build_data_segment(layout, 9, patches=[(64, b"\xAA\xBB")])
        assert data[64:66] == b"\xaa\xbb"

    def test_install_sets_ranges(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=10))
        image = build_image(fuzzer.generate_iteration())
        from repro.ref.memory import MemoryAccessError, SparseMemory

        memory = SparseMemory()
        image.install(memory)
        with pytest.raises(MemoryAccessError):
            memory.load(0x9000_0000, 4)

    def test_data_seed_changes_content(self):
        layout = MemoryLayout()
        assert build_data_segment(layout, 1) != build_data_segment(layout, 2)


class TestRunner:
    def test_run_completes_and_counts(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=100))
        core = RocketCore()
        runner = IterationRunner(core)
        result = runner.run(fuzzer.generate_iteration())
        assert result.completed
        assert result.executed_instructions == (
            result.executed_fuzzing + result.executed_template
        )
        assert 0.5 < result.prevalence <= 1.0
        assert result.cycles > 0

    def test_lockstep_produces_no_mismatch_without_bugs(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=200))
        core = RocketCore()
        runner = IterationRunner(core, with_ref=True)
        result = runner.run(fuzzer.generate_iteration())
        assert result.mismatch is None and result.completed

    def test_mismatch_captures_snapshot(self):
        from tests.test_dut_bugs import _fdiv_stimulus, _iteration_from_words

        core = make_core("cva6", bugs=("C1",))
        runner = IterationRunner(core, with_ref=True, capture_snapshots=True)
        result = runner.run(_iteration_from_words(_fdiv_stimulus(0, 0)))
        assert result.mismatch is not None
        assert result.snapshot is not None
        assert "mismatch" in result.snapshot.annotation


class TestChecker:
    def _record(self, **overrides):
        fields = dict(pc=0x1000, word=0x13, name="addi", next_pc=0x1004,
                      rd=1, rd_value=5)
        fields.update(overrides)
        return CommitRecord(**fields)

    def test_identical_records_pass(self):
        checker = DifferentialChecker()
        assert checker.check(self._record(), self._record()) is None
        assert checker.clean

    def test_divergent_rd_value_flagged(self):
        checker = DifferentialChecker()
        mismatch = checker.check(self._record(rd_value=5),
                                 self._record(rd_value=6))
        assert mismatch.field == "rd_value"
        assert mismatch.dut_value == 5 and mismatch.ref_value == 6
        assert "mismatch" in mismatch.describe()

    def test_counts_instructions(self):
        checker = DifferentialChecker()
        for _ in range(5):
            checker.check(self._record(), self._record())
        assert checker.instructions_checked == 5


class TestSnapshot:
    def test_capture_restore_resumes_identically(self):
        from repro.isa.encoder import assemble_all

        program = assemble_all(
            ["addi a0, a0, 1", "add a1, a1, a0", "bne a0, a2, -8"])
        core = RocketCore()
        core.load_program(core.reset_pc, program)
        core.state.xregs[12] = 50
        core.run(30)
        snapshot = HardwareSnapshot.capture(core, annotation="mid-loop")
        continued = [core.step().key_fields() for _ in range(10)]
        snapshot.restore(core)
        replayed = [core.step().key_fields() for _ in range(10)]
        assert continued == replayed

    def test_serialization_roundtrip(self):
        core = RocketCore()
        core.load_program(core.reset_pc, [0x13])
        core.run(1)
        snapshot = HardwareSnapshot.capture(core)
        clone = HardwareSnapshot.from_bytes(snapshot.to_bytes())
        assert clone.arch_state == snapshot.arch_state
        assert clone.cycles == snapshot.cycles

    def test_wrong_core_rejected(self):
        snapshot = HardwareSnapshot.capture(RocketCore())
        with pytest.raises(ValueError):
            snapshot.restore(make_core("boom"))


class TestSession:
    def test_iteration_advances_clock_and_coverage(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=200)))
        outcome = session.run_iteration()
        assert outcome.virtual_seconds > 0
        assert outcome.coverage_total > 0
        assert session.iterations == 1

    def test_run_for_virtual_time(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=200)))
        session.run_for_virtual_time(0.02)
        assert session.clock.seconds >= 0.02

    def test_run_until_coverage(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=200)))
        when = session.run_until_coverage(100, max_iterations=20)
        assert when is not None and session.coverage_total >= 100

    def test_coverage_series_is_monotonic(self):
        session = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=200)))
        session.run_iterations(5)
        series = session.coverage_series()
        assert all(b[1] >= a[1] for a, b in zip(series, series[1:]))
        assert all(b[0] > a[0] for a, b in zip(series, series[1:]))

    def test_run_until_mismatch_with_bug(self):
        session = FuzzSession(SessionConfig(
            core="cva6", bugs=("C1",), with_ref=True,
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=500)))
        seconds, mismatch = session.run_until_mismatch(max_iterations=50)
        assert seconds is not None and mismatch is not None

    def test_run_until_bug_triggered(self):
        session = FuzzSession(SessionConfig(
            core="cva6", bugs=("C1",),
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=500)))
        seconds = session.run_until_bug_triggered("C1", max_iterations=50)
        assert seconds is not None


class TestTimingModels:
    def test_turbofuzz_per_iteration(self):
        seconds = TURBOFUZZ_TIMING.iteration_seconds(
            generated=4000, executed=4100, dut_cycles=9000)
        assert 0.010 < seconds < 0.016  # ~75 Hz

    def test_difuzzrtl_dominated_by_host(self):
        seconds = DIFUZZRTL_FPGA_TIMING.iteration_seconds(
            generated=1000, executed=176, dut_cycles=500)
        assert 0.22 < seconds < 0.27  # ~4.13 Hz

    def test_cascade(self):
        seconds = CASCADE_TIMING.iteration_seconds(
            generated=400, executed=410, dut_cycles=0)
        assert 0.07 < seconds < 0.09  # ~12.5 Hz
