"""Campaign API: specs, registries, event bus, orchestrator, cache."""

import pytest

from repro.campaign import (
    CampaignOrchestrator,
    CampaignSpec,
    EventBus,
    FUZZERS,
    InstrumentationCache,
    build_session,
    campaign_report,
    derive_seed,
    register_fuzzer,
    to_jsonable,
)
from repro.campaign import cache as cache_module
from repro.campaign import session as session_module
from repro.fuzzer import TurboFuzzConfig, TurboFuzzer
from repro.harness import FuzzSession, SessionConfig

SMALL = {"instructions_per_iteration": 150}


def small_spec(**options):
    merged = dict(SMALL)
    merged.update(options)
    return CampaignSpec().with_fuzzer("turbofuzz", **merged)


class TestCampaignSpec:
    def test_json_round_trip(self):
        spec = (
            CampaignSpec(core="cva6", bugs=("C1",))
            .named("probe")
            .with_fuzzer("difuzzrtl", seed=7)
            .with_instrumentation(style="legacy", max_state_size=13, seed=3)
            .with_timing("cascade")
            .with_tweak("allow_ebreak")
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown CampaignSpec keys"):
            CampaignSpec.from_dict({"fuzzzer": "turbofuzz"})

    def test_builder_returns_copies(self):
        base = CampaignSpec()
        derived = base.with_options(seed=5).named("x").with_core("boom")
        assert base.fuzzer_options == {} and base.core == "rocket"
        assert derived.fuzzer_options == {"seed": 5}
        assert derived.core == "boom"

    def test_with_fuzzer_preserves_accumulated_options(self):
        spec = (CampaignSpec().with_seed(42)
                .with_fuzzer("turbofuzz", instructions_per_iteration=500))
        assert spec.fuzzer_options == {
            "seed": 42, "instructions_per_iteration": 500}

    def test_instrument_key_groups_identical_instrumentation(self):
        a = small_spec().named("a")
        b = small_spec(seed=99).named("b")
        c = a.with_instrumentation(style="legacy")
        assert a.instrument_key() == b.instrument_key()
        assert a.instrument_key() != c.instrument_key()


class TestRegistry:
    def test_unknown_fuzzer_lists_registered(self):
        with pytest.raises(ValueError, match="turbofuzz"):
            FUZZERS.get("afl")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fuzzer("turbofuzz", config_class=TurboFuzzConfig,
                            timing="turbofuzz", factory=TurboFuzzer)

    def test_third_party_fuzzer_plugs_in(self):
        @register_fuzzer("turbofuzz-slowcheck", config_class=TurboFuzzConfig,
                         timing="cascade")
        class SlowCheckFuzzer(TurboFuzzer):
            name = "turbofuzz-slowcheck"

        try:
            session = build_session(
                CampaignSpec().with_fuzzer("turbofuzz-slowcheck", **SMALL)
            )
            assert isinstance(session.fuzzer, SlowCheckFuzzer)
            assert session.timing.name == "cascade"
            outcome = session.run_iteration()
            assert outcome.coverage_total > 0
        finally:
            FUZZERS.unregister("turbofuzz-slowcheck")

    def test_unknown_tweak_named(self):
        with pytest.raises(ValueError, match="no tweak"):
            build_session(small_spec().with_tweak("allow_warp"))


class TestEventBus:
    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError, match="unknown event"):
            EventBus().subscribe("teardown", lambda: None)

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("milestone", lambda **kw: seen.append(kw))
        bus.milestone("first")
        unsubscribe()
        unsubscribe()  # idempotent
        bus.milestone("second")
        assert [kw["kind"] for kw in seen] == ["first"]
        assert bus.emitted["milestone"] == 2

    def test_session_emits_iteration_and_coverage_events(self):
        session = build_session(small_spec())
        events = []
        session.bus.on_iteration(
            lambda **kw: events.append(("iteration", kw["outcome"].index)))
        session.bus.on_new_coverage(
            lambda **kw: events.append(("new_coverage", kw["new_points"])))
        session.run_iterations(2)
        kinds = [kind for kind, _ in events]
        assert kinds.count("iteration") == 2
        # The first iterations of a fresh campaign always find coverage.
        assert "new_coverage" in kinds

    def test_campaign_start_milestone(self):
        bus = EventBus()
        milestones = []
        bus.on_milestone(lambda **kw: milestones.append(kw["kind"]))
        build_session(small_spec(), bus=bus)
        assert milestones == ["campaign_start"]

    def test_mismatch_event_fires(self):
        spec = (CampaignSpec(core="cva6", bugs=("C1",))
                .with_checking(with_ref=True)
                .with_fuzzer("turbofuzz", instructions_per_iteration=500))
        session = build_session(spec)
        caught = []
        session.bus.on_mismatch(lambda **kw: caught.append(kw["mismatch"]))
        session.run_until_mismatch(max_iterations=50)
        assert caught and caught[0].field


class TestCampaignSession:
    def test_matches_legacy_fuzz_session(self):
        legacy = FuzzSession(SessionConfig(
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=150)))
        modern = build_session(small_spec())
        legacy.run_iterations(4)
        modern.run_iterations(4)
        assert legacy.coverage_series() == modern.coverage_series()

    def test_bug_wait_requires_injected_bugs(self):
        session = build_session(small_spec())
        with pytest.raises(ValueError, match="no injected bugs"):
            session.run_until_bug_triggered("C1", max_iterations=1)

    def test_bug_wait_requires_matching_bug_id(self):
        spec = small_spec().with_core("cva6", bugs=("C1",))
        session = build_session(spec)
        with pytest.raises(ValueError, match="not injected"):
            session.run_until_bug_triggered("B2", max_iterations=1)

    def test_core_names_stay_case_insensitive(self):
        # make_core("Rocket") always worked; the registry path must too.
        session = FuzzSession(SessionConfig(
            core="Rocket",
            fuzzer_config=TurboFuzzConfig(instructions_per_iteration=150)))
        assert session.core.name == "rocket"

    def test_tweaks_require_registered_fuzzer(self):
        from repro.campaign import CampaignSession
        from repro.harness.timing import TURBOFUZZ_TIMING

        spec = (CampaignSpec(fuzzer="mystery")
                .with_tweak("allow_ebreak"))
        with pytest.raises(ValueError, match="not registered"):
            CampaignSession(spec, fuzzer=TurboFuzzer(TurboFuzzConfig()),
                            timing=TURBOFUZZ_TIMING)

    def test_report_is_jsonable(self):
        import json

        session = build_session(small_spec())
        session.run_iterations(2)
        payload = json.dumps(to_jsonable(campaign_report(session)))
        assert "coverage_total" in payload


class TestDeterminism:
    def test_same_seed_identical_series(self):
        series = []
        for _ in range(2):
            session = build_session(small_spec(seed=0xFEED))
            session.run_iterations(6)
            series.append(session.coverage_series())
        assert series[0] == series[1]

    def test_different_seeds_diverge(self):
        totals = []
        for seed in (0xFEED, 0xBEEF):
            session = build_session(small_spec(seed=seed))
            session.run_iterations(6)
            totals.append(session.coverage_series())
        assert totals[0] != totals[1]

    def test_derive_seed_deterministic_and_distinct(self):
        seeds = [derive_seed(42, index) for index in range(16)]
        assert seeds == [derive_seed(42, index) for index in range(16)]
        assert len(set(seeds)) == 16
        assert all(seeds)

    def test_orchestrator_reseed_only_touches_unpinned(self):
        pinned = small_spec(seed=7).named("pinned")
        free = small_spec().named("free")
        orchestrator = CampaignOrchestrator([pinned, free], reseed_base=42)
        assert orchestrator["pinned"].fuzzer.config.seed == 7
        assert (orchestrator["free"].fuzzer.config.seed
                == derive_seed(42, 1))


class TestOrchestratorCache:
    def _count_instrumentations(self, monkeypatch):
        counter = {"calls": 0}
        for module in (cache_module, session_module):
            real = module.instrument_design

            def counted(*args, _real=real, **kwargs):
                counter["calls"] += 1
                return _real(*args, **kwargs)

            monkeypatch.setattr(module, "instrument_design", counted)
        return counter

    def test_shared_cache_instruments_once_with_identical_results(
            self, monkeypatch):
        counter = self._count_instrumentations(monkeypatch)
        solo = {}
        for label in ("a", "b", "c"):
            session = build_session(small_spec().named(label))
            session.run_iterations(3)
            solo[label] = session.coverage_series()
        assert counter["calls"] == 3  # one instrumentation per solo session

        counter["calls"] = 0
        orchestrator = CampaignOrchestrator(
            [small_spec().named(label) for label in ("a", "b", "c")]
        )
        orchestrator.run_iterations(3)
        # The grid instruments the shared netlist once, not per shard...
        assert counter["calls"] == 1
        assert orchestrator.cache.stats == {
            "hits": 2, "misses": 1, "entries": 1}
        # ...and every shard's coverage series is unchanged.
        for label in ("a", "b", "c"):
            assert orchestrator[label].coverage_series() == solo[label]

    def test_distinct_instrumentations_get_distinct_entries(self):
        orchestrator = CampaignOrchestrator([
            small_spec().named("opt"),
            small_spec().named("leg").with_instrumentation(style="legacy"),
        ])
        assert orchestrator.cache.stats["entries"] == 2

    def test_run_for_virtual_time_matches_solo_run(self):
        spec = small_spec(seed=5).named("solo")
        solo = build_session(spec)
        solo.run_for_virtual_time(0.02, max_iterations=30)
        orchestrator = CampaignOrchestrator([spec])
        orchestrator.run_for_virtual_time(0.02, max_iterations=30, slices=4)
        assert orchestrator["solo"].coverage_series() == solo.coverage_series()

    def test_merged_series_is_monotonic(self):
        orchestrator = CampaignOrchestrator(
            [small_spec(seed=seed).named(f"s{seed}") for seed in (1, 2)]
        )
        orchestrator.run_iterations(4)
        merged = orchestrator.merged_coverage_series()
        assert len(merged) == 8
        assert all(b[1] >= a[1] for a, b in zip(merged, merged[1:]))
        assert all(b[0] >= a[0] for a, b in zip(merged, merged[1:]))

    def test_report_shape(self):
        orchestrator = CampaignOrchestrator([small_spec().named("only")])
        orchestrator.run_iterations(2)
        report = orchestrator.report()
        assert report["total_iterations"] == 2
        assert set(report["shards"]) == {"only"}
        assert report["shards"]["only"]["spec"]["fuzzer"] == "turbofuzz"
        assert report["instrumentation_cache"]["misses"] == 1

    def test_duplicate_labels_disambiguated(self):
        orchestrator = CampaignOrchestrator([small_spec(), small_spec()])
        assert len(orchestrator.labels) == 2


class TestInstrumentationRegistry:
    def test_spec_resolves_registered_style(self):
        from repro.campaign import INSTRUMENTATIONS, register_instrumentation
        from repro.coverage import OptimizedLayout

        @register_instrumentation("optimized-probe")
        class ProbeLayout(OptimizedLayout):
            style = "optimized-probe"

        try:
            session = build_session(
                small_spec().with_instrumentation(style="optimized-probe"))
            assert all(isinstance(cov.layout, ProbeLayout)
                       for cov in session.coverage.modules)
            assert session.run_iteration().coverage_total > 0
        finally:
            INSTRUMENTATIONS.unregister("optimized-probe")
        with pytest.raises(ValueError, match="optimized-probe"):
            build_session(
                small_spec().with_instrumentation(style="optimized-probe"))

    def test_cache_keys_on_registry_entry_not_name(self):
        from repro.campaign import INSTRUMENTATIONS, register_instrumentation
        from repro.coverage import OptimizedLayout
        from repro.dut import make_core

        class LayoutA(OptimizedLayout):
            style = "swappable"

        class LayoutB(OptimizedLayout):
            style = "swappable"

        register_instrumentation("swappable", LayoutA)
        try:
            cache = InstrumentationCache()
            core = make_core("rocket")
            first = cache.instrument(core, style="swappable")
            assert isinstance(first.modules[0].layout, LayoutA)
            # Re-registering the same name must not serve stale layouts.
            register_instrumentation("swappable", LayoutB, replace=True)
            second = cache.instrument(make_core("rocket"), style="swappable")
            assert isinstance(second.modules[0].layout, LayoutB)
            assert cache.stats["misses"] == 2 and cache.stats["hits"] == 0
        finally:
            INSTRUMENTATIONS.unregister("swappable")
