"""Softfloat: bit-exact IEEE-754 arithmetic, comparisons, conversions."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from tests.helpers import bits_f32, bits_f64, f32_bits, f64_bits
from repro.isa.csr import (
    FFLAGS_DZ,
    FFLAGS_NV,
    FFLAGS_NX,
    FFLAGS_OF,
    FFLAGS_UF,
    RM_RDN,
    RM_RNE,
    RM_RTZ,
    RM_RUP,
)
from repro.softfloat import (
    F32,
    F64,
    canonical_nan,
    fp_add,
    fp_classify,
    fp_div,
    fp_eq,
    fp_fma,
    fp_le,
    fp_lt,
    fp_max,
    fp_min,
    fp_mul,
    fp_sqrt,
    fp_sub,
    fp_to_fp,
    fp_to_int,
    int_to_fp,
    is_nan_boxed,
    nan_box,
    nan_unbox,
)
from repro.softfloat.compare import (
    CLASS_NEG_INF,
    CLASS_NEG_ZERO,
    CLASS_POS_NORMAL,
    CLASS_POS_SUBNORMAL,
    CLASS_QNAN,
    CLASS_SNAN,
)

finite_doubles = st.floats(allow_nan=False, allow_infinity=False)


def _same_double(bits_value, host_value):
    got = bits_f64(bits_value)
    if math.isnan(host_value):
        return math.isnan(got)
    return got == host_value and (
        math.copysign(1, got) == math.copysign(1, host_value)
    )


class TestArithAgainstHost:
    """The host FPU is IEEE-754 binary64 RNE; results must match bit-for-bit."""

    @given(a=finite_doubles, b=finite_doubles)
    @settings(max_examples=300)
    def test_add(self, a, b):
        result, _ = fp_add(f64_bits(a), f64_bits(b), F64, RM_RNE)
        assert _same_double(result, a + b)

    @given(a=finite_doubles, b=finite_doubles)
    @settings(max_examples=300)
    def test_mul(self, a, b):
        result, _ = fp_mul(f64_bits(a), f64_bits(b), F64, RM_RNE)
        assert _same_double(result, a * b)

    @given(a=finite_doubles, b=finite_doubles)
    @settings(max_examples=300)
    def test_div(self, a, b):
        if b == 0:
            return
        result, _ = fp_div(f64_bits(a), f64_bits(b), F64, RM_RNE)
        assert _same_double(result, a / b)

    @given(a=finite_doubles, b=finite_doubles)
    @settings(max_examples=200)
    def test_sub(self, a, b):
        result, _ = fp_sub(f64_bits(a), f64_bits(b), F64, RM_RNE)
        assert _same_double(result, a - b)

    @given(a=st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
    @settings(max_examples=200)
    def test_sqrt(self, a):
        result, _ = fp_sqrt(f64_bits(a), F64, RM_RNE)
        assert _same_double(result, math.sqrt(a))


class TestSpecialCases:
    def test_zero_div_zero_is_invalid(self):
        result, flags = fp_div(f64_bits(0.0), f64_bits(0.0), F64, RM_RNE)
        assert result == canonical_nan(F64)
        assert flags == FFLAGS_NV

    def test_finite_div_zero_raises_dz(self):
        result, flags = fp_div(f64_bits(3.0), f64_bits(0.0), F64, RM_RNE)
        assert bits_f64(result) == math.inf
        assert flags == FFLAGS_DZ

    def test_negative_div_zero_sign(self):
        result, flags = fp_div(f64_bits(-3.0), f64_bits(0.0), F64, RM_RNE)
        assert bits_f64(result) == -math.inf

    def test_inf_div_inf_is_invalid(self):
        result, flags = fp_div(f64_bits(math.inf), f64_bits(math.inf),
                               F64, RM_RNE)
        assert flags == FFLAGS_NV

    def test_finite_div_inf_is_exact_zero(self):
        result, flags = fp_div(f64_bits(5.0), f64_bits(math.inf), F64, RM_RNE)
        assert result == 0 and flags == 0

    def test_inf_minus_inf_is_invalid(self):
        result, flags = fp_add(f64_bits(math.inf), f64_bits(-math.inf),
                               F64, RM_RNE)
        assert flags == FFLAGS_NV

    def test_zero_times_inf_is_invalid(self):
        result, flags = fp_mul(f64_bits(0.0), f64_bits(math.inf), F64, RM_RNE)
        assert flags == FFLAGS_NV

    def test_sqrt_negative_is_invalid(self):
        result, flags = fp_sqrt(f64_bits(-1.0), F64, RM_RNE)
        assert flags == FFLAGS_NV and result == canonical_nan(F64)

    def test_sqrt_negative_zero_is_negative_zero(self):
        result, flags = fp_sqrt(f64_bits(-0.0), F64, RM_RNE)
        assert result == f64_bits(-0.0) and flags == 0

    def test_overflow_sets_of_nx(self):
        big = f64_bits(1.7976931348623157e308)
        result, flags = fp_mul(big, f64_bits(2.0), F64, RM_RNE)
        assert bits_f64(result) == math.inf
        assert flags & FFLAGS_OF and flags & FFLAGS_NX

    def test_overflow_rtz_gives_max_finite(self):
        big = f64_bits(1.7976931348623157e308)
        result, flags = fp_mul(big, f64_bits(2.0), F64, RM_RTZ)
        assert bits_f64(result) == 1.7976931348623157e308
        assert flags & FFLAGS_OF

    def test_underflow_sets_uf_nx(self):
        tiny = f64_bits(5e-324)
        result, flags = fp_mul(tiny, f64_bits(0.5), F64, RM_RNE)
        assert flags & FFLAGS_NX
        # 5e-324 * 0.5 rounds to 0 or stays subnormal depending on tie.
        assert flags & FFLAGS_UF

    def test_exact_operations_raise_no_flags(self):
        result, flags = fp_add(f64_bits(1.5), f64_bits(2.5), F64, RM_RNE)
        assert flags == 0 and bits_f64(result) == 4.0

    def test_cancellation_zero_sign_rne_vs_rdn(self):
        a, b = f64_bits(1.0), f64_bits(-1.0)
        rne, _ = fp_add(a, b, F64, RM_RNE)
        rdn, _ = fp_add(a, b, F64, RM_RDN)
        assert rne == f64_bits(0.0)
        assert rdn == f64_bits(-0.0)

    def test_snan_input_raises_nv(self):
        snan = 0x7FF0_0000_0000_0001
        result, flags = fp_add(snan, f64_bits(1.0), F64, RM_RNE)
        assert flags == FFLAGS_NV and result == canonical_nan(F64)

    def test_qnan_input_quiet(self):
        qnan = 0x7FF8_0000_0000_0000
        result, flags = fp_add(qnan, f64_bits(1.0), F64, RM_RNE)
        assert flags == 0 and result == canonical_nan(F64)


class TestRoundingModes:
    def test_div_rounding_directions(self):
        one, three = f64_bits(1.0), f64_bits(3.0)
        down, _ = fp_div(one, three, F64, RM_RDN)
        up, _ = fp_div(one, three, F64, RM_RUP)
        truncated, _ = fp_div(one, three, F64, RM_RTZ)
        assert bits_f64(up) > bits_f64(down)
        assert truncated == down  # positive value: RTZ == RDN

    def test_negative_value_rtz_vs_rdn(self):
        minus_one, three = f64_bits(-1.0), f64_bits(3.0)
        down, _ = fp_div(minus_one, three, F64, RM_RDN)
        truncated, _ = fp_div(minus_one, three, F64, RM_RTZ)
        assert bits_f64(down) < bits_f64(truncated)


class TestFma:
    def test_fma_single_rounding(self):
        # (1 + 2^-52) * (1 + 2^-52) + (-1) is inexact under two roundings
        # but exactly representable intermediate catches double rounding.
        a = f64_bits(1.0 + 2**-52)
        c = f64_bits(-1.0)
        result, flags = fp_fma(a, a, c, F64, RM_RNE)
        expected = (1 + 2**-52) * (1 + 2**-52) - 1  # exact: 2^-51 + 2^-104
        assert bits_f64(result) == pytest.approx(expected, rel=1e-15)

    def test_fma_inf_times_zero_invalid_even_with_qnan_addend(self):
        qnan = 0x7FF8_0000_0000_0000
        result, flags = fp_fma(f64_bits(math.inf), f64_bits(0.0), qnan,
                               F64, RM_RNE)
        assert flags & FFLAGS_NV

    def test_fnmadd_sign(self):
        result, _ = fp_fma(f64_bits(2.0), f64_bits(3.0), f64_bits(1.0),
                           F64, RM_RNE, negate_product=True, negate_c=True)
        assert bits_f64(result) == -7.0

    def test_fmsub(self):
        result, _ = fp_fma(f64_bits(2.0), f64_bits(3.0), f64_bits(1.0),
                           F64, RM_RNE, negate_c=True)
        assert bits_f64(result) == 5.0


class TestCompare:
    def test_eq_zero_signs(self):
        assert fp_eq(f64_bits(0.0), f64_bits(-0.0), F64)[0] == 1

    def test_lt_nan_raises_nv(self):
        qnan = 0x7FF8_0000_0000_0000
        value, flags = fp_lt(qnan, f64_bits(1.0), F64)
        assert value == 0 and flags == FFLAGS_NV

    def test_eq_qnan_quiet(self):
        qnan = 0x7FF8_0000_0000_0000
        value, flags = fp_eq(qnan, f64_bits(1.0), F64)
        assert value == 0 and flags == 0

    def test_le(self):
        assert fp_le(f64_bits(1.0), f64_bits(1.0), F64)[0] == 1
        assert fp_le(f64_bits(2.0), f64_bits(1.0), F64)[0] == 0

    def test_min_negative_zero(self):
        result, _ = fp_min(f64_bits(0.0), f64_bits(-0.0), F64)
        assert result == f64_bits(-0.0)

    def test_max_with_nan_returns_other(self):
        qnan = 0x7FF8_0000_0000_0000
        result, _ = fp_max(qnan, f64_bits(3.0), F64)
        assert bits_f64(result) == 3.0

    def test_min_both_nan_canonical(self):
        qnan = 0x7FF8_0000_0000_0001
        result, _ = fp_min(qnan, qnan, F64)
        assert result == canonical_nan(F64)

    @given(a=finite_doubles, b=finite_doubles)
    @settings(max_examples=150)
    def test_lt_matches_host(self, a, b):
        value, _ = fp_lt(f64_bits(a), f64_bits(b), F64)
        assert value == (1 if a < b else 0)

    def test_classify(self):
        assert fp_classify(f64_bits(-math.inf), F64) == CLASS_NEG_INF
        assert fp_classify(f64_bits(-0.0), F64) == CLASS_NEG_ZERO
        assert fp_classify(f64_bits(1.0), F64) == CLASS_POS_NORMAL
        assert fp_classify(f64_bits(5e-324), F64) == CLASS_POS_SUBNORMAL
        assert fp_classify(0x7FF8_0000_0000_0000, F64) == CLASS_QNAN
        assert fp_classify(0x7FF0_0000_0000_0001, F64) == CLASS_SNAN


class TestConversions:
    @given(value=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_int32_roundtrip(self, value):
        bits_value, _ = int_to_fp(value & 0xFFFFFFFF, 32, True, F64, RM_RNE)
        back, flags = fp_to_int(bits_value, F64, RM_RTZ, 32, True)
        signed = back - (1 << 32) if back >> 31 else back
        assert signed == value

    def test_fp_to_int_nan_gives_max_and_nv(self):
        qnan = 0x7FF8_0000_0000_0000
        value, flags = fp_to_int(qnan, F64, RM_RTZ, 32, True)
        assert value == 0x7FFFFFFF and flags == FFLAGS_NV

    def test_fp_to_int_overflow_clamps_with_nv(self):
        value, flags = fp_to_int(f64_bits(1e20), F64, RM_RTZ, 32, True)
        assert value == 0x7FFFFFFF and flags == FFLAGS_NV
        value, flags = fp_to_int(f64_bits(-1e20), F64, RM_RTZ, 32, True)
        assert value == 0x80000000 and flags == FFLAGS_NV

    def test_fp_to_int_inexact(self):
        value, flags = fp_to_int(f64_bits(2.5), F64, RM_RTZ, 64, True)
        assert value == 2 and flags == FFLAGS_NX

    def test_fp_to_unsigned_negative_clamps(self):
        value, flags = fp_to_int(f64_bits(-1.0), F64, RM_RTZ, 32, False)
        assert value == 0 and flags == FFLAGS_NV

    @given(value=finite_doubles)
    @settings(max_examples=150)
    def test_f64_to_f32_matches_host(self, value):
        import numpy

        result, _ = fp_to_fp(f64_bits(value), F64, F32, RM_RNE)
        # numpy rounds to float32 per IEEE (struct.pack raises on values
        # that would round to infinity).
        host = float(numpy.float32(value))
        got = bits_f32(result)
        if math.isnan(host):
            assert math.isnan(got)
        else:
            assert got == host and math.copysign(1, got) == math.copysign(1, host)

    def test_f32_to_f64_exact(self):
        result, flags = fp_to_fp(f32_bits(1.5), F32, F64, RM_RNE)
        assert bits_f64(result) == 1.5 and flags == 0


class TestNanBoxing:
    def test_box_unbox_roundtrip(self):
        boxed = nan_box(f32_bits(3.25))
        assert is_nan_boxed(boxed)
        assert nan_unbox(boxed) == f32_bits(3.25)

    def test_invalid_box_yields_canonical_nan(self):
        assert nan_unbox(0x0000_0000_3F80_0000) == F32.canonical_nan_bits

    @given(payload=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_boxing_preserves_payload(self, payload):
        assert nan_unbox(nan_box(payload)) == payload
