"""Fuzzer components: LFSR, instruction library, blocks, corpus, mutation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzzer import (
    Corpus,
    InstructionLibrary,
    Lfsr,
    Seed,
    TurboFuzzConfig,
    TurboFuzzer,
)
from repro.fuzzer.blocks import BlockBuilder, InstructionBlock, StimulusEntry
from repro.fuzzer.context import FuzzContext, MemoryLayout, REG_DATA_BASE
from repro.fuzzer.mutation import MutationEngine
from repro.isa.decoder import decode, try_decode
from repro.isa.instructions import Category, Extension, SPECS_BY_NAME


class TestLfsr:
    def test_deterministic(self):
        assert [Lfsr(5).next() for _ in range(10)] == [
            Lfsr(5).next() for _ in range(10)
        ]

    def test_zero_seed_not_absorbing(self):
        lfsr = Lfsr(0)
        assert lfsr.next() != 0

    def test_bits_width(self):
        lfsr = Lfsr(1)
        for count in (1, 8, 32, 64, 96):
            assert 0 <= lfsr.bits(count) < (1 << count)

    def test_below_bound(self):
        lfsr = Lfsr(3)
        assert all(0 <= lfsr.below(7) < 7 for _ in range(200))

    def test_chance_requires_pow2_denominator(self):
        with pytest.raises(ValueError):
            Lfsr(1).chance((1, 3))

    def test_chance_rate(self):
        lfsr = Lfsr(11)
        hits = sum(lfsr.chance((7, 16)) for _ in range(4000))
        assert 0.35 < hits / 4000 < 0.52

    def test_consecutive_draws_are_independent(self):
        """Regression: a plain Galois LFSR made some (chance, roll) pairs
        unreachable — retain ops never fired."""
        lfsr = Lfsr(0xC0FFEE)
        seen_after_pass = set()
        for _ in range(5000):
            if lfsr.chance((7, 16)):
                seen_after_pass.add(lfsr.next() & 15)
        assert seen_after_pass == set(range(16))

    def test_fill_bytes(self):
        blob = Lfsr(9).fill_bytes(100)
        assert len(blob) == 100 and len(set(blob)) > 10

    def test_fork_diverges(self):
        lfsr = Lfsr(9)
        fork = lfsr.fork()
        assert [lfsr.next() for _ in range(5)] != [fork.next() for _ in range(5)]


class TestInstructionLibrary:
    def test_excludes_environment_instructions(self):
        library = InstructionLibrary()
        names = {spec.name for spec in library.active_specs}
        assert "ecall" not in names and "mret" not in names
        assert "ebreak" in names

    def test_disable_extension(self):
        library = InstructionLibrary()
        library.disable(Extension.F)
        library.disable(Extension.D)
        assert not any(spec.is_fp for spec in library.active_specs)
        library.enable(Extension.F)
        assert any(spec.name == "fadd.s" for spec in library.active_specs)

    def test_sample_weighted_respects_zero(self):
        library = InstructionLibrary()
        lfsr = Lfsr(1)
        weights = {category: 0 for category in Category}
        weights[Category.ALU] = 1
        for _ in range(50):
            spec = library.sample_weighted(lfsr, weights)
            assert spec.category is Category.ALU

    def test_sample_category(self):
        library = InstructionLibrary()
        spec = library.sample_category(Lfsr(1), Category.BRANCH)
        assert spec.category is Category.BRANCH

    def test_contains(self):
        library = InstructionLibrary()
        assert "fdiv.d" in library


@pytest.fixture
def context():
    return FuzzContext(Lfsr(7), TurboFuzzConfig(), MemoryLayout())


class TestBlockBuilder:
    def test_load_block_uses_base_registers(self, context):
        builder = BlockBuilder(context)
        block = builder.build(SPECS_BY_NAME["ld"], 0, 100, 4)
        decoded = decode(block.entries[0].word)
        assert decoded.rs1 in (5, 6)
        assert decoded.imm % 8 == 0

    def test_store_block_targets_data_segment(self, context):
        builder = BlockBuilder(context)
        for _ in range(20):
            block = builder.build(SPECS_BY_NAME["sd"], 0, 100, 4)
            assert decode(block.entries[0].word).rs1 == REG_DATA_BASE

    def test_amo_block_has_affiliated_setup(self, context):
        builder = BlockBuilder(context)
        block = builder.build(SPECS_BY_NAME["amoadd.d"], 0, 100, 4)
        assert block.size == 2
        setup = decode(block.entries[0].word)
        assert setup.name == "addi" and setup.imm % 8 == 0
        assert not block.entries[0].is_prime

    def test_jalr_block_structure(self, context):
        builder = BlockBuilder(context)
        block = builder.build(SPECS_BY_NAME["jalr"], 0, 100, 4)
        assert block.cf_kind == "jalr" and block.size == 3
        assert block.target_block is not None

    def test_branch_block_records_target(self, context):
        builder = BlockBuilder(context)
        block = builder.build(SPECS_BY_NAME["beq"], 10, 100, 4)
        assert block.cf_kind == "branch"
        assert 11 <= block.target_block <= 14

    def test_unbounded_window(self, context):
        builder = BlockBuilder(context)
        targets = set()
        for _ in range(60):
            block = builder.build(SPECS_BY_NAME["jal"], 0, 1000, None)
            targets.add(block.target_block)
        assert max(targets) > 100  # unbounded jumps roam far

    @given(seed=st.integers(min_value=1, max_value=1 << 30))
    @settings(max_examples=25, deadline=None)
    def test_every_generated_word_decodes(self, seed):
        context = FuzzContext(Lfsr(seed), TurboFuzzConfig(), MemoryLayout())
        builder = BlockBuilder(context)
        library = InstructionLibrary()
        for _ in range(30):
            spec = library.sample(context.lfsr)
            block = builder.build(spec, 0, 100, 4)
            for entry in block.entries:
                if not entry.needs_target_patch:
                    assert try_decode(entry.word) is not None


class TestIterationAssembly:
    def test_forward_only_control_flow(self):
        """Property: every patched branch/jal displacement is positive."""
        fuzzer = TurboFuzzer(TurboFuzzConfig(
            instructions_per_iteration=500, seed=123))
        iteration = fuzzer.generate_iteration()
        fuzzer.feedback(iteration, 50)
        for _ in range(3):
            iteration = fuzzer.generate_iteration()
            fuzzer.feedback(iteration, 10)
            base = iteration.fuzz_base
            for offset, word in enumerate(iteration.words):
                decoded = try_decode(word)
                if decoded is None:
                    continue
                if decoded.spec.category is Category.BRANCH:
                    assert decoded.imm > 0
                elif decoded.name == "jal":
                    assert decoded.imm > 0

    def test_iteration_meets_budget(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=777))
        iteration = fuzzer.generate_iteration()
        assert iteration.total_instructions >= 777
        assert len(iteration.words) == sum(
            block.size for block in iteration.blocks) + 1  # + ecall

    def test_iteration_ends_with_ecall(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=50))
        iteration = fuzzer.generate_iteration()
        assert decode(iteration.words[-1]).name == "ecall"

    def test_block_bases_are_monotonic(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=200))
        iteration = fuzzer.generate_iteration()
        bases = iteration.block_bases
        assert all(b2 > b1 for b1, b2 in zip(bases, bases[1:]))

    def test_determinism(self):
        a = TurboFuzzer(TurboFuzzConfig(seed=5,
                                        instructions_per_iteration=100))
        b = TurboFuzzer(TurboFuzzConfig(seed=5,
                                        instructions_per_iteration=100))
        assert a.generate_iteration().words == b.generate_iteration().words

    def test_setup_words_shift_fuzz_base(self):
        from repro.fuzzer.blocks import Iteration

        block = InstructionBlock("addi", [StimulusEntry(0x13)])
        iteration = Iteration(blocks=[block], layout=MemoryLayout(),
                              setup_words=[0x13, 0x13])
        iteration.assemble()
        assert iteration.fuzz_base == iteration.layout.blocks + 8
        assert iteration.total_instructions == 3


class TestCorpus:
    def _seed(self, increment):
        return Seed([InstructionBlock("addi", [StimulusEntry(0x13)])],
                    coverage_increment=increment)

    def test_fifo_evicts_oldest(self):
        corpus = Corpus(capacity=2, policy="fifo")
        first, second, third = (self._seed(i) for i in (10, 20, 30))
        corpus.add(first), corpus.add(second), corpus.add(third)
        assert first not in corpus.seeds and third in corpus.seeds

    def test_coverage_evicts_lowest_increment(self):
        corpus = Corpus(capacity=2, policy="coverage")
        low, high, mid = self._seed(1), self._seed(100), self._seed(50)
        corpus.add(low), corpus.add(high)
        assert corpus.add(mid) is True
        assert low not in corpus.seeds
        assert high in corpus.seeds and mid in corpus.seeds

    def test_coverage_rejects_weaker_newcomer(self):
        corpus = Corpus(capacity=2, policy="coverage")
        corpus.add(self._seed(10)), corpus.add(self._seed(20))
        assert corpus.add(self._seed(5)) is False
        assert corpus.rejected == 1

    def test_selection_prefers_best(self):
        corpus = Corpus(capacity=8, policy="coverage", priority_prob=(4, 4))
        best = self._seed(99)
        corpus.add(self._seed(1)), corpus.add(best), corpus.add(self._seed(2))
        lfsr = Lfsr(3)
        assert all(corpus.select(lfsr) is best for _ in range(10))

    def test_random_selection_reaches_all(self):
        corpus = Corpus(capacity=8, policy="coverage", priority_prob=(0, 4))
        seeds = [self._seed(i) for i in range(4)]
        for seed in seeds:
            corpus.add(seed)
        lfsr = Lfsr(3)
        selected = {corpus.select(lfsr).seed_id for _ in range(100)}
        assert len(selected) == 4

    def test_update_increment(self):
        corpus = Corpus(capacity=2)
        seed = self._seed(10)
        corpus.add(seed)
        corpus.update_increment(seed, 77)
        assert seed.coverage_increment == 77

    def test_empty_select_returns_none(self):
        assert Corpus().select(Lfsr(1)) is None

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            Corpus(policy="lru")


class TestMutationEngine:
    def _engine(self, seed=3):
        config = TurboFuzzConfig(seed=seed)
        context = FuzzContext(Lfsr(seed), config, MemoryLayout())
        from repro.fuzzer.direct import DirectGenerator

        generator = DirectGenerator(InstructionLibrary(), context)
        return MutationEngine(config, context, generator)

    def test_block_op_distribution(self):
        engine = self._engine()
        from collections import Counter

        counts = Counter(engine.roll_block_op() for _ in range(16000))
        assert abs(counts["generate"] / 16000 - 3 / 16) < 0.03
        assert abs(counts["delete"] / 16000 - 11 / 16) < 0.03
        assert abs(counts["retain"] / 16000 - 2 / 16) < 0.03

    def test_retain_preserves_relative_target(self):
        engine = self._engine()
        block = InstructionBlock("jal", [StimulusEntry(
            0x6F, needs_target_patch=True, patch_kind="jal")],
            cf_kind="jal", target_block=12)
        retained = engine.retain_block(block, old_index=10, new_index=50)
        assert retained.target_block == 52  # delta of 2 preserved
        assert retained.generated is False

    def test_mutated_words_still_decode(self):
        engine = self._engine()
        word = decode(0x00B50533).word  # add a0, a0, a1
        for _ in range(50):
            mutated = engine._mutate_word(word)
            if mutated is not None:
                assert try_decode(mutated) is not None

    def test_csr_words_never_mutated(self):
        engine = self._engine()
        from repro.isa.encoder import encode

        word = encode("csrrw", rd=1, csr=0x340, rs1=2)
        assert engine._mutate_word(word) is None

    def test_control_flow_blocks_not_rebound(self):
        engine = self._engine()
        block = InstructionBlock("jalr", [
            StimulusEntry(0, is_prime=False, needs_target_patch=True,
                          patch_kind="lui"),
            StimulusEntry(0, is_prime=False, needs_target_patch=True,
                          patch_kind="addi"),
            StimulusEntry(0x000E80E7),  # jalr
        ], cf_kind="jalr", target_block=5)
        words_before = [entry.word for entry in block.entries]
        engine._rebind_operands(block)
        assert [entry.word for entry in block.entries] == words_before


class TestTurboFuzzerTop:
    def test_feedback_only_stores_improving(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=50))
        iteration = fuzzer.generate_iteration()
        fuzzer.feedback(iteration, 0)
        assert len(fuzzer.corpus) == 0
        iteration = fuzzer.generate_iteration()
        fuzzer.feedback(iteration, 10)
        assert len(fuzzer.corpus) == 1

    def test_mutation_updates_parent_increment(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=50))
        iteration = fuzzer.generate_iteration()
        fuzzer.feedback(iteration, 100)
        parent = fuzzer.corpus.seeds[0]
        iteration = fuzzer.generate_iteration()
        fuzzer.feedback(iteration, 33)
        assert parent.coverage_increment == 33

    def test_interval_seed_with_patch(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=50))
        blocks = [InstructionBlock("addi", [StimulusEntry(0x13)])]
        fuzzer.add_interval_seed(blocks, 500, data_patch=(0x100, b"\x01\x02"))
        assert fuzzer.corpus.seeds[0].origin == "interval"
        iteration = fuzzer.generate_iteration()
        assert (0x100, b"\x01\x02") in iteration.data_patches

    def test_stats_accumulate(self):
        fuzzer = TurboFuzzer(TurboFuzzConfig(instructions_per_iteration=100))
        fuzzer.generate_iteration()
        assert fuzzer.stats.iterations == 1
        assert fuzzer.stats.instructions_generated >= 100


class TestCorpusPressure:
    """Eviction behaviour under sustained capacity pressure (Fig. 9's
    regime): ordering, re-ranking after mutation feedback, and interval
    seeds surviving by recorded increment."""

    def _seed(self, increment, origin="direct"):
        return Seed([InstructionBlock("addi", [StimulusEntry(0x13)])],
                    coverage_increment=increment, origin=origin)

    def test_fifo_eviction_order_is_insertion_order(self):
        corpus = Corpus(capacity=3, policy="fifo")
        seeds = [self._seed(i) for i in (5, 50, 500)]
        for seed in seeds:
            corpus.add(seed)
        evicted = []
        for increment in (1, 2, 3):
            newcomer = self._seed(increment)
            survivors_before = list(corpus.seeds)
            corpus.add(newcomer)
            gone = [s for s in survivors_before if s not in corpus.seeds]
            evicted.extend(gone)
        # FIFO ignores quality entirely: the original seeds leave in
        # insertion order, even the 500-increment one.
        assert evicted == seeds
        assert corpus.evictions == 3

    def test_coverage_eviction_order_is_increment_order(self):
        corpus = Corpus(capacity=3, policy="coverage")
        low, mid, high = (self._seed(i) for i in (10, 20, 30))
        for seed in (high, low, mid):  # insertion order must not matter
            corpus.add(seed)
        assert corpus.add(self._seed(15)) is True   # evicts low (10)
        assert low not in corpus.seeds
        assert corpus.add(self._seed(25)) is True   # evicts the 15 newcomer
        increments = sorted(corpus.increments())
        assert increments == [20, 25, 30]
        # Anything at-or-below the current floor bounces.
        assert corpus.add(self._seed(20)) is False
        assert corpus.rejected == 1

    def test_update_increment_reranks_victim_choice(self):
        corpus = Corpus(capacity=2, policy="coverage")
        stale, fresh = self._seed(90), self._seed(40)
        corpus.add(stale), corpus.add(fresh)
        # Mutation-mode feedback demotes the once-great seed...
        corpus.update_increment(stale, 5)
        # ...so the next insertion evicts it instead of the 40.
        assert corpus.add(self._seed(60)) is True
        assert stale not in corpus.seeds and fresh in corpus.seeds

    def test_interval_seeds_pinned_by_recorded_increment(self):
        """deepExplore's interval seeds survive capacity pressure exactly
        as long as their recorded coverage increment keeps them off the
        eviction floor."""
        fuzzer = TurboFuzzer(TurboFuzzConfig(corpus_capacity=4))
        interval = fuzzer.add_interval_seed(
            [InstructionBlock("addi", [StimulusEntry(0x13)])],
            coverage_increment=1000,
        )
        assert interval in fuzzer.corpus.seeds
        corpus = fuzzer.corpus
        for increment in (200, 300, 400, 500, 600, 700):
            corpus.add(self._seed(increment))
        assert interval in corpus.seeds  # outranked every direct seed
        # Once re-ranked below the floor it is evictable like any other.
        corpus.update_increment(interval, 1)
        corpus.add(self._seed(650))
        assert interval not in corpus.seeds

    def test_fifo_evicts_interval_seeds_regardless_of_increment(self):
        corpus = Corpus(capacity=2, policy="fifo")
        interval = self._seed(10_000, origin="interval")
        corpus.add(interval)
        corpus.add(self._seed(1)), corpus.add(self._seed(2))
        assert interval not in corpus.seeds
