"""Reference executor: architectural semantics instruction by instruction."""

from hypothesis import given, settings, strategies as st

from tests.helpers import f64_bits, bits_f64, make_executor, run_program
from repro.isa import csr as CSR
from repro.isa.encoder import assemble_all, encode
from repro.isa.encoding import MASK64, to_signed

u64 = st.integers(min_value=0, max_value=MASK64)


def _exec_one(text_lines, xregs=None, fregs=None):
    executor = make_executor(assemble_all(text_lines), xregs=xregs,
                             fregs=fregs)
    records = run_program(executor, max_steps=len(text_lines))
    return executor, records


class TestIntegerArithmetic:
    @given(a=u64, b=u64)
    @settings(max_examples=80)
    def test_add_wraps(self, a, b):
        executor, _ = _exec_one(["add x3, x1, x2"], xregs={1: a, 2: b})
        assert executor.state.xregs[3] == (a + b) & MASK64

    @given(a=u64, b=u64)
    @settings(max_examples=80)
    def test_sltu(self, a, b):
        executor, _ = _exec_one(["sltu x3, x1, x2"], xregs={1: a, 2: b})
        assert executor.state.xregs[3] == (1 if a < b else 0)

    @given(a=u64)
    @settings(max_examples=50)
    def test_addiw_truncates_and_sign_extends(self, a):
        executor, _ = _exec_one(["addiw x3, x1, 1"], xregs={1: a})
        expected = ((a + 1) & 0xFFFFFFFF)
        if expected >> 31:
            expected |= 0xFFFFFFFF_00000000
        assert executor.state.xregs[3] == expected

    def test_x0_never_written(self):
        executor, _ = _exec_one(["addi x0, x0, 5"])
        assert executor.state.xregs[0] == 0

    @given(a=u64, shamt=st.integers(min_value=0, max_value=63))
    @settings(max_examples=50)
    def test_sra_arithmetic(self, a, shamt):
        executor, _ = _exec_one([f"srai x3, x1, {shamt}"], xregs={1: a})
        assert to_signed(executor.state.xregs[3]) == to_signed(a) >> shamt


class TestMulDiv:
    def test_div_by_zero_gives_all_ones(self):
        executor, _ = _exec_one(["div x3, x1, x2"], xregs={1: 42, 2: 0})
        assert executor.state.xregs[3] == MASK64

    def test_rem_by_zero_gives_dividend(self):
        executor, _ = _exec_one(["rem x3, x1, x2"], xregs={1: 42, 2: 0})
        assert executor.state.xregs[3] == 42

    def test_div_overflow(self):
        int_min = 1 << 63
        executor, _ = _exec_one(["div x3, x1, x2"],
                                xregs={1: int_min, 2: MASK64})
        assert executor.state.xregs[3] == int_min  # INT_MIN / -1 = INT_MIN

    def test_rem_overflow_is_zero(self):
        int_min = 1 << 63
        executor, _ = _exec_one(["rem x3, x1, x2"],
                                xregs={1: int_min, 2: MASK64})
        assert executor.state.xregs[3] == 0

    @given(a=st.integers(min_value=-(1 << 62), max_value=(1 << 62)),
           b=st.integers(min_value=1, max_value=1 << 30))
    @settings(max_examples=60)
    def test_div_rem_identity(self, a, b):
        executor, _ = _exec_one(
            ["div x3, x1, x2", "rem x4, x1, x2", "mul x5, x3, x2",
             "add x6, x5, x4"],
            xregs={1: a & MASK64, 2: b},
        )
        assert to_signed(executor.state.xregs[6]) == a

    def test_mulh_signed(self):
        executor, _ = _exec_one(["mulh x3, x1, x2"],
                                xregs={1: MASK64, 2: MASK64})  # -1 * -1
        assert executor.state.xregs[3] == 0

    def test_mulhu_unsigned(self):
        executor, _ = _exec_one(["mulhu x3, x1, x2"],
                                xregs={1: MASK64, 2: MASK64})
        assert executor.state.xregs[3] == MASK64 - 1


class TestControlFlow:
    def test_taken_branch_skips(self):
        executor, records = _exec_one(
            ["beq x0, x0, 8", "addi x3, x0, 1", "addi x4, x0, 2"],
        )
        run_program(executor, max_steps=2)
        assert executor.state.xregs[3] == 0
        assert executor.state.xregs[4] == 2

    def test_jal_links(self):
        executor, records = _exec_one(["jal x1, 8"])
        assert executor.state.xregs[1] == 0x8000_0004
        assert executor.state.pc == 0x8000_0008

    def test_jalr_clears_bit0(self):
        executor, _ = _exec_one(["jalr x1, x2, 1"], xregs={2: 0x8000_0010})
        assert executor.state.pc == 0x8000_0010

    def test_misaligned_branch_target_traps(self):
        executor = make_executor([encode("jalr", rd=0, rs1=2, imm=2)],
                                 xregs={2: 0x8000_0000})
        record = executor.step()
        assert record.trap is not None
        assert record.trap.cause == CSR.CAUSE_MISALIGNED_FETCH


class TestMemoryOps:
    def test_store_load_all_sizes(self):
        executor, _ = _exec_one(
            ["sd x1, 0(x2)", "ld x3, 0(x2)", "lw x4, 0(x2)", "lh x5, 0(x2)",
             "lb x6, 0(x2)", "lbu x7, 0(x2)", "lwu x8, 0(x2)"],
            xregs={1: 0xFFFF_FFFF_FFFF_FF80, 2: 0x10000},
        )
        state = executor.state
        assert state.xregs[3] == 0xFFFF_FFFF_FFFF_FF80
        assert state.xregs[4] == 0xFFFF_FFFF_FFFF_FF80  # lw sign extends
        assert state.xregs[6] == 0xFFFF_FFFF_FFFF_FF80  # lb sign extends
        assert state.xregs[7] == 0x80  # lbu zero extends
        assert state.xregs[8] == 0xFFFF_FF80  # lwu zero extends

    def test_load_access_fault(self):
        executor = make_executor(assemble_all(["ld x3, 0(x2)"]),
                                 xregs={2: 0x5000_0000})
        executor.memory.add_range(0x8000_0000, 0x1000)
        record = executor.step()
        assert record.trap.cause == CSR.CAUSE_LOAD_ACCESS


class TestAmo:
    def test_amoadd(self):
        executor, _ = _exec_one(
            ["sd x1, 0(x2)", "amoadd.d x3, x4, (x2)", "ld x5, 0(x2)"],
            xregs={1: 10, 2: 0x10000, 4: 32},
        )
        assert executor.state.xregs[3] == 10  # old value
        assert executor.state.xregs[5] == 42

    def test_lr_sc_success(self):
        executor, _ = _exec_one(
            ["lr.d x3, (x2)", "sc.d x4, x5, (x2)", "ld x6, 0(x2)"],
            xregs={2: 0x10000, 5: 99},
        )
        assert executor.state.xregs[4] == 0  # success
        assert executor.state.xregs[6] == 99

    def test_sc_without_reservation_fails(self):
        executor, _ = _exec_one(
            ["sc.d x4, x5, (x2)"], xregs={2: 0x10000, 5: 99},
        )
        assert executor.state.xregs[4] == 1

    def test_misaligned_amo_traps(self):
        executor = make_executor(
            [encode("amoadd.w", rd=3, rs1=2, rs2=4)], xregs={2: 0x10002},
        )
        record = executor.step()
        assert record.trap.cause == CSR.CAUSE_MISALIGNED_STORE

    def test_amominu_unsigned_compare(self):
        executor, _ = _exec_one(
            ["sd x1, 0(x2)", "amominu.d x3, x4, (x2)", "ld x5, 0(x2)"],
            xregs={1: MASK64, 2: 0x10000, 4: 5},
        )
        assert executor.state.xregs[5] == 5


class TestCsr:
    def test_csrrw_swaps(self):
        executor, _ = _exec_one(
            ["csrrw x3, 0x340, x1", "csrrs x4, 0x340, x0"],
            xregs={1: 0xABCD},
        )
        assert executor.state.xregs[3] == 0  # old mscratch
        assert executor.state.xregs[4] == 0xABCD

    def test_csrrs_x0_does_not_write(self):
        executor, records = _exec_one(["csrrs x3, 0xB02, x0"])
        assert records[0].csr_addr is None

    def test_csrrci_clears_bits(self):
        executor, _ = _exec_one(
            ["csrrwi x0, 0x001, 31", "csrrci x3, 0x001, 5",
             "csrrs x4, 0x001, x0"],
        )
        assert executor.state.xregs[3] == 31
        assert executor.state.xregs[4] == 31 & ~5

    def test_unknown_csr_traps(self):
        executor, records = _exec_one(["csrrw x3, 0x8FF, x1"])
        assert records[0].trap.cause == CSR.CAUSE_ILLEGAL_INSTRUCTION

    def test_readonly_csr_write_traps(self):
        executor, records = _exec_one(["csrrw x3, 0xC00, x1"])  # cycle
        assert records[0].trap.cause == CSR.CAUSE_ILLEGAL_INSTRUCTION

    def test_minstret_counts(self):
        executor, _ = _exec_one(
            ["addi x1, x0, 1", "addi x1, x0, 2", "csrrs x3, 0xB02, x0"],
        )
        assert executor.state.xregs[3] == 2

    def test_fflags_frm_alias_fcsr(self):
        executor, _ = _exec_one(
            ["csrrwi x0, 0x002, 3", "csrrwi x0, 0x001, 5",
             "csrrs x3, 0x003, x0"],
        )
        assert executor.state.xregs[3] == (3 << 5) | 5


class TestTraps:
    def test_ecall_sets_mepc_mcause(self):
        executor, records = _exec_one(["ecall"])
        state = executor.state
        assert records[0].trap.cause == CSR.CAUSE_ECALL_M
        assert state.csrs[CSR.MEPC] == 0x8000_0000
        assert state.csrs[CSR.MCAUSE] == CSR.CAUSE_ECALL_M

    def test_trap_vectors_to_mtvec(self):
        program = assemble_all([
            "lui x1, 0x40010", "csrrw x0, 0x305, x1", "ebreak",
        ])
        executor = make_executor(program)
        run_program(executor, max_steps=3, stop_on_trap=False)
        assert executor.state.pc == 0x4001_0000

    def test_illegal_instruction_sets_mtval(self):
        executor = make_executor([0xFFFF_FFFF])
        record = executor.step()
        assert record.trap.cause == CSR.CAUSE_ILLEGAL_INSTRUCTION
        assert executor.state.csrs[CSR.MTVAL] == 0xFFFF_FFFF

    def test_stval_mirrors_mtval(self):
        executor = make_executor([0xFFFF_FFFF])
        executor.step()
        assert executor.state.csrs[CSR.STVAL] == 0xFFFF_FFFF

    def test_mret_returns(self):
        program = assemble_all([
            "lui x1, 0x40000", "csrrw x0, 0x341, x1", "mret",
        ])
        executor = make_executor(program)
        run_program(executor, max_steps=3, stop_on_trap=False)
        assert executor.state.pc == 0x4000_0000

    def test_trap_disables_mie_and_saves_mpie(self):
        executor, _ = _exec_one(["csrrsi x0, 0x300, 8", "ecall"])
        status = executor.state.csrs[CSR.MSTATUS]
        assert status & CSR.MSTATUS_MIE == 0
        assert status & CSR.MSTATUS_MPIE


class TestFpPlumbing:
    def test_fp_disabled_traps(self):
        program = assemble_all([
            "lui x1, 0x6", "csrrc x0, 0x300, x1",  # clear FS
            "fadd.d ft0, ft1, ft2",
        ])
        executor = make_executor(program)
        records = run_program(executor, max_steps=3)
        assert records[-1].trap.cause == CSR.CAUSE_ILLEGAL_INSTRUCTION

    def test_invalid_static_rm_traps(self):
        word = encode("fadd.d", rd=0, rs1=1, rs2=2, rm=5)
        executor = make_executor([word])
        record = executor.step()
        assert record.trap.cause == CSR.CAUSE_ILLEGAL_INSTRUCTION

    def test_invalid_dynamic_frm_traps(self):
        program = assemble_all(["csrrwi x0, 0x002, 5"]) + [
            encode("fadd.d", rd=0, rs1=1, rs2=2, rm=7)
        ]
        executor = make_executor(program)
        records = run_program(executor, max_steps=2)
        assert records[-1].trap.cause == CSR.CAUSE_ILLEGAL_INSTRUCTION

    def test_fp_op_accrues_flags(self):
        executor, _ = _exec_one(
            ["fdiv.d ft2, ft0, ft1", "csrrs x3, 0x001, x0"],
            fregs={0: f64_bits(1.0), 1: f64_bits(0.0)},
        )
        assert executor.state.xregs[3] == CSR.FFLAGS_DZ

    def test_flw_nan_boxes(self):
        executor, _ = _exec_one(
            ["sw x1, 0(x2)", "flw ft0, 0(x2)"],
            xregs={1: 0x3F800000, 2: 0x10000},
        )
        assert executor.state.fregs[0] == 0xFFFFFFFF_3F800000

    def test_fdiv_d_computes(self):
        executor, _ = _exec_one(
            ["fdiv.d ft2, ft0, ft1"],
            fregs={0: f64_bits(1.0), 1: f64_bits(4.0)},
        )
        assert bits_f64(executor.state.fregs[2]) == 0.25

    def test_fsgnjx(self):
        executor, _ = _exec_one(
            ["fsgnjx.d ft2, ft0, ft1"],
            fregs={0: f64_bits(2.0), 1: f64_bits(-3.0)},
        )
        assert bits_f64(executor.state.fregs[2]) == -2.0

    def test_fmv_x_w_sign_extends(self):
        executor, _ = _exec_one(
            ["fmv.x.w x3, ft0"], fregs={0: 0xFFFFFFFF_80000000},
        )
        assert executor.state.xregs[3] == 0xFFFFFFFF_80000000

    def test_writing_fp_marks_fs_dirty(self):
        executor, _ = _exec_one(["fcvt.d.w ft0, x1"], xregs={1: 3})
        status = executor.state.csrs[CSR.MSTATUS]
        assert status & CSR.MSTATUS_FS_MASK == CSR.MSTATUS_FS_DIRTY


class TestCommitRecords:
    def test_rd_write_recorded(self):
        executor, records = _exec_one(["addi x3, x0, 7"])
        assert records[0].rd == 3 and records[0].rd_value == 7

    def test_store_recorded(self):
        executor, records = _exec_one(["sd x1, 8(x2)"],
                                      xregs={1: 5, 2: 0x10000})
        record = records[0]
        assert record.mem_addr == 0x10008
        assert record.mem_size == 8
        assert record.mem_value == 5

    def test_key_fields_equal_for_same_execution(self):
        a, _ = _exec_one(["addi x3, x0, 7"])
        b, _ = _exec_one(["addi x3, x0, 7"])
        # Executing the same program yields identical key fields.
        ra = make_executor(assemble_all(["addi x3, x0, 7"])).step()
        rb = make_executor(assemble_all(["addi x3, x0, 7"])).step()
        assert ra.key_fields() == rb.key_fields()
