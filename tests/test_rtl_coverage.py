"""RTL-IR, control-register extraction, layouts, reachability, maps."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.coverage import (
    CoverageMap,
    FeedbackWeights,
    LegacyLayout,
    OptimizedLayout,
    achievable_points,
    instrument_design,
    make_layout,
    reachability_report,
)
from repro.coverage.layout import _rotl
from repro.rtl import Module, estimate_area
from repro.rtl.netlist import control_registers


def _toy_module(domains=(None, None, None), widths=(3, 2, 4)):
    top = Module("Top")
    sub = top.submodule("Unit")
    registers = [
        sub.register(f"r{i}", widths[i], domain=domains[i])
        for i in range(len(widths))
    ]
    glue = sub.logic("glue", 2, sources=registers)
    sub.mux("out_mux", select=glue, width=8)
    return top, sub, registers


class TestNetlistExtraction:
    def test_trace_through_logic_to_registers(self):
        top, sub, registers = _toy_module()
        found = control_registers(sub)
        assert {r.name for r in found} == {"r0", "r1", "r2"}

    def test_trace_stops_at_ports(self):
        top = Module("Top")
        sub = top.submodule("U")
        port = sub.port("in_sel", 2)
        reg = sub.register("state", 2)
        glue = sub.logic("g", 2, sources=[port, reg])
        sub.mux("m", select=glue)
        found = control_registers(sub)
        assert [r.name for r in found] == ["state"]

    def test_trace_does_not_cross_registers(self):
        top = Module("Top")
        sub = top.submodule("U")
        deep = sub.register("deep", 2)
        front = sub.register("front", 2, sources=[deep])
        sub.mux("m", select=front)
        found = control_registers(sub)
        assert [r.name for r in found] == ["front"]

    def test_deterministic_order(self):
        top, sub, _ = _toy_module()
        assert [r.uid for r in control_registers(sub)] == sorted(
            r.uid for r in control_registers(sub)
        )

    def test_module_paths(self):
        top, sub, registers = _toy_module()
        assert registers[0].path == "Top.Unit.r0"

    def test_find_register(self):
        top, sub, _ = _toy_module()
        assert top.find_register("r1").width == 2
        with pytest.raises(KeyError):
            top.find_register("nope")


class TestLayouts:
    def test_rotl(self):
        assert _rotl(0b1, 3, 8) == 0b1000
        assert _rotl(0b1000_0000, 1, 8) == 1
        assert _rotl(0b101, 0, 8) == 0b101

    def test_optimized_offsets_follow_eq2(self):
        top, sub, registers = _toy_module(widths=(6, 6, 6))
        layout = OptimizedLayout(control_registers(sub), max_state_size=15)
        offsets = layout.placements
        assert offsets[0] == 0
        for i in range(1, len(offsets)):
            width = layout.registers[i - 1].width
            assert offsets[i] == (offsets[i - 1] + width) % 15

    def test_legacy_shift_in_range_and_seed_deterministic(self):
        top, sub, registers = _toy_module()
        a = LegacyLayout(control_registers(sub), 10, seed=3)
        b = LegacyLayout(control_registers(sub), 10, seed=3)
        c = LegacyLayout(control_registers(sub), 10, seed=4)
        assert a.placements == b.placements
        assert all(0 <= s < 10 for s in a.placements)
        assert a.placements != c.placements  # overwhelmingly likely

    def test_index_is_xor_of_contributions(self):
        top, sub, registers = _toy_module()
        layout = OptimizedLayout(control_registers(sub), 10)
        values = (5, 2, 9)
        expected = 0
        for position, value in enumerate(values):
            expected ^= layout.contribution(position, value)
        assert layout.index(values) == expected

    def test_legacy_instruments_full_space(self):
        top, sub, _ = _toy_module(widths=(2, 2, 2))
        layout = LegacyLayout(control_registers(sub), 12)
        assert layout.instrumented_points == 1 << 12

    def test_optimized_instruments_domain_product(self):
        top, sub, _ = _toy_module(
            widths=(3, 2, 4), domains=((0, 1, 2), None, None),
        )
        layout = OptimizedLayout(control_registers(sub), 15)
        assert layout.instrumented_points == 3 * 4 * 16

    def test_make_layout_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_layout("bogus", [], 10)

    @given(
        widths=st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                        max_size=4),
        style=st.sampled_from(["legacy", "optimized"]),
        bits=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_covered_positions_exact_against_brute_force(self, widths, style,
                                                         bits, seed):
        """covered_positions == OR of every value's contribution bits."""
        top = Module("T")
        sub = top.submodule("U")
        registers = [sub.register(f"r{i}", w) for i, w in enumerate(widths)]
        glue = sub.logic("g", 1, sources=registers)
        sub.mux("m", select=glue)
        layout = make_layout(style, registers, bits, seed=seed)
        brute = 0
        for position, register in enumerate(registers):
            for value in range(1 << register.width):
                brute |= layout.contribution(position, value)
        assert layout.covered_positions() == brute

    def test_instrumentation_registry_extension(self):
        from repro.coverage import (INSTRUMENTATIONS, InstrumentationLayout,
                                    register_instrumentation)

        @register_instrumentation("identity")
        class IdentityLayout(InstrumentationLayout):
            style = "identity"

            def _place(self):
                return [0] * len(self.registers)

            def contribution(self, position, value):
                width = self.registers[position].width
                return value & (1 << width) - 1 & self.mask

            @property
            def instrumented_points(self):
                return 1 << self.max_state_size if self.registers else 0

        try:
            top, sub, _ = _toy_module()
            layout = make_layout("identity", control_registers(sub), 10)
            assert isinstance(layout, IdentityLayout)
            assert "identity" in INSTRUMENTATIONS
        finally:
            INSTRUMENTATIONS.unregister("identity")
        with pytest.raises(ValueError, match="identity"):
            make_layout("identity", [], 10)


class TestReachability:
    def _brute_force(self, layout):
        spaces = [reg.domain_values() for reg in layout.registers]
        return len({
            layout.index(values) for values in itertools.product(*spaces)
        })

    @given(
        widths=st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                        max_size=4),
        style=st.sampled_from(["legacy", "optimized"]),
        bits=st.integers(min_value=4, max_value=8),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_against_brute_force_full_domains(self, widths, style,
                                                    bits, seed):
        top = Module("T")
        sub = top.submodule("U")
        registers = [sub.register(f"r{i}", w) for i, w in enumerate(widths)]
        glue = sub.logic("g", 1, sources=registers)
        sub.mux("m", select=glue)
        layout = make_layout(style, registers, bits, seed=seed)
        assert achievable_points(layout) == self._brute_force(layout)

    def test_restricted_domain_against_brute_force(self):
        top = Module("T")
        sub = top.submodule("U")
        registers = [
            sub.register("fsm", 3, domain=(0, 1, 2, 4)),
            sub.register("flag", 1),
            sub.register("cnt", 3, domain=(0, 1, 2, 3, 5)),
        ]
        glue = sub.logic("g", 1, sources=registers)
        sub.mux("m", select=glue)
        for style in ("legacy", "optimized"):
            layout = make_layout(style, registers, 7, seed=9)
            assert achievable_points(layout) == self._brute_force(layout)

    def test_optimized_fully_reachable_with_enough_bits(self):
        top = Module("T")
        sub = top.submodule("U")
        registers = [sub.register(f"r{i}", 6) for i in range(4)]
        glue = sub.logic("g", 1, sources=registers)
        sub.mux("m", select=glue)
        layout = OptimizedLayout(registers, 12)
        report = reachability_report(layout)
        assert report["fraction"] == 1.0

    def test_legacy_leaves_unreachable_points(self):
        top = Module("T")
        sub = top.submodule("U")
        registers = [sub.register("only", 3)]
        glue = sub.logic("g", 1, sources=registers)
        sub.mux("m", select=glue)
        layout = LegacyLayout(registers, 12, seed=0)
        report = reachability_report(layout)
        assert report["fraction"] < 0.01  # 8 values in a 4096 space


class TestCoverageMap:
    def test_observe_reports_new(self):
        cmap = CoverageMap(16)
        assert cmap.observe(3) is True
        assert cmap.observe(3) is False
        assert cmap.count == 1

    def test_merge(self):
        a, b = CoverageMap(16), CoverageMap(16)
        a.observe(1), b.observe(1), b.observe(2)
        assert a.merge(b) == 1
        assert a.count == 2

    def test_density(self):
        cmap = CoverageMap(10)
        cmap.observe_many([1, 2, 3])
        assert cmap.density == 0.3

    def test_copy_is_independent(self):
        a = CoverageMap(16)
        a.observe(1)
        b = a.copy()
        b.observe(2)
        assert a.count == 1 and b.count == 2


class TestWeights:
    def test_shift_amplifies_and_attenuates(self):
        weights = FeedbackWeights({"A": 2, "B": -1})
        assert weights.weighted("A", 3) == 12
        assert weights.weighted("B", 9) == 4
        assert weights.weighted("C", 7) == 7

    def test_weighted_total(self):
        weights = FeedbackWeights({"MulDiv": -2})
        total = weights.weighted_total({"MulDiv": 8, "FPU": 3})
        assert total == 2 + 3

    def test_paper_policy(self):
        weights = FeedbackWeights.attenuate_arithmetic()
        assert weights.shift_for("MulDiv") < 0


class TestInstrumentDesign:
    def test_default_selects_mux_owning_modules(self):
        top, sub, _ = _toy_module()
        design = instrument_design(top, max_state_size=10)
        assert [cov.name for cov in design.modules] == ["Unit"]

    def test_named_selection(self):
        top, sub, _ = _toy_module()
        design = instrument_design(top, module_names=["Unit"],
                                   max_state_size=10)
        assert len(design.modules) == 1

    def test_observe_state_memoizes(self):
        top, sub, registers = _toy_module()
        design = instrument_design(top, max_state_size=10)
        module_cov = design.modules[0]
        assert module_cov.observe_state((1, 1, 1)) is True
        assert module_cov.observe_state((1, 1, 1)) is False
        assert module_cov.count == 1

    def test_partial_positions(self):
        top, sub, registers = _toy_module()
        design = instrument_design(top, max_state_size=10)
        module_cov = design.modules[0]
        full = module_cov.layout.index((0, 3, 0))
        module_cov.observe_state((3,), positions=(1,))
        assert full in module_cov.map


class TestAreaEstimator:
    def test_registers_count_ffs(self):
        top = Module("T")
        top.register("r", 64)
        assert estimate_area(top).registers == 64

    def test_memory_brams(self):
        top = Module("T")
        top.memory("big", depth=4096, width=36)  # 147456 bits -> 4 BRAMs
        assert estimate_area(top).brams == 4

    def test_small_memory_is_distributed(self):
        top = Module("T")
        top.memory("small", depth=16, width=8)
        assert estimate_area(top).brams == 0

    def test_explicit_lut_cost(self):
        top = Module("T")
        top.logic("blob", width=1, lut_cost=12345)
        assert estimate_area(top).luts == 12345

    def test_estimates_add(self):
        top = Module("T")
        top.register("r", 8)
        child = top.submodule("C")
        child.register("r2", 8)
        assert estimate_area(top).registers == 16
