"""Shared helpers for the test suite."""

import struct

from repro.ref import ArchState, Executor, SparseMemory


def f64_bits(value):
    """Host double -> raw 64-bit pattern."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_f64(bits):
    """Raw 64-bit pattern -> host double."""
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def f32_bits(value):
    """Host float -> raw 32-bit pattern."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_f32(bits):
    """Raw 32-bit pattern -> host float."""
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def make_executor(program_words, base=0x8000_0000, xregs=None, fregs=None):
    """A ready-to-step executor with a program installed."""
    memory = SparseMemory()
    memory.write_program(base, program_words)
    state = ArchState(pc=base)
    if xregs:
        for index, value in xregs.items():
            state.xregs[index] = value & ((1 << 64) - 1)
    if fregs:
        for index, value in fregs.items():
            state.fregs[index] = value & ((1 << 64) - 1)
    return Executor(state, memory)


def run_program(executor, max_steps=1000, stop_on_trap=True):
    """Step until ecall/trap or step limit; returns the records."""
    records = []
    for _ in range(max_steps):
        record = executor.step()
        records.append(record)
        if stop_on_trap and record.trap is not None:
            break
    return records
