"""Sparse memory: loads/stores, ranges, page crossing, snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ref.memory import MemoryAccessError, PAGE_SIZE, SparseMemory


class TestBasicAccess:
    def test_uninitialized_reads_zero(self):
        memory = SparseMemory()
        assert memory.load(0x1000, 8) == 0

    def test_store_load_roundtrip(self):
        memory = SparseMemory()
        memory.store(0x2000, 8, 0x1122334455667788)
        assert memory.load(0x2000, 8) == 0x1122334455667788
        assert memory.load(0x2000, 4) == 0x55667788  # little endian

    def test_byte_granularity(self):
        memory = SparseMemory()
        memory.store(0x10, 1, 0xAB)
        memory.store(0x11, 1, 0xCD)
        assert memory.load(0x10, 2) == 0xCDAB

    def test_store_masks_to_size(self):
        memory = SparseMemory()
        memory.store(0x0, 2, 0x12345678)
        assert memory.load(0x0, 4) == 0x5678

    def test_page_crossing_access(self):
        memory = SparseMemory()
        address = PAGE_SIZE - 4
        memory.store(address, 8, 0xDEADBEEFCAFEBABE)
        assert memory.load(address, 8) == 0xDEADBEEFCAFEBABE

    def test_load_bytes_across_unallocated_pages(self):
        memory = SparseMemory()
        memory.store(PAGE_SIZE * 2, 1, 0x7F)
        blob = memory.load_bytes(PAGE_SIZE * 2 - 2, 4)
        assert blob == b"\x00\x00\x7f\x00"

    @given(
        address=st.integers(min_value=0, max_value=1 << 20),
        data=st.binary(min_size=1, max_size=64),
    )
    @settings(max_examples=60)
    def test_bytes_roundtrip(self, address, data):
        memory = SparseMemory()
        memory.store_bytes(address, data)
        assert memory.load_bytes(address, len(data)) == data


class TestRanges:
    def test_unrestricted_by_default(self):
        memory = SparseMemory()
        memory.store(0xFFFF_FFFF_0000, 8, 1)  # no error

    def test_out_of_range_load_faults(self):
        memory = SparseMemory(ranges=[(0x1000, 0x100)])
        with pytest.raises(MemoryAccessError):
            memory.load(0x2000, 4)

    def test_straddling_range_end_faults(self):
        memory = SparseMemory(ranges=[(0x1000, 0x100)])
        with pytest.raises(MemoryAccessError):
            memory.load(0x10FE, 4)

    def test_in_range_succeeds(self):
        memory = SparseMemory(ranges=[(0x1000, 0x100)])
        memory.store(0x1080, 8, 42)
        assert memory.load(0x1080, 8) == 42

    def test_add_range_extends(self):
        memory = SparseMemory(ranges=[(0x1000, 0x100)])
        memory.add_range(0x4000, 0x100)
        memory.store(0x4000, 4, 7)

    def test_error_carries_details(self):
        memory = SparseMemory(ranges=[(0, 16)])
        with pytest.raises(MemoryAccessError) as info:
            memory.load(0x40, 4, kind="fetch")
        assert info.value.kind == "fetch"
        assert info.value.address == 0x40


class TestPrograms:
    def test_write_program_and_fetch(self):
        memory = SparseMemory()
        memory.write_program(0x8000_0000, [0x13, 0x33001033])
        assert memory.load_word(0x8000_0000) == 0x13
        assert memory.load_word(0x8000_0004) == 0x33001033


class TestSnapshots:
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 16),
                st.integers(min_value=0, max_value=255),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_snapshot_restore_roundtrip(self, writes):
        memory = SparseMemory()
        for address, value in writes:
            memory.store(address, 1, value)
        pages = memory.snapshot_pages()
        clone = SparseMemory()
        clone.restore_pages(pages)
        for address, _ in writes:
            assert clone.load(address, 1) == memory.load(address, 1)

    def test_resident_bytes_tracks_pages(self):
        memory = SparseMemory()
        assert memory.resident_bytes == 0
        memory.store(0, 1, 1)
        memory.store(PAGE_SIZE * 10, 1, 1)
        assert memory.resident_bytes == 2 * PAGE_SIZE
