"""Fault tolerance: policy, deterministic chaos, recovery, atomic saves.

The backend tests follow the repo's bit-identity discipline: every
chaos run (injected kills, delays, drops, corrupt checkpoints) must
produce coverage series, shard stats, and per-session campaign reports
identical to an undisturbed serial run — recovery may cost wall-clock,
never results.
"""

import json

import pytest

from repro.campaign import (
    CampaignCheckpoint,
    CampaignOrchestrator,
    CampaignSpec,
    CheckpointError,
    EventBus,
    FaultInjector,
    FaultPolicy,
    ProcessPoolBackend,
    ShardRecovery,
    SupervisedQueueBackend,
    build_session,
    campaign_report,
    register_fault,
)
from repro.campaign.backends import _Supervisor
from repro.campaign.resilience import KILL_WORKER_EXIT_CODE

SMALL = {"instructions_per_iteration": 150}


def small_spec(**options):
    merged = dict(SMALL)
    merged.update(options)
    return CampaignSpec().with_fuzzer("turbofuzz", **merged)


def two_shard_specs():
    return [small_spec(seed=11).named("a"), small_spec(seed=22).named("b")]


def serial_reference(specs, budget=2.0, max_iterations=30, slices=2):
    orchestrator = CampaignOrchestrator(specs)
    orchestrator.run_for_virtual_time(budget, max_iterations=max_iterations,
                                      slices=slices)
    return orchestrator


def assert_bit_identical(serial, other):
    assert other.coverage_series() == serial.coverage_series()
    assert other.shard_stats() == serial.shard_stats()
    for label in serial.labels:
        assert (campaign_report(other.sessions[label])
                == campaign_report(serial.sessions[label]))


@register_fault("explode", replace=True)
class ExplodeFault:
    """Test-only fault: raises inside the worker's task handling, driving
    the error-message path (poison shard must not kill the worker)."""

    stage = "pre"

    def apply(self, context):
        raise RuntimeError("injected explosion")


class TestFaultPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = FaultPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.5, jitter_seed=99)
        series = [policy.backoff_s(attempt, shard_index=3)
                  for attempt in range(1, 6)]
        again = [FaultPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.5, jitter_seed=99)
                 .backoff_s(attempt, shard_index=3)
                 for attempt in range(1, 6)]
        assert series == again
        # Exponential up to the cap, jitter bounded at +25%.
        assert series[0] >= 0.1
        assert all(delay <= 0.5 * 1.25 for delay in series)
        assert policy.backoff_s(0) == 0.0

    def test_jitter_varies_by_shard_and_attempt(self):
        policy = FaultPolicy(backoff_base_s=1.0, backoff_factor=1.0,
                             backoff_max_s=1.0)
        delays = {policy.backoff_s(attempt, shard_index=shard)
                  for shard in range(4) for attempt in (1, 2)}
        assert len(delays) > 1

    def test_round_trips_through_dict(self):
        policy = FaultPolicy(slice_timeout_s=7.5, max_retries=5,
                             quarantine_after=9)
        assert FaultPolicy.from_dict(policy.to_dict()) == policy


class TestFaultInjector:
    def test_same_seed_same_plan(self):
        rates = {"kill-worker": (1, 4), "drop-result": (1, 8)}
        plan_a = FaultInjector(seed=5, rates=rates).plan(4, 6)
        plan_b = FaultInjector(seed=5, rates=rates).plan(4, 6)
        assert plan_a == plan_b
        assert plan_a  # a 1/4 rate over 24 cells fires at least once
        assert FaultInjector(seed=6, rates=rates).plan(4, 6) != plan_a

    def test_plan_is_pure_and_matches_faults_for(self):
        injector = FaultInjector(seed=5, rates={"kill-worker": (1, 2)})
        plan = injector.plan(3, 3)
        assert injector.injected == 0  # planning never counts
        fired = [
            (slice_index, shard_index, directive["kind"])
            for slice_index in range(3)
            for shard_index in range(3)
            for directive in injector.faults_for(shard_index, slice_index)
        ]
        assert sorted(fired) == plan
        assert injector.injected == len(plan)

    def test_explicit_schedule_and_params(self):
        injector = FaultInjector(
            schedule=[("delay-result", 1, 0)],
            params={"delay-result": {"seconds": 0.01}})
        assert injector.faults_for(0, 0) == []
        assert injector.faults_for(1, 0) == [
            {"kind": "delay-result", "seconds": 0.01}]

    def test_retries_run_fault_free_unless_repeat(self):
        schedule = [("kill-worker", 0, 0)]
        injector = FaultInjector(schedule=schedule)
        assert injector.faults_for(0, 0, attempt=0)
        assert injector.faults_for(0, 0, attempt=1) == []
        repeating = FaultInjector(schedule=schedule, repeat=True)
        assert repeating.faults_for(0, 0, attempt=3)

    def test_unknown_fault_kind_rejected_early(self):
        with pytest.raises(ValueError, match="unknown injected fault"):
            FaultInjector(rates={"melt-cpu": (1, 2)})


class TestShardRecovery:
    def test_retry_then_quarantine_with_events(self):
        bus = EventBus()
        seen = []
        bus.on_redispatch(lambda **p: seen.append(("redispatch", p)))
        bus.on_quarantine(lambda **p: seen.append(("quarantine", p)))
        health = {"a": "ok"}
        recovery = ShardRecovery(FaultPolicy(max_retries=2, backoff_base_s=0.0),
                                 bus=bus, health=health)
        actions = [recovery.record_failure("a", slice_index=0, reason="boom")[0]
                   for _ in range(3)]
        assert actions == [ShardRecovery.RETRY, ShardRecovery.RETRY,
                           ShardRecovery.QUARANTINE]
        assert health["a"] == "quarantined"
        assert [kind for kind, _ in seen] == ["redispatch", "redispatch",
                                              "quarantine"]
        assert seen[-1][1]["reason"] == "boom"
        stats = recovery.stats()
        assert stats["counters"]["failures"] == 3
        assert stats["counters"]["quarantines"] == 1
        assert stats["quarantined"] == ["a"]
        assert stats["last_error"] == {"a": "boom"}

    def test_quarantine_after_total_failures_across_slices(self):
        recovery = ShardRecovery(
            FaultPolicy(max_retries=10, quarantine_after=3, backoff_base_s=0.0))
        actions = [recovery.record_failure("a", slice_index=index)[0]
                   for index in range(3)]  # one failure per distinct slice
        assert actions[-1] == ShardRecovery.QUARANTINE

    def test_requeue_does_not_charge_a_failure(self):
        bus = EventBus()
        recovery = ShardRecovery(FaultPolicy(), bus=bus)
        recovery.requeue("a", 0, "worker-lost-unclaimed")
        assert recovery.counters.failures == 0
        assert recovery.counters.redispatches == 1
        assert recovery.attempts_for("a", 0) == 0
        assert bus.emitted["redispatch"] == 1

    def test_worker_lost_and_degraded_events(self):
        bus = EventBus()
        seen = []
        bus.on_worker_lost(lambda **p: seen.append(p))
        bus.on_degraded(lambda **p: seen.append(p))
        recovery = ShardRecovery(FaultPolicy(), bus=bus)
        recovery.worker_lost(3, label="a", exit_code=KILL_WORKER_EXIT_CODE)
        recovery.degraded("respawn budget exhausted", workers_left=0)
        assert seen[0]["exit_code"] == KILL_WORKER_EXIT_CODE
        assert seen[1]["workers"] == 0


class TestAtomicCheckpoint:
    def checkpoint(self, seed=7):
        session = build_session(small_spec(seed=seed))
        session.run_iterations(3)
        return CampaignCheckpoint.capture(session)

    def test_crash_mid_save_preserves_old_checkpoint(self, tmp_path,
                                                     monkeypatch):
        path = tmp_path / "shard.json"
        old = self.checkpoint(seed=7)
        old.save(path)
        survivor = path.read_text()

        def partial_write_then_die(obj, handle, **kwargs):
            handle.write('{"version": 1, "spec": {"trunca')
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(json, "dump", partial_write_then_die)
        with pytest.raises(OSError, match="simulated crash"):
            self.checkpoint(seed=8).save(path)
        monkeypatch.undo()
        assert path.read_text() == survivor  # old file untouched
        assert not list(tmp_path.glob("*.tmp.*"))  # temp cleaned up
        restored = CampaignCheckpoint.load(path)
        assert restored.state == old.state

    def test_save_then_load_round_trip(self, tmp_path):
        path = tmp_path / "shard.json"
        checkpoint = self.checkpoint()
        checkpoint.save(path)
        loaded = CampaignCheckpoint.load(path)
        assert loaded.state == checkpoint.state
        assert loaded.spec.to_dict() == checkpoint.spec.to_dict()

    def test_truncated_json_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "shard.json"
        self.checkpoint().save(path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            CampaignCheckpoint.load(path)

    def test_unknown_version_raises_checkpoint_error(self):
        data = self.checkpoint().to_dict()
        data["version"] = 99
        with pytest.raises(CheckpointError, match="newer"):
            CampaignCheckpoint.from_dict(data)
        # CheckpointError subclasses ValueError: pre-existing callers
        # catching the old raw error keep working.
        with pytest.raises(ValueError, match="newer"):
            CampaignCheckpoint.from_dict(data)

    def test_missing_keys_and_non_object_payloads(self):
        with pytest.raises(CheckpointError, match="missing required keys"):
            CampaignCheckpoint.from_dict({"version": 1, "state": {}})
        with pytest.raises(CheckpointError, match="must be an object"):
            CampaignCheckpoint.from_json("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="version must be"):
            CampaignCheckpoint.from_dict({"version": "new", "spec": {},
                                          "state": {}})


class TestSupervisedQueueBackend:
    def test_fault_free_run_matches_serial(self):
        specs = two_shard_specs()
        serial = serial_reference(specs)
        supervised = CampaignOrchestrator(
            specs, backend=SupervisedQueueBackend(
                workers=2, policy=FaultPolicy(slice_timeout_s=60.0)))
        supervised.run_for_virtual_time(2.0, max_iterations=30, slices=2)
        assert_bit_identical(serial, supervised)
        report = supervised.report()
        assert report["shard_health"] == {"a": "ok", "b": "ok"}
        counters = report["resilience"]["counters"]
        assert counters["failures"] == 0
        assert counters["spawns"] == 2

    def test_worker_kills_recover_bit_identically(self):
        specs = two_shard_specs()
        serial = serial_reference(specs)
        injector = FaultInjector(schedule=[("kill-worker", 0, 0),
                                           ("kill-worker", 1, 0)])
        supervised = CampaignOrchestrator(
            specs, backend=SupervisedQueueBackend(
                workers=2, policy=FaultPolicy(slice_timeout_s=60.0),
                injector=injector))
        events = []
        supervised.bus.on_worker_lost(lambda **p: events.append("worker_lost"))
        supervised.bus.on_redispatch(lambda **p: events.append("redispatch"))
        supervised.run_for_virtual_time(2.0, max_iterations=30, slices=2)
        assert_bit_identical(serial, supervised)
        report = supervised.report()
        counters = report["resilience"]["counters"]
        assert counters["worker_losses"] > 0
        assert counters["redispatches"] > 0
        assert "worker_lost" in events and "redispatch" in events
        assert report["shard_health"] == {"a": "ok", "b": "ok"}
        assert report["resilience"]["faults"]["injected"] == 2

    def test_worker_error_is_retried_not_fatal(self):
        specs = two_shard_specs()
        serial = serial_reference(specs)
        injector = FaultInjector(schedule=[("explode", 0, 0)])
        supervised = CampaignOrchestrator(
            specs, backend=SupervisedQueueBackend(
                workers=2,
                policy=FaultPolicy(slice_timeout_s=60.0, backoff_base_s=0.0),
                injector=injector))
        supervised.run_for_virtual_time(2.0, max_iterations=30, slices=2)
        assert_bit_identical(serial, supervised)
        counters = supervised.report()["resilience"]["counters"]
        assert counters["worker_errors"] == 1
        assert counters["worker_losses"] == 0  # the worker survived

    def test_poison_shard_quarantined_without_aborting_grid(self):
        specs = two_shard_specs()
        serial = serial_reference(specs)
        injector = FaultInjector(schedule=[("explode", 0, 0)], repeat=True)
        supervised = CampaignOrchestrator(
            specs, backend=SupervisedQueueBackend(
                workers=2,
                policy=FaultPolicy(slice_timeout_s=60.0, max_retries=1,
                                   backoff_base_s=0.0),
                injector=injector))
        supervised.run_for_virtual_time(2.0, max_iterations=30, slices=2)
        report = supervised.report()
        assert report["shard_health"]["a"] == "quarantined"
        assert report["shard_health"]["b"] == "ok"
        # The healthy shard is untouched by its neighbour's poison.
        assert (supervised.shard_stats()["b"] == serial.shard_stats()["b"])
        assert report["resilience"]["counters"]["quarantines"] == 1

    def test_degrades_to_inline_when_spawning_fails(self, monkeypatch):
        specs = two_shard_specs()
        serial = serial_reference(specs)
        monkeypatch.setattr(_Supervisor, "_spawn_worker", lambda self: False)
        supervised = CampaignOrchestrator(
            specs, backend=SupervisedQueueBackend(workers=2))
        events = []
        supervised.bus.on_degraded(lambda **p: events.append(p))
        supervised.run_for_virtual_time(2.0, max_iterations=30, slices=2)
        assert_bit_identical(serial, supervised)
        counters = supervised.report()["resilience"]["counters"]
        assert counters["degraded"] >= 1
        assert counters["inline_tasks"] > 0
        assert events and events[0]["workers"] == 0

    def test_event_relay_reaches_orchestrator_subscribers(self):
        specs = two_shard_specs()
        supervised = CampaignOrchestrator(
            specs, backend=SupervisedQueueBackend(
                workers=2, policy=FaultPolicy(slice_timeout_s=60.0)))
        remote = []

        def on_iteration(**payload):
            if payload.get("remote"):
                remote.append(payload)

        supervised.bus.on_iteration(on_iteration)
        supervised.run_for_virtual_time(1.0, max_iterations=10, slices=1)
        assert remote, "no remote iteration events relayed"
        sample = remote[0]
        assert sample["session"] is None
        assert sample["shard"] in ("a", "b")
        assert isinstance(sample["outcome"], dict)  # JSON-shaped payload
        counters = supervised.report()["resilience"]["counters"]
        assert counters["relay_events"] == len(remote)

    def test_run_iterations_matches_serial(self):
        specs = two_shard_specs()
        serial = CampaignOrchestrator(specs)
        serial.run_iterations(12)
        supervised = CampaignOrchestrator(
            specs, backend=SupervisedQueueBackend(workers=2))
        supervised.run_iterations(12)
        assert_bit_identical(serial, supervised)


class TestProcessPoolRetrofit:
    def test_corrupt_and_dropped_results_recover_bit_identically(self):
        specs = two_shard_specs()
        serial = serial_reference(specs)
        injector = FaultInjector(schedule=[("corrupt-checkpoint", 1, 0),
                                           ("drop-result", 0, 0)])
        pool = CampaignOrchestrator(
            specs, backend=ProcessPoolBackend(
                processes=2,
                policy=FaultPolicy(slice_timeout_s=60.0, backoff_base_s=0.0),
                injector=injector))
        pool.run_for_virtual_time(2.0, max_iterations=30, slices=2)
        assert_bit_identical(serial, pool)
        counters = pool.report()["resilience"]["counters"]
        assert counters["corrupt_checkpoints"] == 1
        assert counters["dropped_results"] == 1
        assert counters["redispatches"] == 2

    def test_killed_worker_breaks_pool_but_run_recovers(self):
        specs = two_shard_specs()
        serial = serial_reference(specs)
        injector = FaultInjector(schedule=[("kill-worker", 0, 0)])
        pool = CampaignOrchestrator(
            specs, backend=ProcessPoolBackend(
                processes=2,
                policy=FaultPolicy(slice_timeout_s=60.0, backoff_base_s=0.0),
                injector=injector))
        pool.run_for_virtual_time(2.0, max_iterations=30, slices=2)
        assert_bit_identical(serial, pool)
        counters = pool.report()["resilience"]["counters"]
        assert counters["worker_losses"] > 0
        assert counters["redispatches"] > 0

    def test_poison_shard_quarantined_without_aborting_grid(self):
        specs = two_shard_specs()
        serial = serial_reference(specs)
        injector = FaultInjector(schedule=[("corrupt-checkpoint", 0, 0)],
                                 repeat=True)
        pool = CampaignOrchestrator(
            specs, backend=ProcessPoolBackend(
                processes=2,
                policy=FaultPolicy(slice_timeout_s=60.0, max_retries=1,
                                   backoff_base_s=0.0),
                injector=injector))
        pool.run_for_virtual_time(2.0, max_iterations=30, slices=2)
        report = pool.report()
        assert report["shard_health"]["a"] == "quarantined"
        assert pool.shard_stats()["b"] == serial.shard_stats()["b"]


class TestChaosDeterminism:
    def test_same_chaos_seed_same_run(self):
        """Two supervised chaos runs with the same injector seed produce
        identical merged reports — and both equal the serial run."""
        specs = two_shard_specs()
        serial = serial_reference(specs)
        reports = []
        for _ in range(2):
            injector = FaultInjector(seed=0xC0FFEE,
                                     rates={"kill-worker": (1, 2)})
            orchestrator = CampaignOrchestrator(
                specs, backend=SupervisedQueueBackend(
                    workers=2, policy=FaultPolicy(slice_timeout_s=60.0),
                    injector=injector))
            orchestrator.run_for_virtual_time(2.0, max_iterations=30, slices=2)
            assert_bit_identical(serial, orchestrator)
            reports.append({
                "coverage": orchestrator.coverage_series(),
                "faults": injector.stats(),
            })
        assert reports[0] == reports[1]
        assert reports[0]["faults"]["injected"] > 0
