"""Checkpoint protocol + execution backends: bit-identical resume."""

import json

import pytest

from repro.campaign import (
    BACKENDS,
    CampaignCheckpoint,
    CampaignOrchestrator,
    CampaignSpec,
    ProcessPoolBackend,
    SerialBackend,
    build_session,
    campaign_report,
    checkpoint_session,
    coverage_at_time,
    register_backend,
    resolve_backend,
    resume_session,
)
from repro.coverage import CoverageMap, FeedbackWeights
from repro.fuzzer.corpus import Corpus, Seed
from repro.fuzzer.lfsr import Lfsr
from repro.harness.clock import VirtualClock

SMALL = {"instructions_per_iteration": 150}


def small_spec(**options):
    merged = dict(SMALL)
    merged.update(options)
    return CampaignSpec().with_fuzzer("turbofuzz", **merged)


def json_round_trip(value):
    return json.loads(json.dumps(value))


def corpus_fingerprint(session):
    """Full serialized corpus (``seed_id`` is deliberately not part of the
    state protocol — it is a process-global counter)."""
    return [seed.state_dict() for seed in session.fuzzer.corpus.seeds]


class TestComponentStateDicts:
    def test_lfsr_round_trip_continues_stream(self):
        source = Lfsr(0xFEED)
        for _ in range(10):
            source.next()
        clone = Lfsr(1)
        clone.load_state(json_round_trip(source.state_dict()))
        assert [clone.next() for _ in range(20)] == \
            [source.next() for _ in range(20)]

    def test_corpus_round_trip_preserves_schedule(self):
        lfsr = Lfsr(3)
        corpus = Corpus(capacity=4)
        for increment in (5, 2, 9, 1, 7):
            corpus.add(Seed([], coverage_increment=increment))
        restored = Corpus(capacity=1)
        restored.load_state(json_round_trip(corpus.state_dict()))
        assert restored.increments() == corpus.increments()
        assert restored.capacity == 4
        assert restored.best().coverage_increment == \
            corpus.best().coverage_increment
        # Selection draws must agree from identical LFSR states.
        twin = Lfsr(3)
        for _ in range(16):
            a = corpus.select(lfsr)
            b = restored.select(twin)
            assert a.coverage_increment == b.coverage_increment

    def test_coverage_map_round_trip(self):
        cmap = CoverageMap(1 << 10)
        cmap.observe_many([3, 7, 500])
        clone = CoverageMap(0)
        clone.load_state(json_round_trip(cmap.state_dict()))
        assert clone.snapshot() == cmap.snapshot()
        assert clone.instrumented_points == 1 << 10
        assert not clone.observe(7) and clone.observe(8)

    def test_weights_round_trip(self):
        weights = FeedbackWeights.attenuate_arithmetic()
        clone = FeedbackWeights({"X": 3})
        clone.load_state(json_round_trip(weights.state_dict()))
        assert clone.weighted("MulDiv", 8) == weights.weighted("MulDiv", 8)
        assert clone.shift_for("X") == 0

    def test_clock_round_trip_is_exact(self):
        clock = VirtualClock(100e6)
        clock.advance_cycles(12345)
        clock.advance_seconds(0.1)
        clone = VirtualClock(1.0)
        clone.load_state(json_round_trip(clock.state_dict()))
        assert clone.seconds == clock.seconds  # bit-exact, not approx
        assert clone.frequency_hz == 100e6

    @pytest.mark.parametrize("spec", (small_spec(),
                                      CampaignSpec(fuzzer="difuzzrtl")),
                             ids=("turbofuzz", "difuzzrtl"))
    def test_mid_iteration_checkpoint_rejected(self, spec):
        session = build_session(spec)
        session.fuzzer.generate_iteration()
        with pytest.raises(ValueError, match="mid-iteration"):
            session.state_dict()

    def test_protocol_less_fuzzer_gets_named_error(self):
        session = build_session(small_spec())

        class LegacyPluginFuzzer:
            def generate_iteration(self):
                raise NotImplementedError

            def feedback(self, iteration, increment):
                raise NotImplementedError

        session.fuzzer = LegacyPluginFuzzer()
        with pytest.raises(TypeError, match="checkpoint protocol"):
            session.state_dict()
        with pytest.raises(TypeError, match="checkpoint protocol"):
            session.load_state({"history": [], "total_executed": 0,
                                "total_generated": 0, "fuzzer": {}})


class TestSessionResume:
    @pytest.mark.parametrize("seed", (0xFEED, 0xBEEF, 7))
    def test_resume_equals_uninterrupted_turbofuzz(self, seed):
        spec = small_spec(seed=seed)
        full = build_session(spec)
        full.run_iterations(8)

        half = build_session(spec)
        half.run_iterations(4)
        checkpoint = CampaignCheckpoint.from_json(
            CampaignCheckpoint.capture(half).to_json())
        resumed = resume_session(checkpoint)
        resumed.run_iterations(4)

        assert resumed.coverage_series() == full.coverage_series()
        assert resumed.history_dicts() == full.history_dicts()
        assert campaign_report(resumed) == campaign_report(full)
        assert resumed.fuzzer.lfsr.state == full.fuzzer.lfsr.state
        assert corpus_fingerprint(resumed) == corpus_fingerprint(full)
        assert resumed.clock.seconds == full.clock.seconds

    @pytest.mark.parametrize("fuzzer", ("difuzzrtl", "cascade"))
    def test_resume_equals_uninterrupted_baselines(self, fuzzer):
        spec = CampaignSpec(fuzzer=fuzzer)
        full = build_session(spec)
        full.run_iterations(4)
        half = build_session(spec)
        half.run_iterations(2)
        resumed = resume_session(
            json_round_trip(CampaignCheckpoint.capture(half).to_dict()))
        resumed.run_iterations(2)
        assert resumed.coverage_series() == full.coverage_series()
        assert campaign_report(resumed) == campaign_report(full)

    def test_checkpoint_file_round_trip(self, tmp_path):
        session = build_session(small_spec(seed=11))
        session.run_iterations(3)
        path = tmp_path / "shard.json"
        checkpoint_session(session, path, label="solo")
        resumed = resume_session(path)
        assert resumed.spec == session.spec
        assert resumed.coverage_series() == session.coverage_series()

    def test_resume_preserves_triggered_bugs(self):
        spec = (small_spec(seed=5)
                .with_core("cva6", bugs=("C1",)))
        session = build_session(spec)
        session.run_iterations(1)
        session.core.hooks.triggered.add("C1")
        resumed = resume_session(
            json_round_trip(CampaignCheckpoint.capture(session).to_dict()))
        assert resumed.core.hooks.triggered == {"C1"}

    def test_newer_format_version_rejected(self):
        session = build_session(small_spec())
        data = CampaignCheckpoint.capture(session).to_dict()
        data["version"] = 999
        with pytest.raises(ValueError, match="newer"):
            CampaignCheckpoint.from_dict(data)

    def test_checkpoint_rejects_mismatched_design(self):
        rocket = build_session(small_spec(seed=1))
        rocket.run_iterations(1)
        state = rocket.state_dict()
        boom = build_session(small_spec(seed=1).with_core("boom"))
        with pytest.raises(ValueError, match="does not match this design"):
            boom.coverage.load_state(state["coverage"])


class TestBackends:
    def grid(self, backend=None):
        return CampaignOrchestrator(
            [small_spec(seed=seed).named(f"s{seed}") for seed in (1, 2)],
            backend=backend,
        )

    def test_registry_resolution(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("process-pool"), ProcessPoolBackend)
        backend = ProcessPoolBackend(processes=2)
        assert resolve_backend(backend) is backend
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("gpu")
        assert set(BACKENDS.names()) >= {"serial", "process-pool"}

    def test_third_party_backend_plugs_in(self):
        calls = []

        @register_backend("probe")
        class ProbeBackend(SerialBackend):
            name = "probe"

            def run_iterations(self, orchestrator, count, batch=16):
                calls.append(count)
                super().run_iterations(orchestrator, count, batch=batch)

        try:
            grid = self.grid(backend="probe")
            grid.run_iterations(1)
            assert calls == [1]
            assert grid.report()["backend"] == "probe"
        finally:
            BACKENDS.unregister("probe")

    def test_pool_matches_serial_run_iterations(self):
        serial = self.grid()
        serial.run_iterations(3)
        pool = self.grid(backend=ProcessPoolBackend(processes=2))
        pool.run_iterations(3)
        assert pool.coverage_series() == serial.coverage_series()
        assert pool.shard_stats() == serial.shard_stats()
        assert pool.merged_coverage_series() == serial.merged_coverage_series()
        # Checkpoint *files* are deterministic too: freezing either grid
        # yields byte-identical JSON per shard.
        serial_wire = {label: cp.to_json()
                       for label, cp in serial.checkpoint().items()}
        pool_wire = {label: cp.to_json()
                     for label, cp in pool.checkpoint().items()}
        assert serial_wire == pool_wire

    def test_pool_matches_serial_virtual_time(self):
        serial = self.grid()
        serial.run_for_virtual_time(0.01, max_iterations=12, slices=3)
        pool = self.grid(backend="process-pool")
        pool.run_for_virtual_time(0.01, max_iterations=12, slices=3)
        assert pool.coverage_series() == serial.coverage_series()
        assert pool.shard_stats() == serial.shard_stats()

    def test_pool_emits_orchestration_milestones(self):
        grid = self.grid(backend=ProcessPoolBackend(processes=1))
        kinds = []
        grid.bus.on_milestone(lambda **kw: kinds.append(kw["kind"]))
        grid.run_for_virtual_time(0.005, max_iterations=4, slices=2)
        assert kinds.count("time_slice") == 2
        assert kinds.count("shard_done") == 2

    def test_per_call_backend_override(self):
        serial = self.grid()
        serial.run_iterations(2)
        grid = self.grid()  # default serial...
        grid.run_iterations(2, backend="process-pool")  # ...pool per call
        assert grid.coverage_series() == serial.coverage_series()


class TestOrchestratorResume:
    def test_grid_resume_equals_uninterrupted(self):
        specs = [small_spec(seed=seed).named(f"s{seed}") for seed in (1, 2, 3)]
        full = CampaignOrchestrator(specs)
        full.run_iterations(6)

        half = CampaignOrchestrator(specs)
        half.run_iterations(3)
        wire = json_round_trip(
            {label: cp.to_dict() for label, cp in half.checkpoint().items()})
        resumed = CampaignOrchestrator.from_checkpoints(
            [CampaignCheckpoint.from_dict(cp) for cp in wire.values()])
        resumed.run_iterations(3)

        assert resumed.coverage_series() == full.coverage_series()
        assert resumed.shard_stats() == full.shard_stats()

    def test_grid_resume_on_pool_backend(self):
        specs = [small_spec(seed=seed).named(f"s{seed}") for seed in (4, 5)]
        full = CampaignOrchestrator(specs)
        full.run_for_virtual_time(0.01, max_iterations=10, slices=2)

        half = CampaignOrchestrator(specs)
        half.run_for_virtual_time(0.005, max_iterations=10, slices=1)
        resumed = CampaignOrchestrator.from_checkpoints(
            half.checkpoint(), backend="process-pool")
        resumed.run_for_virtual_time(0.01, max_iterations=10, slices=1)

        assert resumed.coverage_series() == full.coverage_series()


class TestCoverageAtBisect:
    def test_matches_linear_scan(self):
        series = [(0.5, 10), (1.0, 20), (1.0, 25), (2.5, 40)]

        def linear(seconds):
            best = 0
            for time_point, points in series:
                if time_point <= seconds:
                    best = points
            return best

        for seconds in (0.0, 0.5, 0.75, 1.0, 2.0, 2.5, 99.0):
            assert coverage_at_time(series, seconds) == linear(seconds)
        assert coverage_at_time([], 1.0) == 0

    def test_orchestrator_coverage_at_uses_series(self):
        grid = CampaignOrchestrator([small_spec(seed=9).named("only")])
        grid.run_iterations(3)
        series = grid["only"].coverage_series()
        last_time, last_points = series[-1]
        assert grid.coverage_at("only", last_time) == last_points
        assert grid.coverage_at("only", 0.0) == 0


class TestInstructionLibraryCheckpoint:
    """The library's VIO-style enable/disable toggles must travel with a
    checkpoint — the analyzer's checkpoint auditor motivated adding the
    library to every fuzzer's state_dict (before that, mid-campaign
    toggles silently reverted to constructor defaults on resume)."""

    def test_library_round_trip(self):
        from repro.fuzzer.instrlib import InstructionLibrary
        from repro.isa.instructions import Extension

        library = InstructionLibrary()
        library.disable(Extension.D)
        library.disable(Extension.F)
        restored = InstructionLibrary()
        restored.load_state(json_round_trip(library.state_dict()))
        assert restored.enabled_extensions == library.enabled_extensions
        assert [spec.name for spec in restored.active_specs] == \
            [spec.name for spec in library.active_specs]

    def test_resume_preserves_mid_campaign_toggle(self):
        from repro.isa.instructions import Extension

        spec = small_spec(seed=0xD15A)

        full = build_session(spec)
        full.run_iterations(3)
        full.fuzzer.library.disable(Extension.F)
        full.fuzzer.library.disable(Extension.D)
        full.run_iterations(5)

        half = build_session(spec)
        half.run_iterations(3)
        half.fuzzer.library.disable(Extension.F)
        half.fuzzer.library.disable(Extension.D)
        half.run_iterations(1)
        resumed = resume_session(CampaignCheckpoint.from_json(
            CampaignCheckpoint.capture(half).to_json()))
        assert resumed.fuzzer.library.enabled_extensions == \
            half.fuzzer.library.enabled_extensions
        resumed.run_iterations(4)

        assert resumed.coverage_series() == full.coverage_series()
        assert resumed.history_dicts() == full.history_dicts()
        assert resumed.fuzzer.lfsr.state == full.fuzzer.lfsr.state

    @pytest.mark.parametrize("fuzzer", ("difuzzrtl", "cascade"))
    def test_baseline_fuzzers_carry_library(self, fuzzer):
        from repro.isa.instructions import Extension

        spec = CampaignSpec(fuzzer=fuzzer)
        half = build_session(spec)
        half.run_iterations(2)
        half.fuzzer.library.disable(Extension.M)
        resumed = resume_session(
            json_round_trip(CampaignCheckpoint.capture(half).to_dict()))
        assert resumed.fuzzer.library.enabled_extensions == \
            half.fuzzer.library.enabled_extensions

    def test_old_checkpoint_without_library_key_still_loads(self):
        spec = small_spec(seed=5)
        session = build_session(spec)
        session.run_iterations(2)
        state = json_round_trip(session.fuzzer.state_dict())
        del state["library"]  # pre-library checkpoint shape
        fresh = build_session(spec)
        fresh.fuzzer.load_state(state)
        assert fresh.fuzzer.lfsr.state == session.fuzzer.lfsr.state
        assert fresh.fuzzer.library.enabled_extensions == \
            session.fuzzer.library.enabled_extensions
