"""Every Table II bug: targeted stimulus triggers the bug and the
instruction-level checker flags the divergence; without the bug the same
stimulus runs clean."""

import pytest

from repro.dut import BUGS, BUGS_BY_ID, bugs_for_core, make_core
from repro.dut.bugs import BuggyHooks, CorrectHooks
from repro.fuzzer.blocks import InstructionBlock, Iteration, StimulusEntry
from repro.fuzzer.context import MemoryLayout
from repro.harness.runner import IterationRunner
from repro.isa.encoder import assemble_all, encode


LAYOUT = MemoryLayout()


def _iteration_from_words(words):
    blocks = [
        InstructionBlock(prime_name="addi", entries=[StimulusEntry(word)])
        for word in words
    ]
    iteration = Iteration(blocks=blocks, layout=LAYOUT, data_seed=7)
    iteration.assemble()
    return iteration


def _run(core_name, bug_ids, words, rv32a_only=False):
    """Run stimulus on a DUT (with bugs) against the REF; returns
    (mismatch, triggered_set)."""
    core = make_core(core_name, bugs=bug_ids, rv32a_only=rv32a_only)
    runner = IterationRunner(core, with_ref=True)
    result = runner.run(_iteration_from_words(words))
    triggered = getattr(core.hooks, "triggered", set())
    return result.mismatch, triggered


# Stimuli: each loads operands from the data segment's interesting-value
# table (offset 0 = +0.0, 16 = +inf, 40 = sNaN, 48 = 1.0, see image.py)
# via the t0 data base register set up by the prologue.
def _fdiv_stimulus(dividend_offset, divisor_offset, precision="d"):
    return assemble_all([
        f"fld ft0, {dividend_offset}(t0)",
        f"fld ft1, {divisor_offset}(t0)",
        f"fdiv.{precision} ft2, ft0, ft1",
        "csrrs a0, 0x001, zero",  # read fflags (architecturally visible)
    ])


class TestCva6FpuBugs:
    def test_c1_dz_on_zero_div_zero(self):
        words = _fdiv_stimulus(0, 0)
        mismatch, triggered = _run("cva6", ("C1",), words)
        assert "C1" in triggered
        assert mismatch is not None and mismatch.field == "fflags_set"

    def test_c1_not_triggered_by_normal_division(self):
        words = _fdiv_stimulus(48, 64)  # 1.0 / 1.5
        mismatch, triggered = _run("cva6", ("C1",), words)
        assert "C1" not in triggered and mismatch is None

    def test_c2_fflags_on_single_div_by_inf(self):
        words = assemble_all([
            "flw ft0, 48(t0)",   # boxed 0.0f table region starts at 96; use fcvt instead
        ])
        # Build directly: ft0 = 1.0f, ft1 = +inf f32 (from boxed table
        # offsets 96..: 96=+0.0f, 112=+inf-f32).
        words = assemble_all([
            "flw ft0, 144(t0)",  # boxed 1.0f
            "flw ft1, 112(t0)",  # boxed +inf (f32)
            "fdiv.s ft2, ft0, ft1",
            "csrrs a0, 0x001, zero",
        ])
        mismatch, triggered = _run("cva6", ("C2",), words)
        assert "C2" in triggered
        assert mismatch is not None

    def test_c3_invalid_nan_boxing(self):
        # Mis-boxed single (upper bits not all ones) at offset 160.
        words = assemble_all([
            "fld ft0, 160(t0)",   # loads the raw mis-boxed pattern
            "flw ft1, 144(t0)",   # properly boxed 1.0f
            "fdiv.s ft2, ft0, ft1",
            "fmv.x.w a0, ft2",
        ])
        mismatch, triggered = _run("cva6", ("C3",), words)
        assert "C3" in triggered
        assert mismatch is not None

    def test_c4_double_div_by_inf(self):
        words = _fdiv_stimulus(48, 16)  # 1.0 / +inf
        mismatch, triggered = _run("cva6", ("C4",), words)
        assert "C4" in triggered
        assert mismatch is not None and mismatch.field == "fflags_set"

    def test_c5_fmul_sign_under_rdn(self):
        words = assemble_all([
            "fld ft0, 48(t0)",   # 1.0
            "fld ft1, 56(t0)",   # -1.0
            "fmul.d ft2, ft0, ft1, rdn",
            "fmv.x.d a0, ft2",
        ])
        mismatch, triggered = _run("cva6", ("C5",), words)
        assert "C5" in triggered
        assert mismatch is not None

    def test_c5_silent_under_rne(self):
        words = assemble_all([
            "fld ft0, 48(t0)", "fld ft1, 56(t0)",
            "fmul.d ft2, ft0, ft1, rne",
        ])
        mismatch, triggered = _run("cva6", ("C5",), words)
        assert "C5" not in triggered and mismatch is None

    def test_c6_duplicate_of_c3_other_stimulus(self):
        words = assemble_all([
            "fld ft0, 168(t0)",   # second mis-boxed pattern
            "fadd.s ft2, ft0, ft0",
            "fmv.x.w a0, ft2",
        ])
        mismatch, triggered = _run("cva6", ("C6",), words)
        assert "C6" in triggered
        assert mismatch is not None

    def test_c9_div_zero_by_zero_returns_inf(self):
        words = _fdiv_stimulus(0, 0)
        mismatch, triggered = _run("cva6", ("C9",), words)
        assert "C9" in triggered
        assert mismatch is not None and mismatch.field in ("frd_value",
                                                           "fflags_set")

    def test_c10_positive_zero_div_normal_gives_negative_zero(self):
        words = _fdiv_stimulus(0, 48)  # +0.0 / 1.0
        mismatch, triggered = _run("cva6", ("C10",), words)
        assert "C10" in triggered
        assert mismatch is not None and mismatch.field == "frd_value"


class TestCva6SystemBugs:
    def test_c7_stval_read_mismatch(self):
        words = assemble_all([
            "lw a0, 1(t0)",            # misaligned-ish but legal: use fault
        ])
        # Generate a trap first so stval latches a nonzero value, then
        # read stval.
        words = [0xFFFFFFFF] + assemble_all(["csrrs a0, 0x143, zero"])
        mismatch, triggered = _run("cva6", ("C7",), words)
        assert "C7" in triggered
        assert mismatch is not None and mismatch.field == "rd_value"

    def test_c8_rv64_amo_accepted_on_rv32a_config(self):
        words = assemble_all([
            "addi t4, t0, 0",
            "amoadd.d a0, a1, (t4)",
        ])
        mismatch, triggered = _run("cva6", ("C8",), words, rv32a_only=True)
        assert "C8" in triggered
        assert mismatch is not None  # DUT executes, REF traps

    def test_c8_clean_without_bug(self):
        words = assemble_all([
            "addi t4, t0, 0",
            "amoadd.d a0, a1, (t4)",
        ])
        mismatch, triggered = _run("cva6", (), words, rv32a_only=True)
        assert mismatch is None  # both trap identically


class TestBoomBugs:
    def test_b1_rounding_mode_ignored(self):
        words = assemble_all([
            "fld ft0, 48(t0)",   # 1.0
            "fld ft1, 88(t0)",   # DBL_MAX region value
            "fdiv.d ft2, ft0, ft1, rdn",  # inexact: RDN != RNE result
            "fmv.x.d a0, ft2",
        ])
        mismatch, triggered = _run("boom", ("B1",), words)
        assert "B1" in triggered
        assert mismatch is not None

    def test_b2_invalid_frm_does_not_trap(self):
        words = assemble_all([
            "csrrwi zero, 0x002, 5",  # invalid frm
        ]) + [encode("fadd.d", rd=2, rs1=0, rs2=1, rm=7)]
        mismatch, triggered = _run("boom", ("B2",), words)
        assert "B2" in triggered
        assert mismatch is not None  # REF traps, DUT computes


class TestRocketBugs:
    def test_r1_ebreak_skips_minstret(self):
        words = assemble_all([
            "ebreak",
            "csrrs a0, 0xb02, zero",  # minstret read diverges
        ])
        mismatch, triggered = _run("rocket", ("R1",), words)
        assert "R1" in triggered
        assert mismatch is not None and mismatch.field == "rd_value"

    def test_r1_clean_without_bug(self):
        words = assemble_all(["ebreak", "csrrs a0, 0xb02, zero"])
        mismatch, triggered = _run("rocket", (), words)
        assert mismatch is None


class TestBugRegistry:
    def test_all_thirteen_bugs_present(self):
        assert len(BUGS) == 13
        assert {bug.bug_id for bug in BUGS} == {
            "C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10",
            "B1", "B2", "R1",
        }

    def test_bugs_for_core(self):
        assert len(bugs_for_core("cva6")) == 10
        assert len(bugs_for_core("boom")) == 2
        assert len(bugs_for_core("rocket")) == 1

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            BuggyHooks(("C99",))

    def test_paper_times_recorded(self):
        bug = BUGS_BY_ID["C3"]
        assert bug.sw_time_s == pytest.approx(931.30)
        assert bug.hw_time_s == pytest.approx(1.63)

    def test_clean_hooks_have_no_bugs(self):
        core = make_core("rocket")
        assert not isinstance(core.hooks, BuggyHooks)
        assert isinstance(core.hooks, CorrectHooks)


class TestNoFalsePositives:
    """A bug-free DUT must run long random-ish programs with zero
    mismatches (the lockstep equivalence property)."""

    @pytest.mark.parametrize("core_name", ["rocket", "cva6", "boom"])
    def test_lockstep_clean(self, core_name):
        from repro.fuzzer import TurboFuzzer, TurboFuzzConfig

        fuzzer = TurboFuzzer(TurboFuzzConfig(
            instructions_per_iteration=300, seed=42))
        core = make_core(core_name)
        runner = IterationRunner(core, with_ref=True)
        for _ in range(3):
            iteration = fuzzer.generate_iteration()
            result = runner.run(iteration)
            assert result.mismatch is None, result.mismatch.describe()
