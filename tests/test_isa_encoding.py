"""ISA layer: bit helpers, encode/decode round trips, assembler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    IllegalInstruction,
    SPECS,
    SPECS_BY_NAME,
    assemble,
    decode,
    disassemble,
    encode,
)
from repro.isa.decoder import try_decode
from repro.isa.encoder import EncodeError, assemble_all
from repro.isa.encoding import (
    align_down,
    bits,
    fits_signed,
    fits_unsigned,
    popcount,
    sext,
    to_signed,
    to_unsigned,
)
from repro.isa.instructions import Extension, specs_for_extensions


class TestBitHelpers:
    def test_bits_extracts_inclusive_slice(self):
        assert bits(0b1011_0110, 5, 2) == 0b1101

    def test_bits_rejects_inverted_slice(self):
        with pytest.raises(ValueError):
            bits(0, 2, 5)

    def test_sext_negative(self):
        assert sext(0xFFF, 12) == -1
        assert sext(0x800, 12) == -2048

    def test_sext_positive(self):
        assert sext(0x7FF, 12) == 2047

    def test_signed_unsigned_roundtrip(self):
        assert to_unsigned(to_signed(0xFFFF_FFFF_FFFF_FFFF)) == (1 << 64) - 1
        assert to_signed(to_unsigned(-5)) == -5

    def test_fits(self):
        assert fits_signed(-2048, 12) and not fits_signed(2048, 12)
        assert fits_unsigned(4095, 12) and not fits_unsigned(4096, 12)

    def test_align_down(self):
        assert align_down(0x1007, 8) == 0x1000

    def test_popcount(self):
        assert popcount(0b1011) == 3

    @given(st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1))
    def test_sext_is_identity_on_in_range(self, value):
        assert sext(value & 0xFFF, 12) == value


class TestSpecTable:
    def test_every_spec_has_consistent_match_mask(self):
        for spec in SPECS:
            assert spec.match & ~spec.mask == 0, spec.name

    def test_no_overlapping_encodings(self):
        # Any two specs must be distinguishable by their shared mask bits.
        for i, a in enumerate(SPECS):
            for b in SPECS[i + 1:]:
                shared = a.mask & b.mask
                assert (a.match & shared) != (b.match & shared), (
                    f"{a.name} and {b.name} overlap"
                )

    def test_extension_filtering(self):
        base = specs_for_extensions({Extension.I})
        assert all(spec.extension is Extension.I for spec in base)
        assert "mul" not in {spec.name for spec in base}

    def test_rv32_filtering(self):
        rv32 = specs_for_extensions({Extension.I}, xlen=32)
        names = {spec.name for spec in rv32}
        assert "ld" not in names and "lw" in names

    def test_category_predicates(self):
        assert SPECS_BY_NAME["beq"].is_control_flow
        assert SPECS_BY_NAME["ld"].is_memory
        assert SPECS_BY_NAME["fdiv.d"].is_fp
        assert not SPECS_BY_NAME["add"].is_control_flow


# Hypothesis strategies for operand fields.
reg = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)
imm13_even = st.integers(min_value=-2048, max_value=2047).map(lambda v: v * 2)
imm21_even = st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1).map(
    lambda v: v * 2
)


class TestEncodeDecodeRoundTrip:
    @given(rd=reg, rs1=reg, rs2=reg)
    def test_r_type(self, rd, rs1, rs2):
        word = encode("add", rd=rd, rs1=rs1, rs2=rs2)
        decoded = decode(word)
        assert (decoded.name, decoded.rd, decoded.rs1, decoded.rs2) == (
            "add", rd, rs1, rs2,
        )

    @given(rd=reg, rs1=reg, imm=imm12)
    def test_i_type(self, rd, rs1, imm):
        decoded = decode(encode("addi", rd=rd, rs1=rs1, imm=imm))
        assert (decoded.rd, decoded.rs1, decoded.imm) == (rd, rs1, imm)

    @given(rs1=reg, rs2=reg, imm=imm12)
    def test_s_type(self, rs1, rs2, imm):
        decoded = decode(encode("sd", rs1=rs1, rs2=rs2, imm=imm))
        assert (decoded.rs1, decoded.rs2, decoded.imm) == (rs1, rs2, imm)

    @given(rs1=reg, rs2=reg, imm=imm13_even)
    def test_b_type(self, rs1, rs2, imm):
        decoded = decode(encode("bne", rs1=rs1, rs2=rs2, imm=imm))
        assert (decoded.rs1, decoded.rs2, decoded.imm) == (rs1, rs2, imm)

    @given(rd=reg, imm=imm21_even)
    def test_j_type(self, rd, imm):
        decoded = decode(encode("jal", rd=rd, imm=imm))
        assert (decoded.rd, decoded.imm) == (rd, imm)

    @given(rd=reg, imm=st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_u_type(self, rd, imm):
        decoded = decode(encode("lui", rd=rd, imm=imm << 12))
        assert decoded.rd == rd
        assert (decoded.imm >> 12) & 0xFFFFF == imm

    @given(rd=reg, rs1=reg, shamt=st.integers(min_value=0, max_value=63))
    def test_shift(self, rd, rs1, shamt):
        decoded = decode(encode("srai", rd=rd, rs1=rs1, shamt=shamt))
        assert (decoded.rd, decoded.rs1, decoded.shamt) == (rd, rs1, shamt)

    @given(rd=reg, rs1=reg, rs2=reg, rs3=reg,
           rm=st.sampled_from([0, 1, 2, 3, 4, 7]))
    def test_r4_type(self, rd, rs1, rs2, rs3, rm):
        decoded = decode(
            encode("fmadd.d", rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, rm=rm)
        )
        assert (decoded.rd, decoded.rs1, decoded.rs2, decoded.rs3,
                decoded.rm) == (rd, rs1, rs2, rs3, rm)

    @settings(max_examples=30)
    @given(data=st.data())
    def test_every_spec_roundtrips_with_zero_operands(self, data):
        spec = data.draw(st.sampled_from(SPECS))
        word = encode(spec.name)
        decoded = decode(word)
        assert decoded.name == spec.name


class TestDecoder:
    def test_illegal_word_raises(self):
        with pytest.raises(IllegalInstruction):
            decode(0x0000_0000)

    def test_compressed_length_rejected(self):
        with pytest.raises(IllegalInstruction):
            decode(0x0000_0001)

    def test_try_decode_returns_none(self):
        assert try_decode(0) is None
        assert try_decode(encode("add", rd=1, rs1=2, rs2=3)).name == "add"

    def test_decode_is_cached(self):
        word = encode("xor", rd=3, rs1=4, rs2=5)
        assert decode(word) is decode(word)

    @given(word=st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=200)
    def test_decode_never_crashes(self, word):
        result = try_decode(word)
        if result is not None:
            assert result.word == word & 0xFFFFFFFF


class TestAssembler:
    @pytest.mark.parametrize("text", [
        "add x1, x2, x3",
        "addi a0, a1, -42",
        "lw t0, 16(sp)",
        "sd s1, -8(a0)",
        "beq a0, a1, 64",
        "jal ra, -2048",
        "jalr zero, ra, 0",
        "lui gp, 0x12345",
        "auipc t1, 0x1000",
        "slli t2, t3, 13",
        "sraiw a2, a3, 7",
        "mul a4, a5, a6",
        "divu s2, s3, s4",
        "csrrw t0, 0x300, t1",
        "csrrsi t0, 0x003, 5",
        "fadd.d ft0, ft1, ft2",
        "fadd.s fa0, fa1, fa2, rtz",
        "fmadd.s ft0, ft1, ft2, ft3",
        "fsqrt.d ft4, ft5",
        "fld fs0, 24(a0)",
        "fsw fa0, -4(sp)",
        "feq.d a0, ft0, ft1",
        "fclass.s a1, ft2",
        "fcvt.w.d a2, ft3",
        "fcvt.d.l ft6, a3",
        "fmv.x.d a4, ft7",
        "amoadd.w t0, t1, (a2)",
        "lr.d t3, (a4)",
        "sc.w t5, t6, (a5)",
        "fence",
        "ecall",
        "ebreak",
        "mret",
    ])
    def test_assemble_disassemble_decode(self, text):
        word = assemble(text)
        decoded = decode(word)
        assert decoded.name == text.split()[0]
        # Disassembly must re-assemble to the same word (modulo rm syntax).
        rendered = disassemble(word)
        assert rendered.split()[0] == decoded.name

    def test_assemble_rejects_unknown_mnemonic(self):
        with pytest.raises(EncodeError):
            assemble("bogus x1, x2, x3")

    def test_assemble_rejects_bad_immediate(self):
        with pytest.raises(EncodeError):
            assemble("addi x1, x2, 99999")

    def test_assemble_all_skips_comments_and_blanks(self):
        words = assemble_all([
            "# comment only",
            "",
            "addi x1, x0, 1  # trailing",
            "add x2, x1, x1",
        ])
        assert len(words) == 2

    def test_disassemble_illegal(self):
        assert disassemble(0).startswith(".word")
