"""Cascade baseline (Solt et al., USENIX Security 2024) — behavioural model.

Cascade constructs *valid-by-construction* programs with intricate control
and data flow and no runtime feedback loop (it is not coverage-guided).
The properties the paper measures against:

* high prevalence (avg 0.93): programs are almost entirely fuzzing
  instructions with a small init stub,
* intricate but *terminating* control flow: forward jumps with entangled
  data dependencies,
* no corpus / no coverage feedback — each program is independent,
* software-only execution (RTL simulation throughput).

It reuses the TurboFuzz block builder for architectural validity but keeps
its own program shaping: moderate jump windows, chained register
dependencies, and a deliberate absence of feedback.
"""

from dataclasses import dataclass, field

from repro.fuzzer.blocks import BlockBuilder, Iteration
from repro.fuzzer.config import TurboFuzzConfig
from repro.fuzzer.context import FuzzContext, MemoryLayout
from repro.fuzzer.instrlib import InstructionLibrary
from repro.fuzzer.lfsr import Lfsr
from repro.isa.encoder import encode
from repro.isa.instructions import Category, Extension


@dataclass
class CascadeConfig:
    """Cascade knobs (defaults match the Table I operating point)."""

    instructions_per_iteration: int = 400
    init_instructions: int = 8
    jump_window_blocks: int = 4
    control_flow_weight: int = 3
    extensions: frozenset = field(
        default_factory=lambda: frozenset(
            {Extension.I, Extension.M, Extension.A, Extension.F,
             Extension.D, Extension.ZICSR, Extension.SYSTEM}
        )
    )
    seed: int = 0xCA5CADE


class CascadeFuzzer:
    """Program-generation fuzzer without coverage feedback."""

    name = "cascade"

    def __init__(self, config=None, layout=None):
        self.config = config or CascadeConfig()
        self.layout = layout or MemoryLayout()
        self.lfsr = Lfsr(self.config.seed)
        # Cascade's generation is valid-by-construction: it never emits
        # invalid rounding modes and constrains all memory traffic, which
        # the TurboFuzz context/builder machinery already provides.
        inner = TurboFuzzConfig(
            jump_window_blocks=self.config.jump_window_blocks,
            invalid_rm_prob=(0, 2),
            seed=self.config.seed,
        )
        self.context = FuzzContext(self.lfsr, inner, self.layout)
        self.library = InstructionLibrary(self.config.extensions)
        self.builder = BlockBuilder(self.context)
        self._weights = {
            Category.BRANCH: self.config.control_flow_weight,
            Category.JUMP: 1,
            Category.ALU: 2,
            Category.ALU_IMM: 2,
            Category.LOAD: 2,
            Category.STORE: 2,
            Category.SYSTEM: 0,
        }
        self.iterations = 0

    def _init_stub(self):
        """Small register-init stub (Cascade's ~7% non-fuzzing share)."""
        words = []
        for position in range(self.config.init_instructions):
            register = 7 + (position % 22)
            words.append(
                encode("addi", rd=register, rs1=0,
                       imm=self.lfsr.bits(11))
            )
        return words

    def generate_iteration(self, instruction_budget=None):
        """One independent valid-by-construction program."""
        budget = instruction_budget or self.config.instructions_per_iteration
        blocks = []
        total = 0
        index = 0
        while total < budget:
            spec = self.library.sample_weighted(self.lfsr, self._weights)
            block = self.builder.build(
                spec, index, budget, self.config.jump_window_blocks
            )
            blocks.append(block)
            total += block.size
            index += 1
        iteration = Iteration(
            blocks=blocks,
            layout=self.layout,
            data_seed=self.lfsr.next(),
            setup_words=self._init_stub(),
        )
        iteration.assemble()
        self.iterations += 1
        return iteration

    # -- checkpoint protocol -----------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot (no corpus: LFSR + counter only)."""
        return {
            "lfsr": self.lfsr.state_dict(),
            "iterations": self.iterations,
            "library": self.library.state_dict(),
        }

    def load_state(self, state):
        self.lfsr.load_state(state["lfsr"])
        self.iterations = int(state["iterations"])
        if "library" in state:  # older checkpoints predate the library key
            self.library.load_state(state["library"])

    def feedback(self, iteration, coverage_increment):
        """Cascade is not coverage-guided: feedback is discarded."""
