"""DifuzzRTL baseline (Hur et al., S&P 2021) — behavioural model.

Captures the properties the paper measures against:

* coverage-guided mutation over a **FIFO** corpus (the scheduling the
  paper's Section IV-D improves on),
* **unconstrained forward jumps**: a control-flow instruction lands
  uniformly in the remaining iteration (paper eq. 1), so execution skips
  most generated instructions,
* **heavy per-iteration setup routines** (register-file initialization),
  which drag prevalence below 0.2 (Fig. 4 / Fig. 8),
* raw operand randomization: any register (including the harness base
  registers) and unconstrained displacements, so memory operations
  frequently fault.

Instruction generation quality — not the coverage metric — is what
differentiates it from TurboFuzz; it shares the instruction library and
runs on the same DUT + instrumentation.
"""

from dataclasses import dataclass, field

from repro.fuzzer.blocks import InstructionBlock, Iteration, StimulusEntry
from repro.fuzzer.context import MemoryLayout
from repro.fuzzer.instrlib import InstructionLibrary
from repro.fuzzer.lfsr import Lfsr
from repro.isa.encoder import encode
from repro.isa.instructions import Category, Extension


@dataclass
class DifuzzRtlConfig:
    """DifuzzRTL knobs (defaults match the Table I operating point)."""

    instructions_per_iteration: int = 1000
    setup_instructions: int = 140  # per-iteration register init routines
    corpus_capacity: int = 64
    mutation_prob: tuple = (1, 2)  # mutate a stored seed vs generate fresh
    flip_bits: int = 4             # AFL-style bit flips per mutation
    control_flow_weight: int = 6   # yields the >1/6 cf share of Fig. 4
    extensions: frozenset = field(
        default_factory=lambda: frozenset(
            {Extension.I, Extension.M, Extension.A, Extension.F,
             Extension.D, Extension.ZICSR, Extension.SYSTEM}
        )
    )
    seed: int = 0xD1F055


class DifuzzRtlFuzzer:
    """Coverage-guided software fuzzer with FIFO corpus scheduling."""

    name = "difuzzrtl"

    def __init__(self, config=None, layout=None):
        self.config = config or DifuzzRtlConfig()
        self.layout = layout or MemoryLayout()
        self.lfsr = Lfsr(self.config.seed)
        # jalr through a garbage register is an instant wild jump; the real
        # DifuzzRTL generator sticks to direct jumps for the same reason.
        self.library = InstructionLibrary(self.config.extensions,
                                          exclude=("jalr",))
        self._weights = {
            Category.BRANCH: self.config.control_flow_weight,
            Category.JUMP: self.config.control_flow_weight,
            Category.SYSTEM: 0,
        }
        self.corpus = []  # FIFO of word lists
        self.iterations = 0
        self._pending = None

    # -- generation ------------------------------------------------------------
    def _setup_routine(self):
        """Register-file initialization: the non-fuzzing routine code."""
        words = []
        lfsr = self.lfsr
        budget = self.config.setup_instructions
        counter = 0
        while len(words) < budget:
            # Integer pool 7..28 keeps the harness pointer registers
            # (x5/x6) intact, like the real tool's reserved registers.
            register = 7 + (counter % 22)
            if counter % 3 == 2:
                # move an initialized integer pattern into the FP file;
                # every fourth move seeds a zero (fresh register files
                # come up zeroed, which the real tool also relies on).
                source = 0 if counter % 12 == 2 else register
                words.append(encode("fmv.d.x", rd=counter % 32, rs1=source))
            elif counter % 2:
                words.append(
                    encode("addi", rd=register, rs1=register,
                           imm=lfsr.bits(11))
                )
            else:
                words.append(
                    encode("lui", rd=register, imm=lfsr.bits(19) << 12)
                )
            counter += 1
        return words[:budget]

    def _random_word(self, index, total):
        """One raw random instruction (DifuzzRTL's generation quality)."""
        lfsr = self.lfsr
        spec = self.library.sample_weighted(lfsr, self._weights)
        fmt = spec.fmt
        if fmt == "B":
            word = encode(spec.name, rs1=lfsr.below(30), rs2=lfsr.below(30), imm=4)
            return word, "branch", self._far_target(index, total)
        if spec.name == "jal":
            word = encode("jal", rd=lfsr.below(30), imm=4)
            return word, "jal", self._far_target(index, total)
        # Everything else: mostly-raw operand randomization.  Memory ops
        # use the managed base register most of the time (DifuzzRTL does
        # maintain a memory map) but occasionally a garbage register, and
        # rounding modes are drawn from a pool with a small invalid share —
        # both cause the occasional iteration-killing fault.
        if spec.is_memory and lfsr.chance((7, 8)):
            rs1 = 5  # the managed data base register
        else:
            rs1 = lfsr.below(30)
        try:
            word = encode(
                spec.name,
                rd=lfsr.below(30),
                rs1=rs1,
                rs2=lfsr.below(30),
                rs3=lfsr.below(30),
                imm=lfsr.bits(11) - 1024,
                csr=lfsr.choice((0x001, 0x002, 0x003, 0x300, 0x340, 0x341,
                                 0x342, 0x343, 0xB02)),
                shamt=lfsr.below(32 if fmt == "R_SHW" else 64),
                rm=lfsr.choice((0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 7, 7, 7, 7, 7, 5)),
                zimm=lfsr.bits(5),
            )
        except Exception:
            word = encode("addi", rd=lfsr.below(30), rs1=lfsr.below(30),
                          imm=lfsr.bits(11))
        return word, "", None

    def _far_target(self, index, total):
        """Unbounded forward target (eq. 1's uniform landing)."""
        if index + 1 >= total:
            return None
        return index + 1 + self.lfsr.below(total - index - 1)

    def _generate_words(self):
        blocks = []
        total = self.config.instructions_per_iteration
        for index in range(total):
            word, cf_kind, target = self._random_word(index, total)
            entry = StimulusEntry(
                word,
                needs_target_patch=cf_kind != "" and target is not None,
                patch_kind=cf_kind if cf_kind else "",
            )
            blocks.append(
                InstructionBlock(
                    prime_name="addi" if not cf_kind else
                    ("jal" if cf_kind == "jal" else "beq"),
                    entries=[entry],
                    cf_kind=cf_kind,
                    target_block=target,
                )
            )
        return blocks

    def _mutate_blocks(self, parent_blocks):
        """AFL-style bit flips over the stored stimulus."""
        lfsr = self.lfsr
        blocks = [block.clone() for block in parent_blocks]
        for _ in range(self.config.flip_bits):
            victim = blocks[lfsr.below(len(blocks))]
            entry = victim.entries[0]
            if entry.needs_target_patch:
                continue
            entry.word ^= 1 << (7 + lfsr.below(25))
        return blocks

    def generate_iteration(self, instruction_budget=None):
        """Next iteration: mutate a stored seed or generate fresh."""
        if self.corpus and self.lfsr.chance(self.config.mutation_prob):
            blocks = self._mutate_blocks(self.lfsr.choice(self.corpus))
        else:
            blocks = self._generate_words()
        iteration = Iteration(
            blocks=blocks,
            layout=self.layout,
            data_seed=self.lfsr.next(),
            setup_words=self._setup_routine(),
        )
        iteration.assemble()
        self.iterations += 1
        self._pending = iteration
        return iteration

    # -- feedback ----------------------------------------------------------------
    def feedback(self, iteration, coverage_increment):
        """Coverage-guided, FIFO-evicted corpus insertion."""
        self._pending = None
        if coverage_increment > 0:
            self.corpus.append([block.clone() for block in iteration.blocks])
            if len(self.corpus) > self.config.corpus_capacity:
                self.corpus.pop(0)  # FIFO: oldest seed goes first

    # -- checkpoint protocol -----------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot (LFSR + FIFO corpus + counter)."""
        if self._pending is not None:
            raise ValueError(
                "cannot checkpoint mid-iteration: feedback() has not been "
                "called for the last generated iteration"
            )
        return {
            "lfsr": self.lfsr.state_dict(),
            "corpus": [[block.state_dict() for block in blocks]
                       for blocks in self.corpus],
            "iterations": self.iterations,
            "library": self.library.state_dict(),
        }

    def load_state(self, state):
        from repro.fuzzer.blocks import InstructionBlock

        self.lfsr.load_state(state["lfsr"])
        self.corpus = [
            [InstructionBlock.from_state(block) for block in blocks]
            for blocks in state["corpus"]
        ]
        self.iterations = int(state["iterations"])
        if "library" in state:  # older checkpoints predate the library key
            self.library.load_state(state["library"])
        self._pending = None
