"""Software-fuzzer baselines the paper compares against.

Both implement the same fuzzer protocol as :class:`~repro.fuzzer.TurboFuzzer`
(``generate_iteration()`` / ``feedback()``) so a
:class:`~repro.harness.session.FuzzSession` can drive any of the three with
the matching per-iteration timing model from :mod:`repro.harness.timing`.
"""

from repro.baselines.difuzzrtl import DifuzzRtlFuzzer, DifuzzRtlConfig
from repro.baselines.cascade import CascadeFuzzer, CascadeConfig

__all__ = [
    "DifuzzRtlFuzzer",
    "DifuzzRtlConfig",
    "CascadeFuzzer",
    "CascadeConfig",
]
