"""A generic name -> entry registry with decorator-style registration.

Lives at the package root (below every subsystem) so that low-level
packages like :mod:`repro.coverage` can host registries of their own
without importing :mod:`repro.campaign` — which sits *above* them and
would create an import cycle.  The campaign package re-exports
:class:`Registry` for backward compatibility.
"""


class Registry:
    """A name -> entry mapping with decorator-style registration."""

    def __init__(self, kind):
        self.kind = kind
        self._entries = {}

    def register(self, name, entry=None, replace=False):
        """Register ``entry`` under ``name``; with ``entry=None`` returns a
        decorator.  Re-registering an existing name requires ``replace``."""
        if entry is None:
            return lambda obj: self.register(name, obj, replace=replace)
        if name in self._entries and not replace:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = entry
        return entry

    def unregister(self, name):
        self._entries.pop(name, None)

    def get(self, name):
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise ValueError(
                f"unknown {self.kind} {name!r} (registered: {known})"
            ) from None

    def names(self):
        return sorted(self._entries)

    def __contains__(self, name):
        return name in self._entries

    def __iter__(self):
        return iter(sorted(self._entries))

    def __len__(self):
        return len(self._entries)
