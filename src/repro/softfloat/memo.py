"""Memoization for the pure softfloat entry points.

Every public operation here is a pure function of its bit-pattern
arguments (formats are frozen singletons, rounding modes small ints), and
fuzzing campaigns re-execute the same FP operations constantly — retained
corpus blocks replay whole instruction sequences, and the operand pool is
anchored by the interesting-values table.  Memoizing at the operation
boundary keeps the exact-rational arithmetic bit-exact (the cached value
*is* the computed value) while skipping the unpack/round pipeline on
repeats.  Caches are bounded with the shared evict-half policy.
"""

from functools import wraps

from repro.perf.evict import evict_half

_MEMO_LIMIT = 1 << 18


def memoize_fp(fn):
    """Memoize a pure positional-args softfloat operation."""
    cache = {}

    @wraps(fn)
    def wrapper(*args, **kwargs):
        if kwargs:
            # Rare (tests/interactive use); the executor calls positionally.
            key = args + tuple(sorted(kwargs.items()))
        else:
            key = args
        result = cache.get(key)
        if result is None:
            result = fn(*args, **kwargs)
            if len(cache) >= _MEMO_LIMIT:
                evict_half(cache)
            cache[key] = result
        return result

    wrapper.cache = cache
    return wrapper
