"""Bit-exact IEEE-754 software floating point with RISC-V fflags.

The DUT FPU bugs of Table II (wrong fflags, wrong rounding, NaN-boxing
mishandling, sign errors) are all *architecturally visible* deviations from
IEEE-754 semantics, so the reproduction needs a golden FP implementation that
gets flags and rounding exactly right.  This package computes operations on
exact rationals and rounds explicitly, which makes every rounding mode and
every flag (NV/DZ/OF/UF/NX) bit-accurate.
"""

from repro.softfloat.formats import (
    F32,
    F64,
    FloatFormat,
    unpack,
    pack,
    is_nan,
    is_snan,
    is_inf,
    is_zero,
    is_subnormal,
    canonical_nan,
    nan_box,
    nan_unbox,
    is_nan_boxed,
)
from repro.softfloat.rounding import round_to_format
from repro.softfloat.arith import fp_add, fp_sub, fp_mul, fp_div, fp_sqrt, fp_fma
from repro.softfloat.compare import fp_min, fp_max, fp_eq, fp_lt, fp_le, fp_classify
from repro.softfloat.convert import (
    fp_to_int,
    int_to_fp,
    fp_to_fp,
)

__all__ = [
    "F32",
    "F64",
    "FloatFormat",
    "unpack",
    "pack",
    "is_nan",
    "is_snan",
    "is_inf",
    "is_zero",
    "is_subnormal",
    "canonical_nan",
    "nan_box",
    "nan_unbox",
    "is_nan_boxed",
    "round_to_format",
    "fp_add",
    "fp_sub",
    "fp_mul",
    "fp_div",
    "fp_sqrt",
    "fp_fma",
    "fp_min",
    "fp_max",
    "fp_eq",
    "fp_lt",
    "fp_le",
    "fp_classify",
    "fp_to_int",
    "int_to_fp",
    "fp_to_fp",
]
