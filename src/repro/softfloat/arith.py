"""IEEE-754 arithmetic on bit patterns: add, sub, mul, div, sqrt, fma.

All functions take and return raw bit patterns for the given
:class:`~repro.softfloat.formats.FloatFormat`, together with an fflags
bitmask.  NaN results are always the RISC-V canonical quiet NaN.
"""

from fractions import Fraction
from math import isqrt

from repro.isa.csr import FFLAGS_DZ, FFLAGS_NV, FFLAGS_NX, RM_RDN
from repro.softfloat.formats import (
    canonical_nan,
    inf_bits_signed,
    is_inf,
    is_nan,
    is_snan,
    is_zero,
    sign_of,
    unpack,
    zero_bits,
)
from repro.softfloat.rounding import _floor_log2, round_to_format
from repro.softfloat.memo import memoize_fp


def _nan_result(fmt, invalid):
    return canonical_nan(fmt), FFLAGS_NV if invalid else 0


def _propagate_nan(operands, fmt):
    """Handle NaN inputs: returns (result, flags) or None if no NaN."""
    any_nan = False
    any_snan = False
    for bits_value in operands:
        if is_nan(bits_value, fmt):
            any_nan = True
            if is_snan(bits_value, fmt):
                any_snan = True
    if any_nan:
        return _nan_result(fmt, any_snan)
    return None


def _zero_sign_for_sum(sign_a, sign_b, rm):
    """Sign of an exact-zero sum per IEEE: equal signs keep the sign,
    otherwise the result is +0 except in round-down mode."""
    if sign_a == sign_b:
        return sign_a
    return 1 if rm == RM_RDN else 0


@memoize_fp
def fp_add(a, b, fmt, rm):
    """a + b."""
    nan = _propagate_nan((a, b), fmt)
    if nan is not None:
        return nan
    sa, sb = sign_of(a, fmt), sign_of(b, fmt)
    inf_a, inf_b = is_inf(a, fmt), is_inf(b, fmt)
    if inf_a and inf_b:
        if sa != sb:
            return _nan_result(fmt, True)
        return inf_bits_signed(sa, fmt), 0
    if inf_a:
        return inf_bits_signed(sa, fmt), 0
    if inf_b:
        return inf_bits_signed(sb, fmt), 0
    if is_zero(a, fmt) and is_zero(b, fmt):
        return zero_bits(_zero_sign_for_sum(sa, sb, rm), fmt), 0
    exact = unpack(a, fmt) + unpack(b, fmt)
    zero_sign = 1 if rm == RM_RDN else 0  # cancellation produces +0 (or -0 RDN)
    return round_to_format(exact, fmt, rm, zero_sign=zero_sign)


def fp_sub(a, b, fmt, rm):
    """a - b, implemented as a + (-b) with the sign bit flipped first."""
    if is_nan(b, fmt):
        # Avoid flipping NaN signs (would lose sNaN detection on payload).
        return fp_add(a, b, fmt, rm)
    return fp_add(a, b ^ fmt.sign_bit, fmt, rm)


@memoize_fp
def fp_mul(a, b, fmt, rm):
    """a * b."""
    nan = _propagate_nan((a, b), fmt)
    if nan is not None:
        return nan
    sa, sb = sign_of(a, fmt), sign_of(b, fmt)
    sign = sa ^ sb
    inf_a, inf_b = is_inf(a, fmt), is_inf(b, fmt)
    zero_a, zero_b = is_zero(a, fmt), is_zero(b, fmt)
    if (inf_a and zero_b) or (inf_b and zero_a):
        return _nan_result(fmt, True)
    if inf_a or inf_b:
        return inf_bits_signed(sign, fmt), 0
    if zero_a or zero_b:
        return zero_bits(sign, fmt), 0
    exact = unpack(a, fmt) * unpack(b, fmt)
    return round_to_format(exact, fmt, rm, zero_sign=sign)


@memoize_fp
def fp_div(a, b, fmt, rm):
    """a / b, raising DZ for finite/0 and NV for 0/0 and inf/inf."""
    nan = _propagate_nan((a, b), fmt)
    if nan is not None:
        return nan
    sa, sb = sign_of(a, fmt), sign_of(b, fmt)
    sign = sa ^ sb
    inf_a, inf_b = is_inf(a, fmt), is_inf(b, fmt)
    zero_a, zero_b = is_zero(a, fmt), is_zero(b, fmt)
    if inf_a and inf_b:
        return _nan_result(fmt, True)
    if zero_a and zero_b:
        return _nan_result(fmt, True)
    if inf_a:
        return inf_bits_signed(sign, fmt), 0
    if inf_b:
        return zero_bits(sign, fmt), 0
    if zero_b:
        return inf_bits_signed(sign, fmt), FFLAGS_DZ
    if zero_a:
        return zero_bits(sign, fmt), 0
    exact = unpack(a, fmt) / unpack(b, fmt)
    return round_to_format(exact, fmt, rm, zero_sign=sign)


@memoize_fp
def fp_sqrt(a, fmt, rm):
    """sqrt(a), correctly rounded via integer square root with guard bits."""
    nan = _propagate_nan((a,), fmt)
    if nan is not None:
        return nan
    sign = sign_of(a, fmt)
    if is_zero(a, fmt):
        return a, 0  # sqrt(±0) = ±0
    if sign:
        return _nan_result(fmt, True)
    if is_inf(a, fmt):
        return a, 0
    exact = unpack(a, fmt)
    # Normalize to f * 4^q with f in [1, 4), then take the integer square
    # root of f scaled by 2^(2*guard): the root carries guard bits of
    # precision *relative to the result* regardless of the argument's
    # magnitude.  sqrt of a non-square rational is irrational, so the
    # guard bits decide rounding unambiguously; exact squares are detected
    # and rounded exactly.
    guard = fmt.man_bits + 8
    exponent = _floor_log2(exact)
    q = exponent >> 1  # arithmetic floor also for negatives
    normalized = exact / (Fraction(2) ** (2 * q))
    num = normalized.numerator << (2 * guard)
    den = normalized.denominator
    scaled = num // den
    root = isqrt(scaled)
    scale = Fraction(2) ** q
    if root * root == scaled and scaled * den == num:
        approx = Fraction(root, 1 << guard) * scale
        return round_to_format(approx, fmt, rm, zero_sign=0)
    # Irrational (or inexact at this precision): nudge the approximation
    # off any representable boundary so rounding sees a strictly-inexact
    # value.
    approx = Fraction(2 * root + 1, 1 << (guard + 1)) * scale
    bits_value, flags = round_to_format(approx, fmt, rm, zero_sign=0)
    return bits_value, flags | FFLAGS_NX


@memoize_fp
def fp_fma(a, b, c, fmt, rm, negate_product=False, negate_c=False):
    """Fused multiply-add ``±(a*b) ± c`` with a single rounding.

    ``negate_product``/``negate_c`` implement the fmsub/fnmsub/fnmadd
    variants.  Invalid (inf*0) is detected even when ``c`` is a quiet NaN,
    as IEEE-754 requires.
    """
    sa, sb = sign_of(a, fmt), sign_of(b, fmt)
    product_invalid = (is_inf(a, fmt) and is_zero(b, fmt)) or (
        is_inf(b, fmt) and is_zero(a, fmt)
    )
    nan = _propagate_nan((a, b, c), fmt)
    if nan is not None:
        result, flags = nan
        if product_invalid:
            flags |= FFLAGS_NV
        return result, flags
    if product_invalid:
        return _nan_result(fmt, True)

    product_sign = sa ^ sb
    if negate_product:
        product_sign ^= 1
    sc = sign_of(c, fmt)
    if negate_c:
        sc ^= 1
    product_inf = is_inf(a, fmt) or is_inf(b, fmt)
    c_inf = is_inf(c, fmt)
    if product_inf and c_inf:
        if product_sign != sc:
            return _nan_result(fmt, True)
        return inf_bits_signed(product_sign, fmt), 0
    if product_inf:
        return inf_bits_signed(product_sign, fmt), 0
    if c_inf:
        return inf_bits_signed(sc, fmt), 0

    product_zero = is_zero(a, fmt) or is_zero(b, fmt)
    c_zero = is_zero(c, fmt)
    if product_zero and c_zero:
        return zero_bits(_zero_sign_for_sum(product_sign, sc, rm), fmt), 0

    product = unpack(a, fmt) * unpack(b, fmt)
    if negate_product:
        product = -product
    addend = unpack(c, fmt)
    if negate_c:
        addend = -addend
    exact = product + addend
    zero_sign = 1 if rm == RM_RDN else 0
    return round_to_format(exact, fmt, rm, zero_sign=zero_sign)
