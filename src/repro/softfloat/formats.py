"""IEEE-754 binary32/binary64 format descriptions and bit-level helpers."""

from dataclasses import dataclass
from fractions import Fraction


@dataclass(frozen=True)
class FloatFormat:
    """Static parameters of a binary interchange format."""

    name: str
    width: int
    exp_bits: int
    man_bits: int

    @property
    def bias(self):
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def emax(self):
        return self.bias

    @property
    def emin(self):
        return 1 - self.bias

    @property
    def exp_mask(self):
        return (1 << self.exp_bits) - 1

    @property
    def man_mask(self):
        return (1 << self.man_bits) - 1

    @property
    def sign_bit(self):
        return 1 << (self.width - 1)

    @property
    def quiet_bit(self):
        return 1 << (self.man_bits - 1)

    @property
    def max_finite(self):
        """Bit pattern of the largest finite positive value."""
        return ((self.exp_mask - 1) << self.man_bits) | self.man_mask

    @property
    def inf_bits(self):
        return self.exp_mask << self.man_bits

    @property
    def canonical_nan_bits(self):
        return self.inf_bits | self.quiet_bit


F32 = FloatFormat("binary32", 32, 8, 23)
F64 = FloatFormat("binary64", 64, 11, 52)


def split(bits_value, fmt):
    """Split a bit pattern into ``(sign, biased_exp, mantissa)``."""
    mantissa = bits_value & fmt.man_mask
    biased = (bits_value >> fmt.man_bits) & fmt.exp_mask
    sign = (bits_value >> (fmt.width - 1)) & 1
    return sign, biased, mantissa


def is_nan(bits_value, fmt):
    sign, biased, mantissa = split(bits_value, fmt)
    return biased == fmt.exp_mask and mantissa != 0


def is_snan(bits_value, fmt):
    sign, biased, mantissa = split(bits_value, fmt)
    return biased == fmt.exp_mask and mantissa != 0 and not mantissa & fmt.quiet_bit


def is_inf(bits_value, fmt):
    sign, biased, mantissa = split(bits_value, fmt)
    return biased == fmt.exp_mask and mantissa == 0


def is_zero(bits_value, fmt):
    sign, biased, mantissa = split(bits_value, fmt)
    return biased == 0 and mantissa == 0


def is_subnormal(bits_value, fmt):
    sign, biased, mantissa = split(bits_value, fmt)
    return biased == 0 and mantissa != 0


def sign_of(bits_value, fmt):
    return (bits_value >> (fmt.width - 1)) & 1


def canonical_nan(fmt):
    """RISC-V canonical quiet NaN for the format."""
    return fmt.canonical_nan_bits


def unpack(bits_value, fmt):
    """Convert a finite bit pattern to an exact :class:`Fraction`.

    Infinities and NaNs must be filtered by the caller; they have no exact
    rational value.
    """
    sign, biased, mantissa = split(bits_value, fmt)
    if biased == fmt.exp_mask:
        raise ValueError("cannot unpack non-finite value")
    if biased == 0:
        if mantissa == 0:
            return Fraction(0)
        value = Fraction(mantissa, 1 << fmt.man_bits) * Fraction(2) ** fmt.emin
    else:
        significand = Fraction((1 << fmt.man_bits) | mantissa, 1 << fmt.man_bits)
        value = significand * Fraction(2) ** (biased - fmt.bias)
    return -value if sign else value


def pack(sign, biased, mantissa, fmt):
    """Assemble a bit pattern from its fields."""
    return (
        ((sign & 1) << (fmt.width - 1))
        | ((biased & fmt.exp_mask) << fmt.man_bits)
        | (mantissa & fmt.man_mask)
    )


def zero_bits(sign, fmt):
    return pack(sign, 0, 0, fmt)


def inf_bits_signed(sign, fmt):
    return pack(sign, fmt.exp_mask, 0, fmt)


def max_finite_signed(sign, fmt):
    return pack(sign, fmt.exp_mask - 1, fmt.man_mask, fmt)


# --- NaN boxing (RISC-V F-in-D registers) ------------------------------------
_BOX_MASK = 0xFFFFFFFF_00000000


def nan_box(bits32):
    """Box a binary32 value into a 64-bit FP register value."""
    return _BOX_MASK | (bits32 & 0xFFFFFFFF)


def is_nan_boxed(bits64):
    """True when the upper 32 bits are all ones (a valid box)."""
    return bits64 & _BOX_MASK == _BOX_MASK


def nan_unbox(bits64):
    """Extract the binary32 payload; improper boxes yield the canonical NaN.

    This is the architecturally mandated behaviour that bug C3/C6 violates.
    """
    if is_nan_boxed(bits64):
        return bits64 & 0xFFFFFFFF
    return F32.canonical_nan_bits
