"""IEEE-754 comparisons, min/max and classification (RISC-V semantics)."""

from repro.isa.csr import FFLAGS_NV
from repro.softfloat.formats import (
    canonical_nan,
    is_inf,
    is_nan,
    is_snan,
    is_subnormal,
    is_zero,
    sign_of,
    unpack,
)
from repro.softfloat.memo import memoize_fp


def _ordered_lt(a, b, fmt):
    """a < b for non-NaN operands, honouring -0 == +0."""
    za, zb = is_zero(a, fmt), is_zero(b, fmt)
    if za and zb:
        return False
    sa, sb = sign_of(a, fmt), sign_of(b, fmt)
    ia, ib = is_inf(a, fmt), is_inf(b, fmt)
    if ia or ib:
        va = float("-inf") if (ia and sa) else float("inf") if ia else None
        vb = float("-inf") if (ib and sb) else float("inf") if ib else None
        if va is None:
            return vb == float("inf")
        if vb is None:
            return va == float("-inf")
        return va < vb
    return unpack(a, fmt) < unpack(b, fmt)


@memoize_fp
def fp_eq(a, b, fmt):
    """feq: quiet comparison; NV only for signalling NaN operands."""
    flags = 0
    if is_snan(a, fmt) or is_snan(b, fmt):
        flags |= FFLAGS_NV
    if is_nan(a, fmt) or is_nan(b, fmt):
        return 0, flags
    if is_zero(a, fmt) and is_zero(b, fmt):
        return 1, flags
    equal = not _ordered_lt(a, b, fmt) and not _ordered_lt(b, a, fmt)
    return (1 if equal else 0), flags


@memoize_fp
def fp_lt(a, b, fmt):
    """flt: signalling comparison; NV for any NaN operand."""
    if is_nan(a, fmt) or is_nan(b, fmt):
        return 0, FFLAGS_NV
    return (1 if _ordered_lt(a, b, fmt) else 0), 0


@memoize_fp
def fp_le(a, b, fmt):
    """fle: signalling comparison; NV for any NaN operand."""
    if is_nan(a, fmt) or is_nan(b, fmt):
        return 0, FFLAGS_NV
    return (1 if not _ordered_lt(b, a, fmt) else 0), 0


def _minmax(a, b, fmt, want_max):
    """Common min/max: NaN operands yield the other operand (or canonical
    NaN if both); signalling NaNs raise NV; -0 orders below +0."""
    flags = 0
    if is_snan(a, fmt) or is_snan(b, fmt):
        flags |= FFLAGS_NV
    nan_a, nan_b = is_nan(a, fmt), is_nan(b, fmt)
    if nan_a and nan_b:
        return canonical_nan(fmt), flags
    if nan_a:
        return b, flags
    if nan_b:
        return a, flags
    if is_zero(a, fmt) and is_zero(b, fmt):
        sa, sb = sign_of(a, fmt), sign_of(b, fmt)
        if want_max:
            return (a if sa == 0 else b), flags
        return (a if sa == 1 else b), flags
    a_lt_b = _ordered_lt(a, b, fmt)
    if want_max:
        return (b if a_lt_b else a), flags
    return (a if a_lt_b else b), flags


@memoize_fp
def fp_min(a, b, fmt):
    """fmin.s / fmin.d."""
    return _minmax(a, b, fmt, want_max=False)


@memoize_fp
def fp_max(a, b, fmt):
    """fmax.s / fmax.d."""
    return _minmax(a, b, fmt, want_max=True)


# fclass result bits (RISC-V spec table)
CLASS_NEG_INF = 1 << 0
CLASS_NEG_NORMAL = 1 << 1
CLASS_NEG_SUBNORMAL = 1 << 2
CLASS_NEG_ZERO = 1 << 3
CLASS_POS_ZERO = 1 << 4
CLASS_POS_SUBNORMAL = 1 << 5
CLASS_POS_NORMAL = 1 << 6
CLASS_POS_INF = 1 << 7
CLASS_SNAN = 1 << 8
CLASS_QNAN = 1 << 9


@memoize_fp
def fp_classify(a, fmt):
    """fclass: one-hot classification mask."""
    if is_nan(a, fmt):
        return CLASS_SNAN if is_snan(a, fmt) else CLASS_QNAN
    sign = sign_of(a, fmt)
    if is_inf(a, fmt):
        return CLASS_NEG_INF if sign else CLASS_POS_INF
    if is_zero(a, fmt):
        return CLASS_NEG_ZERO if sign else CLASS_POS_ZERO
    if is_subnormal(a, fmt):
        return CLASS_NEG_SUBNORMAL if sign else CLASS_POS_SUBNORMAL
    return CLASS_NEG_NORMAL if sign else CLASS_POS_NORMAL
