"""Correct rounding of exact rational values into IEEE-754 formats.

This module is the single place where inexact (NX), overflow (OF) and
underflow (UF) flags are decided, so every arithmetic op shares identical
rounding behaviour.  Tininess is detected *after* rounding, matching the
RISC-V-recommended convention.
"""

from fractions import Fraction

from repro.isa.csr import (
    FFLAGS_NX,
    FFLAGS_OF,
    FFLAGS_UF,
    RM_RDN,
    RM_RMM,
    RM_RNE,
    RM_RTZ,
    RM_RUP,
)
from repro.softfloat.formats import (
    inf_bits_signed,
    max_finite_signed,
    pack,
    zero_bits,
)


def _floor_log2(mag):
    """Exact floor(log2(mag)) for a positive Fraction."""
    num, den = mag.numerator, mag.denominator
    estimate = num.bit_length() - den.bit_length()
    if estimate >= 0:
        if num >= den << estimate:
            return estimate
        return estimate - 1
    if num << -estimate >= den:
        return estimate
    return estimate - 1


def _round_increment(n, rem_num, rem_den, rm, sign):
    """Decide whether to bump the truncated significand by one ulp."""
    if rem_num == 0:
        return False
    if rm == RM_RNE:
        twice = 2 * rem_num
        return twice > rem_den or (twice == rem_den and n & 1)
    if rm == RM_RTZ:
        return False
    if rm == RM_RDN:
        return sign == 1
    if rm == RM_RUP:
        return sign == 0
    if rm == RM_RMM:
        return 2 * rem_num >= rem_den
    raise ValueError(f"invalid rounding mode {rm}")


def _overflow_result(sign, rm, fmt):
    """Result bit pattern on overflow: infinity or max finite, per rm."""
    if rm == RM_RTZ:
        return max_finite_signed(sign, fmt)
    if rm == RM_RDN and sign == 0:
        return max_finite_signed(0, fmt)
    if rm == RM_RUP and sign == 1:
        return max_finite_signed(1, fmt)
    return inf_bits_signed(sign, fmt)


def round_to_format(value, fmt, rm, zero_sign=0):
    """Round an exact :class:`Fraction` into ``fmt`` under rounding mode ``rm``.

    Returns ``(bits, flags)``.  ``zero_sign`` supplies the sign used when the
    exact value is zero (the sign of an exact-zero result is operation
    dependent and decided by the caller).
    """
    flags = 0
    if value == 0:
        return zero_bits(zero_sign, fmt), flags

    sign = 1 if value < 0 else 0
    mag = -value if sign else value
    exponent = _floor_log2(mag)

    if exponent < fmt.emin:
        scale = fmt.emin - fmt.man_bits  # subnormal quantum
    else:
        scale = exponent - fmt.man_bits

    scaled = mag * (Fraction(2) ** -scale)
    n, rem = divmod(scaled.numerator, scaled.denominator)
    inexact = rem != 0
    if _round_increment(n, rem, scaled.denominator, rm, sign):
        n += 1

    if inexact:
        flags |= FFLAGS_NX

    if exponent < fmt.emin:
        # Subnormal scale: n is the raw subnormal mantissa (may round up to
        # the smallest normal, 1 << man_bits).
        if n >= (1 << fmt.man_bits):
            bits_value = pack(sign, 1, 0, fmt)  # smallest normal
            return bits_value, flags
        if inexact:
            flags |= FFLAGS_UF  # tiny after rounding and inexact
        return pack(sign, 0, n, fmt), flags

    # Normal scale: n in [2^man_bits, 2^(man_bits+1)] after rounding.
    if n >= (1 << (fmt.man_bits + 1)):
        n >>= 1
        exponent += 1
    if exponent > fmt.emax:
        flags |= FFLAGS_OF | FFLAGS_NX
        return _overflow_result(sign, rm, fmt), flags
    biased = exponent + fmt.bias
    return pack(sign, biased, n & fmt.man_mask, fmt), flags


def round_to_int(value, rm):
    """Round an exact :class:`Fraction` to an integer under ``rm``.

    Returns ``(int_value, inexact)``.  Range checking is the caller's job.
    """
    sign = 1 if value < 0 else 0
    mag = -value if sign else value
    n, rem = divmod(mag.numerator, mag.denominator)
    inexact = rem != 0
    if _round_increment(n, rem, mag.denominator, rm, sign):
        n += 1
    return (-n if sign else n), inexact
