"""Conversions: float <-> integer and float <-> float."""

from fractions import Fraction

from repro.isa.csr import FFLAGS_NV, FFLAGS_NX
from repro.softfloat.formats import (
    is_inf,
    is_nan,
    sign_of,
    unpack,
)
from repro.softfloat.rounding import round_to_format, round_to_int
from repro.softfloat.memo import memoize_fp


def _int_bounds(width, signed):
    if signed:
        return -(1 << (width - 1)), (1 << (width - 1)) - 1
    return 0, (1 << width) - 1


@memoize_fp
def fp_to_int(a, fmt, rm, width, signed):
    """fcvt.{w,wu,l,lu}.{s,d}: float to integer with NV/NX semantics.

    Returns ``(value_unsigned, flags)`` where the value is the two's
    complement bit pattern of the (possibly clamped) result in ``width``
    bits.  NaN converts to the maximum integer with NV; out-of-range clamps
    with NV; inexact in-range conversions raise NX.
    """
    lo, hi = _int_bounds(width, signed)
    mask = (1 << width) - 1
    if is_nan(a, fmt):
        return hi & mask, FFLAGS_NV
    if is_inf(a, fmt):
        result = lo if sign_of(a, fmt) else hi
        return result & mask, FFLAGS_NV
    exact = unpack(a, fmt)
    value, inexact = round_to_int(exact, rm)
    if value < lo or value > hi:
        clamped = lo if value < lo else hi
        return clamped & mask, FFLAGS_NV
    return value & mask, (FFLAGS_NX if inexact else 0)


@memoize_fp
def int_to_fp(value, width, signed, fmt, rm):
    """fcvt.{s,d}.{w,wu,l,lu}: integer (bit pattern) to float."""
    mask = (1 << width) - 1
    value &= mask
    if signed and value >> (width - 1):
        value -= 1 << width
    sign = 1 if value < 0 else 0
    return round_to_format(Fraction(value), fmt, rm, zero_sign=sign)


@memoize_fp
def fp_to_fp(a, src_fmt, dst_fmt, rm):
    """fcvt.s.d / fcvt.d.s: conversion between formats."""
    if is_nan(a, src_fmt):
        from repro.softfloat.formats import canonical_nan, is_snan

        flags = FFLAGS_NV if is_snan(a, src_fmt) else 0
        return canonical_nan(dst_fmt), flags
    sign = sign_of(a, src_fmt)
    if is_inf(a, src_fmt):
        from repro.softfloat.formats import inf_bits_signed

        return inf_bits_signed(sign, dst_fmt), 0
    exact = unpack(a, src_fmt)
    return round_to_format(exact, dst_fmt, rm, zero_sign=sign)
