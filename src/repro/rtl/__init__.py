"""A small structural RTL intermediate representation.

The paper instruments coverage by walking the FIRRTL netlist of the DUT:
find every multiplexer, trace each select backwards through combinational
logic until registers are reached, and treat those registers as the module's
*control registers*.  Our DUT cores declare an equivalent structural netlist
(modules, registers, muxes, logic, memories) whose register *values* are
updated behaviourally each cycle; the instrumentation pass
(:mod:`repro.coverage`) then works exactly like the paper's.

The IR also feeds the FPGA area estimator used for Table III.
"""

from repro.rtl.signals import Register, Mux, Logic, Port, Memory, Node
from repro.rtl.module import Module
from repro.rtl.netlist import control_registers, all_modules, find_module
from repro.rtl.area import AreaEstimate, estimate_area

__all__ = [
    "Register",
    "Mux",
    "Logic",
    "Port",
    "Memory",
    "Node",
    "Module",
    "control_registers",
    "all_modules",
    "find_module",
    "AreaEstimate",
    "estimate_area",
]
