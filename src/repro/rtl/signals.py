"""Structural netlist node types.

Nodes form a DAG through their ``sources`` lists (fan-in).  Only the
*structure* matters for the instrumentation trace-back and the area model;
runtime behaviour lives in the DUT core models, which assign
:attr:`Register.value` each cycle.
"""

import itertools

_uid = itertools.count()


class Node:
    """Base netlist node: a named, width-annotated vertex in the DAG."""

    kind = "node"

    def __init__(self, name, width=1, sources=()):
        self.uid = next(_uid)
        self.name = name
        self.width = width
        self.sources = list(sources)
        self.module = None  # set by Module.add

    @property
    def path(self):
        """Hierarchical path like ``Rocket.FPU.fdiv_state``."""
        if self.module is None:
            return self.name
        return f"{self.module.path}.{self.name}"

    def connect(self, *nodes):
        """Append fan-in sources."""
        self.sources.extend(nodes)
        return self

    def __repr__(self):
        return f"{type(self).__name__}({self.path}, w={self.width})"


class Register(Node):
    """A clocked state element; the unit of coverage instrumentation.

    ``domain`` optionally enumerates the values the register can actually
    take (e.g. a one-hot FSM state); ``None`` means the full 2**width space.
    The reachability analysis for Fig. 6 uses this.
    """

    kind = "register"

    def __init__(self, name, width=1, domain=None, sources=()):
        super().__init__(name, width, sources)
        if domain is not None:
            domain = tuple(domain)
        self.domain = domain
        self.value = 0

    @property
    def domain_size(self):
        return len(self.domain) if self.domain is not None else 1 << self.width

    def domain_values(self):
        """Iterate the reachable values of this register."""
        if self.domain is not None:
            return self.domain
        return range(1 << self.width)

    def set(self, value):
        """Behavioural update from the core model (masked to width)."""
        self.value = value & ((1 << self.width) - 1)


class Mux(Node):
    """A multiplexer; its ``select`` fan-in drives the trace-back."""

    kind = "mux"

    def __init__(self, name, select, inputs=(), width=1):
        super().__init__(name, width, sources=list(inputs))
        self.select = select


class Logic(Node):
    """Combinational logic cloud (adders, comparators, glue)."""

    kind = "logic"

    def __init__(self, name, width=1, sources=(), lut_cost=None):
        super().__init__(name, width, sources)
        # Default LUT cost heuristic: one 6-LUT per output bit per 2 inputs.
        self.lut_cost = lut_cost


class Port(Node):
    """A module boundary port; trace-back stops here."""

    kind = "port"

    def __init__(self, name, width=1, direction="in"):
        super().__init__(name, width)
        self.direction = direction


class Memory(Node):
    """An on-chip memory (register file, cache array, queue storage)."""

    kind = "memory"

    def __init__(self, name, depth, width, sources=()):
        super().__init__(name, width, sources)
        self.depth = depth

    @property
    def bits(self):
        return self.depth * self.width
