"""FPGA area estimation over the RTL-IR (LUTs, BRAMs, flip-flops).

The estimator substitutes for Vivado synthesis reports in Table III.  It is
calibrated so the *relative* sizes of the DUT, the Fuzzer IP, the checking
logic and the ILA configurations track the paper; absolute LUT counts are a
first-order heuristic (inputs/6 LUTs per output bit of logic, one FF per
register bit, BRAM36 tiles for memories).
"""

from dataclasses import dataclass

# One Xilinx BRAM36 tile stores 36 kilobits.
BRAM36_BITS = 36 * 1024

# XCZU19EG available resources (Zynq UltraScale+, Fidus Sidewinder).
XCZU19EG_LUTS = 522_720
XCZU19EG_BRAMS = 984
XCZU19EG_REGS = 1_045_440


@dataclass
class AreaEstimate:
    """Aggregate resource usage of a module tree."""

    luts: int = 0
    brams: int = 0
    registers: int = 0

    def __add__(self, other):
        return AreaEstimate(
            self.luts + other.luts,
            self.brams + other.brams,
            self.registers + other.registers,
        )

    def scaled(self, factor):
        """Uniformly scale the estimate (used for calibration)."""
        return AreaEstimate(
            int(self.luts * factor),
            int(self.brams * factor),
            int(self.registers * factor),
        )

    def utilization(self, luts=XCZU19EG_LUTS, brams=XCZU19EG_BRAMS, regs=XCZU19EG_REGS):
        """Fractional device utilization ``(lut, bram, reg)``."""
        return (self.luts / luts, self.brams / brams, self.registers / regs)


def _logic_luts(node):
    if node.lut_cost is not None:
        return node.lut_cost
    fanin_bits = sum(source.width for source in node.sources) or 1
    # One 6-input LUT covers ~6 input bits per output bit.
    per_bit = max(1, (fanin_bits + 5) // 6)
    return per_bit * node.width


def _mux_luts(node):
    ways = max(2, len(node.sources))
    # A w-wide n-way mux needs roughly w * (n-1)/2 LUT6s.
    return max(1, node.width * (ways - 1) // 2)


def _memory_brams(node):
    # Small memories map to distributed RAM (counted as LUTs elsewhere).
    if node.bits <= 1024:
        return 0
    return max(1, -(-node.bits // BRAM36_BITS))


def _memory_luts(node):
    if node.bits <= 1024:
        return max(1, node.bits // 32)
    return node.width // 2  # addressing/output glue


def estimate_area(module, recursive=True):
    """Estimate area for a module (and, by default, its whole subtree)."""
    modules = module.walk() if recursive else (module,)
    total = AreaEstimate()
    for current in modules:
        for node in current.nodes:
            if node.kind == "register":
                total.registers += node.width
                total.luts += max(1, node.width // 4)  # next-state glue
            elif node.kind == "logic":
                total.luts += _logic_luts(node)
            elif node.kind == "mux":
                total.luts += _mux_luts(node)
            elif node.kind == "memory":
                total.brams += _memory_brams(node)
                total.luts += _memory_luts(node)
    return total
