"""Hierarchical module container for the RTL-IR."""

from repro.rtl.signals import Logic, Memory, Mux, Port, Register


class Module:
    """A hierarchy node owning registers, muxes, logic, memories and ports."""

    def __init__(self, name, parent=None):
        self.name = name
        self.parent = parent
        self.children = []
        self.nodes = []
        if parent is not None:
            parent.children.append(self)

    @property
    def path(self):
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    # --- construction helpers -------------------------------------------------
    def add(self, node):
        """Attach a pre-built node to this module."""
        node.module = self
        self.nodes.append(node)
        return node

    def submodule(self, name):
        """Create (or fetch) a child module."""
        for child in self.children:
            if child.name == name:
                return child
        return Module(name, parent=self)

    def register(self, name, width=1, domain=None, sources=()):
        return self.add(Register(name, width, domain=domain, sources=sources))

    def mux(self, name, select, inputs=(), width=1):
        return self.add(Mux(name, select, inputs, width))

    def logic(self, name, width=1, sources=(), lut_cost=None):
        return self.add(Logic(name, width, sources, lut_cost))

    def port(self, name, width=1, direction="in"):
        return self.add(Port(name, width, direction))

    def memory(self, name, depth, width, sources=()):
        return self.add(Memory(name, depth, width, sources=sources))

    # --- queries ---------------------------------------------------------------
    def _nodes_of_kind(self, kind, recursive):
        found = [node for node in self.nodes if node.kind == kind]
        if recursive:
            for child in self.children:
                found.extend(child._nodes_of_kind(kind, True))
        return found

    def registers(self, recursive=False):
        return self._nodes_of_kind("register", recursive)

    def muxes(self, recursive=False):
        return self._nodes_of_kind("mux", recursive)

    def logics(self, recursive=False):
        return self._nodes_of_kind("logic", recursive)

    def memories(self, recursive=False):
        return self._nodes_of_kind("memory", recursive)

    def ports(self, recursive=False):
        return self._nodes_of_kind("port", recursive)

    def walk(self):
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find_register(self, name):
        """Locate a register by leaf name anywhere under this module."""
        for module in self.walk():
            for node in module.nodes:
                if node.kind == "register" and node.name == name:
                    return node
        raise KeyError(f"no register named {name!r} under {self.path}")

    def __repr__(self):
        return f"Module({self.path})"
