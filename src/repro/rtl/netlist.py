"""Netlist traversal: the paper's control-register extraction algorithm.

Section VI: *"The coverage instrumentation algorithm first identifies all
multiplexers within a design module.  For each multiplexer, it then
recursively traces backward through connected registers until reaching the
module boundary.  During this trace-back process, any registers encountered
are designated as control registers for that multiplexer."*
"""


def control_registers(module, recursive=True):
    """Extract the ordered set of control registers for ``module``.

    For every mux in the module (and submodules when ``recursive``), trace
    the select's fan-in through combinational nodes; registers terminate a
    path and are collected, ports (module boundary) terminate without
    collecting.  Result order is deterministic (by node uid) so the
    instrumentation layout is reproducible.
    """
    collected = {}
    for mux in module.muxes(recursive=recursive):
        for register in trace_select(mux):
            collected[register.uid] = register
    return [collected[uid] for uid in sorted(collected)]


def trace_select(mux):
    """Backward-trace one mux select to its controlling registers."""
    registers = []
    seen = set()
    stack = [mux.select] if mux.select is not None else []
    while stack:
        node = stack.pop()
        if node is None or node.uid in seen:
            continue
        seen.add(node.uid)
        if node.kind == "register":
            registers.append(node)
            continue  # do not trace through state elements
        if node.kind == "port":
            continue  # module boundary
        stack.extend(node.sources)
    return registers


def all_modules(top):
    """Flat list of every module in the hierarchy."""
    return list(top.walk())


def find_module(top, name):
    """Find a module by leaf name anywhere in the hierarchy."""
    for module in top.walk():
        if module.name == name:
            return module
    raise KeyError(f"no module named {name!r} under {top.path}")
