"""Integrated Logic Analyzer model (the Table III comparison point).

ILA area is dominated by its BRAM capture buffers (probes x depth bits);
the two configurations the paper measures (depth 1024 and depth 65536) are
provided as presets carrying the Vivado-reported utilization, and a generic
first-order estimator covers other configurations.

The qualitative properties that matter for the comparison: ILA area grows
with tracing depth, and adding/removing probed signals requires a full
recompilation — unlike TurboFuzz's snapshot-based debugging.
"""

from dataclasses import dataclass

from repro.rtl.area import AreaEstimate, BRAM36_BITS


@dataclass(frozen=True)
class IlaConfig:
    """One ILA instantiation."""

    name: str
    probes: int  # total probed signal bits
    depth: int   # trace buffer depth (samples)


@dataclass(frozen=True)
class IlaArea:
    """Resolved area of one ILA configuration."""

    config: IlaConfig
    estimate: AreaEstimate
    requires_recompile_on_probe_change: bool = True


def estimate_ila(config):
    """First-order ILA area: capture BRAM + trigger/readout logic."""
    capture_bits = config.probes * config.depth
    brams = max(1, -(-capture_bits // BRAM36_BITS))
    luts = config.probes // 2 + config.depth // 32 + 2000
    registers = config.probes + config.depth // 16 + 4000
    return IlaArea(config, AreaEstimate(luts=luts, brams=brams,
                                        registers=registers))


# The paper's two measured configurations (Vivado 2020.2 reports).
ILA_CONFIG1 = IlaArea(
    IlaConfig("config1", probes=16384, depth=1024),
    AreaEstimate(luts=8142, brams=465, registers=14294),
)
ILA_CONFIG2 = IlaArea(
    IlaConfig("config2", probes=16384, depth=65536),
    AreaEstimate(luts=10078, brams=578, registers=17322),
)
