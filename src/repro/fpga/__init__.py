"""FPGA platform models: the Fidus Sidewinder board, VIO configuration,
the vendor ILA (Table III's comparison point), and the TurboFuzz framework
resource accounting."""

from repro.fpga.vio import VioInterface
from repro.fpga.ila import IlaConfig, IlaArea, ILA_CONFIG1, ILA_CONFIG2, estimate_ila
from repro.fpga.board import SidewinderBoard, CorpusPlacement
from repro.fpga.resources import (
    fuzzer_ip_module,
    checking_module,
    framework_area,
    table3_report,
)

__all__ = [
    "VioInterface",
    "IlaConfig",
    "IlaArea",
    "ILA_CONFIG1",
    "ILA_CONFIG2",
    "estimate_ila",
    "SidewinderBoard",
    "CorpusPlacement",
    "fuzzer_ip_module",
    "checking_module",
    "framework_area",
    "table3_report",
]
