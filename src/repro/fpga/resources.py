"""TurboFuzz framework resource accounting (Table III).

The Fuzzer IP and the checking/snapshot subsystem are described as RTL-IR
module trees (like the DUT cores), so the same area estimator prices them.
The node sizes are calibrated against the paper's Vivado reports:

* Fuzzer IP:       67,523 LUTs / 176 BRAM36 / 91,445 FFs
* Full framework:  89,394 LUTs / 227 BRAM36 / 139,477 FFs (adds the
  differential checking, monitors and snapshot controller)
"""

from repro.fpga.ila import ILA_CONFIG1, ILA_CONFIG2
from repro.rtl.area import estimate_area
from repro.rtl.module import Module


def fuzzer_ip_module():
    """The synthesizable TurboFuzzer IP as an RTL-IR tree."""
    top = Module("TurboFuzzerIP")

    generation = top.submodule("Generation")
    generation.logic("instruction_pipeline", width=64, lut_cost=14_000)
    generation.logic("operand_assignment", width=64, lut_cost=9_000)
    generation.register("pipeline_state", width=30_000)
    generation.memory("instruction_library", depth=2048, width=48)

    mutation = top.submodule("MutationEngine")
    mutation.logic("block_ops", width=64, lut_cost=9_000)
    mutation.logic("context_regen", width=64, lut_cost=6_000)
    mutation.register("mutation_state", width=18_000)

    corpus = top.submodule("CorpusManager")
    corpus.logic("scheduler", width=32, lut_cost=5_000)
    corpus.register("seed_metadata", width=14_000)
    # On-chip seed storage: ~64 seeds x 4000 instructions x 66-bit stimulus
    # entries, plus the coverage-annotated metadata.
    corpus.memory("seed_store", depth=72_000, width=72)
    corpus.memory("seed_metadata_ram", depth=4096, width=96)

    coverage = top.submodule("CoverageCollector")
    coverage.logic("index_hash", width=16, lut_cost=4_500)
    coverage.register("ncov_shift_regs", width=9_000)
    for index in range(8):
        coverage.memory(f"covmap{index}", depth=32_768, width=2)

    context = top.submodule("FuzzContext")
    context.logic("address_gen", width=64, lut_cost=3_000)
    context.register("global_context", width=20_000)
    context.memory("block_base_table", depth=4096, width=32)
    return top


def checking_module():
    """Differential checking + monitors + snapshot controller (ENCORE)."""
    top = Module("Checking")
    checker = top.submodule("DiffChecker")
    checker.logic("commit_compare", width=64, lut_cost=6_000)
    checker.register("commit_buffers", width=22_000)
    checker.memory("trace_fifo", depth=16_384, width=80)

    monitors = top.submodule("Monitors")
    monitors.logic("signal_taps", width=64, lut_cost=5_000)
    monitors.register("monitor_regs", width=18_000)
    monitors.memory("monitor_ram", depth=8192, width=32)

    snapshot = top.submodule("SnapshotController")
    snapshot.logic("readback_ctrl", width=32, lut_cost=2_500)
    snapshot.register("snapshot_state", width=8_000)
    snapshot.memory("staging_ram", depth=4096, width=64)
    return top


def framework_area():
    """(fuzzer_ip, checking, total) area estimates."""
    fuzzer = estimate_area(fuzzer_ip_module())
    checking = estimate_area(checking_module())
    return fuzzer, checking, fuzzer + checking


def table3_report(dut_core):
    """All Table III rows for a DUT core instance.

    Returns a dict of row name -> ``AreaEstimate``-like objects plus the
    derived BRAM ratios the paper quotes (ILA vs TurboFuzz).
    """
    dut_area = estimate_area(dut_core.top)
    fuzzer, checking, framework = framework_area()
    report = {
        "dut": dut_area,
        "fuzzer_ip": fuzzer,
        "turbofuzz": framework,
        "ila_config1": ILA_CONFIG1.estimate,
        "ila_config2": ILA_CONFIG2.estimate,
    }
    report["ila1_bram_ratio"] = (
        ILA_CONFIG1.estimate.brams / framework.brams if framework.brams else 0
    )
    report["ila2_bram_ratio"] = (
        ILA_CONFIG2.estimate.brams / framework.brams if framework.brams else 0
    )
    return report
