"""Virtual IO model: runtime configuration of the fuzzer without
recompilation.

The paper exposes the instruction library subsets and the probability knobs
through Xilinx VIO probes.  This model is a name -> handler registry with a
small audit log, mirroring how the hardware build wires VIO outputs to
configuration registers.
"""


class VioInterface:
    """Named runtime controls bound to setter callbacks."""

    def __init__(self):
        self._controls = {}
        self._values = {}
        self.log = []

    def register(self, name, setter, initial=None):
        """Expose a control; ``setter(value)`` applies it to the design."""
        if name in self._controls:
            raise ValueError(f"control {name!r} already registered")
        self._controls[name] = setter
        self._values[name] = initial

    def write(self, name, value):
        """Drive a control from the host (a VIO probe write)."""
        try:
            setter = self._controls[name]
        except KeyError:
            raise KeyError(f"unknown VIO control {name!r}") from None
        setter(value)
        self._values[name] = value
        self.log.append((name, value))

    def read(self, name):
        """Last value driven on a control."""
        return self._values[name]

    def controls(self):
        return sorted(self._controls)

    @classmethod
    def for_fuzzer(cls, fuzzer):
        """Standard control set for a TurboFuzzer instance: one enable per
        ISA subset plus the headline probability knobs."""
        vio = cls()
        for extension in sorted(fuzzer.library.enabled_extensions,
                                key=lambda ext: ext.value):
            name = f"enable_{extension.value.lower()}"

            def setter(value, ext=extension):
                if value:
                    fuzzer.library.enable(ext)
                else:
                    fuzzer.library.disable(ext)

            vio.register(name, setter, initial=True)

        def set_mutation_prob(value):
            fuzzer.config.mutation_mode_prob = (int(value), 16)

        vio.register("mutation_mode_prob_16ths", set_mutation_prob,
                     initial=fuzzer.config.mutation_mode_prob[0])

        def set_window(value):
            fuzzer.config.jump_window_blocks = int(value)

        vio.register("jump_window_blocks", set_window,
                     initial=fuzzer.config.jump_window_blocks)
        return vio
