"""Fidus Sidewinder board model (Zynq UltraScale+ XCZU19EG + 32 GB DDR4).

Tracks the resource budget and decides corpus placement: seeds live in
on-chip BRAM while they fit (fast, limited) and spill to DDR otherwise —
the storage hierarchy of paper Section IV-A.
"""

from dataclasses import dataclass

from repro.rtl.area import (
    BRAM36_BITS,
    XCZU19EG_BRAMS,
    XCZU19EG_LUTS,
    XCZU19EG_REGS,
)


@dataclass(frozen=True)
class CorpusPlacement:
    """Where the corpus lives and what it costs."""

    location: str  # "bram" | "ddr"
    bytes_required: int
    brams_required: int = 0

    @property
    def access_latency_cycles(self):
        # BRAM: single-cycle; DDR: controller + burst latency.
        return 1 if self.location == "bram" else 28


class SidewinderBoard:
    """Resource budget + placement decisions for one build."""

    DDR_BYTES = 32 * (1 << 30)

    def __init__(self, luts=XCZU19EG_LUTS, brams=XCZU19EG_BRAMS,
                 registers=XCZU19EG_REGS):
        self.luts = luts
        self.brams = brams
        self.registers = registers
        self._committed = []

    def commit(self, name, estimate):
        """Reserve resources for a subsystem; raises when over budget."""
        self._committed.append((name, estimate))
        used = self.utilization()
        if used[0] > 1.0 or used[1] > 1.0 or used[2] > 1.0:
            self._committed.pop()
            raise ValueError(
                f"{name} does not fit: utilization would be "
                f"{tuple(round(u, 3) for u in used)}"
            )
        return used

    def utilization(self):
        """(lut, bram, register) fractions currently committed."""
        luts = sum(est.luts for _, est in self._committed)
        brams = sum(est.brams for _, est in self._committed)
        registers = sum(est.registers for _, est in self._committed)
        return (luts / self.luts, brams / self.brams,
                registers / self.registers)

    def available_brams(self):
        used = sum(est.brams for _, est in self._committed)
        return self.brams - used

    def place_corpus(self, seed_count, mean_seed_instructions,
                     stimulus_entry_bits=66):
        """Decide BRAM vs DDR placement for the corpus."""
        bits = seed_count * mean_seed_instructions * stimulus_entry_bits
        brams_needed = -(-bits // BRAM36_BITS)
        if brams_needed <= self.available_brams():
            return CorpusPlacement("bram", bits // 8, brams_needed)
        if bits // 8 > self.DDR_BYTES:
            raise ValueError("corpus exceeds DDR capacity")
        return CorpusPlacement("ddr", bits // 8)

    def committed(self):
        return list(self._committed)
