"""Design-level instrumentation: per-module collectors with running indices.

``instrument_design`` runs the control-register extraction pass over the
chosen top-level modules of a DUT netlist (the paper lets users pick the
modules to instrument) and builds one :class:`ModuleCoverage` per module.

Collectors keep a *running* XOR index updated register-by-register, so the
per-cycle cost is proportional to the number of registers that changed —
this mirrors how the hardware instrumentation computes the index
combinationally for free.
"""

from repro.analyze.markers import hot_path
from repro.coverage.layout import make_layout
from repro.coverage.map import CoverageMap
from repro.coverage.weighting import FeedbackWeights
from repro.perf.evict import evict_half
from repro.rtl.netlist import control_registers

_MEMO_LIMIT = 1 << 20


class ModuleCoverage:
    """Instrumentation + collection state for one module."""

    __slots__ = ("module", "name", "layout", "map", "tables", "pack_shifts",
                 "value_masks", "_positions", "_contribs", "index", "_memo",
                 "_reference_memo")

    # Runtime caches rebuilt deterministically by execution (the running
    # index is recomputed from register values on reset; the memo tables
    # are pure lookup caches) — deliberately absent from state_dict().
    _checkpoint_transient = frozenset({
        "index", "_contribs", "_memo", "_reference_memo",
    })

    def __init__(self, module, layout):
        self.module = module
        self.name = module.name
        self.layout = layout
        self.map = CoverageMap(layout.instrumented_points)
        # Shared per-layout lookup tables: the collectors and the DUT
        # cores' slot bindings replace contribution() calls with
        # ``tables[position][value & value_masks[position]]``.
        self.tables = layout.contribution_tables()
        self.pack_shifts = layout.pack_shifts()
        self.value_masks = layout.value_masks()
        self._positions = {
            register.uid: position
            for position, register in enumerate(layout.registers)
        }
        self._contribs = [
            layout.contribution(position, register.value)
            for position, register in enumerate(layout.registers)
        ]
        self.index = 0
        for contribution in self._contribs:
            self.index ^= contribution
        self._memo = {}
        self._reference_memo = {}

    @hot_path
    def observe_state(self, values, positions=None):
        """Observe a per-register value tuple (compatibility slow path).

        ``positions`` maps each element of ``values`` to its register
        position in the layout; ``None`` means the tuple covers all
        registers in order.  Registers not covered contribute their reset
        value of zero (static structural state).  States are memoized under
        a single packed-int key (values masked to their widths and packed
        at the layout's bit offsets) — ints hash and compare much faster
        than value tuples, and the packing is injective on masked states so
        different position subsets share one table safely.  The memo is
        bounded with an evict-half policy instead of the old wholesale
        clear, which re-missed on every state right after the cliff.

        The per-instruction hot path no longer funnels through here: DUT
        cores keep a running XOR index per module (see
        ``DutCore.attach_coverage``) and only sample it into the map.
        """
        memo = self._memo
        masks = self.value_masks
        shifts = self.pack_shifts
        key = 0
        if positions is None:
            for position, value in enumerate(values):
                key |= (value & masks[position]) << shifts[position]
        else:
            for position, value in zip(positions, values):
                key |= (value & masks[position]) << shifts[position]
        index = memo.get(key)
        if index is None:
            tables = self.tables
            index = 0
            if positions is None:
                for position, value in enumerate(values):
                    index ^= tables[position][value & masks[position]]
            else:
                for position, value in zip(positions, values):
                    index ^= tables[position][value & masks[position]]
            if len(memo) >= _MEMO_LIMIT:
                evict_half(memo)
            memo[key] = index
        return self.map.observe(index)

    def observe_state_reference(self, values, positions=None):
        """The pre-overhaul observation path, preserved verbatim.

        Value-tuple memo key, per-observation ``layout.contribution()``
        calls, wholesale ``clear()`` at the bound — exactly the
        implementation this PR replaced.  It is the oracle the
        equivalence suite (and ``DutCore.use_reference_observer``) runs
        against, and the denominator of the perf harness's
        ``speedup_vs_reference`` ratio.
        """
        index = self._reference_memo.get(values)
        if index is None:
            layout = self.layout
            if positions is None:
                index = layout.index(values)
            else:
                index = 0
                contribution = layout.contribution
                for position, value in zip(positions, values):
                    index ^= contribution(position, value)
            if len(self._reference_memo) >= _MEMO_LIMIT:
                self._reference_memo.clear()
            self._reference_memo[values] = index
        return self.map.observe(index)

    def update(self, register, value):
        """Register value changed: refresh the running index (update-on-
        write; :meth:`tick` samples the result once per clock edge)."""
        position = self._positions.get(register.uid)
        if position is None:
            return
        register.set(value)
        new_contribution = self.tables[position][register.value]
        self.index ^= self._contribs[position] ^ new_contribution
        self._contribs[position] = new_contribution

    def tick(self):
        """Sample the current index (one clock edge); True if new point."""
        return self.map.observe(self.index)

    @property
    def count(self):
        return self.map.count

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """Observed-coverage snapshot.  The running index and memo table are
        runtime caches rebuilt deterministically by execution; the observed
        point set is the only state that outlives an iteration."""
        return {"map": self.map.state_dict()}

    def load_state(self, state):
        self.map.load_state(state["map"])
        self._memo.clear()
        self._reference_memo.clear()

    def reset_runtime(self):
        """Zero register values and rebuild the running index (DUT reset)."""
        for register in self.layout.registers:
            register.value = 0
        tables = self.tables
        self._contribs = [table[0] for table in tables]
        self.index = 0
        for contribution in self._contribs:
            self.index ^= contribution

    def zero_index(self):
        """The running index of the all-zero (reset) state — the base the
        DUT cores' slot bindings diff from after every reset."""
        index = 0
        for table in self.tables:
            index ^= table[0]
        return index


class DesignCoverage:
    """All instrumented modules of one DUT plus weighting and totals."""

    def __init__(self, module_coverages, weights=None):
        self.modules = list(module_coverages)
        self.by_name = {cov.name: cov for cov in self.modules}
        self.weights = weights or FeedbackWeights()
        self._register_owners = {}
        for cov in self.modules:
            for register in cov.layout.registers:
                self._register_owners.setdefault(register.uid, []).append(cov)

    # -- runtime API used by DUT cores -----------------------------------------
    def update(self, register, value):
        """Route a register update to every collector that instruments it."""
        owners = self._register_owners.get(register.uid)
        if owners:
            for owner in owners:
                owner.update(register, value)
        else:
            register.set(value)

    def tick_all(self):
        """Clock edge across the whole design; returns new-point count."""
        new_points = 0
        for cov in self.modules:
            if cov.tick():
                new_points += 1
        return new_points

    # -- totals -----------------------------------------------------------------
    @property
    def total_points(self):
        """Raw covered points across all modules."""
        return sum(cov.count for cov in self.modules)

    @property
    def total_instrumented(self):
        return sum(cov.layout.instrumented_points for cov in self.modules)

    def weighted_feedback(self):
        """The shifted N_cov total the fuzzer consumes as feedback."""
        return self.weights.weighted_total(
            {cov.name: cov.count for cov in self.modules}
        )

    def counts_by_module(self):
        return {cov.name: cov.count for cov in self.modules}

    def reset_runtime(self):
        for cov in self.modules:
            cov.reset_runtime()

    def clear(self):
        """Forget all observed coverage (new campaign)."""
        for cov in self.modules:
            cov.map.clear()

    # -- checkpoint protocol -----------------------------------------------------
    def state_dict(self):
        """Per-module observed coverage, keyed by module name."""
        return {"modules": {cov.name: cov.state_dict()
                            for cov in self.modules}}

    def load_state(self, state):
        """Restore per-module coverage; raises if the module sets differ
        (a checkpoint only fits an identically instrumented design)."""
        recorded = state["modules"]
        missing = set(recorded) - set(self.by_name)
        extra = set(self.by_name) - set(recorded)
        if missing or extra:
            raise ValueError(
                "coverage checkpoint does not match this design "
                f"(checkpoint-only modules: {sorted(missing) or '-'}, "
                f"design-only modules: {sorted(extra) or '-'})"
            )
        for name, module_state in recorded.items():
            self.by_name[name].load_state(module_state)


def instrument_design(top, module_names=None, style="optimized",
                      max_state_size=15, seed=0, weights=None):
    """Instrument a DUT netlist and return a :class:`DesignCoverage`.

    ``module_names`` picks the top-level modules to instrument (``None``
    instruments every module that owns at least one mux); ``style`` selects
    the legacy or optimized layout; ``max_state_size`` is the per-module
    threshold (the paper's cov1/cov2/cov3 = 13/14/15 bits).
    """
    selected = []
    if module_names is None:
        # Default: instrument every module that directly owns muxes (the
        # paper's per-module instrumentation granularity).
        for module in top.walk():
            if module.muxes(recursive=False) and control_registers(module):
                selected.append(module)
    else:
        chosen = set(module_names)
        for module in top.walk():
            if module.name in chosen and control_registers(module):
                selected.append(module)
    coverages = []
    for order, module in enumerate(selected):
        registers = control_registers(module, recursive=True)
        layout = make_layout(style, registers, max_state_size, seed=seed + order)
        coverages.append(ModuleCoverage(module, layout))
    return DesignCoverage(coverages, weights=weights)
