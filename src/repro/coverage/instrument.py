"""Design-level instrumentation: per-module collectors with running indices.

``instrument_design`` runs the control-register extraction pass over the
chosen top-level modules of a DUT netlist (the paper lets users pick the
modules to instrument) and builds one :class:`ModuleCoverage` per module.

Collectors keep a *running* XOR index updated register-by-register, so the
per-cycle cost is proportional to the number of registers that changed —
this mirrors how the hardware instrumentation computes the index
combinationally for free.
"""

from repro.coverage.layout import make_layout
from repro.coverage.map import CoverageMap
from repro.coverage.weighting import FeedbackWeights
from repro.rtl.netlist import control_registers


class ModuleCoverage:
    """Instrumentation + collection state for one module."""

    def __init__(self, module, layout):
        self.module = module
        self.name = module.name
        self.layout = layout
        self.map = CoverageMap(layout.instrumented_points)
        self._positions = {
            register.uid: position
            for position, register in enumerate(layout.registers)
        }
        self._contribs = [
            layout.contribution(position, register.value)
            for position, register in enumerate(layout.registers)
        ]
        self.index = 0
        for contribution in self._contribs:
            self.index ^= contribution
        self._memo = {}

    def observe_state(self, values, positions=None):
        """Observe a per-register value tuple (the fast path).

        ``positions`` maps each element of ``values`` to its register
        position in the layout; ``None`` means the tuple covers all
        registers in order.  Registers not covered contribute their reset
        value of zero (static structural state).  The tuple -> index
        mapping is memoized; state tuples repeat heavily across a fuzzing
        campaign, so the layout's index computation runs only on first
        sight of a state.
        """
        index = self._memo.get(values)
        if index is None:
            layout = self.layout
            if positions is None:
                index = layout.index(values)
            else:
                index = 0
                contribution = layout.contribution
                for position, value in zip(positions, values):
                    index ^= contribution(position, value)
            if len(self._memo) >= 1 << 20:
                self._memo.clear()
            self._memo[values] = index
        return self.map.observe(index)

    def update(self, register, value):
        """Register value changed: refresh the running index."""
        position = self._positions.get(register.uid)
        if position is None:
            return
        register.set(value)
        new_contribution = self.layout.contribution(position, register.value)
        self.index ^= self._contribs[position] ^ new_contribution
        self._contribs[position] = new_contribution

    def tick(self):
        """Sample the current index (one clock edge); True if new point."""
        return self.map.observe(self.index)

    @property
    def count(self):
        return self.map.count

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """Observed-coverage snapshot.  The running index and memo table are
        runtime caches rebuilt deterministically by execution; the observed
        point set is the only state that outlives an iteration."""
        return {"map": self.map.state_dict()}

    def load_state(self, state):
        self.map.load_state(state["map"])
        self._memo.clear()

    def reset_runtime(self):
        """Zero register values and rebuild the running index (DUT reset)."""
        for register in self.layout.registers:
            register.value = 0
        self._contribs = [
            self.layout.contribution(position, 0)
            for position in range(len(self.layout.registers))
        ]
        self.index = 0
        for contribution in self._contribs:
            self.index ^= contribution


class DesignCoverage:
    """All instrumented modules of one DUT plus weighting and totals."""

    def __init__(self, module_coverages, weights=None):
        self.modules = list(module_coverages)
        self.by_name = {cov.name: cov for cov in self.modules}
        self.weights = weights or FeedbackWeights()
        self._register_owners = {}
        for cov in self.modules:
            for register in cov.layout.registers:
                self._register_owners.setdefault(register.uid, []).append(cov)

    # -- runtime API used by DUT cores -----------------------------------------
    def update(self, register, value):
        """Route a register update to every collector that instruments it."""
        owners = self._register_owners.get(register.uid)
        if owners:
            for owner in owners:
                owner.update(register, value)
        else:
            register.set(value)

    def tick_all(self):
        """Clock edge across the whole design; returns new-point count."""
        new_points = 0
        for cov in self.modules:
            if cov.tick():
                new_points += 1
        return new_points

    # -- totals -----------------------------------------------------------------
    @property
    def total_points(self):
        """Raw covered points across all modules."""
        return sum(cov.count for cov in self.modules)

    @property
    def total_instrumented(self):
        return sum(cov.layout.instrumented_points for cov in self.modules)

    def weighted_feedback(self):
        """The shifted N_cov total the fuzzer consumes as feedback."""
        return self.weights.weighted_total(
            {cov.name: cov.count for cov in self.modules}
        )

    def counts_by_module(self):
        return {cov.name: cov.count for cov in self.modules}

    def reset_runtime(self):
        for cov in self.modules:
            cov.reset_runtime()

    def clear(self):
        """Forget all observed coverage (new campaign)."""
        for cov in self.modules:
            cov.map.clear()

    # -- checkpoint protocol -----------------------------------------------------
    def state_dict(self):
        """Per-module observed coverage, keyed by module name."""
        return {"modules": {cov.name: cov.state_dict()
                            for cov in self.modules}}

    def load_state(self, state):
        """Restore per-module coverage; raises if the module sets differ
        (a checkpoint only fits an identically instrumented design)."""
        recorded = state["modules"]
        missing = set(recorded) - set(self.by_name)
        extra = set(self.by_name) - set(recorded)
        if missing or extra:
            raise ValueError(
                "coverage checkpoint does not match this design "
                f"(checkpoint-only modules: {sorted(missing) or '-'}, "
                f"design-only modules: {sorted(extra) or '-'})"
            )
        for name, module_state in recorded.items():
            self.by_name[name].load_state(module_state)


def instrument_design(top, module_names=None, style="optimized",
                      max_state_size=15, seed=0, weights=None):
    """Instrument a DUT netlist and return a :class:`DesignCoverage`.

    ``module_names`` picks the top-level modules to instrument (``None``
    instruments every module that owns at least one mux); ``style`` selects
    the legacy or optimized layout; ``max_state_size`` is the per-module
    threshold (the paper's cov1/cov2/cov3 = 13/14/15 bits).
    """
    selected = []
    if module_names is None:
        # Default: instrument every module that directly owns muxes (the
        # paper's per-module instrumentation granularity).
        for module in top.walk():
            if module.muxes(recursive=False) and control_registers(module):
                selected.append(module)
    else:
        chosen = set(module_names)
        for module in top.walk():
            if module.name in chosen and control_registers(module):
                selected.append(module)
    coverages = []
    for order, module in enumerate(selected):
        registers = control_registers(module, recursive=True)
        layout = make_layout(style, registers, max_state_size, seed=seed + order)
        coverages.append(ModuleCoverage(module, layout))
    return DesignCoverage(coverages, weights=weights)
