"""Per-module feedback weighting (paper Section VI, first optimization).

The paper adds an auxiliary register that shifts a module's triggered
coverage count ``N_cov`` left or right before it reaches the fuzzer, giving
"straightforward yet effective control over each module's feedback
intensity" — e.g. right-shifting MulDiv to stop arithmetic units from
dominating feedback (the *modulo bias* problem).
"""


class FeedbackWeights:
    """Maps module name -> signed shift (positive = amplify, negative =
    attenuate).  Unlisted modules get shift 0 (weight 1x)."""

    def __init__(self, shifts=None):
        self._shifts = dict(shifts or {})

    def set_shift(self, module_name, shift):
        """Configure a module's feedback shift (FIRRTL-stage directive)."""
        self._shifts[module_name] = int(shift)

    def shift_for(self, module_name):
        return self._shifts.get(module_name, 0)

    def weighted(self, module_name, n_cov):
        """Apply the auxiliary shift to a raw coverage count."""
        shift = self._shifts.get(module_name, 0)
        if shift >= 0:
            return n_cov << shift
        return n_cov >> -shift

    def weighted_total(self, counts_by_module):
        """Weighted sum across modules (the fuzzer's feedback scalar)."""
        return sum(
            self.weighted(name, count) for name, count in counts_by_module.items()
        )

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot of the shift table."""
        return {"shifts": dict(self._shifts)}

    def load_state(self, state):
        self._shifts = {str(name): int(shift)
                        for name, shift in state["shifts"].items()}

    @classmethod
    def attenuate_arithmetic(cls, muldiv_shift=-2, fpu_shift=-1):
        """The paper's example policy: damp MulDiv (and mildly the FPU)."""
        return cls({"MulDiv": muldiv_shift, "FPU": fpu_shift})
