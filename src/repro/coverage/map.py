"""Coverage maps: sparse sets of observed coverage-point indices."""


class CoverageMap:
    """Observed coverage points for one instrumented module.

    Sparse (a set) because even long campaigns observe a small fraction of
    the instrumented space; ``observe`` returns whether the point is new,
    which is the fuzzer's feedback signal.
    """

    def __init__(self, instrumented_points):
        self.instrumented_points = instrumented_points
        self._seen = set()

    def observe(self, index):
        """Record an index; True when it is a newly covered point."""
        if index in self._seen:
            return False
        self._seen.add(index)
        return True

    def observe_many(self, indices):
        """Bulk observation; returns the number of new points."""
        before = len(self._seen)
        self._seen.update(indices)
        return len(self._seen) - before

    @property
    def count(self):
        """Number of covered points."""
        return len(self._seen)

    @property
    def density(self):
        """Fraction of the instrumented space covered."""
        if not self.instrumented_points:
            return 0.0
        return len(self._seen) / self.instrumented_points

    def merge(self, other):
        """Union another map into this one; returns newly added count."""
        before = len(self._seen)
        self._seen |= other._seen
        return len(self._seen) - before

    def copy(self):
        clone = CoverageMap(self.instrumented_points)
        clone._seen = set(self._seen)
        return clone

    def snapshot(self):
        """Frozen view of the covered indices."""
        return frozenset(self._seen)

    def clear(self):
        self._seen.clear()

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot (indices sorted for stable diffs)."""
        return {"instrumented_points": self.instrumented_points,
                "seen": sorted(self._seen)}

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot in place."""
        self.instrumented_points = state["instrumented_points"]
        self._seen = set(state["seen"])

    def __contains__(self, index):
        return index in self._seen

    def __len__(self):
        return len(self._seen)
