"""Coverage maps: sparse sets of observed coverage-point indices."""

from repro.analyze.markers import hot_path


class CoverageMap:
    """Observed coverage points for one instrumented module.

    Sparse (a set) because even long campaigns observe a small fraction of
    the instrumented space; ``observe`` returns whether the point is new,
    which is the fuzzer's feedback signal.
    """

    __slots__ = ("instrumented_points", "_seen", "epoch")

    # The epoch is a cache-validity counter local to this process's skip
    # caches; a restored checkpoint must NOT carry the saving process's
    # epoch (load_state bumps it instead, invalidating the caches).
    _checkpoint_transient = frozenset({"epoch"})

    def __init__(self, instrumented_points):
        self.instrumented_points = instrumented_points
        self._seen = set()
        # Bumped whenever observed coverage may SHRINK (clear / restore):
        # the DUT cores' combined-observation skip caches key their
        # validity on this (an entry asserts "these points are already in
        # the map", which only removal can falsify).
        self.epoch = 0

    @hot_path
    def observe(self, index):
        """Record an index; True when it is a newly covered point."""
        if index in self._seen:
            return False
        self._seen.add(index)
        return True

    def observe_many(self, indices):
        """Bulk observation; returns the number of new points."""
        before = len(self._seen)
        self._seen.update(indices)
        return len(self._seen) - before

    @property
    def count(self):
        """Number of covered points."""
        return len(self._seen)

    @property
    def density(self):
        """Fraction of the instrumented space covered."""
        if not self.instrumented_points:
            return 0.0
        return len(self._seen) / self.instrumented_points

    def merge(self, other):
        """Union another map into this one; returns newly added count."""
        before = len(self._seen)
        self._seen |= other._seen
        return len(self._seen) - before

    def copy(self):
        clone = CoverageMap(self.instrumented_points)
        clone._seen = set(self._seen)
        return clone

    def snapshot(self):
        """Frozen view of the covered indices."""
        return frozenset(self._seen)

    def clear(self):
        self._seen.clear()
        self.epoch += 1

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot (indices sorted for stable diffs)."""
        return {"instrumented_points": self.instrumented_points,
                "seen": sorted(self._seen)}

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot in place.

        The seen-set object is mutated rather than replaced: the DUT
        cores' slot bindings hold a direct reference to it (hot path), and
        an in-place restore keeps those references valid."""
        self.instrumented_points = state["instrumented_points"]
        self._seen.clear()
        self._seen.update(state["seen"])
        self.epoch += 1

    def __contains__(self, index):
        return index in self._seen

    def __len__(self):
        return len(self._seen)
