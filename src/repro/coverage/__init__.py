"""Register-coverage instrumentation (paper Section VI).

Two layouts are implemented:

* :class:`LegacyLayout` — the DifuzzRTL-style scheme: each control register
  is shifted by a *random* amount inside ``maxStateSize``, zero-padded, and
  the shifted values are XORed into the coverage index.  This creates both
  the *modulo bias* and the *unreachable points* the paper criticises.
* :class:`OptimizedLayout` — the paper's fix: registers are packed
  sequentially; when a register would overflow the threshold its offset
  rolls back per eq. (2) ``new_offset = (last_offset + W) % maxStateSize``,
  i.e. placement wraps modularly, eliminating empty (never-reachable)
  positions.

Per-module feedback weighting (the auxiliary shift register on ``N_cov``)
lives in :mod:`repro.coverage.weighting`; exact reachability analysis for
Fig. 6 in :mod:`repro.coverage.reachability`.
"""

from repro.coverage.layout import (
    INSTRUMENTATIONS,
    InstrumentationLayout,
    LegacyLayout,
    OptimizedLayout,
    make_layout,
    register_instrumentation,
)
from repro.coverage.map import CoverageMap
from repro.coverage.instrument import (
    ModuleCoverage,
    DesignCoverage,
    instrument_design,
)
from repro.coverage.weighting import FeedbackWeights
from repro.coverage.reachability import (
    achievable_points,
    design_reachability,
    reachability_report,
)

__all__ = [
    "INSTRUMENTATIONS",
    "InstrumentationLayout",
    "LegacyLayout",
    "OptimizedLayout",
    "make_layout",
    "register_instrumentation",
    "CoverageMap",
    "ModuleCoverage",
    "DesignCoverage",
    "instrument_design",
    "FeedbackWeights",
    "achievable_points",
    "design_reachability",
    "reachability_report",
]
