"""Coverage index layouts: how control-register bits map into the index.

A layout assigns every control register a *contribution function*
``value -> index_bits``; the module's coverage index is the XOR of all
contributions.  Layouts are deterministic given a seed, so instrumentation
is reproducible across runs (a requirement for corpus replay).
"""

import random


def _rotl(value, amount, width_bits):
    """Rotate ``value`` left by ``amount`` inside a ``width_bits`` field."""
    amount %= width_bits
    mask = (1 << width_bits) - 1
    value &= mask
    return ((value << amount) | (value >> (width_bits - amount))) & mask


class InstrumentationLayout:
    """Base class: owns the register list and the contribution tables."""

    style = "base"

    def __init__(self, registers, max_state_size, seed=0):
        self.registers = list(registers)
        self.max_state_size = max_state_size
        self.seed = seed
        self.mask = (1 << max_state_size) - 1
        self.placements = self._place()

    # -- subclass API ---------------------------------------------------------
    def _place(self):
        """Return one placement descriptor per register."""
        raise NotImplementedError

    def contribution(self, position, value):
        """Index bits contributed by register ``position`` holding ``value``."""
        raise NotImplementedError

    @property
    def instrumented_points(self):
        """Number of coverage points this layout claims to instrument."""
        raise NotImplementedError

    # -- shared ---------------------------------------------------------------
    @property
    def total_register_bits(self):
        return sum(register.width for register in self.registers)

    def index(self, values):
        """Full index from a value per register (slow path; collectors keep
        a running index incrementally instead)."""
        result = 0
        for position, value in enumerate(values):
            result ^= self.contribution(position, value)
        return result

    def covered_positions(self):
        """Bit positions of the index that at least one register can drive."""
        covered = 0
        for position, register in enumerate(self.registers):
            all_ones = (1 << register.width) - 1
            covered |= self.contribution(position, all_ones)
            # Rotation can spread bits; OR a couple of patterns for safety.
            covered |= self.contribution(position, 0b0101 & all_ones)
            covered |= self.contribution(position, 0b1010 & all_ones)
        return covered


class LegacyLayout(InstrumentationLayout):
    """Random shift + zero padding + XOR (the SOTA scheme the paper fixes).

    Shift amounts are drawn uniformly from ``[0, maxStateSize - 1]``; bits
    shifted beyond the threshold are *discarded* (the zero padding), which
    is precisely what leaves some index positions undrivable and therefore
    creates unreachable coverage points.
    """

    style = "legacy"

    def _place(self):
        rng = random.Random(self.seed)
        return [rng.randrange(self.max_state_size) for _ in self.registers]

    def contribution(self, position, value):
        shift = self.placements[position]
        register = self.registers[position]
        value &= (1 << register.width) - 1
        return (value << shift) & self.mask

    @property
    def instrumented_points(self):
        # The legacy scheme always allocates the full 2**maxStateSize buffer.
        return 1 << self.max_state_size if self.registers else 0


class OptimizedLayout(InstrumentationLayout):
    """Sequential placement with modular rollback (paper eq. 2).

    Registers are packed back to back; when ``offset + width`` exceeds the
    threshold the offset wraps via ``(last_offset + W) % maxStateSize`` and
    the placed bits rotate around the index, so every index position is
    driven by real register bits — no empty states.
    """

    style = "optimized"

    def _place(self):
        offsets = []
        offset = 0
        for register in self.registers:
            offsets.append(offset)
            offset = (offset + register.width) % self.max_state_size
        return offsets

    def contribution(self, position, value):
        offset = self.placements[position]
        register = self.registers[position]
        value &= (1 << register.width) - 1
        return _rotl(value, offset, self.max_state_size)

    @property
    def instrumented_points(self):
        if not self.registers:
            return 0
        # The optimized instrumentation "eliminates potential empty states":
        # the FIRRTL-stage pass knows each register's reachable domain (FSM
        # encodings, counter bounds), so the allocated point space is the
        # product of domain sizes, capped by the index width.
        product = 1
        cap = 1 << self.max_state_size
        for register in self.registers:
            product *= register.domain_size
            if product >= cap:
                return cap
        return product


_STYLES = {"legacy": LegacyLayout, "optimized": OptimizedLayout}


def make_layout(style, registers, max_state_size, seed=0):
    """Factory: build a layout by style name (``legacy`` / ``optimized``)."""
    try:
        cls = _STYLES[style]
    except KeyError:
        raise ValueError(f"unknown instrumentation style {style!r}") from None
    return cls(registers, max_state_size, seed=seed)
