"""Coverage index layouts: how control-register bits map into the index.

A layout assigns every control register a *contribution function*
``value -> index_bits``; the module's coverage index is the XOR of all
contributions.  Layouts are deterministic given a seed, so instrumentation
is reproducible across runs (a requirement for corpus replay).

Layout classes live in the :data:`INSTRUMENTATIONS` registry, keyed by
style name.  The built-in ``legacy`` and ``optimized`` styles register on
import; third-party layouts plug in with :func:`register_instrumentation`
(re-exported by :mod:`repro.campaign`) and become valid
``CampaignSpec.instrument_style`` values without touching core files::

    @register_instrumentation("hashed")
    class HashedLayout(InstrumentationLayout):
        style = "hashed"
        ...
"""

# analyze: ignore[DET002] seeded Random below; placement is a pure function of the layout seed
import random

from repro.registry import Registry


def _rotl(value, amount, width_bits):
    """Rotate ``value`` left by ``amount`` inside a ``width_bits`` field."""
    amount %= width_bits
    mask = (1 << width_bits) - 1
    value &= mask
    return ((value << amount) | (value >> (width_bits - amount))) & mask


class InstrumentationLayout:
    """Base class: owns the register list and the contribution tables."""

    style = "base"

    def __init__(self, registers, max_state_size, seed=0):
        self.registers = list(registers)
        self.max_state_size = max_state_size
        self.seed = seed
        self.mask = (1 << max_state_size) - 1
        self.placements = self._place()

    # -- subclass API ---------------------------------------------------------
    def _place(self):
        """Return one placement descriptor per register."""
        raise NotImplementedError

    def contribution(self, position, value):
        """Index bits contributed by register ``position`` holding ``value``."""
        raise NotImplementedError

    @property
    def instrumented_points(self):
        """Number of coverage points this layout claims to instrument."""
        raise NotImplementedError

    # -- shared ---------------------------------------------------------------
    @property
    def total_register_bits(self):
        return sum(register.width for register in self.registers)

    def index(self, values):
        """Full index from a value per register (slow path; collectors keep
        a running index incrementally instead)."""
        result = 0
        for position, value in enumerate(values):
            result ^= self.contribution(position, value)
        return result

    def contribution_tables(self):
        """Per-position ``value -> contribution`` lookup tables.

        ``tables[position][value & mask]`` equals
        ``contribution(position, value)`` for every position; the hot path
        (``ModuleCoverage`` and the DUT cores' slot bindings) replaces the
        per-observation ``contribution()`` calls with two list indexings.
        Built lazily once per layout and shared by every collector over it
        (the :class:`~repro.campaign.cache.InstrumentationCache` hands one
        layout to many sessions).
        """
        tables = getattr(self, "_contribution_tables", None)
        if tables is None:
            tables = [
                [self.contribution(position, value)
                 for value in range(1 << register.width)]
                for position, register in enumerate(self.registers)
            ]
            self._contribution_tables = tables
        return tables

    def pack_shifts(self):
        """Per-position bit offsets for packing a full state into one int.

        Register values (masked to their widths) packed at these shifts
        form an injective encoding of the module state, used as the
        observation-memo key — a single small-int key hashes and compares
        in a fraction of the cost of a value tuple.
        """
        shifts = getattr(self, "_pack_shifts", None)
        if shifts is None:
            shifts = []
            offset = 0
            for register in self.registers:
                shifts.append(offset)
                offset += register.width
            self._pack_shifts = shifts
        return shifts

    def value_masks(self):
        """Per-position width masks (``(1 << width) - 1``), precomputed."""
        masks = getattr(self, "_value_masks", None)
        if masks is None:
            masks = [(1 << register.width) - 1 for register in self.registers]
            self._value_masks = masks
        return masks

    def covered_positions(self):
        """Bit positions of the index that at least one register can drive.

        Exact for layouts whose contributions are XOR-linear in the value
        bits (every shift/rotate placement, i.e. both built-ins): a value
        is a XOR of single-bit values, so a contribution can only ever set
        index bits that some single-bit value sets — OR-ing the
        contribution of each single-bit value per register is the precise
        union of drivable positions, which is what the undrivable-index
        accounting (``maxStateSize`` minus the popcount of this mask)
        relies on.  A registered layout with *non-linear* contributions
        (e.g. a hashing scheme) must override this with its own exact
        computation.
        """
        covered = 0
        for position, register in enumerate(self.registers):
            for bit in range(register.width):
                covered |= self.contribution(position, 1 << bit)
        return covered


class LegacyLayout(InstrumentationLayout):
    """Random shift + zero padding + XOR (the SOTA scheme the paper fixes).

    Shift amounts are drawn uniformly from ``[0, maxStateSize - 1]``; bits
    shifted beyond the threshold are *discarded* (the zero padding), which
    is precisely what leaves some index positions undrivable and therefore
    creates unreachable coverage points.
    """

    style = "legacy"

    def _place(self):
        rng = random.Random(self.seed)
        return [rng.randrange(self.max_state_size) for _ in self.registers]

    def contribution(self, position, value):
        shift = self.placements[position]
        register = self.registers[position]
        value &= (1 << register.width) - 1
        return (value << shift) & self.mask

    @property
    def instrumented_points(self):
        # The legacy scheme always allocates the full 2**maxStateSize buffer.
        return 1 << self.max_state_size if self.registers else 0


class OptimizedLayout(InstrumentationLayout):
    """Sequential placement with modular rollback (paper eq. 2).

    Registers are packed back to back; when ``offset + width`` exceeds the
    threshold the offset wraps via ``(last_offset + W) % maxStateSize`` and
    the placed bits rotate around the index, so every index position is
    driven by real register bits — no empty states.
    """

    style = "optimized"

    def _place(self):
        offsets = []
        offset = 0
        for register in self.registers:
            offsets.append(offset)
            offset = (offset + register.width) % self.max_state_size
        return offsets

    def contribution(self, position, value):
        offset = self.placements[position]
        register = self.registers[position]
        value &= (1 << register.width) - 1
        return _rotl(value, offset, self.max_state_size)

    @property
    def instrumented_points(self):
        if not self.registers:
            return 0
        # The optimized instrumentation "eliminates potential empty states":
        # the FIRRTL-stage pass knows each register's reachable domain (FSM
        # encodings, counter bounds), so the allocated point space is the
        # product of domain sizes, capped by the index width.
        product = 1
        cap = 1 << self.max_state_size
        for register in self.registers:
            product *= register.domain_size
            if product >= cap:
                return cap
        return product


INSTRUMENTATIONS = Registry("instrumentation style")


def register_instrumentation(name, layout_class=None, replace=False):
    """Register an :class:`InstrumentationLayout` subclass under a style
    name; usable directly or as a class decorator."""
    return INSTRUMENTATIONS.register(name, layout_class, replace=replace)


register_instrumentation("legacy", LegacyLayout)
register_instrumentation("optimized", OptimizedLayout)


def make_layout(style, registers, max_state_size, seed=0):
    """Factory: build a layout by registered style name."""
    return INSTRUMENTATIONS.get(style)(registers, max_state_size, seed=seed)
