"""Exact reachability analysis of instrumented coverage points (Fig. 6).

The coverage index is an XOR of per-register contributions.  For registers
whose value domain is the full ``2**width`` space, the contribution set is a
GF(2) *linear subspace* (both layouts place bits by shift or rotation), so
the reachable image is computed exactly with a bit-basis.  Registers with
restricted domains (one-hot FSM states, bounded counters) contribute coset
representatives that are expanded combinatorially.

This gives the exact count of *achievable* coverage points per module,
reproducing the paper's observation that the legacy layout leaves large
fractions of the instrumented space unreachable (zero-padded positions no
register can drive, plus restricted-domain collisions), while the optimized
layout drives every position.
"""


def _reduce(pivots, vector):
    """Reduce a vector modulo the current basis (clear pivot positions)."""
    while vector:
        high_bit = vector.bit_length() - 1
        pivot = pivots.get(high_bit)
        if pivot is None:
            return vector
        vector ^= pivot
    return 0


def _insert(pivots, vector):
    """Insert into the basis if independent; returns True when inserted."""
    vector = _reduce(pivots, vector)
    if vector == 0:
        return False
    pivots[vector.bit_length() - 1] = vector
    return True


def achievable_points(layout, expansion_cap=1 << 22):
    """Exact number of reachable coverage-point indices for a layout.

    ``expansion_cap`` bounds the coset-representative expansion for
    pathological domain combinations; hitting the cap returns a lower
    bound (which is still exact for every layout our DUTs produce).
    """
    if not layout.registers:
        return 0
    pivots = {}
    restricted = []
    for position, register in enumerate(layout.registers):
        if register.domain is None:
            for bit in range(register.width):
                _insert(pivots, layout.contribution(position, 1 << bit))
        else:
            contributions = {
                layout.contribution(position, value)
                for value in register.domain
            }
            restricted.append(contributions)

    rank = len(pivots)
    span = 1 << rank

    # Expand coset representatives of restricted-domain registers.
    residues = {0}
    for contributions in restricted:
        reduced = {_reduce(pivots, contribution) for contribution in contributions}
        if reduced == {0}:
            continue
        expanded = set()
        for accumulated in residues:
            for residue in reduced:
                expanded.add(accumulated ^ residue)
            if len(expanded) * span >= expansion_cap:
                break
        residues = expanded
        if len(residues) * span >= min(layout.instrumented_points, expansion_cap):
            # Saturated: cannot exceed the instrumented space.
            return min(len(residues) * span, layout.instrumented_points)
    return min(len(residues) * span, layout.instrumented_points)


def reachability_report(layout):
    """``dict`` with instrumented/achievable counts and the reachable ratio."""
    instrumented = layout.instrumented_points
    achievable = achievable_points(layout)
    fraction = achievable / instrumented if instrumented else 0.0
    return {
        "style": layout.style,
        "max_state_size": layout.max_state_size,
        "registers": len(layout.registers),
        "register_bits": layout.total_register_bits,
        "instrumented": instrumented,
        "achievable": achievable,
        "fraction": fraction,
    }


def design_reachability(design_coverage):
    """Aggregate reachability over all instrumented modules of a design."""
    per_module = {}
    total_instrumented = 0
    total_achievable = 0
    for module_cov in design_coverage.modules:
        report = reachability_report(module_cov.layout)
        per_module[module_cov.name] = report
        total_instrumented += report["instrumented"]
        total_achievable += report["achievable"]
    fraction = total_achievable / total_instrumented if total_instrumented else 0.0
    return {
        "modules": per_module,
        "instrumented": total_instrumented,
        "achievable": total_achievable,
        "fraction": fraction,
    }
