"""Synthetic CPU benchmarks (coremark / dhrystone / microbench stand-ins).

The paper's deepExplore extracts representative intervals from standard
benchmarks.  The real binaries are not available offline, so these
generators emit RISC-V programs with the property SimPoint depends on:
*recurring basic-block behaviour* — nested loops over distinct phase
kernels with loop counts large enough that intervals repeat.
"""

from repro.workloads.programs import (
    WorkloadProgram,
    coremark_like,
    dhrystone_like,
    microbench_like,
    all_workloads,
    raw_iteration,
)

__all__ = [
    "WorkloadProgram",
    "coremark_like",
    "dhrystone_like",
    "microbench_like",
    "all_workloads",
    "raw_iteration",
]
