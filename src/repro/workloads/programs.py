"""Loop-structured benchmark program generators.

Each generator builds a phase-structured program: a sequence of kernels,
each a counted loop whose body mixes a characteristic blend of operations.
The resulting dynamic instruction stream has strongly recurring basic-block
vectors, which is exactly what SimPoint clustering exploits.

Register conventions match the fuzzing templates (x5 = data base).
"""

from dataclasses import dataclass

from repro.fuzzer.blocks import InstructionBlock, Iteration, StimulusEntry
from repro.fuzzer.context import MemoryLayout, REG_DATA_BASE
from repro.fuzzer.lfsr import Lfsr
from repro.isa.encoder import encode


@dataclass
class WorkloadProgram:
    """A generated benchmark: words plus descriptive metadata."""

    name: str
    words: list
    phases: int
    approx_dynamic_instructions: int


# Scratch registers used by kernels (disjoint from template registers).
_COUNTER = 7   # t2: loop counter
_ACC = 8       # s0: accumulator
_TMP1 = 9
_TMP2 = 10
_TMP3 = 11
_PTR = 12


def _loop(body_words, iterations):
    """Wrap a body in a counted loop: counter set, body, decrement, bne."""
    words = [encode("addi", rd=_COUNTER, rs1=0, imm=iterations)]
    words.extend(body_words)
    words.append(encode("addi", rd=_COUNTER, rs1=_COUNTER, imm=-1))
    body_len = len(body_words) + 1  # +1 for the decrement
    words.append(
        encode("bne", rs1=_COUNTER, rs2=0, imm=-4 * body_len)
    )
    return words


def _alu_kernel(lfsr, length):
    ops = ("add", "sub", "xor", "or", "and", "sll", "srl", "slt")
    body = []
    for index in range(length):
        op = ops[lfsr.below(len(ops))]
        body.append(
            encode(op, rd=_ACC, rs1=_ACC,
                   rs2=(_TMP1, _TMP2, _TMP3)[index % 3])
        )
        if index % 4 == 3:
            body.append(encode("addi", rd=_TMP1, rs1=_TMP1, imm=lfsr.bits(6)))
    return body


def _mem_kernel(lfsr, length):
    body = [encode("addi", rd=_PTR, rs1=REG_DATA_BASE, imm=0)]
    for index in range(length):
        offset = (index * 8) % 1024
        if index % 3 == 2:
            body.append(encode("sd", rs2=_ACC, rs1=_PTR, imm=offset))
        else:
            body.append(encode("ld", rd=_TMP2, rs1=_PTR, imm=offset))
            body.append(encode("add", rd=_ACC, rs1=_ACC, rs2=_TMP2))
    return body


def _mul_kernel(lfsr, length):
    body = []
    for index in range(length):
        if index % 5 == 4:
            body.append(encode("div", rd=_TMP3, rs1=_ACC, rs2=_TMP1))
        else:
            body.append(encode("mul", rd=_ACC, rs1=_ACC, rs2=_TMP1))
        body.append(encode("addi", rd=_TMP1, rs1=_TMP1, imm=3))
    return body


def _fp_kernel(lfsr, length):
    body = [
        encode("fld", rd=0, rs1=REG_DATA_BASE, imm=48),  # 1.0
        encode("fld", rd=1, rs1=REG_DATA_BASE, imm=64),  # 1.5
    ]
    for index in range(length):
        op = ("fadd.d", "fmul.d", "fsub.d")[index % 3]
        body.append(encode(op, rd=2, rs1=(index % 2), rs2=1, rm=0))
        if index % 4 == 3:
            body.append(encode("fsd", rs2=2, rs1=REG_DATA_BASE,
                               imm=256 + (index % 16) * 8))
    return body


def _string_kernel(lfsr, length):
    """Byte-wise copy/compare mix (the dhrystone flavour)."""
    body = [encode("addi", rd=_PTR, rs1=REG_DATA_BASE, imm=0)]
    for index in range(length):
        offset = index % 256
        body.append(encode("lbu", rd=_TMP1, rs1=_PTR, imm=offset))
        body.append(encode("sb", rs2=_TMP1, rs1=_PTR, imm=512 + offset))
        if index % 4 == 3:
            body.append(encode("bne", rs1=_TMP1, rs2=0, imm=4))
    return body


def _program(name, lfsr_seed, phase_plan):
    """Assemble phases into one program; returns a WorkloadProgram."""
    lfsr = Lfsr(lfsr_seed)
    words = [
        encode("addi", rd=_ACC, rs1=0, imm=1),
        encode("addi", rd=_TMP1, rs1=0, imm=7),
        encode("addi", rd=_TMP2, rs1=0, imm=13),
        encode("addi", rd=_TMP3, rs1=0, imm=29),
    ]
    dynamic = len(words)
    for kernel, body_length, iterations in phase_plan:
        body = kernel(lfsr, body_length)
        words.extend(_loop(body, iterations))
        dynamic += (len(body) + 2) * iterations + 1
    return WorkloadProgram(
        name=name,
        words=words,
        phases=len(phase_plan),
        approx_dynamic_instructions=dynamic,
    )


def coremark_like(seed=1, scale=1):
    """coremark flavour: ALU-heavy with list/matrix-ish memory phases."""
    return _program(
        "coremark", seed,
        [
            (_alu_kernel, 24, 180 * scale),
            (_mem_kernel, 12, 140 * scale),
            (_mul_kernel, 10, 120 * scale),
            (_alu_kernel, 18, 160 * scale),
            (_mem_kernel, 16, 100 * scale),
        ],
    )


def dhrystone_like(seed=2, scale=1):
    """dhrystone flavour: string ops, branches, light integer math."""
    return _program(
        "dhrystone", seed,
        [
            (_string_kernel, 14, 200 * scale),
            (_alu_kernel, 10, 160 * scale),
            (_string_kernel, 18, 150 * scale),
            (_mem_kernel, 8, 120 * scale),
        ],
    )


def microbench_like(seed=3, scale=1):
    """microbench flavour: distinct small kernels incl. FP and div."""
    return _program(
        "microbench", seed,
        [
            (_alu_kernel, 12, 120 * scale),
            (_fp_kernel, 10, 110 * scale),
            (_mul_kernel, 8, 100 * scale),
            (_mem_kernel, 10, 110 * scale),
            (_fp_kernel, 14, 90 * scale),
            (_string_kernel, 10, 100 * scale),
        ],
    )


def all_workloads(scale=1):
    """The three benchmark stand-ins at a given loop-count scale."""
    return [
        coremark_like(scale=scale),
        dhrystone_like(scale=scale),
        microbench_like(scale=scale),
    ]


def raw_iteration(words, layout=None, data_seed=1):
    """Wrap raw program words into an Iteration (single-word blocks with
    no control-flow metadata, so assembly preserves them verbatim)."""
    layout = layout or MemoryLayout()
    blocks = [
        InstructionBlock(prime_name="addi", entries=[StimulusEntry(word)])
        for word in words
    ]
    iteration = Iteration(blocks=blocks, layout=layout, data_seed=data_seed)
    iteration.assemble()
    return iteration
