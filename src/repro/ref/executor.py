"""Instruction-accurate RV64 executor shared by REF and DUT models.

The executor implements full architectural semantics; the DUT cores reuse it
with an :class:`ExecHooks` subclass that injects the Table II bugs at the
architecturally-visible points (FPU results, rounding-mode resolution,
NaN unboxing, CSR reads, AMO legality, minstret retirement).

Every :meth:`Executor.step` returns a :class:`CommitRecord`; the ENCORE-style
checker (:mod:`repro.harness.checker`) compares DUT and REF records
instruction by instruction, which is the paper's fine-grained self-checking.
"""

from dataclasses import dataclass, field

from repro.analyze.markers import hot_path
from repro.isa import csr as CSR
from repro.isa.decoder import _CACHE as _DECODE_CACHE
from repro.isa.decoder import IllegalInstruction, decode
from repro.isa.encoding import MASK32, MASK64, sext, to_signed, to_unsigned
from repro.isa.instructions import Extension
from repro.ref.memory import MemoryAccessError
from repro.ref.state import PRV_M
from repro.softfloat import (
    F32,
    F64,
    fp_add,
    fp_classify,
    fp_div,
    fp_eq,
    fp_fma,
    fp_le,
    fp_lt,
    fp_max,
    fp_min,
    fp_mul,
    fp_sqrt,
    fp_sub,
    fp_to_fp,
    fp_to_int,
    int_to_fp,
    nan_box,
)
from repro.softfloat import formats as fp_formats


@dataclass(slots=True)
class Trap:
    """An architectural trap taken while executing one instruction."""

    cause: int
    tval: int = 0

    @property
    def name(self):
        return CSR.CAUSE_NAMES.get(self.cause, f"cause {self.cause}")


class _TrapSignal(Exception):
    """Internal control-flow signal; converted to a Trap in step()."""

    def __init__(self, cause, tval=0):
        super().__init__()
        self.trap = Trap(cause, tval)


@dataclass(slots=True)
class CommitRecord:
    """What one instruction did, for differential checking and tracing."""

    pc: int
    word: int
    name: str
    next_pc: int
    trap: Trap = None
    rd: int = None
    rd_value: int = None
    frd: int = None
    frd_value: int = None
    mem_addr: int = None
    mem_size: int = None
    mem_value: int = None
    csr_addr: int = None
    csr_value: int = None
    fflags_set: int = 0

    def key_fields(self):
        """The tuple compared by the instruction-level checker."""
        trap_cause = self.trap.cause if self.trap else None
        return (
            self.pc,
            self.next_pc,
            trap_cause,
            self.rd,
            self.rd_value,
            self.frd,
            self.frd_value,
            self.mem_addr,
            self.mem_value,
            self.csr_addr,
            self.csr_value,
            self.fflags_set,
        )


@dataclass
class ExecConfig:
    """Static configuration of one hart (which extensions are wired up)."""

    xlen: int = 64
    extensions: frozenset = field(
        default_factory=lambda: frozenset(
            {
                Extension.I,
                Extension.M,
                Extension.A,
                Extension.F,
                Extension.D,
                Extension.ZICSR,
                Extension.SYSTEM,
            }
        )
    )


class ExecHooks:
    """Override points where DUT cores inject Table II bugs.

    The default implementations are architecturally correct; the REF model
    always uses this base class directly.
    """

    def resolve_rm(self, instr_rm, frm):
        """Resolve the effective rounding mode; ``None`` means illegal."""
        rm = frm if instr_rm == CSR.RM_DYN else instr_rm
        if rm not in CSR.VALID_RMS:
            return None
        return rm

    def nan_unbox(self, bits64):
        """Extract a binary32 operand from a 64-bit FP register."""
        return fp_formats.nan_unbox(bits64)

    def fp_post(self, name, fmt, operands, result, flags, rm):
        """Intercept an FP arithmetic result (bug injection point)."""
        return result, flags

    def csr_read(self, address, value):
        """Intercept a CSR read (bug injection point, e.g. stval C7)."""
        return value

    def amo_legal(self, spec):
        """Whether an AMO encoding is accepted (bug C8 point)."""
        return True

    def counts_minstret(self, decoded, trapped):
        """Whether this instruction bumps minstret (bug R1 point)."""
        return True


DEFAULT_HOOKS = ExecHooks()


class Executor:
    """Steps one hart: fetch, decode, execute, trap handling, retire."""

    def __init__(self, state, memory, config=None, hooks=None):
        self.state = state
        self.memory = memory
        self.config = config or ExecConfig()
        self.hooks = hooks or DEFAULT_HOOKS
        self.instret = 0  # total step() calls, for harness bookkeeping
        # Hot-path aliases resolved once (config and hooks are static per
        # hart; a fresh Executor is built on every DUT reset).
        self._extensions = self.config.extensions
        self._minstret_always = (
            type(self.hooks).counts_minstret is ExecHooks.counts_minstret
        )
        self._load_word = memory.load_word

    # ------------------------------------------------------------------ fetch
    @hot_path
    def step(self):
        """Execute one instruction and return its :class:`CommitRecord`."""
        state = self.state
        pc = state.pc
        word = 0
        decoded = None
        # analyze: ignore[HOT005] trap dispatch: raises only on the cold (trap) branch
        try:
            if pc & 3:
                raise _TrapSignal(CSR.CAUSE_MISALIGNED_FETCH, pc)
            try:  # analyze: ignore[HOT005] fetch fault is the cold branch
                word = self._load_word(pc)
            except MemoryAccessError:
                raise _TrapSignal(CSR.CAUSE_FETCH_ACCESS, pc) from None
            decoded = _DECODE_CACHE.get(word)
            if decoded is None:
                try:  # analyze: ignore[HOT005] decode-cache miss is the cold branch
                    decoded = decode(word)
                except IllegalInstruction:
                    raise _TrapSignal(
                        CSR.CAUSE_ILLEGAL_INSTRUCTION, word
                    ) from None
            spec = decoded.spec
            if spec.extension not in self._extensions:
                raise _TrapSignal(CSR.CAUSE_ILLEGAL_INSTRUCTION, word)
            record = CommitRecord(pc, word, spec.name, pc + 4)
            # Handlers are pre-attached to the spec objects at import (see
            # _attach_handlers); one attribute load replaces the
            # name-keyed dict dispatch.
            spec.exec_handler(self, decoded, record)
        except _TrapSignal as signal:
            name = decoded.spec.name if decoded is not None else "?"
            record = CommitRecord(pc, word, name, 0)
            record.trap = signal.trap
            record.next_pc = self._take_trap(signal.trap, pc)
        state.pc = record.next_pc
        self.instret += 1
        trapped = record.trap is not None
        if self._minstret_always or self.hooks.counts_minstret(decoded, trapped):
            state.csrs[CSR.MINSTRET] = (state.csrs[CSR.MINSTRET] + 1) & MASK64
        state.csrs[CSR.MCYCLE] = (state.csrs[CSR.MCYCLE] + 1) & MASK64
        return record

    def _take_trap(self, trap, pc):
        state = self.state
        state.csrs[CSR.MEPC] = pc
        state.csrs[CSR.MCAUSE] = trap.cause
        state.csrs[CSR.MTVAL] = trap.tval & MASK64
        # The cores keep a shared tval latch that also backs stval (no
        # S-mode delegation in this model); bug C7 intercepts its readout.
        state.csrs[CSR.STVAL] = trap.tval & MASK64
        status = state.csrs[CSR.MSTATUS]
        mie = (status >> 3) & 1
        status = (status & ~CSR.MSTATUS_MPIE) | (mie << 7)
        status &= ~CSR.MSTATUS_MIE
        state.csrs[CSR.MSTATUS] = status
        state.privilege = PRV_M
        return state.csrs[CSR.MTVEC] & ~3

    # --- helpers --------------------------------------------------------
    @hot_path
    def _wx(self, record, index, value):
        value &= MASK64
        if index:
            self.state.xregs[index] = value
            record.rd = index
            record.rd_value = value
        else:
            record.rd = 0
            record.rd_value = 0

    @hot_path
    def _wf(self, record, index, value):
        value &= MASK64
        state = self.state
        state.fregs[index] = value
        state.set_fs_dirty()
        record.frd = index
        record.frd_value = value

    def _load(self, address, size):
        try:
            return self.memory.load(address, size)
        except MemoryAccessError:
            raise _TrapSignal(CSR.CAUSE_LOAD_ACCESS, address) from None

    def _store(self, record, address, size, value):
        try:
            self.memory.store(address, size, value)
        except MemoryAccessError:
            raise _TrapSignal(CSR.CAUSE_STORE_ACCESS, address) from None
        record.mem_addr = address
        record.mem_size = size
        record.mem_value = value & ((1 << (size * 8)) - 1)

    def _branch_to(self, record, target):
        target &= MASK64
        if target & 3:
            raise _TrapSignal(CSR.CAUSE_MISALIGNED_FETCH, target)
        record.next_pc = target

    # --- integer computational -------------------------------------------
    def _op_lui(self, d, record):
        self._wx(record, d.rd, to_unsigned(d.imm))

    def _op_auipc(self, d, record):
        self._wx(record, d.rd, record.pc + to_unsigned(d.imm))

    def _op_addi(self, d, record):
        self._wx(record, d.rd, self.state.xregs[d.rs1] + d.imm)

    def _op_slti(self, d, record):
        self._wx(record, d.rd, 1 if to_signed(self.state.xregs[d.rs1]) < d.imm else 0)

    def _op_sltiu(self, d, record):
        self._wx(record, d.rd, 1 if self.state.xregs[d.rs1] < to_unsigned(d.imm) else 0)

    def _op_xori(self, d, record):
        self._wx(record, d.rd, self.state.xregs[d.rs1] ^ to_unsigned(d.imm))

    def _op_ori(self, d, record):
        self._wx(record, d.rd, self.state.xregs[d.rs1] | to_unsigned(d.imm))

    def _op_andi(self, d, record):
        self._wx(record, d.rd, self.state.xregs[d.rs1] & to_unsigned(d.imm))

    def _op_slli(self, d, record):
        self._wx(record, d.rd, self.state.xregs[d.rs1] << d.shamt)

    def _op_srli(self, d, record):
        self._wx(record, d.rd, self.state.xregs[d.rs1] >> d.shamt)

    def _op_srai(self, d, record):
        self._wx(record, d.rd, to_signed(self.state.xregs[d.rs1]) >> d.shamt)

    def _op_addiw(self, d, record):
        self._wx(record, d.rd, sext((self.state.xregs[d.rs1] + d.imm) & MASK32, 32))

    def _op_slliw(self, d, record):
        self._wx(record, d.rd, sext((self.state.xregs[d.rs1] << d.shamt) & MASK32, 32))

    def _op_srliw(self, d, record):
        self._wx(record, d.rd, sext((self.state.xregs[d.rs1] & MASK32) >> d.shamt, 32))

    def _op_sraiw(self, d, record):
        self._wx(record, d.rd, sext(self.state.xregs[d.rs1] & MASK32, 32) >> d.shamt)

    def _op_add(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] + x[d.rs2])

    def _op_sub(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] - x[d.rs2])

    def _op_sll(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] << (x[d.rs2] & 63))

    def _op_slt(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, 1 if to_signed(x[d.rs1]) < to_signed(x[d.rs2]) else 0)

    def _op_sltu(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, 1 if x[d.rs1] < x[d.rs2] else 0)

    def _op_xor(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] ^ x[d.rs2])

    def _op_srl(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] >> (x[d.rs2] & 63))

    def _op_sra(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, to_signed(x[d.rs1]) >> (x[d.rs2] & 63))

    def _op_or(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] | x[d.rs2])

    def _op_and(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] & x[d.rs2])

    def _op_addw(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, sext((x[d.rs1] + x[d.rs2]) & MASK32, 32))

    def _op_subw(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, sext((x[d.rs1] - x[d.rs2]) & MASK32, 32))

    def _op_sllw(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, sext((x[d.rs1] << (x[d.rs2] & 31)) & MASK32, 32))

    def _op_srlw(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, sext((x[d.rs1] & MASK32) >> (x[d.rs2] & 31), 32))

    def _op_sraw(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, sext(x[d.rs1] & MASK32, 32) >> (x[d.rs2] & 31))

    # --- control flow -----------------------------------------------------
    def _op_jal(self, d, record):
        target = record.pc + d.imm
        self._wx(record, d.rd, record.pc + 4)
        self._branch_to(record, target)

    def _op_jalr(self, d, record):
        target = (self.state.xregs[d.rs1] + d.imm) & ~1
        self._wx(record, d.rd, record.pc + 4)
        self._branch_to(record, target)

    def _branch(self, d, record, taken):
        if taken:
            self._branch_to(record, record.pc + d.imm)

    def _op_beq(self, d, record):
        x = self.state.xregs
        self._branch(d, record, x[d.rs1] == x[d.rs2])

    def _op_bne(self, d, record):
        x = self.state.xregs
        self._branch(d, record, x[d.rs1] != x[d.rs2])

    def _op_blt(self, d, record):
        x = self.state.xregs
        self._branch(d, record, to_signed(x[d.rs1]) < to_signed(x[d.rs2]))

    def _op_bge(self, d, record):
        x = self.state.xregs
        self._branch(d, record, to_signed(x[d.rs1]) >= to_signed(x[d.rs2]))

    def _op_bltu(self, d, record):
        x = self.state.xregs
        self._branch(d, record, x[d.rs1] < x[d.rs2])

    def _op_bgeu(self, d, record):
        x = self.state.xregs
        self._branch(d, record, x[d.rs1] >= x[d.rs2])

    # --- memory -------------------------------------------------------------
    def _op_lb(self, d, record):
        value = self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 1)
        self._wx(record, d.rd, sext(value, 8))

    def _op_lh(self, d, record):
        value = self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 2)
        self._wx(record, d.rd, sext(value, 16))

    def _op_lw(self, d, record):
        value = self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 4)
        self._wx(record, d.rd, sext(value, 32))

    def _op_ld(self, d, record):
        self._wx(record, d.rd, self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 8))

    def _op_lbu(self, d, record):
        self._wx(record, d.rd, self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 1))

    def _op_lhu(self, d, record):
        self._wx(record, d.rd, self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 2))

    def _op_lwu(self, d, record):
        self._wx(record, d.rd, self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 4))

    def _op_sb(self, d, record):
        x = self.state.xregs
        self._store(record, x[d.rs1] + d.imm & MASK64, 1, x[d.rs2])

    def _op_sh(self, d, record):
        x = self.state.xregs
        self._store(record, x[d.rs1] + d.imm & MASK64, 2, x[d.rs2])

    def _op_sw(self, d, record):
        x = self.state.xregs
        self._store(record, x[d.rs1] + d.imm & MASK64, 4, x[d.rs2])

    def _op_sd(self, d, record):
        x = self.state.xregs
        self._store(record, x[d.rs1] + d.imm & MASK64, 8, x[d.rs2])

    # --- M extension ----------------------------------------------------------
    def _op_mul(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] * x[d.rs2])

    def _op_mulh(self, d, record):
        x = self.state.xregs
        product = to_signed(x[d.rs1]) * to_signed(x[d.rs2])
        self._wx(record, d.rd, (product >> 64))

    def _op_mulhsu(self, d, record):
        x = self.state.xregs
        product = to_signed(x[d.rs1]) * x[d.rs2]
        self._wx(record, d.rd, (product >> 64))

    def _op_mulhu(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, (x[d.rs1] * x[d.rs2]) >> 64)

    @staticmethod
    def _div_signed(a, b, width):
        if b == 0:
            return -1
        min_int = -(1 << (width - 1))
        if a == min_int and b == -1:
            return min_int
        quotient = abs(a) // abs(b)
        return -quotient if (a < 0) != (b < 0) else quotient

    @staticmethod
    def _rem_signed(a, b, width):
        if b == 0:
            return a
        min_int = -(1 << (width - 1))
        if a == min_int and b == -1:
            return 0
        remainder = abs(a) % abs(b)
        return -remainder if a < 0 else remainder

    def _op_div(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, self._div_signed(to_signed(x[d.rs1]), to_signed(x[d.rs2]), 64))

    def _op_divu(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, MASK64 if x[d.rs2] == 0 else x[d.rs1] // x[d.rs2])

    def _op_rem(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, self._rem_signed(to_signed(x[d.rs1]), to_signed(x[d.rs2]), 64))

    def _op_remu(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, x[d.rs1] if x[d.rs2] == 0 else x[d.rs1] % x[d.rs2])

    def _op_mulw(self, d, record):
        x = self.state.xregs
        self._wx(record, d.rd, sext((x[d.rs1] * x[d.rs2]) & MASK32, 32))

    def _op_divw(self, d, record):
        x = self.state.xregs
        a, b = sext(x[d.rs1] & MASK32, 32), sext(x[d.rs2] & MASK32, 32)
        self._wx(record, d.rd, sext(self._div_signed(a, b, 32) & MASK32, 32))

    def _op_divuw(self, d, record):
        x = self.state.xregs
        a, b = x[d.rs1] & MASK32, x[d.rs2] & MASK32
        value = MASK32 if b == 0 else a // b
        self._wx(record, d.rd, sext(value, 32))

    def _op_remw(self, d, record):
        x = self.state.xregs
        a, b = sext(x[d.rs1] & MASK32, 32), sext(x[d.rs2] & MASK32, 32)
        self._wx(record, d.rd, sext(self._rem_signed(a, b, 32) & MASK32, 32))

    def _op_remuw(self, d, record):
        x = self.state.xregs
        a, b = x[d.rs1] & MASK32, x[d.rs2] & MASK32
        value = a if b == 0 else a % b
        self._wx(record, d.rd, sext(value, 32))

    # --- A extension -----------------------------------------------------------
    def _amo_addr(self, d, size):
        address = self.state.xregs[d.rs1]
        if address % size:
            raise _TrapSignal(CSR.CAUSE_MISALIGNED_STORE, address)
        return address

    def _amo_check_legal(self, d):
        if not self.hooks.amo_legal(d.spec):
            raise _TrapSignal(CSR.CAUSE_ILLEGAL_INSTRUCTION, d.word)

    def _op_lr(self, d, record, size):
        self._amo_check_legal(d)
        address = self._amo_addr(d, size)
        value = self._load(address, size)
        self.state.reservation = address
        self._wx(record, d.rd, sext(value, size * 8))

    def _op_sc(self, d, record, size):
        self._amo_check_legal(d)
        address = self._amo_addr(d, size)
        if self.state.reservation == address:
            self._store(record, address, size, self.state.xregs[d.rs2])
            self._wx(record, d.rd, 0)
        else:
            self._wx(record, d.rd, 1)
        self.state.reservation = None

    def _amo(self, d, record, size, combine):
        self._amo_check_legal(d)
        address = self._amo_addr(d, size)
        old = sext(self._load(address, size), size * 8)
        rs2 = sext(self.state.xregs[d.rs2] & ((1 << (size * 8)) - 1), size * 8)
        new = combine(old, rs2) & ((1 << (size * 8)) - 1)
        self._store(record, address, size, new)
        self._wx(record, d.rd, sext(old & ((1 << (size * 8)) - 1), size * 8))

    # --- FP helpers -------------------------------------------------------------
    def _fp_check_enabled(self, d):
        if self.state.fs_off:
            raise _TrapSignal(CSR.CAUSE_ILLEGAL_INSTRUCTION, d.word)

    def _fp_rm(self, d):
        rm = self.hooks.resolve_rm(d.rm, self.state.frm)
        if rm is None:
            raise _TrapSignal(CSR.CAUSE_ILLEGAL_INSTRUCTION, d.word)
        return rm

    def _fp_read(self, index, fmt):
        raw = self.state.fregs[index]
        if fmt is F32:
            return self.hooks.nan_unbox(raw)
        return raw

    def _fp_write(self, record, index, value, fmt):
        if fmt is F32:
            value = nan_box(value)
        self._wf(record, index, value)

    def _fp_finish(self, record, flags):
        flags &= CSR.FFLAGS_MASK
        record.fflags_set = flags
        self.state.accrue_fflags(flags)

    def _fp_binary(self, d, record, fmt, op, name):
        self._fp_check_enabled(d)
        rm = self._fp_rm(d)
        a = self._fp_read(d.rs1, fmt)
        b = self._fp_read(d.rs2, fmt)
        result, flags = op(a, b, fmt, rm)
        result, flags = self.hooks.fp_post(name, fmt, (a, b), result, flags, rm)
        self._fp_write(record, d.rd, result, fmt)
        self._fp_finish(record, flags)

    def _fp_fma_op(self, d, record, fmt, negate_product, negate_c, name):
        self._fp_check_enabled(d)
        rm = self._fp_rm(d)
        a = self._fp_read(d.rs1, fmt)
        b = self._fp_read(d.rs2, fmt)
        c = self._fp_read(d.rs3, fmt)
        result, flags = fp_fma(a, b, c, fmt, rm, negate_product, negate_c)
        result, flags = self.hooks.fp_post(name, fmt, (a, b, c), result, flags, rm)
        self._fp_write(record, d.rd, result, fmt)
        self._fp_finish(record, flags)

    def _fp_sign_inject(self, d, record, fmt, mode):
        self._fp_check_enabled(d)
        a = self._fp_read(d.rs1, fmt)
        b = self._fp_read(d.rs2, fmt)
        sign_bit = fmt.sign_bit
        if mode == "j":
            result = (a & ~sign_bit) | (b & sign_bit)
        elif mode == "jn":
            result = (a & ~sign_bit) | ((b & sign_bit) ^ sign_bit)
        else:  # jx
            result = a ^ (b & sign_bit)
        self._fp_write(record, d.rd, result, fmt)
        self._fp_finish(record, 0)

    def _fp_minmax(self, d, record, fmt, op, name):
        self._fp_check_enabled(d)
        a = self._fp_read(d.rs1, fmt)
        b = self._fp_read(d.rs2, fmt)
        result, flags = op(a, b, fmt)
        result, flags = self.hooks.fp_post(name, fmt, (a, b), result, flags, None)
        self._fp_write(record, d.rd, result, fmt)
        self._fp_finish(record, flags)

    def _fp_compare(self, d, record, fmt, op):
        self._fp_check_enabled(d)
        a = self._fp_read(d.rs1, fmt)
        b = self._fp_read(d.rs2, fmt)
        result, flags = op(a, b, fmt)
        self._wx(record, d.rd, result)
        self._fp_finish(record, flags)

    def _fp_sqrt_op(self, d, record, fmt, name):
        self._fp_check_enabled(d)
        rm = self._fp_rm(d)
        a = self._fp_read(d.rs1, fmt)
        result, flags = fp_sqrt(a, fmt, rm)
        result, flags = self.hooks.fp_post(name, fmt, (a,), result, flags, rm)
        self._fp_write(record, d.rd, result, fmt)
        self._fp_finish(record, flags)

    def _fp_cvt_to_int(self, d, record, fmt, width, signed):
        self._fp_check_enabled(d)
        rm = self._fp_rm(d)
        a = self._fp_read(d.rs1, fmt)
        value, flags = fp_to_int(a, fmt, rm, width, signed)
        self._wx(record, d.rd, sext(value, width) if width == 32 else value)
        self._fp_finish(record, flags)

    def _fp_cvt_from_int(self, d, record, fmt, width, signed):
        self._fp_check_enabled(d)
        rm = self._fp_rm(d)
        raw = self.state.xregs[d.rs1] & ((1 << width) - 1)
        result, flags = int_to_fp(raw, width, signed, fmt, rm)
        self._fp_write(record, d.rd, result, fmt)
        self._fp_finish(record, flags)

    def _op_fclass(self, d, record, fmt):
        self._fp_check_enabled(d)
        a = self._fp_read(d.rs1, fmt)
        self._wx(record, d.rd, fp_classify(a, fmt))
        self._fp_finish(record, 0)

    # --- FP loads/stores ---------------------------------------------------
    def _op_flw(self, d, record):
        self._fp_check_enabled(d)
        value = self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 4)
        self._wf(record, d.rd, nan_box(value))

    def _op_fld(self, d, record):
        self._fp_check_enabled(d)
        value = self._load(self.state.xregs[d.rs1] + d.imm & MASK64, 8)
        self._wf(record, d.rd, value)

    def _op_fsw(self, d, record):
        self._fp_check_enabled(d)
        address = self.state.xregs[d.rs1] + d.imm & MASK64
        self._store(record, address, 4, self.state.fregs[d.rs2] & MASK32)

    def _op_fsd(self, d, record):
        self._fp_check_enabled(d)
        address = self.state.xregs[d.rs1] + d.imm & MASK64
        self._store(record, address, 8, self.state.fregs[d.rs2])

    # --- FP moves / format conversions --------------------------------------
    def _op_fmv_x_w(self, d, record):
        self._fp_check_enabled(d)
        self._wx(record, d.rd, sext(self.state.fregs[d.rs1] & MASK32, 32))

    def _op_fmv_w_x(self, d, record):
        self._fp_check_enabled(d)
        self._wf(record, d.rd, nan_box(self.state.xregs[d.rs1] & MASK32))

    def _op_fmv_x_d(self, d, record):
        self._fp_check_enabled(d)
        self._wx(record, d.rd, self.state.fregs[d.rs1])

    def _op_fmv_d_x(self, d, record):
        self._fp_check_enabled(d)
        self._wf(record, d.rd, self.state.xregs[d.rs1])

    def _op_fcvt_s_d(self, d, record):
        self._fp_check_enabled(d)
        rm = self._fp_rm(d)
        result, flags = fp_to_fp(self.state.fregs[d.rs1], F64, F32, rm)
        self._fp_write(record, d.rd, result, F32)
        self._fp_finish(record, flags)

    def _op_fcvt_d_s(self, d, record):
        self._fp_check_enabled(d)
        rm = self._fp_rm(d)
        a = self.hooks.nan_unbox(self.state.fregs[d.rs1])
        result, flags = fp_to_fp(a, F32, F64, rm)
        self._wf(record, d.rd, result)
        self._fp_finish(record, flags)

    # --- CSR / system -------------------------------------------------------
    def _csr_read(self, d, address):
        state = self.state
        if address == CSR.FFLAGS:
            value = state.fflags
        elif address == CSR.FRM:
            value = state.frm
        elif address in (CSR.CYCLE, CSR.MCYCLE):
            value = state.csrs[CSR.MCYCLE]
        elif address in (CSR.INSTRET,):
            value = state.csrs[CSR.MINSTRET]
        elif address == CSR.TIME:
            value = state.csrs[CSR.MCYCLE]
        elif address in CSR.KNOWN_CSRS:
            value = state.csrs.get(address, 0)
        else:
            raise _TrapSignal(CSR.CAUSE_ILLEGAL_INSTRUCTION, d.word)
        return self.hooks.csr_read(address, value) & MASK64

    def _csr_write(self, d, address, value):
        state = self.state
        if address in CSR.READ_ONLY_CSRS:
            raise _TrapSignal(CSR.CAUSE_ILLEGAL_INSTRUCTION, d.word)
        value &= MASK64
        if address == CSR.FFLAGS:
            state.fflags = value
            state.set_fs_dirty()
        elif address == CSR.FRM:
            state.frm = value
            state.set_fs_dirty()
        elif address == CSR.FCSR:
            state.csrs[CSR.FCSR] = value & 0xFF
            state.set_fs_dirty()
        elif address == CSR.MISA:
            pass  # WARL: writes ignored
        elif address in CSR.KNOWN_CSRS:
            state.csrs[address] = value
        else:
            raise _TrapSignal(CSR.CAUSE_ILLEGAL_INSTRUCTION, d.word)

    def _csr_op(self, d, record, source, write_kind):
        address = d.csr
        old = self._csr_read(d, address)
        if write_kind == "w":
            do_write = True
            new = source
        elif write_kind == "s":
            do_write = source != 0 if d.spec.fmt == "CSRI" else d.rs1 != 0
            new = old | source
        else:  # "c"
            do_write = source != 0 if d.spec.fmt == "CSRI" else d.rs1 != 0
            new = old & ~source
        if do_write:
            self._csr_write(d, address, new)
            record.csr_addr = address
            record.csr_value = new & MASK64
        self._wx(record, d.rd, old)

    def _op_csrrw(self, d, record):
        self._csr_op(d, record, self.state.xregs[d.rs1], "w")

    def _op_csrrs(self, d, record):
        self._csr_op(d, record, self.state.xregs[d.rs1], "s")

    def _op_csrrc(self, d, record):
        self._csr_op(d, record, self.state.xregs[d.rs1], "c")

    def _op_csrrwi(self, d, record):
        self._csr_op(d, record, d.zimm, "w")

    def _op_csrrsi(self, d, record):
        self._csr_op(d, record, d.zimm, "s")

    def _op_csrrci(self, d, record):
        self._csr_op(d, record, d.zimm, "c")

    def _op_ecall(self, d, record):
        cause = {0: CSR.CAUSE_ECALL_U, 1: CSR.CAUSE_ECALL_S, 3: CSR.CAUSE_ECALL_M}[
            self.state.privilege
        ]
        raise _TrapSignal(cause, 0)

    def _op_ebreak(self, d, record):
        raise _TrapSignal(CSR.CAUSE_BREAKPOINT, record.pc)

    def _op_mret(self, d, record):
        state = self.state
        status = state.csrs[CSR.MSTATUS]
        mpie = (status >> 7) & 1
        status = (status & ~CSR.MSTATUS_MIE) | (mpie << 3)
        status |= CSR.MSTATUS_MPIE
        state.csrs[CSR.MSTATUS] = status
        record.next_pc = state.csrs[CSR.MEPC] & ~3

    def _op_nop(self, d, record):
        pass


def _build_dispatch():
    """Build the mnemonic -> handler table once at import time."""
    table = {}
    E = Executor
    direct = {
        "lui": E._op_lui, "auipc": E._op_auipc,
        "jal": E._op_jal, "jalr": E._op_jalr,
        "beq": E._op_beq, "bne": E._op_bne, "blt": E._op_blt,
        "bge": E._op_bge, "bltu": E._op_bltu, "bgeu": E._op_bgeu,
        "lb": E._op_lb, "lh": E._op_lh, "lw": E._op_lw, "ld": E._op_ld,
        "lbu": E._op_lbu, "lhu": E._op_lhu, "lwu": E._op_lwu,
        "sb": E._op_sb, "sh": E._op_sh, "sw": E._op_sw, "sd": E._op_sd,
        "addi": E._op_addi, "slti": E._op_slti, "sltiu": E._op_sltiu,
        "xori": E._op_xori, "ori": E._op_ori, "andi": E._op_andi,
        "slli": E._op_slli, "srli": E._op_srli, "srai": E._op_srai,
        "addiw": E._op_addiw, "slliw": E._op_slliw, "srliw": E._op_srliw,
        "sraiw": E._op_sraiw,
        "add": E._op_add, "sub": E._op_sub, "sll": E._op_sll,
        "slt": E._op_slt, "sltu": E._op_sltu, "xor": E._op_xor,
        "srl": E._op_srl, "sra": E._op_sra, "or": E._op_or, "and": E._op_and,
        "addw": E._op_addw, "subw": E._op_subw, "sllw": E._op_sllw,
        "srlw": E._op_srlw, "sraw": E._op_sraw,
        "mul": E._op_mul, "mulh": E._op_mulh, "mulhsu": E._op_mulhsu,
        "mulhu": E._op_mulhu, "div": E._op_div, "divu": E._op_divu,
        "rem": E._op_rem, "remu": E._op_remu,
        "mulw": E._op_mulw, "divw": E._op_divw, "divuw": E._op_divuw,
        "remw": E._op_remw, "remuw": E._op_remuw,
        "csrrw": E._op_csrrw, "csrrs": E._op_csrrs, "csrrc": E._op_csrrc,
        "csrrwi": E._op_csrrwi, "csrrsi": E._op_csrrsi, "csrrci": E._op_csrrci,
        "ecall": E._op_ecall, "ebreak": E._op_ebreak, "mret": E._op_mret,
        "wfi": E._op_nop, "fence": E._op_nop, "fence.i": E._op_nop,
        "flw": E._op_flw, "fld": E._op_fld, "fsw": E._op_fsw, "fsd": E._op_fsd,
        "fmv.x.w": E._op_fmv_x_w, "fmv.w.x": E._op_fmv_w_x,
        "fmv.x.d": E._op_fmv_x_d, "fmv.d.x": E._op_fmv_d_x,
        "fcvt.s.d": E._op_fcvt_s_d, "fcvt.d.s": E._op_fcvt_d_s,
    }
    table.update(direct)

    def _bind(func, *args, **kwargs):
        def handler(self, d, record):
            return func(self, d, record, *args, **kwargs)

        return handler

    amo_combines = {
        "amoswap": lambda old, new: new,
        "amoadd": lambda old, new: old + new,
        "amoxor": lambda old, new: old ^ new,
        "amoand": lambda old, new: old & new,
        "amoor": lambda old, new: old | new,
        "amomin": lambda old, new: min(old, new),
        "amomax": lambda old, new: max(old, new),
        "amominu": lambda old, new: old if (old & MASK64) < (new & MASK64) else new,
        "amomaxu": lambda old, new: old if (old & MASK64) > (new & MASK64) else new,
    }
    for suffix, size in ((".w", 4), (".d", 8)):
        table["lr" + suffix] = _bind(E._op_lr, size)
        table["sc" + suffix] = _bind(E._op_sc, size)
        for base, combine in amo_combines.items():
            table[base + suffix] = _bind(E._amo, size, combine)

    for prec, fmt in (("s", F32), ("d", F64)):
        table[f"fadd.{prec}"] = _bind(E._fp_binary, fmt, fp_add, "fadd")
        table[f"fsub.{prec}"] = _bind(E._fp_binary, fmt, fp_sub, "fsub")
        table[f"fmul.{prec}"] = _bind(E._fp_binary, fmt, fp_mul, "fmul")
        table[f"fdiv.{prec}"] = _bind(E._fp_binary, fmt, fp_div, "fdiv")
        table[f"fsqrt.{prec}"] = _bind(E._fp_sqrt_op, fmt, "fsqrt")
        table[f"fsgnj.{prec}"] = _bind(E._fp_sign_inject, fmt, "j")
        table[f"fsgnjn.{prec}"] = _bind(E._fp_sign_inject, fmt, "jn")
        table[f"fsgnjx.{prec}"] = _bind(E._fp_sign_inject, fmt, "jx")
        table[f"fmin.{prec}"] = _bind(E._fp_minmax, fmt, fp_min, "fmin")
        table[f"fmax.{prec}"] = _bind(E._fp_minmax, fmt, fp_max, "fmax")
        table[f"feq.{prec}"] = _bind(E._fp_compare, fmt, fp_eq)
        table[f"flt.{prec}"] = _bind(E._fp_compare, fmt, fp_lt)
        table[f"fle.{prec}"] = _bind(E._fp_compare, fmt, fp_le)
        table[f"fclass.{prec}"] = _bind(E._op_fclass, fmt)
        table[f"fmadd.{prec}"] = _bind(E._fp_fma_op, fmt, False, False, "fmadd")
        table[f"fmsub.{prec}"] = _bind(E._fp_fma_op, fmt, False, True, "fmsub")
        table[f"fnmsub.{prec}"] = _bind(E._fp_fma_op, fmt, True, False, "fnmsub")
        table[f"fnmadd.{prec}"] = _bind(E._fp_fma_op, fmt, True, True, "fnmadd")
        for iname, width, signed in (
            ("w", 32, True), ("wu", 32, False), ("l", 64, True), ("lu", 64, False),
        ):
            table[f"fcvt.{iname}.{prec}"] = _bind(E._fp_cvt_to_int, fmt, width, signed)
            table[f"fcvt.{prec}.{iname}"] = _bind(E._fp_cvt_from_int, fmt, width, signed)
    return table


_DISPATCH = _build_dispatch()


def _illegal_handler(executor, d, record):
    raise _TrapSignal(CSR.CAUSE_ILLEGAL_INSTRUCTION, d.word)


def _attach_handlers():
    """Pre-bind each spec's executor handler onto the (frozen) spec object
    so the per-step dispatch is a single attribute load instead of a
    name-keyed dict lookup."""
    from repro.isa.instructions import SPECS

    for spec in SPECS:
        handler = _DISPATCH.get(spec.name, _illegal_handler)
        object.__setattr__(spec, "exec_handler", handler)


_attach_handlers()


# --- block-compile value factories -------------------------------------------
# The block compiler (repro.ref.blockcompile) turns never-trapping integer
# instructions into "value slots": one pre-bound closure that computes the
# committed register value directly -- no CommitRecord, no handler dispatch,
# no exception machinery.  Each factory takes a DecodedInstr and returns
# either an int (the value is a compile-time constant) or a closure
# ``(xregs, pc) -> value``; results are masked to 64 bits exactly as _wx
# would.  Bit-identity with the handlers above is the oracle enforced by
# tests/test_hotpath_equiv.py.


def _build_value_factories():
    div_signed = Executor._div_signed
    rem_signed = Executor._rem_signed

    def lui(d):
        return to_unsigned(d.imm) & MASK64

    def auipc(d):
        imm = to_unsigned(d.imm)
        return lambda x, pc: (pc + imm) & MASK64

    def addi(d):
        rs1, imm = d.rs1, d.imm
        return lambda x, pc: (x[rs1] + imm) & MASK64

    def slti(d):
        rs1, imm = d.rs1, d.imm
        return lambda x, pc: 1 if to_signed(x[rs1]) < imm else 0

    def sltiu(d):
        rs1, imm = d.rs1, to_unsigned(d.imm)
        return lambda x, pc: 1 if x[rs1] < imm else 0

    def xori(d):
        rs1, imm = d.rs1, to_unsigned(d.imm)
        return lambda x, pc: (x[rs1] ^ imm) & MASK64

    def ori(d):
        rs1, imm = d.rs1, to_unsigned(d.imm)
        return lambda x, pc: (x[rs1] | imm) & MASK64

    def andi(d):
        rs1, imm = d.rs1, to_unsigned(d.imm)
        return lambda x, pc: (x[rs1] & imm) & MASK64

    def slli(d):
        rs1, sh = d.rs1, d.shamt
        return lambda x, pc: (x[rs1] << sh) & MASK64

    def srli(d):
        rs1, sh = d.rs1, d.shamt
        return lambda x, pc: (x[rs1] >> sh) & MASK64

    def srai(d):
        rs1, sh = d.rs1, d.shamt
        return lambda x, pc: (to_signed(x[rs1]) >> sh) & MASK64

    def addiw(d):
        rs1, imm = d.rs1, d.imm
        return lambda x, pc: sext((x[rs1] + imm) & MASK32, 32) & MASK64

    def slliw(d):
        rs1, sh = d.rs1, d.shamt
        return lambda x, pc: sext((x[rs1] << sh) & MASK32, 32) & MASK64

    def srliw(d):
        rs1, sh = d.rs1, d.shamt
        return lambda x, pc: sext((x[rs1] & MASK32) >> sh, 32) & MASK64

    def sraiw(d):
        rs1, sh = d.rs1, d.shamt
        return lambda x, pc: (sext(x[rs1] & MASK32, 32) >> sh) & MASK64

    def add(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: (x[rs1] + x[rs2]) & MASK64

    def sub(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: (x[rs1] - x[rs2]) & MASK64

    def sll(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: (x[rs1] << (x[rs2] & 63)) & MASK64

    def slt(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: 1 if to_signed(x[rs1]) < to_signed(x[rs2]) else 0

    def sltu(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: 1 if x[rs1] < x[rs2] else 0

    def xor(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: x[rs1] ^ x[rs2]

    def srl(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: x[rs1] >> (x[rs2] & 63)

    def sra(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: (to_signed(x[rs1]) >> (x[rs2] & 63)) & MASK64

    def or_(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: x[rs1] | x[rs2]

    def and_(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: x[rs1] & x[rs2]

    def addw(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: sext((x[rs1] + x[rs2]) & MASK32, 32) & MASK64

    def subw(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: sext((x[rs1] - x[rs2]) & MASK32, 32) & MASK64

    def sllw(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: sext((x[rs1] << (x[rs2] & 31)) & MASK32, 32) & MASK64

    def srlw(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: sext((x[rs1] & MASK32) >> (x[rs2] & 31), 32) & MASK64

    def sraw(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: (sext(x[rs1] & MASK32, 32) >> (x[rs2] & 31)) & MASK64

    def mul(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: (x[rs1] * x[rs2]) & MASK64

    def mulh(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: ((to_signed(x[rs1]) * to_signed(x[rs2])) >> 64) & MASK64

    def mulhsu(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: ((to_signed(x[rs1]) * x[rs2]) >> 64) & MASK64

    def mulhu(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: (x[rs1] * x[rs2]) >> 64

    def div(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: div_signed(
            to_signed(x[rs1]), to_signed(x[rs2]), 64) & MASK64

    def divu(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: MASK64 if x[rs2] == 0 else x[rs1] // x[rs2]

    def rem(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: rem_signed(
            to_signed(x[rs1]), to_signed(x[rs2]), 64) & MASK64

    def remu(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: x[rs1] if x[rs2] == 0 else x[rs1] % x[rs2]

    def mulw(d):
        rs1, rs2 = d.rs1, d.rs2
        return lambda x, pc: sext((x[rs1] * x[rs2]) & MASK32, 32) & MASK64

    def divw(d):
        rs1, rs2 = d.rs1, d.rs2

        def value(x, pc):
            a = sext(x[rs1] & MASK32, 32)
            b = sext(x[rs2] & MASK32, 32)
            return sext(div_signed(a, b, 32) & MASK32, 32) & MASK64

        return value

    def divuw(d):
        rs1, rs2 = d.rs1, d.rs2

        def value(x, pc):
            a = x[rs1] & MASK32
            b = x[rs2] & MASK32
            return sext(MASK32 if b == 0 else a // b, 32) & MASK64

        return value

    def remw(d):
        rs1, rs2 = d.rs1, d.rs2

        def value(x, pc):
            a = sext(x[rs1] & MASK32, 32)
            b = sext(x[rs2] & MASK32, 32)
            return sext(rem_signed(a, b, 32) & MASK32, 32) & MASK64

        return value

    def remuw(d):
        rs1, rs2 = d.rs1, d.rs2

        def value(x, pc):
            a = x[rs1] & MASK32
            b = x[rs2] & MASK32
            return sext(a if b == 0 else a % b, 32) & MASK64

        return value

    return {
        "lui": lui, "auipc": auipc,
        "addi": addi, "slti": slti, "sltiu": sltiu,
        "xori": xori, "ori": ori, "andi": andi,
        "slli": slli, "srli": srli, "srai": srai,
        "addiw": addiw, "slliw": slliw, "srliw": srliw, "sraiw": sraiw,
        "add": add, "sub": sub, "sll": sll, "slt": slt, "sltu": sltu,
        "xor": xor, "srl": srl, "sra": sra, "or": or_, "and": and_,
        "addw": addw, "subw": subw, "sllw": sllw, "srlw": srlw, "sraw": sraw,
        "mul": mul, "mulh": mulh, "mulhsu": mulhsu, "mulhu": mulhu,
        "div": div, "divu": divu, "rem": rem, "remu": remu,
        "mulw": mulw, "divw": divw, "divuw": divuw,
        "remw": remw, "remuw": remuw,
    }


_VALUE_FACTORIES = _build_value_factories()


def value_function(decoded):
    """The block-compile value form of a decoded instruction: an int when
    the committed value is a compile-time constant, a ``(xregs, pc)``
    closure otherwise, or None when the mnemonic has no value-slot form
    (the compiler then falls back to a record slot)."""
    factory = _VALUE_FACTORIES.get(decoded.spec.name)
    if factory is None:
        return None
    return factory(decoded)
