"""Architectural state: register files, PC, CSRs, privilege."""

from repro.isa import csr as CSR
from repro.isa.encoding import MASK64


# Privilege levels (machine-mode-centric model; S exists for CSR plumbing).
PRV_U = 0
PRV_S = 1
PRV_M = 3


class ArchState:
    """The complete architectural state of one hart."""

    __slots__ = ("xregs", "fregs", "pc", "csrs", "privilege", "reservation")

    def __init__(self, pc=0x8000_0000, misa_extensions="IMAFD"):
        self.xregs = [0] * 32
        self.fregs = [0] * 32
        self.pc = pc
        self.privilege = PRV_M
        self.reservation = None  # LR/SC reservation address
        self.csrs = {
            CSR.MSTATUS: CSR.MSTATUS_FS_INITIAL,
            CSR.MISA: self._encode_misa(misa_extensions),
            CSR.MTVEC: 0,
            CSR.MEPC: 0,
            CSR.MCAUSE: 0,
            CSR.MTVAL: 0,
            CSR.MSCRATCH: 0,
            CSR.MEDELEG: 0,
            CSR.MIDELEG: 0,
            CSR.MIE: 0,
            CSR.MIP: 0,
            CSR.MCYCLE: 0,
            CSR.MINSTRET: 0,
            CSR.FCSR: 0,
            CSR.STVEC: 0,
            CSR.SEPC: 0,
            CSR.SCAUSE: 0,
            CSR.STVAL: 0,
            CSR.SSTATUS: 0,
            CSR.MVENDORID: 0,
            CSR.MARCHID: 0,
            CSR.MIMPID: 0,
            CSR.MHARTID: 0,
        }

    @staticmethod
    def _encode_misa(extensions):
        value = 2 << 62  # MXL=2 (RV64)
        for letter in extensions:
            value |= 1 << (ord(letter.upper()) - ord("A"))
        return value

    # --- integer registers ---------------------------------------------------
    def read_x(self, index):
        return self.xregs[index]

    def write_x(self, index, value):
        if index:
            self.xregs[index] = value & MASK64

    # --- FP registers --------------------------------------------------------
    def read_f(self, index):
        return self.fregs[index]

    def write_f(self, index, value):
        self.fregs[index] = value & MASK64
        self.set_fs_dirty()

    def set_fs_dirty(self):
        status = self.csrs[CSR.MSTATUS]
        self.csrs[CSR.MSTATUS] = (status & ~CSR.MSTATUS_FS_MASK) | CSR.MSTATUS_FS_DIRTY

    @property
    def fs_off(self):
        return self.csrs[CSR.MSTATUS] & CSR.MSTATUS_FS_MASK == CSR.MSTATUS_FS_OFF

    # --- fcsr ----------------------------------------------------------------
    @property
    def fflags(self):
        return self.csrs[CSR.FCSR] & CSR.FFLAGS_MASK

    @fflags.setter
    def fflags(self, value):
        fcsr = self.csrs[CSR.FCSR]
        self.csrs[CSR.FCSR] = (fcsr & ~CSR.FFLAGS_MASK) | (value & CSR.FFLAGS_MASK)

    def accrue_fflags(self, flags):
        if flags:
            self.csrs[CSR.FCSR] |= flags & CSR.FFLAGS_MASK

    @property
    def frm(self):
        return (self.csrs[CSR.FCSR] >> CSR.FRM_SHIFT) & CSR.FRM_MASK

    @frm.setter
    def frm(self, value):
        fcsr = self.csrs[CSR.FCSR]
        self.csrs[CSR.FCSR] = (fcsr & ~(CSR.FRM_MASK << CSR.FRM_SHIFT)) | (
            (value & CSR.FRM_MASK) << CSR.FRM_SHIFT
        )

    # --- snapshots -----------------------------------------------------------
    def snapshot(self):
        """Copyable view of the full architectural state."""
        return {
            "xregs": list(self.xregs),
            "fregs": list(self.fregs),
            "pc": self.pc,
            "csrs": dict(self.csrs),
            "privilege": self.privilege,
            "reservation": self.reservation,
        }

    def restore(self, snapshot):
        """Restore a snapshot created by :meth:`snapshot`."""
        self.xregs = list(snapshot["xregs"])
        self.fregs = list(snapshot["fregs"])
        self.pc = snapshot["pc"]
        self.csrs = dict(snapshot["csrs"])
        self.privilege = snapshot["privilege"]
        self.reservation = snapshot["reservation"]

    def diff(self, other):
        """Field-by-field differences against another state (for the checker)."""
        differences = []
        for index in range(32):
            if self.xregs[index] != other.xregs[index]:
                differences.append(
                    ("x", index, self.xregs[index], other.xregs[index])
                )
        for index in range(32):
            if self.fregs[index] != other.fregs[index]:
                differences.append(
                    ("f", index, self.fregs[index], other.fregs[index])
                )
        if self.pc != other.pc:
            differences.append(("pc", None, self.pc, other.pc))
        for address in sorted(set(self.csrs) | set(other.csrs)):
            mine = self.csrs.get(address, 0)
            theirs = other.csrs.get(address, 0)
            if mine != theirs:
                differences.append(("csr", address, mine, theirs))
        return differences
