"""Sparse, page-granular byte-addressable memory.

Backing storage is a dict of 4 KiB bytearray pages, so multi-gigabyte
address spaces (the board's 32 GB DDR4) cost only what is touched.  The
fuzzing harness maps an instruction segment and a data segment; anything
outside the mapped ranges faults, which feeds the access-fault exception
paths of the DUT.
"""

from struct import Struct

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

# Fixed-width little-endian readers for the common access sizes; unpacking
# straight from the page bytearray skips the slice-copy + int.from_bytes of
# the generic path (load is called at least once per executed instruction).
_UNPACK_WORD = Struct("<I").unpack_from
_UNPACK_DOUBLE = Struct("<Q").unpack_from


class MemoryAccessError(Exception):
    """Raised on out-of-range accesses when ranges are enforced."""

    def __init__(self, address, size, kind):
        super().__init__(f"{kind} access fault at {address:#x} (size {size})")
        self.address = address
        self.size = size
        self.kind = kind


class SparseMemory:
    """Byte-addressable sparse memory with optional legal-range enforcement."""

    def __init__(self, ranges=None):
        """``ranges`` is an optional list of ``(base, size)`` legal windows;
        ``None`` makes the whole 64-bit space accessible."""
        self._pages = {}
        self._ranges = list(ranges) if ranges else None
        self._last_range = (1, 0)  # empty window; replaced on first hit
        # Self-modifying-code guard for the block compiler: stores into
        # the covering interval of everything ever written via
        # write_program bump the version, so compiled extents for stale
        # code are never executed.
        self.program_version = 0
        self._prog_lo = 1
        self._prog_hi = 0  # empty interval until write_program

    def add_range(self, base, size):
        """Whitelist an additional legal window."""
        if self._ranges is None:
            self._ranges = []
        self._ranges.append((base, size))

    def in_range(self, address, size=1):
        """True when ``[address, address+size)`` lies in a legal window.

        Consecutive accesses overwhelmingly hit the same window (straight-
        line fetch, data-segment loads), so the last matching window is
        checked first before scanning the list.
        """
        if self._ranges is None:
            return True
        end = address + size
        base, limit = self._last_range
        if base <= address and end <= limit:
            return True
        for base, window in self._ranges:
            if base <= address and end <= base + window:
                self._last_range = (base, base + window)
                return True
        return False

    def _check(self, address, size, kind):
        if not self.in_range(address, size):
            raise MemoryAccessError(address, size, kind)

    def _page(self, index):
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def load(self, address, size, kind="load"):
        """Read ``size`` bytes, little-endian, as an unsigned integer."""
        if not self.in_range(address, size):
            raise MemoryAccessError(address, size, kind)
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                return 0
            if size == 4:
                return _UNPACK_WORD(page, offset)[0]
            if size == 8:
                return _UNPACK_DOUBLE(page, offset)[0]
            return int.from_bytes(page[offset : offset + size], "little")
        return int.from_bytes(self.load_bytes(address, size, check=False), "little")

    def store(self, address, size, value, kind="store"):
        """Write ``size`` bytes, little-endian."""
        self._check(address, size, kind)
        if self._prog_lo <= address < self._prog_hi:
            self.program_version += 1
        data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
        self.store_bytes(address, data, check=False)

    def load_bytes(self, address, size, check=True):
        """Read a raw byte string (page-crossing allowed)."""
        if check:
            self._check(address, size, "load")
        out = bytearray()
        remaining = size
        cursor = address
        while remaining:
            offset = cursor & PAGE_MASK
            chunk = min(PAGE_SIZE - offset, remaining)
            page = self._pages.get(cursor >> PAGE_SHIFT)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[offset : offset + chunk])
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def store_bytes(self, address, data, check=True):
        """Write a raw byte string (page-crossing allowed)."""
        if check:
            self._check(address, len(data), "store")
        cursor = address
        view = memoryview(data)
        while view:
            offset = cursor & PAGE_MASK
            chunk = min(PAGE_SIZE - offset, len(view))
            page = self._page(cursor >> PAGE_SHIFT)
            page[offset : offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def load_word(self, address):
        """Fetch a 32-bit instruction word (fetch fault kind)."""
        return self.load(address, 4, kind="fetch")

    def write_program(self, address, words):
        """Store a sequence of 32-bit instruction words starting at address."""
        blob = b"".join(word.to_bytes(4, "little") for word in words)
        if self._prog_lo > self._prog_hi:
            self._prog_lo, self._prog_hi = address, address + len(blob)
        else:
            self._prog_lo = min(self._prog_lo, address)
            self._prog_hi = max(self._prog_hi, address + len(blob))
        self.program_version += 1
        self.store_bytes(address, blob, check=False)

    def snapshot_pages(self):
        """Deep copy of the page dict, for hardware snapshots."""
        return {index: bytes(page) for index, page in self._pages.items()}

    def restore_pages(self, pages):
        """Restore a snapshot created by :meth:`snapshot_pages`."""
        self._pages = {index: bytearray(page) for index, page in pages.items()}

    @property
    def resident_bytes(self):
        """Bytes of actually-allocated backing store."""
        return len(self._pages) * PAGE_SIZE
