"""Block compiler for the execution hot loop.

Decoded instruction blocks are immutable and reused across iterations, so
the per-instruction interpreter work — fetch, decode-cache probe, handler
dispatch, operand decode, latency-table lookups, microarch dict writes and
coverage-binding resolution — can be paid once per distinct instruction
word and amortized over every later execution.  This module compiles
maximal straight-line runs of compilable words into *extents*: chains of
pre-bound slot closures, one call per instruction, with every
compile-time-constant value captured in the closure and a slow-path
bailout that falls back to the interpreter at the first trap.

Two slot shapes exist:

* **Value slots** (integer ALU / ALU_IMM / MUL / DIV with a registered
  value factory in ``ref.executor``): the committed register value is
  computed by one pre-bound closure — no CommitRecord, no handler
  dispatch, no exception unwinding — and the microarch update is
  replicated inline with every per-word constant folded into a single
  ``dict.update``.  These mnemonics cannot trap.
* **Record slots** (loads/stores/FP, plus integer words without a value
  factory): the spec's pre-bound handler runs against a locally built
  ``CommitRecord`` (bug hooks included), then the core's own
  ``_update_microarch`` — subclass overrides included — drives the
  control registers.  Every compiled category's handler raises *before*
  any architectural side effect, so a trap mid-slot leaves state at the
  trapping pc and the interpreter re-executes that instruction from
  scratch, producing the identical trap record.

* **Control slots** (BRANCH/JUMP at an extent's end): the branch/jump
  semantics are inlined in trap-safe order (the jalr alignment check runs
  before the link-register write, exactly like the interpreter), and the
  slot returns the taken-path pc so a compiled run can end with its own
  terminator instead of bouncing through the interpreter.

Extent boundaries (interpreted): CSR, SYSTEM, AMO, FENCE, undecodable
words, and extensions the executor has disabled.

Compilation is *hotness-gated*, and the default gate is strict: only
template regions (prologue / trap handler / done loop — identical in
every iteration, executed in every iteration) compile, eagerly, once per
core.  Fuzzed straight-line code overwhelmingly executes once — the
generated programs cannot even loop (control flow is clamped strictly
forward at assembly) — so compile time on once-run words can never be
recouped.  Worse, *finding* the recurring minority costs more than it
saves: any per-block bookkeeping over the ~900 blocks of an iteration
runs ~90 µs while the recurring blocks' compiled execution saves ~25 µs.
The version-stamp gate (``set_fuzz_gating``) therefore ships **off**:
when enabled, fuzz blocks whose version has recurred ``_HOT_THRESHOLD``
times get lazily-promoted map entries (version recurrence *is* content
recurrence — retention shares the stamp, mutation re-stamps), which is
the right trade only for long campaigns with high retention.

All caches are per-core, content-keyed, bounded by the shared evict-half
policy (`repro.perf.evict`), and checkpoint-transparent — derived state
only, declared in ``DutCore._checkpoint_transient`` so the CHK auditor
stays green.  Copy-on-write mutation re-stamps a clone's version, so a
mutated block can never alias a previous iteration's compiled entries.
Self-modifying programs are guarded by ``SparseMemory.program_version``.

Bit-identity with the interpreter (including the preserved
``use_reference_observer()`` path) is asserted by
``tests/test_hotpath_equiv.py``.
"""

from repro.analyze.markers import hot_path
from repro.dut.core import _CATEGORY_INDEX, _NAME_HASH
from repro.isa import csr as CSR
from repro.isa.decoder import try_decode
from repro.isa.encoding import MASK64, to_signed
from repro.isa.instructions import Category
from repro.perf.evict import evict_half
from repro.ref.executor import CommitRecord, _TrapSignal, value_function

# Longest straight-line run compiled into one extent.  Generated fuzz
# blocks are a handful of instructions; 64 comfortably covers the
# template prologue, the longest profitable run.
_MAX_EXTENT = 64

# Version-stamp sightings before a fuzz block's entry is mapped for
# compilation (only with set_fuzz_gating(True)).  Measured retention
# streaks are short — most recurring content appears exactly twice — so
# 3 restricts compilation to blocks with a demonstrated streak, where
# the compile amortizes over the block's remaining corpus lifetime.
# Template regions bypass the gate (stable for the whole campaign).
_HOT_THRESHOLD = 3
_HEAT_LIMIT = 1 << 15

# Per-core cache bounds (evict-half on overflow, like the decoder _CACHE).
_SLOT_CACHE_LIMIT = 1 << 16
_TEMPLATE_MAP_LIMIT = 8

_VALUE_CATEGORIES = frozenset(
    {Category.ALU, Category.ALU_IMM, Category.MUL, Category.DIV})
_RECORD_CATEGORIES = frozenset({
    Category.LOAD, Category.STORE, Category.FP_LOAD, Category.FP_STORE,
    Category.FP_ARITH, Category.FP_DIV, Category.FP_FMA, Category.FP_CMP,
    Category.FP_CVT, Category.FP_MOVE,
})
_LOAD_CATEGORIES = frozenset({Category.LOAD, Category.FP_LOAD})
_STORE_CATEGORIES = frozenset({Category.STORE, Category.FP_STORE})
_CONTROL_CATEGORIES = frozenset({Category.BRANCH, Category.JUMP})

_MUL = Category.MUL
_DIV = Category.DIV

_MINSTRET = CSR.MINSTRET
_MCYCLE = CSR.MCYCLE

# Module-wide enable switch: the equivalence suite drives the same
# workload with compilation on and off and asserts identical fingerprints.
_ENABLED = True

# Version-heat gating of fuzz blocks.  Off by default: discovering the
# recurring minority costs a per-block pass (~90 µs/iteration at ~900
# blocks) that exceeds what its compiled execution saves (~25 µs).
# Worth enabling only for long campaigns whose corpus retention is high.
_FUZZ_GATING = False


def set_enabled(enabled):
    """Toggle compiled dispatch globally; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def enabled():
    return _ENABLED


def set_fuzz_gating(enabled):
    """Toggle version-heat compilation of recurring fuzz blocks; returns
    the previous setting.  Semantics are identical either way (the
    equivalence suite asserts it) — this is purely a cost/benefit knob."""
    global _FUZZ_GATING
    previous = _FUZZ_GATING
    _FUZZ_GATING = bool(enabled)
    return previous


def core_supports_compile(core):
    """Whether compiled dispatch preserves semantics for this core config.

    The reference-observer path must interpret (it is the oracle the
    compiled path is measured against), and a bug that redefines
    instruction counting (counts_minstret) breaks the batched commit.
    """
    return (
        core.coverage is not None
        and not core._reference_observer
        and core.executor._minstret_always
    )


class Extent:
    """A compiled straight-line run: one slot closure per instruction.

    ``store_flags`` is None when the run contains no stores; otherwise a
    per-slot bool tuple so the runner can detect self-modifying stores.
    ``tail`` is an optional control slot (branch/jump) that terminates
    the run by redirecting pc; it returns ``(cycles, next_pc)``.
    """

    __slots__ = ("slots", "store_flags", "tail")

    def __init__(self, slots, store_flags, tail=None):
        self.slots = slots
        self.store_flags = store_flags
        self.tail = tail

    @property
    def size(self):
        return len(self.slots) + (1 if self.tail is not None else 0)


def _make_value_slot(core, decoded, word, valf):
    """Compile a never-trapping integer instruction into a value slot.

    The closure captures only reset-stable objects (the core itself, its
    vals dict, cache access methods, bindings); xregs and the executor
    are passed per call because ``reset()`` replaces them.
    """
    spec = decoded.spec
    category = spec.category
    rd = decoded.rd
    rs1 = decoded.rs1
    rs2 = decoded.rs2
    vals = core.vals
    timing = core.timing
    latency = timing.base + core._fixed_latency[category]
    icache_miss = timing.icache_miss
    icache_access = core.icache.access
    sync = core._mstatus_sync
    extra = core.compiled_microarch_extra(decoded)
    fused = core._fused
    cond_bindings = core._cond_bindings
    if rd == 0:
        # x0 commits as zero: _wx records rd=0/rd_value=0, writes nothing.
        const_value, valf = 0, None
    elif callable(valf):
        const_value = None
    else:
        const_value, valf = valf, None
    is_mul = category is _MUL
    is_div = category is _DIV
    md = is_mul or is_div
    static = {
        "trap_valid": 0, "dec_illegal": 0, "misfetch": 0,
        "dec_class": _CATEGORY_INDEX[category],
        "ex_subop": _NAME_HASH[spec.name],
        "rd_lo": rd & 7, "rs1_lo": rs1 & 7, "rs2_lo": rs2 & 7,
        "opcode_lo": (word >> 2) & 31,
        "imm_sign": 1 if decoded.imm < 0 else 0,
        "shamt_reg": decoded.shamt & 15,
        "br_taken": 0,
        "wb_sel": 1,
        "fpu_state": 0,
        "lsu_state": 0, "mem_op": 0,
        "csr_cls": 0,
    }
    if md:
        static["md_op"] = 1 if is_mul else 2
        static["md_word"] = 1 if spec.name.endswith("w") else 0
        if is_mul:
            static["md_state"] = 1
            static["md_counter"] = int(timing.mul) & 31
    else:
        static["md_state"] = 0
        static["md_op"] = 0
    multi_cycle = core._multi_cycle
    div_total = int(timing.div)

    def slot(pc, x, executor):
        value = const_value if valf is None else valf(x, pc)
        if rd:
            x[rd] = value
        cycles = latency
        if not icache_access(pc):
            cycles += icache_miss
        vals.update(static)
        vals["pc_lo"] = (pc >> 2) & 7
        vals["fetch_addr_lo"] = (pc >> 2) & 15
        vals["btb_tag_lo"] = (pc >> 5) & 31
        vals["fq_count"] = (vals["fq_count"] + 1) & 7
        vals["dec_buf_cnt"] = (vals["dec_buf_cnt"] + 1) & 3
        prev_rd = core._prev_rd
        raw = 1 if prev_rd and (prev_rd == rs1 or prev_rd == rs2) else 0
        vals["raw_hazard"] = raw
        core._prev_rd = rd
        vals["operand_a_lo"] = x[rs1] & 15
        vals["operand_b_lo"] = x[rs2] & 15
        vals["alu_res_lo"] = value & 63
        zero = 1 if value == 0 else 0
        sign = (value >> 63) & 1
        vals["result_zero"] = zero
        vals["result_sign"] = sign
        vals["cmp_flags"] = (zero << 1) | sign
        vals["fwd_sel"] = raw * 2 + 1
        if md:
            core._active_modules.add("MulDiv")
            b = x[rs2]
            vals["md_sign"] = ((x[rs1] >> 63) << 1 | (b >> 63)) & 3
            vals["md_zero"] = 1 if b == 0 else 0
            vals["md_quot_lo"] = value & 15
            vals["md_rem_lo"] = (value >> 4) & 15
            if is_div:
                multi_cycle("MulDiv", "md_state", "md_counter", div_total)
        sync()
        if extra is not None:
            extra()
        fused.observe(vals)
        active = core._active_modules
        prev = core._prev_active
        if active or prev:
            for name, binding in cond_bindings:
                if name in active or name in prev:
                    binding.observe(vals)
            core._prev_active = active
            prev.clear()
            core._active_modules = prev
        return cycles

    return slot


def _make_record_slot(core, decoded, word):
    """Compile an instruction into a record slot: pre-bound handler +
    CommitRecord + the core's own ``_update_microarch`` (subclass
    overrides included), skipping decode, dispatch, and the step
    scaffolding.  The handler may raise _TrapSignal *before* any state
    change — the caller bails to the interpreter."""
    spec = decoded.spec
    category = spec.category
    handler = spec.exec_handler
    name = spec.name
    vals = core.vals
    timing = core.timing
    base = timing.base
    icache_miss = timing.icache_miss
    cache_miss = timing.cache_miss
    load_hit = timing.load_hit
    store_hit = timing.store_hit
    icache_access = core.icache.access
    dcache_access = core.dcache.access
    fixed = core._fixed_latency.get(category, 0.0)
    is_load = category in _LOAD_CATEGORIES
    is_store = category in _STORE_CATEGORIES
    update = core._update_microarch
    fused = core._fused
    cond_bindings = core._cond_bindings

    def slot(pc, x, executor):
        record = CommitRecord(pc, word, name, pc + 4)
        handler(executor, decoded, record)
        cycles = base
        if not icache_access(pc):
            cycles += icache_miss
        if is_load:
            # Loads never set mem_addr; the interpreter probes on pc.
            cycles += load_hit if dcache_access(pc) else cache_miss
        elif is_store:
            cycles += store_hit if dcache_access(record.mem_addr) else cache_miss
        else:
            cycles += fixed
        update(record, decoded)
        fused.observe(vals)
        active = core._active_modules
        prev = core._prev_active
        if active or prev:
            for mod_name, binding in cond_bindings:
                if mod_name in active or mod_name in prev:
                    binding.observe(vals)
            core._prev_active = active
            prev.clear()
            core._active_modules = prev
        return cycles

    return slot


def _make_control_slot(core, decoded, word):
    """Compile a run-terminating branch/jump into a tail slot.

    The executor's jump handlers write the link register *before* the
    target alignment check; the compiled form reorders so a bailing slot
    has made no state change and the interpreter's re-execution (rd write,
    then trap) is bit-identical.  Targets misaligned at compile time
    (``imm & 3``) are never compiled.  Returns ``(cycles, next_pc)``.
    """
    spec = decoded.spec
    name = spec.name
    category = spec.category
    imm = decoded.imm
    rd = decoded.rd
    rs1 = decoded.rs1
    rs2 = decoded.rs2
    latency = core._latency
    update = core._update_microarch
    vals = core.vals
    fused = core._fused
    cond_bindings = core._cond_bindings
    cause = CSR.CAUSE_MISALIGNED_FETCH

    taken = None
    if category is Category.BRANCH:
        # Extent bases are word-aligned, so a taken target's alignment is
        # decided by the immediate alone.
        if imm & 3:
            return None
        if name == "beq":
            taken = lambda x: x[rs1] == x[rs2]
        elif name == "bne":
            taken = lambda x: x[rs1] != x[rs2]
        elif name == "blt":
            taken = lambda x: to_signed(x[rs1]) < to_signed(x[rs2])
        elif name == "bge":
            taken = lambda x: to_signed(x[rs1]) >= to_signed(x[rs2])
        elif name == "bltu":
            taken = lambda x: x[rs1] < x[rs2]
        elif name == "bgeu":
            taken = lambda x: x[rs1] >= x[rs2]
        else:
            return None
    elif name == "jal":
        if imm & 3:
            return None
    elif name != "jalr":
        return None

    is_jalr = name == "jalr"
    is_jump = category is Category.JUMP

    def slot(pc, x, executor):
        if is_jump:
            if is_jalr:
                target = (x[rs1] + imm) & ~1 & MASK64
                if target & 3:
                    # No state changed yet: the interpreter re-executes
                    # and takes the identical misaligned-fetch trap.
                    raise _TrapSignal(cause, target)
            else:
                target = (pc + imm) & MASK64
            record = CommitRecord(pc, word, name, target)
            if rd:
                value = (pc + 4) & MASK64
                x[rd] = value
                record.rd = rd
                record.rd_value = value
            else:
                record.rd = 0
                record.rd_value = 0
        else:
            target = (pc + imm) & MASK64 if taken(x) else pc + 4
            # Branches never touch rd: the record keeps the handler
            # path's untouched defaults.
            record = CommitRecord(pc, word, name, target)
        cycles = latency(record, decoded)
        update(record, decoded)
        fused.observe(vals)
        active = core._active_modules
        prev = core._prev_active
        if active or prev:
            for mod_name, binding in cond_bindings:
                if mod_name in active or mod_name in prev:
                    binding.observe(vals)
            core._prev_active = active
            prev.clear()
            core._active_modules = prev
        return cycles, target

    return slot


def _compile_word(core, word):
    """Compile one word into a ``(slot, is_store, is_control)`` triple,
    or False when it must stay on the interpreter (run terminator)."""
    decoded = try_decode(word)
    if decoded is None:
        return False
    spec = decoded.spec
    if spec.extension not in core.executor._extensions:
        return False
    category = spec.category
    if category in _VALUE_CATEGORIES:
        valf = value_function(decoded)
        if valf is None:
            return (_make_record_slot(core, decoded, word), False, False)
        return (_make_value_slot(core, decoded, word, valf), False, False)
    if category in _RECORD_CATEGORIES:
        return (_make_record_slot(core, decoded, word),
                category in _STORE_CATEGORIES, False)
    if category in _CONTROL_CATEGORIES:
        slot = _make_control_slot(core, decoded, word)
        if slot is None:
            return False
        return (slot, False, True)
    return False


def _slot_entry(core, word):
    """Word-keyed slot lookup: the same instruction word across blocks and
    iterations compiles exactly once per core."""
    cache = core._slot_cache
    entry = cache.get(word)
    if entry is not None:
        core._compile_stats["word_hits"] += 1
        return entry
    core._compile_stats["word_misses"] += 1
    entry = _compile_word(core, word)
    if len(cache) >= _SLOT_CACHE_LIMIT:
        evict_half(cache)
    cache[word] = entry
    return entry


def compile_extent(core, words):
    """Compile a straight-line word sequence into an Extent (stopping at
    the first terminator), or None if the first word is a terminator."""
    slots = []
    flags = []
    any_store = False
    tail = None
    for word in words[:_MAX_EXTENT + 1]:
        entry = _slot_entry(core, word)
        if entry is False:
            break
        if entry[2]:
            tail = entry[0]
            break
        if len(slots) == _MAX_EXTENT:
            break
        slots.append(entry[0])
        flags.append(entry[1])
        any_store = any_store or entry[1]
    if not slots and tail is None:
        return None
    return Extent(tuple(slots), tuple(flags) if any_store else None, tail)


def _template_map(core, image, layout):
    """The eagerly-compiled template-region map, cached per core.

    Prologue, trap handler, and done loop are fixed for a campaign
    configuration and executed in every iteration, so their extents
    compile once and amortize forever.  Every word index gets an entry:
    the interpreter re-enters mid-region after each uncompilable CSR
    word, and the entry at the resume pc picks the straight-line
    remainder back up.  Keyed by region bases *and* word content, so a
    configuration change can never alias stale extents.
    """
    regions = ((layout.reset, tuple(image.prologue)),
               (layout.handler, tuple(image.handler)),
               (layout.done, tuple(image.done)))
    cache = core._template_map
    mapping = cache.get(regions)
    if mapping is not None:
        core._compile_stats["map_hits"] += 1
        return mapping
    core._compile_stats["map_misses"] += 1
    stats = core._compile_stats
    mapping = {}
    for base, words in regions:
        size = len(words)
        for index in range(size):
            extent = _compile_pending(core, (words, index, size))
            if extent is not None:
                stats["entries_compiled"] += 1
            mapping[base + (index << 2)] = extent
    if len(cache) >= _TEMPLATE_MAP_LIMIT:
        evict_half(cache)
    cache[regions] = mapping
    return mapping


def build_block_map(core, image, iteration):
    """pc -> dispatch entry map for one installed iteration image.

    Only code worth compiling gets an entry — everything else stays on
    the interpreter with zero dispatch overhead beyond one dict miss:

    * **Template words** (prologue, trap handler, done loop): compiled
      once per core (:func:`_template_map`) and shared across
      iterations.  With fuzz gating off (the default) the shared map is
      returned as-is — the per-iteration cost is one cache probe.
    * **Version-hot fuzz blocks** (``set_fuzz_gating(True)`` only): a
      block's version stamp survives retention and is re-stamped by
      mutation, so version recurrence *is* content recurrence.  A block
      is mapped once its version has been sighted ``_HOT_THRESHOLD``
      times; extents are bounded to the contiguous hot stretch
      (``limit``), never leaking compile time into a cold neighbor.
      Fuzz entries are *pending* ``(words, index, limit)`` markers the
      runner compiles on first landing (:func:`promote`), so
      never-reached entries cost nothing.
    """
    layout = image.layout
    template = _template_map(core, image, layout)
    if not _FUZZ_GATING:
        # Template entries are all pre-compiled, so the runner never
        # mutates the mapping — the shared dict is safe to hand out.
        return template
    mapping = dict(template)
    heat = core._entry_heat
    bases = image.block_bases
    block_words = image.block_words
    fuzz_base = layout.blocks
    versions = tuple(block.version for block in iteration.blocks)
    count = len(versions)
    hot_flags = [False] * count
    for position in range(count):
        version = versions[position]
        sightings = heat.get(version, 0) + 1
        if sightings <= _HOT_THRESHOLD:
            # Saturate at the threshold: hot versions stop paying writes.
            if len(heat) >= _HEAT_LIMIT:
                evict_half(heat)
            heat[version] = sightings
        hot_flags[position] = sightings >= _HOT_THRESHOLD
    position = 0
    while position < count:
        if not hot_flags[position]:
            position += 1
            continue
        # Merge the maximal stretch of consecutive hot blocks: one limit,
        # one entry per block base (suffix extents share cached slots).
        stretch = position
        while position < count and hot_flags[position]:
            position += 1
        if position < count:
            limit = (bases[position] - fuzz_base) >> 2
        else:
            limit = len(block_words)
        for hot in range(stretch, position):
            entry_pc = bases[hot]
            mapping[entry_pc] = (block_words, (entry_pc - fuzz_base) >> 2,
                                 limit)
    return mapping


def promote(core, block_map, pc, pending):
    """Compile a pending map entry on its first landing.

    Returns the Extent to run now, or None when the entry word itself
    is uncompilable — the map then remembers None so the entry is
    never probed again.
    """
    extent = _compile_pending(core, pending)
    block_map[pc] = extent
    if extent is not None:
        core._compile_stats["entries_compiled"] += 1
    return extent


def _compile_pending(core, pending):
    """Build the Extent for a promoted entry (None if uncompilable)."""
    words, index, limit = pending
    slots = []
    flags = []
    any_store = False
    tail = None
    while index < limit:
        entry = _slot_entry(core, words[index])
        if entry is False:
            break
        if entry[2]:
            tail = entry[0]
            break
        if len(slots) >= _MAX_EXTENT:
            break
        slots.append(entry[0])
        flags.append(entry[1])
        any_store = any_store or entry[1]
        index += 1
    if not slots and tail is None:
        return None
    return Extent(tuple(slots), tuple(flags) if any_store else None, tail)


@hot_path
def run_block(core, extent, base_pc, budget):
    """Execute up to ``budget`` compiled slots of ``extent`` at ``base_pc``.

    Returns the number of instructions committed.  On a trap the
    trapping slot has made no state change: pc is left pointing at it
    and the interpreter takes over (slow-path bailout, no exception
    unwind on the hot route — one handler frame, no re-raise chain).
    """
    slots = extent.slots
    full = len(slots)
    count = full
    if budget < count:
        count = budget
    executor = core.executor
    state = core.state
    x = state.xregs
    store_flags = extent.store_flags
    index = 0
    next_pc = -1
    # Cycles go straight onto the core per slot — float addition is not
    # associative, and bit-identity includes the cycle accumulator
    # (BOOM's fractional latencies drift under local re-association).
    # analyze: ignore[HOT005] slow-path bailout: first trap falls back to the interpreter
    try:
        if store_flags is None:
            while index < count:
                core.cycles += slots[index](base_pc + (index << 2), x, executor)
                index += 1
            if extent.tail is not None and index == full and index < budget:
                tail_cycles, next_pc = extent.tail(
                    base_pc + (index << 2), x, executor)
                core.cycles += tail_cycles
                index += 1
        else:
            memory = core.memory
            version = memory.program_version
            while index < count:
                core.cycles += slots[index](base_pc + (index << 2), x, executor)
                index += 1
                # A store into a program range invalidates everything
                # downstream; recheck before running another slot.
                if store_flags[index - 1] and memory.program_version != version:
                    break
            if (extent.tail is not None and index == full and index < budget
                    and memory.program_version == version):
                tail_cycles, next_pc = extent.tail(
                    base_pc + (index << 2), x, executor)
                core.cycles += tail_cycles
                index += 1
    except _TrapSignal:
        core._compile_stats["bailouts"] += 1
    if index:
        state.pc = next_pc if next_pc >= 0 else base_pc + (index << 2)
        executor.instret += index
        csrs = state.csrs
        csrs[_MINSTRET] = (csrs[_MINSTRET] + index) & MASK64
        csrs[_MCYCLE] = (csrs[_MCYCLE] + index) & MASK64
        core.retired += index
        core._compile_stats["compiled_instructions"] += index
    return index


def compile_stats(core):
    """A copy of the core's compile counters (for perf telemetry)."""
    return dict(core._compile_stats)
