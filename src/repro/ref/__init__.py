"""Golden reference model (the paper's REF, run on the FPGA's ARM cores).

An instruction-accurate RV64 IMAFD+Zicsr architectural simulator.  The DUT
cores in :mod:`repro.dut` reuse the same executor with *bug hooks* installed,
so a DUT/REF mismatch is always an injected (or real) semantic divergence,
exactly like the paper's ENCORE-style differential checking.
"""

from repro.ref.memory import SparseMemory, MemoryAccessError
from repro.ref.state import ArchState
from repro.ref.executor import (
    Executor,
    ExecConfig,
    ExecHooks,
    CommitRecord,
    Trap,
)

__all__ = [
    "SparseMemory",
    "MemoryAccessError",
    "ArchState",
    "Executor",
    "ExecConfig",
    "ExecHooks",
    "CommitRecord",
    "Trap",
]
