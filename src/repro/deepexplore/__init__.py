"""deepExplore: the hybrid direct-test + fuzzing scheme (paper Section V).

Stage 1 extracts representative instruction intervals from benchmarks with
a SimPoint-style analysis (basic-block vectors + k-means), runs them on the
DUT to build high-quality corpus seeds, and lightly mutates their
initialization states until coverage plateaus.  Stage 2 hands the enriched
corpus to the TurboFuzzer for high-throughput exploration.
"""

from repro.deepexplore.bbv import BasicBlockVectorCollector, IntervalRecord
from repro.deepexplore.simpoint import SimPoint, kmeans, select_simpoints
from repro.deepexplore.intervals import build_interval_seed
from repro.deepexplore.engine import DeepExplore, DeepExploreConfig

__all__ = [
    "BasicBlockVectorCollector",
    "IntervalRecord",
    "SimPoint",
    "kmeans",
    "select_simpoints",
    "build_interval_seed",
    "DeepExplore",
    "DeepExploreConfig",
]
