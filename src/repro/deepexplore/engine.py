"""The two-stage deepExplore driver (paper Section V).

Stage 1: profile each benchmark on the DUT (BBV collection + coverage
attribution per interval), select SimPoint representatives, rebuild the
marked (high-coverage-gain) intervals as corpus seeds with init contexts,
then lightly mutate initialization states until improvement plateaus.

Stage 2: hand the enriched corpus to the TurboFuzzer session.
"""

from dataclasses import dataclass

from repro.deepexplore.bbv import BasicBlockVectorCollector
from repro.deepexplore.intervals import CONTEXT_AREA_OFFSET, build_interval_seed
from repro.deepexplore.simpoint import select_simpoints
from repro.fuzzer.blocks import Iteration
from repro.harness.image import build_image
from repro.workloads import raw_iteration


@dataclass
class DeepExploreConfig:
    """deepExplore knobs."""

    interval_length: int = 800
    clusters: int = 6
    mark_fraction: float = 0.5   # share of representatives kept as seeds
    refine_rounds: int = 6
    plateau_patience: int = 2
    profile_cap: int = 120_000   # max profiled instructions per workload
    kmeans_seed: int = 0


@dataclass
class Stage1Report:
    """What stage 1 did, per workload."""

    workload: str
    intervals: int
    simpoints: int
    marked: int
    profiled_instructions: int
    coverage_after: int


class DeepExplore:
    """Drives a :class:`~repro.campaign.session.CampaignSession` (or the
    legacy ``FuzzSession`` shim) through the hybrid schedule."""

    def __init__(self, session, config=None):
        self.session = session
        self.config = config or DeepExploreConfig()
        self.reports = []
        self._context_slots = 0

    # -- stage 1 ---------------------------------------------------------------
    def _profile(self, program):
        """Run one benchmark on the DUT, collecting interval records."""
        session = self.session
        core = session.core
        iteration = raw_iteration(program.words, session.fuzzer.layout)
        image = build_image(iteration)
        core.reset_pc = image.layout.reset
        core.reset()
        image.install(core.memory)
        collector = BasicBlockVectorCollector(
            core, interval_length=self.config.interval_length
        )
        start_cycles = core.cycles
        executed = 0
        for _ in range(self.config.profile_cap):
            record = core.step()
            executed += 1
            if record.pc >= iteration.fuzz_base:
                collector.observe(record)
            if record.next_pc == image.layout.done:
                break
        session.clock.advance_cycles(core.cycles - start_cycles)
        session.total_executed += executed
        return collector.finish(), iteration, executed

    def run_stage1(self, programs):
        """Profile benchmarks, plant marked interval seeds in the corpus."""
        config = self.config
        session = self.session
        for program in programs:
            intervals, iteration, executed = self._profile(program)
            simpoints = select_simpoints(
                intervals, k=config.clusters, seed=config.kmeans_seed
            )
            # Mark the representatives with the highest coverage gain.
            ranked = sorted(
                simpoints,
                key=lambda point: -intervals[point.interval_index].coverage_increment,
            )
            keep = max(1, int(len(ranked) * config.mark_fraction))
            for point in ranked[:keep]:
                interval = intervals[point.interval_index]
                offset = CONTEXT_AREA_OFFSET + 512 * self._context_slots
                self._context_slots += 1
                blocks, patch = build_interval_seed(
                    interval,
                    iteration.words,
                    iteration.fuzz_base,
                    session.fuzzer.layout,
                    context_offset=offset,
                )
                session.fuzzer.add_interval_seed(
                    blocks, interval.coverage_increment, data_patch=patch
                )
            self.reports.append(
                Stage1Report(
                    workload=program.name,
                    intervals=len(intervals),
                    simpoints=len(simpoints),
                    marked=keep,
                    profiled_instructions=executed,
                    coverage_after=session.coverage_total,
                )
            )
        return self.reports

    # -- stage 1.5: init-state refinement ------------------------------------------
    def refine_marked_seeds(self):
        """Mutate marked intervals' initialization states until coverage
        improvement plateaus (the paper's iterative feedback loop)."""
        session = self.session
        fuzzer = session.fuzzer
        interval_seeds = [
            seed for seed in fuzzer.corpus.seeds if seed.origin == "interval"
        ]
        rounds_without_gain = 0
        rounds = 0
        while (rounds < self.config.refine_rounds
               and rounds_without_gain < self.config.plateau_patience):
            rounds += 1
            gained = 0
            for slot, seed in enumerate(interval_seeds):
                patch = self._perturb_patch(
                    fuzzer.persistent_data_patches, slot, fuzzer.lfsr
                )
                if patch is None:
                    continue
                iteration = Iteration(
                    blocks=[block.clone() for block in seed.blocks],
                    layout=fuzzer.layout,
                    data_seed=fuzzer.lfsr.next(),
                    data_patches=list(fuzzer.persistent_data_patches),
                )
                iteration.assemble()
                result = session.runner.run(iteration)
                session.clock.advance_seconds(
                    session.timing.iteration_seconds(
                        generated=iteration.total_instructions,
                        executed=result.executed_instructions,
                        dut_cycles=result.cycles,
                        frequency_hz=session.core.default_frequency_hz,
                    )
                )
                session.total_executed += result.executed_instructions
                if result.new_coverage > 0:
                    gained += result.new_coverage
                    fuzzer.corpus.update_increment(seed, result.new_coverage)
            rounds_without_gain = 0 if gained else rounds_without_gain + 1
        return rounds

    @staticmethod
    def _perturb_patch(patches, slot, lfsr):
        """Lightly mutate one init-context blob (immediates/addresses)."""
        if slot >= len(patches):
            return None
        offset, blob = patches[slot]
        mutated = bytearray(blob)
        for _ in range(4):
            position = lfsr.below(max(1, len(mutated)))
            mutated[position] ^= lfsr.bits(8) or 1
        patches[slot] = (offset, bytes(mutated))
        return patches[slot]

    # -- stage 2 -----------------------------------------------------------------------
    def run_stage2(self, virtual_seconds, max_iterations=None):
        """High-throughput fuzzing over the enriched corpus."""
        return self.session.run_for_virtual_time(
            virtual_seconds, max_iterations=max_iterations
        )

    # -- full schedule -------------------------------------------------------------------
    def run(self, programs, total_virtual_seconds, max_iterations=None):
        """Stage 1 + refinement + stage 2 up to the total time budget."""
        self.run_stage1(programs)
        self.refine_marked_seeds()
        return self.run_stage2(total_virtual_seconds, max_iterations)
