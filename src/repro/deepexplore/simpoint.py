"""SimPoint selection: k-means over basic-block vectors.

A deterministic Lloyd's k-means (k-means++ style seeding from a seeded
PRNG) over L1-normalized BBVs; one representative interval — the one
closest to its cluster centroid — is selected per cluster and weighted by
cluster population, exactly as Sherwood et al. describe.
"""

import random
from dataclasses import dataclass

import numpy as np


@dataclass
class SimPoint:
    """One representative interval."""

    interval_index: int
    cluster: int
    weight: float  # fraction of intervals in this cluster


def _normalize(matrix):
    sums = matrix.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return matrix / sums


def kmeans(matrix, k, seed=0, max_iterations=50):
    """Deterministic Lloyd's k-means; returns (assignments, centroids)."""
    count = matrix.shape[0]
    k = min(k, count)
    rng = random.Random(seed)
    # k-means++ seeding
    centroid_rows = [rng.randrange(count)]
    for _ in range(k - 1):
        centroids = matrix[centroid_rows]
        distances = ((matrix[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
        nearest = distances.min(axis=1)
        total = float(nearest.sum())
        if total == 0:
            centroid_rows.append(rng.randrange(count))
            continue
        pick = rng.random() * total
        cumulative = 0.0
        for row in range(count):
            cumulative += float(nearest[row])
            if cumulative >= pick:
                centroid_rows.append(row)
                break
    centroids = matrix[centroid_rows].astype(float)

    assignments = np.zeros(count, dtype=int)
    for _ in range(max_iterations):
        distances = ((matrix[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for cluster in range(k):
            members = matrix[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return assignments, centroids


def select_simpoints(intervals, k=8, seed=0):
    """Cluster intervals and pick one representative per cluster.

    Returns a list of :class:`SimPoint` sorted by weight, heaviest first.
    """
    if not intervals:
        return []
    leaders = sorted({leader for interval in intervals for leader in interval.bbv})
    matrix = np.array(
        [interval.vector_on(leaders) for interval in intervals], dtype=float
    )
    matrix = _normalize(matrix)
    assignments, centroids = kmeans(matrix, k, seed=seed)
    simpoints = []
    for cluster in range(centroids.shape[0]):
        member_rows = np.flatnonzero(assignments == cluster)
        if not len(member_rows):
            continue
        member_vectors = matrix[member_rows]
        distances = ((member_vectors - centroids[cluster]) ** 2).sum(axis=1)
        representative = int(member_rows[int(distances.argmin())])
        simpoints.append(
            SimPoint(
                interval_index=representative,
                cluster=cluster,
                weight=len(member_rows) / len(intervals),
            )
        )
    simpoints.sort(key=lambda point: -point.weight)
    return simpoints
