"""Basic-block vector collection over a DUT execution.

SimPoint's profile unit: execution is split into fixed-size intervals; each
interval is summarized by the execution frequency of each basic block
(identified by its leader PC).  The collector also records the
architectural snapshot at each interval boundary and the interval's code
span and coverage increment — everything stage 1 needs to rebuild the
interval as an executable seed.
"""

from dataclasses import dataclass


@dataclass
class IntervalRecord:
    """One profiling interval."""

    index: int
    bbv: dict                 # leader pc -> execution count
    start_snapshot: dict      # ArchState.snapshot() at interval entry
    min_pc: int = None
    max_pc: int = None
    coverage_increment: int = 0
    instructions: int = 0

    def vector_on(self, leader_order):
        """Densify the BBV onto a fixed leader ordering."""
        return [self.bbv.get(leader, 0) for leader in leader_order]


class BasicBlockVectorCollector:
    """Streams committed instructions into interval BBVs."""

    def __init__(self, core, interval_length=1000):
        self.core = core
        self.interval_length = interval_length
        self.intervals = []
        self._current = None
        self._leader = None
        self._prev_was_cf = True  # first instruction starts a block

    def _open_interval(self):
        start_points = (
            self.core.coverage.total_points if self.core.coverage else 0
        )
        self._current = IntervalRecord(
            index=len(self.intervals),
            bbv={},
            start_snapshot=self.core.state.snapshot(),
        )
        self._start_points = start_points

    def observe(self, record):
        """Feed one commit record; closes intervals as they fill."""
        if self._current is None:
            self._open_interval()
        interval = self._current
        pc = record.pc
        if self._prev_was_cf:
            self._leader = pc
        leader = self._leader
        interval.bbv[leader] = interval.bbv.get(leader, 0) + 1
        interval.instructions += 1
        if interval.min_pc is None or pc < interval.min_pc:
            interval.min_pc = pc
        if interval.max_pc is None or pc > interval.max_pc:
            interval.max_pc = pc
        self._prev_was_cf = (
            record.trap is not None or record.next_pc != pc + 4
        )
        if interval.instructions >= self.interval_length:
            self._close_interval()

    def _close_interval(self):
        interval = self._current
        if self.core.coverage:
            interval.coverage_increment = (
                self.core.coverage.total_points - self._start_points
            )
        self.intervals.append(interval)
        self._current = None

    def finish(self):
        """Close any partial interval and return the full list."""
        if self._current is not None and self._current.instructions:
            self._close_interval()
        return self.intervals

    def leader_order(self):
        """Stable union of all leaders across intervals."""
        leaders = set()
        for interval in self.intervals:
            leaders.update(interval.bbv)
        return sorted(leaders)
