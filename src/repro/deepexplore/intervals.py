"""Rebuilding a profiled interval as an executable corpus seed.

Each representative interval needs its execution context — the paper
constructs initialization instructions for the GRF, FRF and CSRs from the
interval-entry architectural state.  The register values are planted in a
context area of the data segment (a data patch) and the init block loads
them; the interval's code span follows verbatim.
"""

from repro.fuzzer.blocks import InstructionBlock, StimulusEntry
from repro.fuzzer.context import (
    REG_DATA_BASE,
    REG_HANDLER_T0,
    REG_HANDLER_T1,
    REG_INSTR_BASE,
    REG_JALR_TEMP,
)
from repro.isa import csr as CSR
from repro.isa.encoder import encode

# Registers the init block must NOT restore (harness conventions).
_PRESERVED_XREGS = frozenset(
    {0, REG_DATA_BASE, REG_INSTR_BASE, REG_HANDLER_T0, REG_HANDLER_T1}
)

# Context area: 8 KiB below the end of the data segment.
CONTEXT_AREA_OFFSET = (1 << 16) - 8192


def build_init_words(snapshot, layout, context_offset=CONTEXT_AREA_OFFSET):
    """Initialization instructions + the context-area data patch.

    Loads every restorable integer and FP register from the context area
    at ``context_offset`` (each interval seed gets its own slot), then
    restores fcsr.  Returns ``(words, patch)`` where ``patch`` is the
    ``(offset, bytes)`` pair for the iteration's data segment.
    """
    blob = bytearray()
    words = []
    # Point the scratch register at the context area (lui+addi from the
    # data base would overflow the 12-bit range, so materialize directly).
    context_address = layout.data + context_offset
    upper = (context_address + 0x800) & 0xFFFFF000
    words.append(encode("lui", rd=REG_JALR_TEMP, imm=upper))
    words.append(
        encode("addi", rd=REG_JALR_TEMP, rs1=REG_JALR_TEMP,
               imm=context_address - upper)
    )
    slot = 0
    for index in range(32):
        if index in _PRESERVED_XREGS:
            continue
        blob += snapshot["xregs"][index].to_bytes(8, "little")
        words.append(
            encode("ld", rd=index, rs1=REG_JALR_TEMP, imm=slot * 8)
        )
        slot += 1
    for index in range(32):
        blob += snapshot["fregs"][index].to_bytes(8, "little")
        words.append(
            encode("fld", rd=index, rs1=REG_JALR_TEMP, imm=slot * 8)
        )
        slot += 1
    # Restore fcsr via an integer load + csrrw (clobbers REG_HANDLER_T1,
    # which the conventions reserve for exactly this kind of plumbing).
    fcsr = snapshot["csrs"].get(CSR.FCSR, 0) & 0xFF
    words.append(encode("addi", rd=REG_HANDLER_T1, rs1=0, imm=fcsr))
    words.append(encode("csrrw", rd=0, csr=CSR.FCSR, rs1=REG_HANDLER_T1))
    return words, (context_offset, bytes(blob))


def build_interval_seed(interval, code_words, code_base, layout,
                        max_span_words=4096,
                        context_offset=CONTEXT_AREA_OFFSET):
    """Blocks for one interval seed: init block + the interval's code span.

    ``code_words``/``code_base`` describe the profiled program so the
    interval's executed span can be sliced out.  Returns
    ``(blocks, data_patch)``.
    """
    init_words, patch = build_init_words(interval.start_snapshot, layout,
                                         context_offset)
    blocks = [
        InstructionBlock(
            prime_name="addi",
            entries=[StimulusEntry(word) for word in init_words],
            generated=False,
        )
    ]
    first = max(0, (interval.min_pc - code_base) // 4)
    last = min(len(code_words), (interval.max_pc - code_base) // 4 + 1)
    if last - first > max_span_words:
        last = first + max_span_words
    for word in code_words[first:last]:
        blocks.append(
            InstructionBlock(
                prime_name="addi",
                entries=[StimulusEntry(word)],
                generated=False,
            )
        )
    return blocks, patch
