"""Bit-level helpers shared by the encoder, decoder and reference model.

All register values are carried as unsigned Python integers in
``[0, 2**64)``.  Signed interpretation happens explicitly via
:func:`to_signed` / :func:`to_unsigned`.
"""

MASK5 = (1 << 5) - 1
MASK12 = (1 << 12) - 1
MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1


def bits(value, hi, lo):
    """Extract the inclusive bit slice ``value[hi:lo]`` as an unsigned int."""
    if hi < lo:
        raise ValueError(f"invalid bit slice [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def sext(value, width):
    """Sign-extend an unsigned ``width``-bit value to a Python int."""
    sign_bit = 1 << (width - 1)
    value &= (1 << width) - 1
    return value - (1 << width) if value & sign_bit else value


def to_signed(value, width=64):
    """Interpret an unsigned value as a two's-complement signed integer."""
    return sext(value, width)


def to_unsigned(value, width=64):
    """Wrap a (possibly negative) integer into unsigned ``width``-bit space."""
    return value & ((1 << width) - 1)


def fits_signed(value, width):
    """True when ``value`` is representable as a signed ``width``-bit int."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value, width):
    """True when ``value`` is representable as an unsigned ``width``-bit int."""
    return 0 <= value < (1 << width)


def align_down(value, alignment):
    """Round ``value`` down to a multiple of ``alignment``."""
    return value - (value % alignment)


def popcount(value):
    """Number of set bits in ``value``."""
    return bin(value & MASK64).count("1")
