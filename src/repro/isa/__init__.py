"""RISC-V ISA substrate: encodings, decoder, assembler, CSRs, registers.

This package implements the RV64 IMAFD + Zicsr subset used by the paper's
DUTs (Rocket, CVA6, BOOM).  It is the foundation for both the golden
reference model (:mod:`repro.ref`) and the TurboFuzzer instruction library
(:mod:`repro.fuzzer.instrlib`).
"""

from repro.isa.encoding import (
    bits,
    sext,
    to_signed,
    to_unsigned,
    MASK32,
    MASK64,
)
from repro.isa.instructions import (
    InstrSpec,
    SPECS,
    SPECS_BY_NAME,
    Extension,
    Category,
)
from repro.isa.decoder import decode, DecodedInstr, IllegalInstruction
from repro.isa.encoder import encode, assemble
from repro.isa.disasm import disassemble
from repro.isa import csr
from repro.isa import registers

__all__ = [
    "bits",
    "sext",
    "to_signed",
    "to_unsigned",
    "MASK32",
    "MASK64",
    "InstrSpec",
    "SPECS",
    "SPECS_BY_NAME",
    "Extension",
    "Category",
    "decode",
    "DecodedInstr",
    "IllegalInstruction",
    "encode",
    "assemble",
    "disassemble",
    "csr",
    "registers",
]
