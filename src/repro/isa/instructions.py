"""RISC-V instruction specification table (RV64 IMAFD + Zicsr + machine ops).

Each :class:`InstrSpec` carries the fixed opcode bits (``match``/``mask``),
the operand *format* (which drives both the encoder and the decoder), the ISA
*extension* it belongs to (so the fuzzer's instruction library can toggle
subsets, mirroring the paper's VIO-configurable library), and a coarse
*category* used by the fuzzer's block builder and by the prevalence /
instruction-mix experiments (Fig. 4, Fig. 8).
"""

from dataclasses import dataclass
from enum import Enum


class Extension(str, Enum):
    """ISA subsets that can be toggled in the instruction library."""

    I = "I"  # noqa: E741 - canonical RISC-V extension letter
    M = "M"
    A = "A"
    F = "F"
    D = "D"
    ZICSR = "Zicsr"
    SYSTEM = "System"


class Category(str, Enum):
    """Coarse behavioural class, used for generation and analysis."""

    ALU = "alu"
    ALU_IMM = "alu_imm"
    BRANCH = "branch"
    JUMP = "jump"
    LOAD = "load"
    STORE = "store"
    MUL = "mul"
    DIV = "div"
    AMO = "amo"
    FP_ARITH = "fp_arith"
    FP_DIV = "fp_div"
    FP_FMA = "fp_fma"
    FP_CMP = "fp_cmp"
    FP_CVT = "fp_cvt"
    FP_MOVE = "fp_move"
    FP_LOAD = "fp_load"
    FP_STORE = "fp_store"
    CSR = "csr"
    SYSTEM = "system"
    FENCE = "fence"


CONTROL_FLOW_CATEGORIES = frozenset({Category.BRANCH, Category.JUMP})
MEMORY_CATEGORIES = frozenset(
    {Category.LOAD, Category.STORE, Category.FP_LOAD, Category.FP_STORE, Category.AMO}
)
FP_CATEGORIES = frozenset(
    {
        Category.FP_ARITH,
        Category.FP_DIV,
        Category.FP_FMA,
        Category.FP_CMP,
        Category.FP_CVT,
        Category.FP_MOVE,
        Category.FP_LOAD,
        Category.FP_STORE,
    }
)


# Operand formats.  Each format names the variable fields of the word; the
# encoder fills them and the decoder extracts them.
#   R      rd, rs1, rs2
#   R_SH   rd, rs1, shamt (6-bit, RV64 shifts)
#   R_SHW  rd, rs1, shamt (5-bit, *W shifts)
#   I      rd, rs1, imm (12-bit signed)
#   L      rd, imm(rs1)             (loads; same bit layout as I)
#   S      rs2, imm(rs1)
#   B      rs1, rs2, imm (13-bit, bit 0 zero)
#   U      rd, imm (20-bit, placed at [31:12])
#   J      rd, imm (21-bit, bit 0 zero)
#   CSR    rd, csr, rs1
#   CSRI   rd, csr, zimm (5-bit unsigned)
#   FR     frd, frs1, frs2, rm
#   FR1    frd, frs1, rm           (fsqrt, most fcvt)
#   FRN    frd, frs1, frs2         (no rm: fsgnj*, fmin/fmax)
#   FCMP   rd(int), frs1, frs2
#   FCVT_IF rd(int), frs1, rm      (fcvt.w.s etc. / fclass / fmv.x)
#   FCVT_FI frd, rs1(int), rm      (fcvt.s.w etc. / fmv.w.x)
#   R4     frd, frs1, frs2, frs3, rm
#   FL     frd, imm(rs1)
#   FS     frs2, imm(rs1)
#   AMO    rd, rs2, (rs1)          (aq/rl bits held at zero)
#   LR     rd, (rs1)
#   NONE   no operands (ecall, ebreak, mret, wfi, fence.i)
#   FENCE  pred/succ (held at defaults)
FORMATS = (
    "R", "R_SH", "R_SHW", "I", "L", "S", "B", "U", "J",
    "CSR", "CSRI", "FR", "FR1", "FRN", "FCMP", "FCVT_IF", "FCVT_FI",
    "R4", "FL", "FS", "AMO", "LR", "NONE", "FENCE",
)


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction."""

    name: str
    fmt: str
    match: int
    mask: int
    extension: Extension
    category: Category
    xlen: int = 32  # 32 = available on RV32 and RV64; 64 = RV64-only
    writes_fp: bool = False
    reads_fp: tuple = ()

    @property
    def is_control_flow(self):
        return self.category in CONTROL_FLOW_CATEGORIES

    @property
    def is_memory(self):
        return self.category in MEMORY_CATEGORIES

    @property
    def is_fp(self):
        return self.category in FP_CATEGORIES

    def __repr__(self):
        return f"InstrSpec({self.name!r})"


# ---------------------------------------------------------------------------
# Opcode constants (major opcodes, [6:0]).
# ---------------------------------------------------------------------------
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_IMM32 = 0b0011011
OP = 0b0110011
OP_32 = 0b0111011
OP_FENCE = 0b0001111
OP_SYSTEM = 0b1110011
OP_AMO = 0b0101111
OP_FP_LOAD = 0b0000111
OP_FP_STORE = 0b0100111
OP_FP = 0b1010011
OP_FMADD = 0b1000011
OP_FMSUB = 0b1000111
OP_FNMSUB = 0b1001011
OP_FNMADD = 0b1001111

MASK_OPCODE = 0x7F
MASK_OP_F3 = 0x707F
MASK_OP_F3_F7 = 0xFE00707F
MASK_FP_RS2 = 0xFFF0707F  # funct7 + rs2 + funct3 + opcode (fcvt with rm free would drop f3)
MASK_FP_NORM = 0xFE00707F
MASK_FP_RM = 0xFE00007F  # funct7 + opcode, rm free
MASK_FP_RM_RS2 = 0xFFF0007F  # funct7 + rs2 + opcode, rm free
MASK_R4 = 0x600007F  # funct2 + opcode, rm free
MASK_AMO = 0xF800707F  # funct5 + funct3 + opcode (aq/rl free)
MASK_LR = 0xF9F0707F  # funct5 + rs2==0 + funct3 + opcode (aq/rl free)
MASK_FULL = 0xFFFFFFFF


def _r(f7, f3, op):
    return (f7 << 25) | (f3 << 12) | op


def _i(f3, op):
    return (f3 << 12) | op


_TABLE = []


def _add(name, fmt, match, mask, ext, cat, xlen=32, writes_fp=False, reads_fp=()):
    _TABLE.append(
        InstrSpec(
            name=name,
            fmt=fmt,
            match=match,
            mask=mask,
            extension=ext,
            category=cat,
            xlen=xlen,
            writes_fp=writes_fp,
            reads_fp=tuple(reads_fp),
        )
    )


# --- RV32I / RV64I base ----------------------------------------------------
_add("lui", "U", OP_LUI, MASK_OPCODE, Extension.I, Category.ALU_IMM)
_add("auipc", "U", OP_AUIPC, MASK_OPCODE, Extension.I, Category.ALU_IMM)
_add("jal", "J", OP_JAL, MASK_OPCODE, Extension.I, Category.JUMP)
_add("jalr", "I", _i(0b000, OP_JALR), MASK_OP_F3, Extension.I, Category.JUMP)

for _name, _f3 in (
    ("beq", 0b000), ("bne", 0b001), ("blt", 0b100),
    ("bge", 0b101), ("bltu", 0b110), ("bgeu", 0b111),
):
    _add(_name, "B", _i(_f3, OP_BRANCH), MASK_OP_F3, Extension.I, Category.BRANCH)

for _name, _f3, _xlen in (
    ("lb", 0b000, 32), ("lh", 0b001, 32), ("lw", 0b010, 32),
    ("lbu", 0b100, 32), ("lhu", 0b101, 32), ("lwu", 0b110, 64),
    ("ld", 0b011, 64),
):
    _add(_name, "L", _i(_f3, OP_LOAD), MASK_OP_F3, Extension.I, Category.LOAD, _xlen)

for _name, _f3, _xlen in (
    ("sb", 0b000, 32), ("sh", 0b001, 32), ("sw", 0b010, 32), ("sd", 0b011, 64),
):
    _add(_name, "S", _i(_f3, OP_STORE), MASK_OP_F3, Extension.I, Category.STORE, _xlen)

for _name, _f3 in (
    ("addi", 0b000), ("slti", 0b010), ("sltiu", 0b011),
    ("xori", 0b100), ("ori", 0b110), ("andi", 0b111),
):
    _add(_name, "I", _i(_f3, OP_IMM), MASK_OP_F3, Extension.I, Category.ALU_IMM)

# RV64 shifts use a 6-bit shamt; the top funct6 selects the operation.
_add("slli", "R_SH", _i(0b001, OP_IMM), 0xFC00707F, Extension.I, Category.ALU_IMM)
_add("srli", "R_SH", _i(0b101, OP_IMM), 0xFC00707F, Extension.I, Category.ALU_IMM)
_add("srai", "R_SH", (0x10 << 26) | _i(0b101, OP_IMM), 0xFC00707F, Extension.I, Category.ALU_IMM)

for _name, _f7, _f3 in (
    ("add", 0, 0b000), ("sub", 0x20, 0b000), ("sll", 0, 0b001),
    ("slt", 0, 0b010), ("sltu", 0, 0b011), ("xor", 0, 0b100),
    ("srl", 0, 0b101), ("sra", 0x20, 0b101), ("or", 0, 0b110),
    ("and", 0, 0b111),
):
    _add(_name, "R", _r(_f7, _f3, OP), MASK_OP_F3_F7, Extension.I, Category.ALU)

_add("addiw", "I", _i(0b000, OP_IMM32), MASK_OP_F3, Extension.I, Category.ALU_IMM, 64)
_add("slliw", "R_SHW", _i(0b001, OP_IMM32), MASK_OP_F3_F7, Extension.I, Category.ALU_IMM, 64)
_add("srliw", "R_SHW", _i(0b101, OP_IMM32), MASK_OP_F3_F7, Extension.I, Category.ALU_IMM, 64)
_add("sraiw", "R_SHW", _r(0x20, 0b101, OP_IMM32), MASK_OP_F3_F7, Extension.I, Category.ALU_IMM, 64)

for _name, _f7, _f3 in (
    ("addw", 0, 0b000), ("subw", 0x20, 0b000), ("sllw", 0, 0b001),
    ("srlw", 0, 0b101), ("sraw", 0x20, 0b101),
):
    _add(_name, "R", _r(_f7, _f3, OP_32), MASK_OP_F3_F7, Extension.I, Category.ALU, 64)

_add("fence", "FENCE", _i(0b000, OP_FENCE), MASK_OP_F3, Extension.I, Category.FENCE)
_add("fence.i", "NONE", _i(0b001, OP_FENCE), MASK_FULL, Extension.I, Category.FENCE)
_add("ecall", "NONE", OP_SYSTEM, MASK_FULL, Extension.SYSTEM, Category.SYSTEM)
_add("ebreak", "NONE", (1 << 20) | OP_SYSTEM, MASK_FULL, Extension.SYSTEM,
     Category.SYSTEM)
_add("mret", "NONE", (0b0011000_00010 << 20) | OP_SYSTEM, MASK_FULL,
     Extension.SYSTEM, Category.SYSTEM)
_add("wfi", "NONE", (0b0001000_00101 << 20) | OP_SYSTEM, MASK_FULL,
     Extension.SYSTEM, Category.SYSTEM)

# --- M ----------------------------------------------------------------------
for _name, _f3, _cat in (
    ("mul", 0b000, Category.MUL), ("mulh", 0b001, Category.MUL),
    ("mulhsu", 0b010, Category.MUL), ("mulhu", 0b011, Category.MUL),
    ("div", 0b100, Category.DIV), ("divu", 0b101, Category.DIV),
    ("rem", 0b110, Category.DIV), ("remu", 0b111, Category.DIV),
):
    _add(_name, "R", _r(1, _f3, OP), MASK_OP_F3_F7, Extension.M, _cat)

for _name, _f3, _cat in (
    ("mulw", 0b000, Category.MUL), ("divw", 0b100, Category.DIV),
    ("divuw", 0b101, Category.DIV), ("remw", 0b110, Category.DIV),
    ("remuw", 0b111, Category.DIV),
):
    _add(_name, "R", _r(1, _f3, OP_32), MASK_OP_F3_F7, Extension.M, _cat, 64)

# --- A ----------------------------------------------------------------------
_AMO_FUNCT5 = (
    ("amoswap", 0b00001), ("amoadd", 0b00000), ("amoxor", 0b00100),
    ("amoand", 0b01100), ("amoor", 0b01000), ("amomin", 0b10000),
    ("amomax", 0b10100), ("amominu", 0b11000), ("amomaxu", 0b11100),
)
for _suffix, _f3, _xlen in ((".w", 0b010, 32), (".d", 0b011, 64)):
    _add("lr" + _suffix, "LR", (0b00010 << 27) | _i(_f3, OP_AMO), MASK_LR,
         Extension.A, Category.AMO, _xlen)
    _add("sc" + _suffix, "AMO", (0b00011 << 27) | _i(_f3, OP_AMO), MASK_AMO,
         Extension.A, Category.AMO, _xlen)
    for _base, _f5 in _AMO_FUNCT5:
        _add(_base + _suffix, "AMO", (_f5 << 27) | _i(_f3, OP_AMO), MASK_AMO,
             Extension.A, Category.AMO, _xlen)

# --- F / D -------------------------------------------------------------------
_add("flw", "FL", _i(0b010, OP_FP_LOAD), MASK_OP_F3, Extension.F,
     Category.FP_LOAD, writes_fp=True)
_add("fld", "FL", _i(0b011, OP_FP_LOAD), MASK_OP_F3, Extension.D,
     Category.FP_LOAD, writes_fp=True)
_add("fsw", "FS", _i(0b010, OP_FP_STORE), MASK_OP_F3, Extension.F,
     Category.FP_STORE, reads_fp=("rs2",))
_add("fsd", "FS", _i(0b011, OP_FP_STORE), MASK_OP_F3, Extension.D,
     Category.FP_STORE, reads_fp=("rs2",))

for _prec, _fmt2, _ext in (("s", 0b00, Extension.F), ("d", 0b01, Extension.D)):
    _rf = ("rs1", "rs2")
    for _name, _f5, _cat in (
        ("fadd", 0b00000, Category.FP_ARITH), ("fsub", 0b00001, Category.FP_ARITH),
        ("fmul", 0b00010, Category.FP_ARITH), ("fdiv", 0b00011, Category.FP_DIV),
    ):
        _add(f"{_name}.{_prec}", "FR", ((_f5 << 2 | _fmt2) << 25) | OP_FP,
             MASK_FP_RM, _ext, _cat, writes_fp=True, reads_fp=_rf)
    _add(f"fsqrt.{_prec}", "FR1", ((0b01011 << 2 | _fmt2) << 25) | OP_FP,
         MASK_FP_RM_RS2, _ext, Category.FP_DIV, writes_fp=True, reads_fp=("rs1",))
    for _name, _f3 in (("fsgnj", 0b000), ("fsgnjn", 0b001), ("fsgnjx", 0b010)):
        _add(f"{_name}.{_prec}", "FRN",
             ((0b00100 << 2 | _fmt2) << 25) | _i(_f3, OP_FP),
             MASK_FP_NORM, _ext, Category.FP_MOVE, writes_fp=True, reads_fp=_rf)
    for _name, _f3 in (("fmin", 0b000), ("fmax", 0b001)):
        _add(f"{_name}.{_prec}", "FRN",
             ((0b00101 << 2 | _fmt2) << 25) | _i(_f3, OP_FP),
             MASK_FP_NORM, _ext, Category.FP_ARITH, writes_fp=True, reads_fp=_rf)
    for _name, _f3 in (("feq", 0b010), ("flt", 0b001), ("fle", 0b000)):
        _add(f"{_name}.{_prec}", "FCMP",
             ((0b10100 << 2 | _fmt2) << 25) | _i(_f3, OP_FP),
             MASK_FP_NORM, _ext, Category.FP_CMP, reads_fp=_rf)
    _add(f"fclass.{_prec}", "FCVT_IF",
         ((0b11100 << 2 | _fmt2) << 25) | _i(0b001, OP_FP),
         MASK_FP_RS2, _ext, Category.FP_CMP, reads_fp=("rs1",))
    # int <-> float conversions; rs2 field selects the integer width/sign.
    for _iname, _rs2, _xlen in (
        ("w", 0b00000, 32), ("wu", 0b00001, 32), ("l", 0b00010, 64), ("lu", 0b00011, 64),
    ):
        _add(f"fcvt.{_iname}.{_prec}", "FCVT_IF",
             ((0b11000 << 2 | _fmt2) << 25) | (_rs2 << 20) | OP_FP,
             MASK_FP_RM_RS2, _ext, Category.FP_CVT, _xlen, reads_fp=("rs1",))
        _add(f"fcvt.{_prec}.{_iname}", "FCVT_FI",
             ((0b11010 << 2 | _fmt2) << 25) | (_rs2 << 20) | OP_FP,
             MASK_FP_RM_RS2, _ext, Category.FP_CVT, _xlen, writes_fp=True)
    # fused multiply-add family
    for _name, _op, _cat in (
        ("fmadd", OP_FMADD, Category.FP_FMA), ("fmsub", OP_FMSUB, Category.FP_FMA),
        ("fnmsub", OP_FNMSUB, Category.FP_FMA), ("fnmadd", OP_FNMADD, Category.FP_FMA),
    ):
        _add(f"{_name}.{_prec}", "R4", (_fmt2 << 25) | _op, MASK_R4, _ext, _cat,
             writes_fp=True, reads_fp=("rs1", "rs2", "rs3"))

# float <-> float conversions and raw moves
_add("fcvt.s.d", "FR1", ((0b01000 << 2 | 0b00) << 25) | (0b00001 << 20) | OP_FP,
     MASK_FP_RM_RS2, Extension.D, Category.FP_CVT, writes_fp=True, reads_fp=("rs1",))
_add("fcvt.d.s", "FR1", ((0b01000 << 2 | 0b01) << 25) | OP_FP,
     MASK_FP_RM_RS2, Extension.D, Category.FP_CVT, writes_fp=True, reads_fp=("rs1",))
_add("fmv.x.w", "FCVT_IF", ((0b11100 << 2 | 0b00) << 25) | OP_FP,
     MASK_FP_RS2, Extension.F, Category.FP_MOVE, reads_fp=("rs1",))
_add("fmv.w.x", "FCVT_FI", ((0b11110 << 2 | 0b00) << 25) | OP_FP,
     MASK_FP_RS2, Extension.F, Category.FP_MOVE, writes_fp=True)
_add("fmv.x.d", "FCVT_IF", ((0b11100 << 2 | 0b01) << 25) | OP_FP,
     MASK_FP_RS2, Extension.D, Category.FP_MOVE, 64, reads_fp=("rs1",))
_add("fmv.d.x", "FCVT_FI", ((0b11110 << 2 | 0b01) << 25) | OP_FP,
     MASK_FP_RS2, Extension.D, Category.FP_MOVE, 64, writes_fp=True)

# --- Zicsr --------------------------------------------------------------------
for _name, _f3 in (("csrrw", 0b001), ("csrrs", 0b010), ("csrrc", 0b011)):
    _add(_name, "CSR", _i(_f3, OP_SYSTEM), MASK_OP_F3, Extension.ZICSR, Category.CSR)
for _name, _f3 in (("csrrwi", 0b101), ("csrrsi", 0b110), ("csrrci", 0b111)):
    _add(_name, "CSRI", _i(_f3, OP_SYSTEM), MASK_OP_F3, Extension.ZICSR, Category.CSR)


SPECS = tuple(_TABLE)
SPECS_BY_NAME = {spec.name: spec for spec in SPECS}

if len(SPECS_BY_NAME) != len(SPECS):  # pragma: no cover - table sanity
    raise AssertionError("duplicate instruction names in spec table")


def specs_for_extensions(extensions, xlen=64):
    """All specs belonging to the given set of enabled extensions."""
    enabled = set(extensions)
    return [
        spec
        for spec in SPECS
        if spec.extension in enabled and (xlen == 64 or spec.xlen == 32)
    ]
