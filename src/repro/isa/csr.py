"""Control and Status Register map and field layouts.

Covers the machine-mode and FP CSRs the paper's experiments exercise:
``fcsr``/``frm``/``fflags`` for the FPU bugs (C1-C6, C9, C10, B1, B2),
``stval`` for C7, ``minstret`` for R1, plus the trap CSRs used by the
exception templates of Section IV-C.
"""

# --- addresses ---------------------------------------------------------------
FFLAGS = 0x001
FRM = 0x002
FCSR = 0x003

SSTATUS = 0x100
STVEC = 0x105
SEPC = 0x141
SCAUSE = 0x142
STVAL = 0x143

MSTATUS = 0x300
MISA = 0x301
MEDELEG = 0x302
MIDELEG = 0x303
MIE = 0x304
MTVEC = 0x305
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344

MCYCLE = 0xB00
MINSTRET = 0xB02
CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02

MVENDORID = 0xF11
MARCHID = 0xF12
MIMPID = 0xF13
MHARTID = 0xF14

KNOWN_CSRS = frozenset(
    {
        FFLAGS, FRM, FCSR,
        SSTATUS, STVEC, SEPC, SCAUSE, STVAL,
        MSTATUS, MISA, MEDELEG, MIDELEG, MIE, MTVEC,
        MSCRATCH, MEPC, MCAUSE, MTVAL, MIP,
        MCYCLE, MINSTRET, CYCLE, TIME, INSTRET,
        MVENDORID, MARCHID, MIMPID, MHARTID,
    }
)

CSR_NAMES = {
    FFLAGS: "fflags", FRM: "frm", FCSR: "fcsr",
    SSTATUS: "sstatus", STVEC: "stvec", SEPC: "sepc",
    SCAUSE: "scause", STVAL: "stval",
    MSTATUS: "mstatus", MISA: "misa", MEDELEG: "medeleg",
    MIDELEG: "mideleg", MIE: "mie", MTVEC: "mtvec",
    MSCRATCH: "mscratch", MEPC: "mepc", MCAUSE: "mcause",
    MTVAL: "mtval", MIP: "mip",
    MCYCLE: "mcycle", MINSTRET: "minstret",
    CYCLE: "cycle", TIME: "time", INSTRET: "instret",
    MVENDORID: "mvendorid", MARCHID: "marchid",
    MIMPID: "mimpid", MHARTID: "mhartid",
}

READ_ONLY_CSRS = frozenset({CYCLE, TIME, INSTRET, MVENDORID, MARCHID, MIMPID, MHARTID})

# --- fcsr fields -------------------------------------------------------------
FFLAGS_NX = 1 << 0  # inexact
FFLAGS_UF = 1 << 1  # underflow
FFLAGS_OF = 1 << 2  # overflow
FFLAGS_DZ = 1 << 3  # divide by zero
FFLAGS_NV = 1 << 4  # invalid operation
FFLAGS_MASK = 0x1F
FRM_SHIFT = 5
FRM_MASK = 0x7

# rounding modes
RM_RNE = 0b000  # round to nearest, ties to even
RM_RTZ = 0b001  # round toward zero
RM_RDN = 0b010  # round down
RM_RUP = 0b011  # round up
RM_RMM = 0b100  # round to nearest, ties to max magnitude
RM_DYN = 0b111  # use frm
VALID_RMS = frozenset({RM_RNE, RM_RTZ, RM_RDN, RM_RUP, RM_RMM})

# --- mstatus fields ----------------------------------------------------------
MSTATUS_MIE = 1 << 3
MSTATUS_MPIE = 1 << 7
MSTATUS_FS_SHIFT = 13
MSTATUS_FS_MASK = 0b11 << MSTATUS_FS_SHIFT
MSTATUS_FS_OFF = 0b00 << MSTATUS_FS_SHIFT
MSTATUS_FS_INITIAL = 0b01 << MSTATUS_FS_SHIFT
MSTATUS_FS_CLEAN = 0b10 << MSTATUS_FS_SHIFT
MSTATUS_FS_DIRTY = 0b11 << MSTATUS_FS_SHIFT

# --- mcause codes ------------------------------------------------------------
CAUSE_MISALIGNED_FETCH = 0
CAUSE_FETCH_ACCESS = 1
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_MISALIGNED_LOAD = 4
CAUSE_LOAD_ACCESS = 5
CAUSE_MISALIGNED_STORE = 6
CAUSE_STORE_ACCESS = 7
CAUSE_ECALL_U = 8
CAUSE_ECALL_S = 9
CAUSE_ECALL_M = 11

CAUSE_NAMES = {
    CAUSE_MISALIGNED_FETCH: "misaligned fetch",
    CAUSE_FETCH_ACCESS: "fetch access fault",
    CAUSE_ILLEGAL_INSTRUCTION: "illegal instruction",
    CAUSE_BREAKPOINT: "breakpoint",
    CAUSE_MISALIGNED_LOAD: "misaligned load",
    CAUSE_LOAD_ACCESS: "load access fault",
    CAUSE_MISALIGNED_STORE: "misaligned store",
    CAUSE_STORE_ACCESS: "store access fault",
    CAUSE_ECALL_U: "ecall from U-mode",
    CAUSE_ECALL_S: "ecall from S-mode",
    CAUSE_ECALL_M: "ecall from M-mode",
}


def csr_name(address):
    """Human-readable name for a CSR address."""
    return CSR_NAMES.get(address, f"csr_{address:#x}")


def pack_fcsr(fflags, frm):
    """Combine fflags and frm into the fcsr value."""
    return (fflags & FFLAGS_MASK) | ((frm & FRM_MASK) << FRM_SHIFT)


def unpack_fcsr(value):
    """Split an fcsr value into ``(fflags, frm)``."""
    return value & FFLAGS_MASK, (value >> FRM_SHIFT) & FRM_MASK
