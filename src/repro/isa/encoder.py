"""Instruction encoder and a small textual assembler.

The encoder is the inverse of the decoder: given a mnemonic and operand
fields it produces the 32-bit word.  The assembler accepts the conventional
syntax (``addi x1, x2, -5``, ``lw a0, 8(sp)``, ``fmadd.d f1, f2, f3, f4``)
and is used by tests, examples, and the synthetic workload generators.
"""

import re

from repro.isa.encoding import fits_signed, fits_unsigned
from repro.isa.instructions import SPECS_BY_NAME
from repro.isa.csr import RM_DYN
from repro.isa.registers import freg_index, xreg_index


class EncodeError(ValueError):
    """Raised for out-of-range operands or malformed assembly."""


def _check_reg(value, what):
    if not 0 <= value < 32:
        raise EncodeError(f"{what} index {value} out of range")
    return value


def _imm_i_bits(imm):
    if not fits_signed(imm, 12):
        raise EncodeError(f"immediate {imm} does not fit in 12 bits")
    return (imm & 0xFFF) << 20


def _imm_s_bits(imm):
    if not fits_signed(imm, 12):
        raise EncodeError(f"immediate {imm} does not fit in 12 bits")
    imm &= 0xFFF
    return ((imm >> 5) << 25) | ((imm & 0x1F) << 7)


def _imm_b_bits(imm):
    if imm % 2:
        raise EncodeError(f"branch offset {imm} must be even")
    if not fits_signed(imm, 13):
        raise EncodeError(f"branch offset {imm} does not fit in 13 bits")
    imm &= 0x1FFF
    return (
        (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
    )


def _imm_u_bits(imm):
    # The immediate is the *architectural* value (already shifted left by
    # 12); the assembler converts the textual 20-bit field before calling.
    if imm & 0xFFF:
        raise EncodeError(f"U-immediate {imm:#x} must be 4 KiB aligned")
    field = imm >> 12
    if not (fits_signed(field, 20) or fits_unsigned(field, 20)):
        raise EncodeError(f"U-immediate {imm:#x} does not fit in 20 bits")
    return (field & 0xFFFFF) << 12


def _imm_j_bits(imm):
    if imm % 2:
        raise EncodeError(f"jump offset {imm} must be even")
    if not fits_signed(imm, 21):
        raise EncodeError(f"jump offset {imm} does not fit in 21 bits")
    imm &= 0x1FFFFF
    return (
        (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
    )


def encode(name, rd=0, rs1=0, rs2=0, rs3=0, imm=0, csr=0, shamt=0, rm=RM_DYN, zimm=0):
    """Encode one instruction to its 32-bit word.

    ``rm`` defaults to the dynamic rounding mode for FP formats that carry a
    rounding-mode field; formats without one ignore it.
    """
    spec = SPECS_BY_NAME.get(name)
    if spec is None:
        raise EncodeError(f"unknown mnemonic {name!r}")
    word = spec.match
    fmt = spec.fmt
    # One combined range check (negative values shift to -1): this runs
    # once per generated instruction, so the four per-field calls matter.
    if (rd | rs1 | rs2 | rs3) >> 5:
        _check_reg(rd, "rd")
        _check_reg(rs1, "rs1")
        _check_reg(rs2, "rs2")
        _check_reg(rs3, "rs3")

    if fmt == "R":
        word |= (rd << 7) | (rs1 << 15) | (rs2 << 20)
    elif fmt in ("I", "L", "FL"):
        word |= (rd << 7) | (rs1 << 15) | _imm_i_bits(imm)
    elif fmt == "R_SH":
        if not 0 <= shamt < 64:
            raise EncodeError(f"shamt {shamt} out of range for RV64 shift")
        word |= (rd << 7) | (rs1 << 15) | (shamt << 20)
    elif fmt == "R_SHW":
        if not 0 <= shamt < 32:
            raise EncodeError(f"shamt {shamt} out of range for *W shift")
        word |= (rd << 7) | (rs1 << 15) | (shamt << 20)
    elif fmt in ("S", "FS"):
        word |= (rs1 << 15) | (rs2 << 20) | _imm_s_bits(imm)
    elif fmt == "B":
        word |= (rs1 << 15) | (rs2 << 20) | _imm_b_bits(imm)
    elif fmt == "U":
        word |= (rd << 7) | _imm_u_bits(imm)
    elif fmt == "J":
        word |= (rd << 7) | _imm_j_bits(imm)
    elif fmt == "CSR":
        if not fits_unsigned(csr, 12):
            raise EncodeError(f"csr address {csr:#x} out of range")
        word |= (rd << 7) | (rs1 << 15) | (csr << 20)
    elif fmt == "CSRI":
        if not fits_unsigned(csr, 12):
            raise EncodeError(f"csr address {csr:#x} out of range")
        if not fits_unsigned(zimm, 5):
            raise EncodeError(f"zimm {zimm} out of range")
        word |= (rd << 7) | (zimm << 15) | (csr << 20)
    elif fmt == "FR":
        word |= (rd << 7) | (rs1 << 15) | (rs2 << 20) | ((rm & 7) << 12)
    elif fmt == "R4":
        word |= (rd << 7) | (rs1 << 15) | (rs2 << 20) | (rs3 << 27) | ((rm & 7) << 12)
    elif fmt in ("FR1", "FCVT_IF", "FCVT_FI"):
        word |= (rd << 7) | (rs1 << 15)
        if spec.mask & 0x7000 == 0:  # rm field is variable for this encoding
            word |= (rm & 7) << 12
    elif fmt in ("FRN", "FCMP"):
        word |= (rd << 7) | (rs1 << 15) | (rs2 << 20)
    elif fmt == "AMO":
        word |= (rd << 7) | (rs1 << 15) | (rs2 << 20)
    elif fmt == "LR":
        word |= (rd << 7) | (rs1 << 15)
    elif fmt in ("NONE", "FENCE"):
        if fmt == "FENCE":
            word |= 0x0FF00000  # pred/succ = iorw,iorw
    else:  # pragma: no cover
        raise AssertionError(f"unhandled format {fmt!r}")
    return word


_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")
_RM_NAMES = {"rne": 0, "rtz": 1, "rdn": 2, "rup": 3, "rmm": 4, "dyn": 7}


def _parse_int(token):
    try:
        return int(token, 0)
    except ValueError:
        raise EncodeError(f"expected integer, got {token!r}") from None


def _reg_or_freg(token, fp):
    return freg_index(token) if fp else xreg_index(token)


def assemble(text):
    """Assemble one instruction from textual syntax to its 32-bit word.

    Supports labels-free, single-instruction syntax; offsets are numeric.
    """
    text = text.strip()
    if not text:
        raise EncodeError("empty instruction")
    parts = text.split(None, 1)
    name = parts[0].lower()
    spec = SPECS_BY_NAME.get(name)
    if spec is None:
        raise EncodeError(f"unknown mnemonic {name!r}")
    operands = [tok.strip() for tok in parts[1].split(",")] if len(parts) > 1 else []
    fmt = spec.fmt
    fields = {}

    def _mem(tok):
        match = _MEM_OPERAND.match(tok)
        if not match:
            raise EncodeError(f"expected offset(reg), got {tok!r}")
        return _parse_int(match.group(1)), xreg_index(match.group(2))

    if fmt == "R":
        fields["rd"], fields["rs1"], fields["rs2"] = (xreg_index(t) for t in operands)
    elif fmt == "I":
        fields["rd"] = xreg_index(operands[0])
        fields["rs1"] = xreg_index(operands[1])
        fields["imm"] = _parse_int(operands[2])
    elif fmt in ("R_SH", "R_SHW"):
        fields["rd"] = xreg_index(operands[0])
        fields["rs1"] = xreg_index(operands[1])
        fields["shamt"] = _parse_int(operands[2])
    elif fmt in ("L", "FL"):
        fields["rd"] = _reg_or_freg(operands[0], fmt == "FL")
        fields["imm"], fields["rs1"] = _mem(operands[1])
    elif fmt in ("S", "FS"):
        fields["rs2"] = _reg_or_freg(operands[0], fmt == "FS")
        fields["imm"], fields["rs1"] = _mem(operands[1])
    elif fmt == "B":
        fields["rs1"] = xreg_index(operands[0])
        fields["rs2"] = xreg_index(operands[1])
        fields["imm"] = _parse_int(operands[2])
    elif fmt == "U":
        fields["rd"] = xreg_index(operands[0])
        # Textual syntax takes the 20-bit field (standard RISC-V asm).
        fields["imm"] = _parse_int(operands[1]) << 12
    elif fmt == "J":
        fields["rd"] = xreg_index(operands[0])
        fields["imm"] = _parse_int(operands[1])
    elif fmt == "CSR":
        fields["rd"] = xreg_index(operands[0])
        fields["csr"] = _parse_int(operands[1])
        fields["rs1"] = xreg_index(operands[2])
    elif fmt == "CSRI":
        fields["rd"] = xreg_index(operands[0])
        fields["csr"] = _parse_int(operands[1])
        fields["zimm"] = _parse_int(operands[2])
    elif fmt == "FR":
        fields["rd"] = freg_index(operands[0])
        fields["rs1"] = freg_index(operands[1])
        fields["rs2"] = freg_index(operands[2])
        if len(operands) > 3:
            fields["rm"] = _RM_NAMES[operands[3].lower()]
    elif fmt == "R4":
        fields["rd"] = freg_index(operands[0])
        fields["rs1"] = freg_index(operands[1])
        fields["rs2"] = freg_index(operands[2])
        fields["rs3"] = freg_index(operands[3])
        if len(operands) > 4:
            fields["rm"] = _RM_NAMES[operands[4].lower()]
    elif fmt == "FR1":
        fields["rd"] = freg_index(operands[0])
        fields["rs1"] = freg_index(operands[1])
        if len(operands) > 2:
            fields["rm"] = _RM_NAMES[operands[2].lower()]
    elif fmt in ("FRN",):
        fields["rd"] = freg_index(operands[0])
        fields["rs1"] = freg_index(operands[1])
        fields["rs2"] = freg_index(operands[2])
    elif fmt == "FCMP":
        fields["rd"] = xreg_index(operands[0])
        fields["rs1"] = freg_index(operands[1])
        fields["rs2"] = freg_index(operands[2])
    elif fmt == "FCVT_IF":
        fields["rd"] = xreg_index(operands[0])
        fields["rs1"] = freg_index(operands[1])
        if len(operands) > 2:
            fields["rm"] = _RM_NAMES[operands[2].lower()]
    elif fmt == "FCVT_FI":
        fields["rd"] = freg_index(operands[0])
        fields["rs1"] = xreg_index(operands[1])
        if len(operands) > 2:
            fields["rm"] = _RM_NAMES[operands[2].lower()]
    elif fmt == "AMO":
        fields["rd"] = xreg_index(operands[0])
        fields["rs2"] = xreg_index(operands[1])
        tok = operands[2]
        if tok.startswith("(") and tok.endswith(")"):
            tok = tok[1:-1]
        fields["rs1"] = xreg_index(tok)
    elif fmt == "LR":
        fields["rd"] = xreg_index(operands[0])
        tok = operands[1]
        if tok.startswith("(") and tok.endswith(")"):
            tok = tok[1:-1]
        fields["rs1"] = xreg_index(tok)
    elif fmt in ("NONE", "FENCE"):
        pass
    else:  # pragma: no cover
        raise AssertionError(f"unhandled format {fmt!r}")
    return encode(name, **fields)


def assemble_all(lines):
    """Assemble an iterable of instruction strings to a list of words."""
    words = []
    for line in lines:
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            words.append(assemble(stripped))
    return words
