"""Instruction word decoder.

Decoding is the hottest path in the whole framework (every DUT and REF step
decodes), so the decoder buckets specs by major opcode and memoizes decoded
words in a module-level cache.  Fuzzing iterations reuse instruction words
heavily (retained blocks, replayed seeds), which makes the cache effective.
"""

from dataclasses import dataclass

from repro.isa.encoding import bits, sext
from repro.isa.instructions import SPECS, InstrSpec
from repro.perf.evict import evict_half


class IllegalInstruction(Exception):
    """Raised when a word does not decode to any implemented instruction."""

    def __init__(self, word, reason="no matching encoding"):
        super().__init__(f"illegal instruction {word:#010x}: {reason}")
        self.word = word & 0xFFFFFFFF
        self.reason = reason


@dataclass(frozen=True, slots=True)
class DecodedInstr:
    """A fully decoded instruction word."""

    spec: InstrSpec
    word: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    imm: int = 0
    csr: int = 0
    shamt: int = 0
    rm: int = 0
    zimm: int = 0

    @property
    def name(self):
        return self.spec.name

    @property
    def category(self):
        return self.spec.category

    def __repr__(self):
        return f"DecodedInstr({self.spec.name}, word={self.word:#010x})"


_BUCKETS = {}
for _spec in SPECS:
    _BUCKETS.setdefault(_spec.match & 0x7F, []).append(_spec)

_CACHE = {}
_ILLEGAL_CACHE = {}
_CACHE_LIMIT = 1 << 18


def _imm_i(word):
    return sext(bits(word, 31, 20), 12)


def _imm_s(word):
    return sext((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)


def _imm_b(word):
    raw = (
        (bits(word, 31, 31) << 12)
        | (bits(word, 7, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return sext(raw, 13)


def _imm_u(word):
    return sext(bits(word, 31, 12) << 12, 32)


def _imm_j(word):
    raw = (
        (bits(word, 31, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bits(word, 20, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return sext(raw, 21)


def _extract(spec, word):
    rd = bits(word, 11, 7)
    rs1 = bits(word, 19, 15)
    rs2 = bits(word, 24, 20)
    fmt = spec.fmt
    if fmt == "R":
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, rs2=rs2)
    if fmt in ("I", "L"):
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, imm=_imm_i(word))
    if fmt == "R_SH":
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, shamt=bits(word, 25, 20))
    if fmt == "R_SHW":
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, shamt=bits(word, 24, 20))
    if fmt == "S":
        return DecodedInstr(spec, word, rs1=rs1, rs2=rs2, imm=_imm_s(word))
    if fmt == "B":
        return DecodedInstr(spec, word, rs1=rs1, rs2=rs2, imm=_imm_b(word))
    if fmt == "U":
        return DecodedInstr(spec, word, rd=rd, imm=_imm_u(word))
    if fmt == "J":
        return DecodedInstr(spec, word, rd=rd, imm=_imm_j(word))
    if fmt == "CSR":
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, csr=bits(word, 31, 20))
    if fmt == "CSRI":
        return DecodedInstr(spec, word, rd=rd, zimm=rs1, csr=bits(word, 31, 20))
    if fmt in ("FR", "R4"):
        rs3 = bits(word, 31, 27) if fmt == "R4" else 0
        return DecodedInstr(
            spec, word, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, rm=bits(word, 14, 12)
        )
    if fmt in ("FR1", "FCVT_IF", "FCVT_FI"):
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, rm=bits(word, 14, 12))
    if fmt in ("FRN", "FCMP"):
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, rs2=rs2)
    if fmt == "FL":
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, imm=_imm_i(word))
    if fmt == "FS":
        return DecodedInstr(spec, word, rs1=rs1, rs2=rs2, imm=_imm_s(word))
    if fmt == "AMO":
        return DecodedInstr(spec, word, rd=rd, rs1=rs1, rs2=rs2)
    if fmt == "LR":
        return DecodedInstr(spec, word, rd=rd, rs1=rs1)
    if fmt in ("NONE", "FENCE"):
        return DecodedInstr(spec, word, rd=rd, rs1=rs1)
    raise AssertionError(f"unhandled format {fmt!r}")  # pragma: no cover


def decode(word):
    """Decode a 32-bit instruction word, raising :class:`IllegalInstruction`.

    Results are memoized, including *illegal* words (mutation produces
    them in bulk, and the bucket scan plus exception construction is the
    expensive part — the cached instance is simply re-raised).  Both memo
    tables are bounded with the shared evict-half policy instead of a
    wholesale clear, so a long campaign never hits a re-miss-on-everything
    latency cliff.
    """
    word &= 0xFFFFFFFF
    cached = _CACHE.get(word)
    if cached is not None:
        return cached
    error = _ILLEGAL_CACHE.get(word)
    if error is not None:
        # Reset the traceback before re-raising the cached instance:
        # ``raise`` APPENDS to an existing __traceback__, so re-raising a
        # long-lived exception unreset would grow its frame chain (and
        # retained locals) without bound over a campaign.
        raise error.with_traceback(None)
    if word & 0b11 != 0b11:
        error = IllegalInstruction(word, "compressed/invalid length")
    else:
        for spec in _BUCKETS.get(word & 0x7F, ()):
            if word & spec.mask == spec.match:
                decoded = _extract(spec, word)
                if len(_CACHE) >= _CACHE_LIMIT:
                    evict_half(_CACHE)
                _CACHE[word] = decoded
                return decoded
        error = IllegalInstruction(word)
    if len(_ILLEGAL_CACHE) >= _CACHE_LIMIT:
        evict_half(_ILLEGAL_CACHE)
    _ILLEGAL_CACHE[word] = error
    raise error


def try_decode(word):
    """Like :func:`decode` but returns ``None`` for illegal words."""
    word &= 0xFFFFFFFF
    cached = _CACHE.get(word)
    if cached is not None:
        return cached
    # Memoized-illegal fast path: no exception round-trip for words the
    # mutation engine keeps re-probing.
    if word in _ILLEGAL_CACHE:
        return None
    try:
        return decode(word)
    except IllegalInstruction:
        return None
