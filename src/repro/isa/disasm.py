"""Minimal disassembler for diagnostics, snapshots and mismatch reports."""

from repro.isa.csr import csr_name
from repro.isa.decoder import try_decode
from repro.isa.registers import freg_name, xreg_name

_RM_NAMES = {0: "rne", 1: "rtz", 2: "rdn", 3: "rup", 4: "rmm", 7: "dyn"}


def disassemble(word):
    """Render a 32-bit word as assembly text (``.word`` for illegal words)."""
    decoded = try_decode(word)
    if decoded is None:
        return f".word {word:#010x}"
    spec = decoded.spec
    fmt = spec.fmt
    name = spec.name
    x = xreg_name
    f = freg_name
    d = decoded
    if fmt == "R":
        return f"{name} {x(d.rd)}, {x(d.rs1)}, {x(d.rs2)}"
    if fmt == "I":
        return f"{name} {x(d.rd)}, {x(d.rs1)}, {d.imm}"
    if fmt in ("R_SH", "R_SHW"):
        return f"{name} {x(d.rd)}, {x(d.rs1)}, {d.shamt}"
    if fmt == "L":
        return f"{name} {x(d.rd)}, {d.imm}({x(d.rs1)})"
    if fmt == "S":
        return f"{name} {x(d.rs2)}, {d.imm}({x(d.rs1)})"
    if fmt == "B":
        return f"{name} {x(d.rs1)}, {x(d.rs2)}, {d.imm}"
    if fmt == "U":
        return f"{name} {x(d.rd)}, {d.imm >> 12 & 0xFFFFF:#x}"
    if fmt == "J":
        return f"{name} {x(d.rd)}, {d.imm}"
    if fmt == "CSR":
        return f"{name} {x(d.rd)}, {csr_name(d.csr)}, {x(d.rs1)}"
    if fmt == "CSRI":
        return f"{name} {x(d.rd)}, {csr_name(d.csr)}, {d.zimm}"
    if fmt == "FR":
        rm = _RM_NAMES.get(d.rm, f"rm{d.rm}")
        return f"{name} {f(d.rd)}, {f(d.rs1)}, {f(d.rs2)}, {rm}"
    if fmt == "R4":
        rm = _RM_NAMES.get(d.rm, f"rm{d.rm}")
        return f"{name} {f(d.rd)}, {f(d.rs1)}, {f(d.rs2)}, {f(d.rs3)}, {rm}"
    if fmt == "FR1":
        return f"{name} {f(d.rd)}, {f(d.rs1)}"
    if fmt == "FRN":
        return f"{name} {f(d.rd)}, {f(d.rs1)}, {f(d.rs2)}"
    if fmt == "FCMP":
        return f"{name} {x(d.rd)}, {f(d.rs1)}, {f(d.rs2)}"
    if fmt == "FCVT_IF":
        return f"{name} {x(d.rd)}, {f(d.rs1)}"
    if fmt == "FCVT_FI":
        return f"{name} {f(d.rd)}, {x(d.rs1)}"
    if fmt == "FL":
        return f"{name} {f(d.rd)}, {d.imm}({x(d.rs1)})"
    if fmt == "FS":
        return f"{name} {f(d.rs2)}, {d.imm}({x(d.rs1)})"
    if fmt == "AMO":
        return f"{name} {x(d.rd)}, {x(d.rs2)}, ({x(d.rs1)})"
    if fmt == "LR":
        return f"{name} {x(d.rd)}, ({x(d.rs1)})"
    return name


def disassemble_block(words, base_address=0):
    """Disassemble a sequence of words into ``addr: text`` lines."""
    lines = []
    for offset, word in enumerate(words):
        address = base_address + offset * 4
        lines.append(f"{address:#010x}: {disassemble(word)}")
    return lines
