"""Integer and floating-point register naming (ABI aliases included)."""

XREG_COUNT = 32
FREG_COUNT = 32

XREG_ABI = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

FREG_ABI = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
)

_XREG_LOOKUP = {name: idx for idx, name in enumerate(XREG_ABI)}
_XREG_LOOKUP.update({f"x{i}": i for i in range(XREG_COUNT)})
_XREG_LOOKUP["fp"] = 8  # alternate name for s0

_FREG_LOOKUP = {name: idx for idx, name in enumerate(FREG_ABI)}
_FREG_LOOKUP.update({f"f{i}": i for i in range(FREG_COUNT)})


def xreg_index(name):
    """Resolve an integer register name (``x5``, ``t0``, ...) to its index."""
    try:
        return _XREG_LOOKUP[name]
    except KeyError:
        raise ValueError(f"unknown integer register {name!r}") from None


def freg_index(name):
    """Resolve an FP register name (``f5``, ``ft5``, ...) to its index."""
    try:
        return _FREG_LOOKUP[name]
    except KeyError:
        raise ValueError(f"unknown FP register {name!r}") from None


def xreg_name(index):
    """ABI name for integer register ``index``."""
    return XREG_ABI[index]


def freg_name(index):
    """ABI name for FP register ``index``."""
    return FREG_ABI[index]
