"""Multi-campaign orchestration: N specs as shards on one time axis.

The paper's headline results all come from *grids* of campaigns
({fuzzer × core × instrumentation × timing}); the orchestrator runs such a
grid as shards with:

* **batched round-robin scheduling on a shared virtual-time axis** — the
  budget is cut into slices and every shard is advanced to each slice
  frontier in turn, so long-running shards cannot starve short ones and
  progress events interleave on a common clock;
* **per-shard deterministic seeding** — ``reseed_base`` derives a distinct,
  reproducible seed per shard index for specs that do not pin one;
* **a shared instrumentation cache** — shards with identical
  ``(core, style, max_state_size, seed)`` keys reuse one layout
  computation instead of re-instrumenting the same netlist per shard;
* **aggregate reporting** — merged coverage series and per-shard stats.

Every shard publishes on one shared :class:`EventBus`, so a single
subscriber observes the whole grid.
"""

from repro.campaign.cache import InstrumentationCache
from repro.campaign.events import EventBus
from repro.campaign.session import build_session


def derive_seed(base, index):
    """Deterministic, well-spread per-shard seed (never zero: a zero LFSR
    state is degenerate)."""
    mixed = (base * 0x9E3779B1 + (index + 1) * 0x85EBCA6B) & 0xFFFF_FFFF
    return mixed or 1


class CampaignOrchestrator:
    """Runs a list of :class:`CampaignSpec` shards to completion."""

    def __init__(self, specs, *, cache=None, bus=None, reseed_base=None):
        self.bus = bus or EventBus()
        self.cache = cache if cache is not None else InstrumentationCache()
        self.specs = []
        self.sessions = {}
        for index, spec in enumerate(specs):
            if reseed_base is not None and "seed" not in spec.fuzzer_options:
                spec = spec.with_seed(derive_seed(reseed_base, index))
            label = spec.label
            if label in self.sessions:
                label = f"{label}#{index}"
                spec = spec.named(label)
            self.specs.append(spec)
            self.sessions[label] = build_session(
                spec, bus=self.bus, cache=self.cache
            )

    # -- access -----------------------------------------------------------------
    def __getitem__(self, label):
        return self.sessions[label]

    def __iter__(self):
        return iter(self.sessions.items())

    def __len__(self):
        return len(self.sessions)

    @property
    def labels(self):
        return list(self.sessions)

    # -- scheduling -------------------------------------------------------------
    def run_for_virtual_time(self, budget_seconds, max_iterations=None,
                             slices=8):
        """Advance every shard to the shared budget, slice by slice.

        ``max_iterations`` caps each shard individually (the scaled-down
        experiment budgets); per-shard results are identical to running
        each session alone for the same budget, because shards share no
        mutable state — only the layout cache, which is read-only after
        construction.
        """
        slices = max(1, int(slices))
        for step in range(1, slices + 1):
            frontier = (budget_seconds if step == slices
                        else budget_seconds * step / slices)
            for label, session in self.sessions.items():
                while session.clock.seconds < frontier:
                    if (max_iterations is not None
                            and session.iterations >= max_iterations):
                        break
                    session.run_iteration()
            self.bus.milestone("time_slice", orchestrator=self,
                               frontier=frontier, step=step, slices=slices)
        for label, session in self.sessions.items():
            self.bus.milestone("shard_done", orchestrator=self,
                               shard=label, session=session)
        return self

    def run_iterations(self, count, batch=16):
        """Run ``count`` iterations per shard in round-robin batches."""
        remaining = {label: count for label in self.sessions}
        while any(remaining.values()):
            for label, session in self.sessions.items():
                for _ in range(min(batch, remaining[label])):
                    session.run_iteration()
                    remaining[label] -= 1
        for label, session in self.sessions.items():
            self.bus.milestone("shard_done", orchestrator=self,
                               shard=label, session=session)
        return self

    # -- aggregate reporting ----------------------------------------------------
    def coverage_series(self):
        """Per-shard ``label -> [(t, coverage)]``."""
        return {label: session.coverage_series()
                for label, session in self.sessions.items()}

    def merged_coverage_series(self):
        """One merged series on the shared time axis: at every event time,
        the sum of each shard's last-known coverage total."""
        events = []
        for index, (label, session) in enumerate(self.sessions.items()):
            for seconds, points in session.coverage_series():
                events.append((seconds, index, points))
        events.sort(key=lambda event: event[0])
        latest = [0] * len(self.sessions)
        merged = []
        for seconds, index, points in events:
            latest[index] = points
            merged.append((seconds, sum(latest)))
        return merged

    def coverage_at(self, label, seconds):
        """A shard's best coverage at or before ``seconds``."""
        best = 0
        for time_point, points in self.sessions[label].coverage_series():
            if time_point <= seconds:
                best = points
        return best

    def shard_stats(self):
        """Per-shard summary numbers."""
        return {
            label: {
                "spec": session.spec.to_dict(),
                "iterations": session.iterations,
                "coverage_total": session.coverage_total,
                "virtual_seconds": session.clock.seconds,
                "iteration_rate_hz": session.iteration_rate_hz(),
                "executed_per_second": session.executed_per_second(),
            }
            for label, session in self.sessions.items()
        }

    def report(self):
        """Aggregate report: per-shard stats + merged totals + cache use."""
        stats = self.shard_stats()
        return {
            "shards": stats,
            "total_coverage": sum(s["coverage_total"] for s in stats.values()),
            "total_iterations": sum(s["iterations"] for s in stats.values()),
            "instrumentation_cache": dict(self.cache.stats),
        }
