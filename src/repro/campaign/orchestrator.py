"""Multi-campaign orchestration: N specs as shards on one time axis.

The paper's headline results all come from *grids* of campaigns
({fuzzer × core × instrumentation × timing}); the orchestrator runs such a
grid as shards with:

* **batched round-robin scheduling on a shared virtual-time axis** — the
  budget is cut into slices and every shard is advanced to each slice
  frontier in turn, so long-running shards cannot starve short ones and
  progress events interleave on a common clock;
* **pluggable execution backends** — the scheduling policy above is
  mechanism-independent: :class:`~repro.campaign.backends.SerialBackend`
  advances shards in-process (the default), while
  :class:`~repro.campaign.backends.ProcessPoolBackend` ships each shard
  to a worker process as a checkpoint and merges results at every slice
  frontier — bit-identical per-shard results either way, because shards
  share no mutable state;
* **per-shard deterministic seeding** — ``reseed_base`` derives a distinct,
  reproducible seed per shard index for specs that do not pin one;
* **a shared instrumentation cache** — shards with identical
  ``(core, style, max_state_size, seed)`` keys reuse one layout
  computation instead of re-instrumenting the same netlist per shard;
* **aggregate reporting** — merged coverage series and per-shard stats;
* **checkpoint/resume** — ``checkpoint()`` freezes every shard as a
  :class:`~repro.campaign.checkpoint.CampaignCheckpoint`;
  ``CampaignOrchestrator.from_checkpoints`` rebuilds the grid so a
  preempted run continues bit-identically.

Every shard publishes on one shared :class:`EventBus`, so a single
subscriber observes the whole grid.
"""

from bisect import bisect_right
from heapq import merge as heap_merge

from repro.campaign.backends import resolve_backend
from repro.campaign.cache import InstrumentationCache
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.events import EventBus
from repro.campaign.resilience import derive_seed
from repro.campaign.session import build_session

__all__ = ["CampaignOrchestrator", "coverage_at_time", "derive_seed"]


def coverage_at_time(series, seconds):
    """Last-known coverage at or before ``seconds`` in a time-sorted
    ``[(seconds, points), ...]`` series (binary search, not a rescan)."""
    # bisect on (seconds, +inf) so an exact time match is included.
    index = bisect_right(series, (seconds, float("inf")))
    return series[index - 1][1] if index else 0


class CampaignOrchestrator:
    """Runs a list of :class:`CampaignSpec` shards to completion."""

    def __init__(self, specs, *, cache=None, bus=None, reseed_base=None,
                 backend=None):
        self.bus = bus or EventBus()
        self.cache = cache if cache is not None else InstrumentationCache()
        self.backend = resolve_backend(backend)
        self.specs = []
        self.sessions = {}
        # label -> "ok" | "quarantined"; fault-tolerant backends mark
        # poison shards here instead of aborting the grid.
        self.shard_health = {}
        for index, spec in enumerate(specs):
            if reseed_base is not None and "seed" not in spec.fuzzer_options:
                spec = spec.with_seed(derive_seed(reseed_base, index))
            label = spec.label
            if label in self.sessions:
                label = f"{label}#{index}"
                spec = spec.named(label)
            self.specs.append(spec)
            self.sessions[label] = build_session(
                spec, bus=self.bus, cache=self.cache
            )
            self.shard_health[label] = "ok"

    # -- access -----------------------------------------------------------------
    def __getitem__(self, label):
        return self.sessions[label]

    def __iter__(self):
        return iter(self.sessions.items())

    def __len__(self):
        return len(self.sessions)

    @property
    def labels(self):
        return list(self.sessions)

    # -- scheduling -------------------------------------------------------------
    def _backend(self, backend):
        return self.backend if backend is None else resolve_backend(backend)

    def run_for_virtual_time(self, budget_seconds, max_iterations=None,
                             slices=8, backend=None):
        """Advance every shard to the shared budget, slice by slice.

        ``max_iterations`` caps each shard individually (the scaled-down
        experiment budgets); per-shard results are identical to running
        each session alone for the same budget, because shards share no
        mutable state — only the layout cache, which is read-only after
        construction.  ``backend`` overrides the orchestrator's backend
        for this call (name, class, or instance).
        """
        self._backend(backend).run_for_virtual_time(
            self, budget_seconds, max_iterations=max_iterations,
            slices=slices)
        return self

    def run_iterations(self, count, batch=16, backend=None):
        """Run ``count`` iterations per shard in round-robin batches."""
        self._backend(backend).run_iterations(self, count, batch=batch)
        return self

    # -- checkpoint / resume ----------------------------------------------------
    def checkpoint(self):
        """Freeze every shard: ``label -> CampaignCheckpoint``."""
        return {
            label: CampaignCheckpoint.capture(session, label=label)
            for label, session in self.sessions.items()
        }

    @classmethod
    def from_checkpoints(cls, checkpoints, *, cache=None, bus=None,
                         backend=None):
        """Rebuild a grid from ``checkpoint()`` output (or a list of
        checkpoints); the resumed run is bit-identical to an uninterrupted
        one under either backend."""
        if isinstance(checkpoints, dict):
            checkpoints = list(checkpoints.values())
        orchestrator = cls([cp.spec for cp in checkpoints], cache=cache,
                           bus=bus, backend=backend)
        for label, checkpoint in zip(orchestrator.labels, checkpoints):
            orchestrator.sessions[label].load_state(checkpoint.state)
        return orchestrator

    # -- aggregate reporting ----------------------------------------------------
    def coverage_series(self):
        """Per-shard ``label -> [(t, coverage)]``."""
        return {label: session.coverage_series()
                for label, session in self.sessions.items()}

    def merged_coverage_series(self):
        """One merged series on the shared time axis: at every event time,
        the sum of each shard's last-known coverage total.

        Per-shard series are already time-sorted (the virtual clock only
        advances), so a k-way heap merge gives the global order in
        O(n log k) without re-sorting the concatenation.
        """
        streams = [
            [(seconds, index, points)
             for seconds, points in session.coverage_series()]
            for index, session in enumerate(self.sessions.values())
        ]
        latest = [0] * len(streams)
        merged = []
        for seconds, index, points in heap_merge(*streams):
            latest[index] = points
            merged.append((seconds, sum(latest)))
        return merged

    def coverage_at(self, label, seconds):
        """A shard's best coverage at or before ``seconds`` (binary search
        over the time-sorted series)."""
        return coverage_at_time(self.sessions[label].coverage_series(),
                                seconds)

    def shard_stats(self):
        """Per-shard summary numbers."""
        return {
            label: {
                "spec": session.spec.to_dict(),
                "iterations": session.iterations,
                "coverage_total": session.coverage_total,
                "virtual_seconds": session.clock.seconds,
                "iteration_rate_hz": session.iteration_rate_hz(),
                "executed_per_second": session.executed_per_second(),
            }
            for label, session in self.sessions.items()
        }

    def report(self):
        """Aggregate report: per-shard stats + merged totals + cache use.

        Fault-tolerant backends additionally contribute ``shard_health``
        (``ok``/``quarantined`` per shard) and a ``resilience`` section
        with retry/redispatch/quarantine counters."""
        stats = self.shard_stats()
        report = {
            "shards": stats,
            "total_coverage": sum(s["coverage_total"] for s in stats.values()),
            "total_iterations": sum(s["iterations"] for s in stats.values()),
            "backend": self.backend.name,
            "instrumentation_cache": dict(self.cache.stats),
            "shard_health": dict(self.shard_health),
        }
        resilience = getattr(self.backend, "resilience_stats", None)
        if resilience is not None:
            stats_block = resilience()
            if stats_block is not None:
                report["resilience"] = stats_block
        return report
