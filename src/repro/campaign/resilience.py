"""Fault tolerance for campaign execution: policy, injection, recovery.

Three pieces, shared by both parallel backends
(:class:`~repro.campaign.backends.ProcessPoolBackend` and
:class:`~repro.campaign.backends.SupervisedQueueBackend`):

* :class:`FaultPolicy` — the knobs of the failure/recovery state machine:
  per-slice timeout, retry budget per shard, exponential backoff with
  deterministic seeded jitter, quarantine threshold, heartbeat cadence,
  and the respawn budget after which a supervisor degrades.
* :class:`FaultInjector` — seeded, registry-based chaos: faults
  (``kill-worker``, ``delay-result``, ``drop-result``,
  ``corrupt-checkpoint``) are scheduled by *(shard index, slice index)*
  through a per-decision :class:`~repro.fuzzer.lfsr.Lfsr`, so a chaos run
  is exactly reproducible from its seed — same seed, same spec, same
  injected-fault schedule.  Faults fire only on a task's **first**
  attempt (unless ``repeat=True``), so every injected failure has a
  fault-free retry path and the recovered campaign merges bit-identically
  with an undisturbed run.
* :class:`ShardRecovery` — the one retry/redispatch/quarantine code path:
  counts failures per ``(shard, slice)``, decides *retry with backoff* vs
  *quarantine*, publishes the robustness events (``redispatch``,
  ``quarantine``, ``worker_lost``, ``degraded``) on the orchestrator's
  bus, and accumulates the counters surfaced under
  ``orchestrator.report()["resilience"]``.

Supervision consults wall-clock time (timeouts, backoff) but none of it
ever feeds campaign state: a re-dispatched slice re-runs from the shard's
last good checkpoint and merges bit-identically, so recovery timing
cannot change results — only wall-clock.
"""

import os
import time  # analyze: ignore[DET001] supervision sleep/jitter only; never feeds campaign state
import zlib
from dataclasses import asdict, dataclass, field

from repro.fuzzer.lfsr import Lfsr
from repro.registry import Registry


def derive_seed(base, index):
    """Deterministic, well-spread per-shard seed (never zero: a zero LFSR
    state is degenerate).  Moved here from the orchestrator so the fault
    machinery below can reuse it without an import cycle; the orchestrator
    re-exports it."""
    mixed = (base * 0x9E3779B1 + (index + 1) * 0x85EBCA6B) & 0xFFFF_FFFF
    return mixed or 1


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPolicy:
    """Failure-handling knobs shared by the parallel backends.

    ``max_retries`` bounds attempts per *(shard, slice)*: the first
    failure is attempt 1, and a shard whose slice fails more than
    ``max_retries`` times is quarantined.  ``quarantine_after`` (optional)
    additionally quarantines a shard once its *total* failures across the
    whole run reach the threshold, even if each individual slice
    eventually succeeded — the "poison shard" guard.
    """

    slice_timeout_s: float = 120.0
    max_retries: int = 3
    quarantine_after: int = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter_seed: int = 0x5EED
    heartbeat_interval_s: float = 0.2
    heartbeat_timeout_s: float = 5.0
    max_respawns: int = 16

    def backoff_s(self, attempt, shard_index=0):
        """Exponential backoff before re-dispatch attempt ``attempt``
        (1-based), with deterministic seeded jitter: the same
        ``(jitter_seed, shard, attempt)`` always yields the same delay, so
        chaos runs replay exactly."""
        if attempt <= 0:
            return 0.0
        delay = self.backoff_base_s * (self.backoff_factor ** (attempt - 1))
        delay = min(delay, self.backoff_max_s)
        if delay <= 0.0:
            return 0.0
        lfsr = Lfsr(derive_seed(self.jitter_seed, (shard_index << 10) ^ attempt))
        # Up to +25% jitter in 256 deterministic steps.
        return delay * (1.0 + lfsr.below(256) / 1024.0)

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


# ---------------------------------------------------------------------------
# Fault registry
# ---------------------------------------------------------------------------
FAULTS = Registry("injected fault")

#: Exit code a worker uses when a ``kill-worker`` fault fires, so the
#: supervisor (and tests) can tell an injected death from a real crash.
KILL_WORKER_EXIT_CODE = 70


def register_fault(name, fault_class=None, replace=False):
    """Register an injected-fault class; usable directly or as a class
    decorator.  A fault class declares ``stage`` — ``"pre"`` (before the
    slice runs), ``"post"`` (after the slice, before the result is
    posted), or ``"result"`` (mutates the serialized result) — and an
    ``apply(context)`` method; constructor keywords come verbatim from
    the injector's ``params`` for that fault kind."""
    return FAULTS.register(name, fault_class, replace=replace)


@register_fault("kill-worker")
@dataclass
class KillWorkerFault:
    """Hard-kill the worker process before it runs the slice (the
    "machine died" chaos case).  ``settle_s`` gives the already-posted
    claim message a moment to flush through the queue's feeder thread so
    the supervisor usually knows which task died with the worker; the
    unclaimed-task sweep covers the race either way."""

    stage = "pre"
    settle_s: float = 0.05

    def apply(self, context):
        if self.settle_s > 0:
            time.sleep(self.settle_s)
        os._exit(KILL_WORKER_EXIT_CODE)


@register_fault("delay-result")
@dataclass
class DelayResultFault:
    """Stall after computing the slice, so the result arrives after the
    supervisor's ``slice_timeout_s`` deadline (the "hung worker" case)."""

    stage = "post"
    seconds: float = 1.0

    def apply(self, context):
        time.sleep(self.seconds)


@register_fault("drop-result")
@dataclass
class DropResultFault:
    """Complete the slice but never post the result (the "lost message"
    case); the supervisor recovers via the slice deadline."""

    stage = "post"

    def apply(self, context):
        context["drop"] = True


@register_fault("corrupt-checkpoint")
@dataclass
class CorruptCheckpointFault:
    """Truncate the serialized result checkpoint (the "partial write"
    case); the supervisor's :class:`~repro.campaign.checkpoint.CheckpointError`
    validation turns it into an ordinary retry."""

    stage = "result"
    keep_fraction: float = 0.5

    def apply(self, context):
        text = context.get("checkpoint_json") or ""
        context["checkpoint_json"] = text[: int(len(text) * self.keep_fraction)]


def apply_fault_directives(directives, stage, context):
    """Run every directive registered for ``stage`` against ``context``
    (a plain dict: ``task``, ``drop`` flag, ``checkpoint_json``).
    Directives are plain dicts — ``{"kind": name, **params}`` — so they
    cross process boundaries as JSON-shaped data.  Returns the kinds
    applied."""
    applied = []
    for directive in directives or ():
        fault_class = FAULTS.get(directive["kind"])
        if fault_class.stage != stage:
            continue
        params = {key: value for key, value in directive.items() if key != "kind"}
        fault_class(**params).apply(context)
        applied.append(directive["kind"])
    return applied


class FaultInjector:
    """Deterministic chaos scheduler.

    Faults fire per *(kind, shard index, slice index)*, decided either by
    an explicit ``schedule`` (an iterable of ``(kind, shard, slice)``
    triples) or by per-kind ``rates`` — ``{kind: (num, den)}`` Bernoulli
    probabilities drawn from a fresh :class:`Lfsr` seeded by
    ``derive_seed(seed ^ crc32(kind), ...)``, so every decision is a pure
    function of ``(seed, kind, shard, slice)`` and :meth:`plan` is the
    exact schedule a run will experience.  By default faults fire only on
    attempt 0 — retries run fault-free, which is what makes chaos runs
    merge bit-identically with undisturbed ones; ``repeat=True`` keeps
    injecting on retries (for quarantine testing)."""

    def __init__(self, seed=0xFA117, rates=None, schedule=None, params=None,
                 repeat=False):
        self.seed = int(seed)
        self.rates = dict(rates or {})
        for kind in self.rates:
            FAULTS.get(kind)  # validate early, with the known-names message
        self.schedule = set()
        for kind, shard_index, slice_index in (schedule or ()):
            FAULTS.get(kind)
            self.schedule.add((kind, int(shard_index), int(slice_index)))
        self.params = {kind: dict(values) for kind, values in (params or {}).items()}
        self.repeat = bool(repeat)
        self.injected = 0
        self.injected_by_kind = {}

    def kinds(self):
        """Every fault kind this injector can fire, in deterministic order."""
        scheduled = {kind for kind, _, _ in self.schedule}
        return sorted(set(self.rates) | scheduled)

    def decide(self, kind, shard_index, slice_index):
        """Pure decision: does ``kind`` fire at (shard, slice)?"""
        if (kind, shard_index, slice_index) in self.schedule:
            return True
        probability = self.rates.get(kind)
        if not probability:
            return False
        salt = zlib.crc32(kind.encode("utf-8"))
        lfsr = Lfsr(derive_seed(self.seed ^ salt,
                                shard_index * 0x10001 + slice_index))
        return lfsr.chance(probability)

    def faults_for(self, shard_index, slice_index, attempt=0):
        """The directives to attach to one task dispatch (counted)."""
        if attempt > 0 and not self.repeat:
            return []
        directives = []
        for kind in self.kinds():
            if self.decide(kind, shard_index, slice_index):
                directives.append({"kind": kind, **self.params.get(kind, {})})
                self.injected += 1
                self.injected_by_kind[kind] = self.injected_by_kind.get(kind, 0) + 1
        return directives

    def plan(self, shard_count, slice_count):
        """The full reproducible schedule over a grid: sorted
        ``(slice_index, shard_index, kind)`` triples.  Pure — planning
        does not advance any state or counter, so ``plan()`` before a run
        equals the faults the run will inject."""
        return [
            (slice_index, shard_index, kind)
            for slice_index in range(slice_count)
            for shard_index in range(shard_count)
            for kind in self.kinds()
            if self.decide(kind, shard_index, slice_index)
        ]

    def stats(self):
        return {
            "seed": self.seed,
            "injected": self.injected,
            "by_kind": dict(sorted(self.injected_by_kind.items())),
            "repeat": self.repeat,
        }


# ---------------------------------------------------------------------------
# Recovery accounting
# ---------------------------------------------------------------------------
@dataclass
class _RecoveryCounters:
    """Plain counter block so the report section has a stable shape."""

    failures: int = 0
    redispatches: int = 0
    quarantines: int = 0
    worker_losses: int = 0
    timeouts: int = 0
    corrupt_checkpoints: int = 0
    dropped_results: int = 0
    worker_errors: int = 0
    heartbeat_losses: int = 0
    faults_injected: int = 0
    spawns: int = 0
    respawns: int = 0
    respawn_failures: int = 0
    degraded: int = 0
    inline_tasks: int = 0
    requeues: int = 0
    relay_events: int = 0
    extra: dict = field(default_factory=dict)


class ShardRecovery:
    """The shared failure/recovery path of both parallel backends.

    One instance per backend run: it owns the per-``(shard, slice)``
    attempt counts, the retry-vs-quarantine decision, the robustness
    event emission, and the counters that end up in
    ``orchestrator.report()["resilience"]``.  ``health`` is the
    orchestrator's ``shard_health`` mapping — quarantining a shard marks
    it there so the campaign report shows it without aborting the grid.
    """

    RETRY = "retry"
    QUARANTINE = "quarantine"

    def __init__(self, policy=None, bus=None, health=None):
        self.policy = policy or FaultPolicy()
        self.bus = bus
        self.health = health if health is not None else {}
        self.attempts = {}        # (label, slice_index) -> failed attempts
        self.total_failures = {}  # label -> failures across all slices
        self.last_error = {}      # label -> most recent failure reason
        self.counters = _RecoveryCounters()

    # -- counters ---------------------------------------------------------------
    def note(self, counter, amount=1):
        if hasattr(self.counters, counter):
            setattr(self.counters, counter,
                    getattr(self.counters, counter) + amount)
        else:
            extra = self.counters.extra
            extra[counter] = extra.get(counter, 0) + amount

    def attempts_for(self, label, slice_index):
        return self.attempts.get((label, slice_index), 0)

    def _emit(self, event, **payload):
        if self.bus is not None:
            self.bus.emit(event, **payload)

    # -- event-shaped notifications ---------------------------------------------
    def worker_lost(self, worker_id, label=None, exit_code=None):
        """A worker process died (or its pool broke)."""
        self.note("worker_losses")
        self._emit("worker_lost", worker=worker_id, shard=label,
                   exit_code=exit_code)

    def degraded(self, reason, workers_left):
        """The supervisor lost capacity (fewer workers, or inline)."""
        self.note("degraded")
        self._emit("degraded", reason=reason, workers=workers_left)

    def requeue(self, label, slice_index, reason):
        """Re-dispatch without charging the shard a failure — used when a
        task is merely *suspected* lost (e.g. it was unclaimed when a
        worker died before its claim message flushed).  Re-running is
        idempotent, so over-requeueing is waste, never corruption."""
        self.note("requeues")
        self.note("redispatches")
        self._emit("redispatch", shard=label, slice_index=slice_index,
                   attempt=self.attempts_for(label, slice_index),
                   reason=reason, backoff_s=0.0)

    # -- the decision -----------------------------------------------------------
    def record_failure(self, label, *, slice_index=0, shard_index=0,
                       reason="failure"):
        """Charge one failure; returns ``(action, backoff_seconds)`` where
        action is :data:`RETRY` or :data:`QUARANTINE`."""
        self.note("failures")
        key = (label, slice_index)
        attempts = self.attempts.get(key, 0) + 1
        self.attempts[key] = attempts
        total = self.total_failures.get(label, 0) + 1
        self.total_failures[label] = total
        self.last_error[label] = reason
        policy = self.policy
        exhausted = attempts > policy.max_retries
        poisoned = (policy.quarantine_after is not None
                    and total >= policy.quarantine_after)
        if exhausted or poisoned:
            self.health[label] = "quarantined"
            self.note("quarantines")
            self._emit("quarantine", shard=label, slice_index=slice_index,
                       reason=reason, attempts=attempts, total_failures=total)
            return self.QUARANTINE, 0.0
        self.note("redispatches")
        backoff = policy.backoff_s(attempts, shard_index)
        self._emit("redispatch", shard=label, slice_index=slice_index,
                   attempt=attempts, reason=reason, backoff_s=backoff)
        return self.RETRY, backoff

    # -- reporting --------------------------------------------------------------
    def stats(self):
        counters = asdict(self.counters)
        extra = counters.pop("extra")
        counters.update(extra)
        return {
            "counters": dict(sorted(counters.items())),
            "policy": self.policy.to_dict(),
            "quarantined": sorted(label for label, health in self.health.items()
                                  if health == "quarantined"),
            "last_error": dict(sorted(self.last_error.items())),
        }
