"""Campaign event bus: observers replace driver-loop special cases.

A :class:`CampaignSession` emits a small, fixed vocabulary of events while
it runs; reporting, plotting, and bug triage subscribe instead of poking
at the session's internals after the fact.  Events:

* ``iteration`` — after every iteration; payload carries the session, the
  generated :class:`~repro.fuzzer.blocks.Iteration`, the raw
  :class:`~repro.harness.runner.RunResult`, and the recorded
  :class:`~repro.campaign.session.IterationOutcome`.
* ``new_coverage`` — only when the iteration found new coverage points.
* ``mismatch`` — a DUT/REF divergence was flagged by the checker.
* ``milestone`` — coarse campaign landmarks (``campaign_start``,
  ``coverage_target``, ``bug_triggered``, ``shard_done``, ...); payload
  always carries ``kind``.

Subscribers are called synchronously, in subscription order, on the
thread that runs the iteration — handlers must be cheap and must not
re-enter the session.  ``subscribe`` returns an unsubscribe callable so
short-lived observers (a figure driver collecting a histogram) can detach
cleanly.
"""


class EventBus:
    """Synchronous publish/subscribe hub for campaign events."""

    EVENTS = ("iteration", "new_coverage", "mismatch", "milestone")

    def __init__(self):
        self._handlers = {event: [] for event in self.EVENTS}
        self.emitted = {event: 0 for event in self.EVENTS}

    # -- subscription -----------------------------------------------------------
    def subscribe(self, event, handler):
        """Register ``handler`` for ``event``; returns an unsubscribe
        callable (idempotent)."""
        if event not in self._handlers:
            raise ValueError(
                f"unknown event {event!r} (expected one of {self.EVENTS})"
            )
        handlers = self._handlers[event]
        handlers.append(handler)

        def unsubscribe():
            if handler in handlers:
                handlers.remove(handler)

        return unsubscribe

    # Decorator-friendly aliases: bus.on_iteration(fn) or @bus.on_iteration.
    def on_iteration(self, handler):
        self.subscribe("iteration", handler)
        return handler

    def on_new_coverage(self, handler):
        self.subscribe("new_coverage", handler)
        return handler

    def on_mismatch(self, handler):
        self.subscribe("mismatch", handler)
        return handler

    def on_milestone(self, handler):
        self.subscribe("milestone", handler)
        return handler

    # -- emission ---------------------------------------------------------------
    def emit(self, event, **payload):
        """Dispatch ``payload`` to every handler subscribed to ``event``."""
        self.emitted[event] += 1
        # Copy: a handler may unsubscribe (itself or others) mid-dispatch.
        for handler in list(self._handlers[event]):
            handler(**payload)

    def milestone(self, kind, **payload):
        """Shorthand for ``emit("milestone", kind=kind, ...)``."""
        self.emit("milestone", kind=kind, **payload)

    def handler_count(self, event=None):
        if event is not None:
            return len(self._handlers[event])
        return sum(len(handlers) for handlers in self._handlers.values())
