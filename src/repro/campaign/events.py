"""Campaign event bus: observers replace driver-loop special cases.

A :class:`CampaignSession` emits a small, fixed vocabulary of events while
it runs; reporting, plotting, and bug triage subscribe instead of poking
at the session's internals after the fact.  Events:

* ``iteration`` — after every iteration; payload carries the session, the
  generated :class:`~repro.fuzzer.blocks.Iteration`, the raw
  :class:`~repro.harness.runner.RunResult`, and the recorded
  :class:`~repro.campaign.session.IterationOutcome`.
* ``new_coverage`` — only when the iteration found new coverage points.
* ``mismatch`` — a DUT/REF divergence was flagged by the checker.
* ``milestone`` — coarse campaign landmarks (``campaign_start``,
  ``coverage_target``, ``bug_triggered``, ``shard_done``, ...); payload
  always carries ``kind``.

Robustness events, published by the fault-tolerant backends
(:mod:`repro.campaign.resilience`):

* ``worker_lost`` — a worker process died or its pool broke; payload
  carries ``worker``, ``shard`` (may be None), ``exit_code``.
* ``redispatch`` — a shard slice is being re-dispatched from its last
  good checkpoint; payload carries ``shard``, ``slice_index``,
  ``attempt``, ``reason``, ``backoff_s``.
* ``quarantine`` — a shard exhausted its retry budget and was parked;
  payload carries ``shard``, ``slice_index``, ``reason``, ``attempts``,
  ``total_failures``.
* ``degraded`` — the supervisor lost capacity (fewer workers, or fell
  back to in-process execution); payload carries ``reason``, ``workers``.

Remote events relayed across processes by the supervised queue backend
are re-emitted on the orchestrator's bus with ``remote=True``,
``shard=<label>``, ``session=None``, and JSON-shaped payloads (see
:mod:`repro.campaign.queue_worker`).

Subscribers are called synchronously, in subscription order, on the
thread that runs the iteration — handlers must be cheap and must not
re-enter the session.  ``subscribe`` returns an unsubscribe callable so
short-lived observers (a figure driver collecting a histogram) can detach
cleanly.

Emission is engineered for the zero-subscriber case: ``publish``/``emit``
on a topic with no handlers is a counter bump and one cached-flag check —
sessions in a tight campaign loop pay nothing for events nobody listens
to.  For handlers that do real I/O (streaming shard reports to disk), the
:class:`BufferedSink` and :class:`AsyncSink` wrappers decouple the
iteration loop from the sink's latency — the ROADMAP's "event-bus
backpressure" item.
"""

import queue
import threading


class EventBus:
    """Synchronous publish/subscribe hub for campaign events."""

    EVENTS = ("iteration", "new_coverage", "mismatch", "milestone",
              "worker_lost", "redispatch", "quarantine", "degraded")

    def __init__(self):
        self._handlers = {event: [] for event in self.EVENTS}
        self.emitted = {event: 0 for event in self.EVENTS}
        # Cached per-event "anyone listening?" flags: the hot publish path
        # checks one dict entry instead of taking a len() of the handler
        # list; maintained by subscribe/unsubscribe.
        self._active = {event: False for event in self.EVENTS}

    # -- subscription -----------------------------------------------------------
    def subscribe(self, event, handler):
        """Register ``handler`` for ``event``; returns an unsubscribe
        callable (idempotent)."""
        if event not in self._handlers:
            raise ValueError(
                f"unknown event {event!r} (expected one of {self.EVENTS})"
            )
        handlers = self._handlers[event]
        handlers.append(handler)
        self._active[event] = True

        def unsubscribe():
            if handler in handlers:
                handlers.remove(handler)
                self._active[event] = bool(handlers)

        return unsubscribe

    def has_subscribers(self, event):
        """Cheap check a producer can use to skip payload construction."""
        return self._active[event]

    # Decorator-friendly aliases: bus.on_iteration(fn) or @bus.on_iteration.
    def on_iteration(self, handler):
        self.subscribe("iteration", handler)
        return handler

    def on_new_coverage(self, handler):
        self.subscribe("new_coverage", handler)
        return handler

    def on_mismatch(self, handler):
        self.subscribe("mismatch", handler)
        return handler

    def on_milestone(self, handler):
        self.subscribe("milestone", handler)
        return handler

    def on_worker_lost(self, handler):
        self.subscribe("worker_lost", handler)
        return handler

    def on_redispatch(self, handler):
        self.subscribe("redispatch", handler)
        return handler

    def on_quarantine(self, handler):
        self.subscribe("quarantine", handler)
        return handler

    def on_degraded(self, handler):
        self.subscribe("degraded", handler)
        return handler

    # -- emission ---------------------------------------------------------------
    def emit(self, event, **payload):
        """Dispatch ``payload`` to every handler subscribed to ``event``.

        Near-zero with no subscribers: one counter bump, one flag check.
        """
        self.emitted[event] += 1
        if not self._active[event]:
            return
        # Copy: a handler may unsubscribe (itself or others) mid-dispatch.
        for handler in list(self._handlers[event]):
            handler(**payload)

    # ``publish`` is the preferred producer-facing name; ``emit`` remains
    # for compatibility with PR-1-era callers.
    publish = emit

    def milestone(self, kind, **payload):
        """Shorthand for ``emit("milestone", kind=kind, ...)``."""
        self.emit("milestone", kind=kind, **payload)

    def handler_count(self, event=None):
        if event is not None:
            return len(self._handlers[event])
        return sum(len(handlers) for handlers in self._handlers.values())


class BufferedSink:
    """Batches events in memory and flushes them in chunks.

    Subscribe its :meth:`push` to any event; ``flush_fn`` receives a list
    of payload dicts whenever ``capacity`` events have accumulated (and on
    :meth:`flush`/:meth:`close`).  This absorbs bursty event traffic —
    e.g. streaming per-iteration shard reports to disk in 512-row chunks
    instead of one write per iteration.
    """

    def __init__(self, flush_fn, capacity=512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.flush_fn = flush_fn
        self.capacity = capacity
        self._buffer = []
        self.flushes = 0

    def push(self, **payload):
        """Handler-compatible entry point (subscribe this)."""
        self._buffer.append(payload)
        if len(self._buffer) >= self.capacity:
            self.flush()

    def flush(self):
        """Hand the buffered payloads to ``flush_fn`` (no-op if empty)."""
        if not self._buffer:
            return 0
        batch = self._buffer
        self._buffer = []
        self.flush_fn(batch)
        self.flushes += 1
        return len(batch)

    def close(self):
        self.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __len__(self):
        return len(self._buffer)


class AsyncSink:
    """Hands events to a worker thread so slow consumers never stall the
    iteration loop (the event-bus backpressure answer for sinks that do
    real I/O).

    Subscribe its :meth:`push`.  Payloads go into a bounded queue drained
    by a daemon thread running ``consume_fn(payload)``; when the queue is
    full the oldest payload is dropped (and counted in ``dropped``) so the
    producer never blocks — campaign progress is never hostage to a sink.
    A ``consume_fn`` exception is counted in ``errors`` and the worker
    keeps draining (a flaky sink must not silently kill event delivery).
    :meth:`close` drains outstanding events and joins the worker.
    """

    _STOP = object()

    def __init__(self, consume_fn, max_pending=1024):
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.consume_fn = consume_fn
        self.dropped = 0
        self.consumed = 0
        self.errors = 0
        self._queue = queue.Queue(maxsize=max_pending)
        self._worker = threading.Thread(target=self._drain, daemon=True)
        self._closed = False
        self._worker.start()

    def push(self, **payload):
        """Handler-compatible entry point (subscribe this)."""
        if self._closed:
            raise RuntimeError("AsyncSink is closed")
        while True:
            try:
                self._queue.put_nowait(payload)
                return
            except queue.Full:
                # Shed the oldest event instead of stalling the campaign.
                try:
                    self._queue.get_nowait()
                    self.dropped += 1
                except queue.Empty:
                    continue

    def _drain(self):
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            try:
                self.consume_fn(item)
            except Exception:  # noqa: BLE001 — sink faults must not kill delivery
                self.errors += 1
            finally:
                self.consumed += 1

    def close(self, timeout=10.0):
        """Flush outstanding events and stop the worker."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(self._STOP)
        self._worker.join(timeout=timeout)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
