"""Pluggable execution backends: how an orchestrator advances its shards.

PR 1's orchestrator advanced every shard inline, single-threaded.  The
scheduling *policy* (batched round-robin on a shared virtual-time axis)
is unchanged, but the *mechanism* is now a backend behind the
:data:`BACKENDS` registry:

* :class:`SerialBackend` — the extracted in-process loops, behaviour
  identical to PR 1 bit for bit;
* :class:`ProcessPoolBackend` — ships each shard to a worker process as a
  :class:`~repro.campaign.checkpoint.CampaignCheckpoint`, runs the time
  slice remotely, and merges the returned checkpoints back into the
  orchestrator's sessions in deterministic label order at each slice
  frontier.  Shards share no mutable state, so per-shard results match
  the serial backend bit for bit; only wall-clock changes.

Per-iteration events happen wherever the iteration runs: with the pool
backend they fire on the worker's private bus and are *not* forwarded to
the orchestrator's bus — subscribers there still see the orchestration
milestones (``time_slice``, ``shard_done``).  Custom fuzzers/cores/
instrumentations registered by the parent are visible to workers on
fork-capable platforms (Linux); on spawn-only platforms workers know the
built-ins plus whatever registers at import time.
"""

import os

from repro.campaign.checkpoint import CampaignCheckpoint
from repro.registry import Registry

BACKENDS = Registry("execution backend")


def register_backend(name, backend_class=None, replace=False):
    """Register an :class:`ExecutionBackend` class; usable directly or as
    a class decorator."""
    return BACKENDS.register(name, backend_class, replace=replace)


def resolve_backend(backend):
    """Normalize ``backend`` (None / name / class / instance) to an instance."""
    if backend is None:
        backend = "serial"
    if isinstance(backend, str):
        backend = BACKENDS.get(backend)
    if isinstance(backend, type):
        backend = backend()
    return backend


class ExecutionBackend:
    """How shards advance.  Backends receive the orchestrator and drive its
    sessions; they must preserve the invariant that each shard's results
    are identical to running that session alone for the same budget."""

    name = "base"

    def run_for_virtual_time(self, orchestrator, budget_seconds,
                             max_iterations=None, slices=8):
        raise NotImplementedError

    def run_iterations(self, orchestrator, count, batch=16):
        raise NotImplementedError


def _slice_frontiers(budget_seconds, slices):
    """The shared virtual-time frontiers; the last one is exactly the
    budget (no floating-point shortfall on the final slice)."""
    slices = max(1, int(slices))
    return [
        budget_seconds if step == slices else budget_seconds * step / slices
        for step in range(1, slices + 1)
    ]


@register_backend("serial")
class SerialBackend(ExecutionBackend):
    """In-process batched round-robin (PR 1's inline loops, extracted)."""

    name = "serial"

    def run_for_virtual_time(self, orchestrator, budget_seconds,
                             max_iterations=None, slices=8):
        frontiers = _slice_frontiers(budget_seconds, slices)
        for step, frontier in enumerate(frontiers, start=1):
            for label, session in orchestrator.sessions.items():
                session.run_for_virtual_time(frontier,
                                             max_iterations=max_iterations)
            orchestrator.bus.milestone(
                "time_slice", orchestrator=orchestrator, frontier=frontier,
                step=step, slices=len(frontiers))
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)

    def run_iterations(self, orchestrator, count, batch=16):
        remaining = {label: count for label in orchestrator.sessions}
        while any(remaining.values()):
            for label, session in orchestrator.sessions.items():
                for _ in range(min(batch, remaining[label])):
                    session.run_iteration()
                    remaining[label] -= 1
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)


# ---------------------------------------------------------------------------
# Process-pool backend
# ---------------------------------------------------------------------------
# One instrumentation cache per worker process: checkpoints restored for
# successive time slices of the same grid rebuild identical layouts, and
# layouts are read-only after construction (the same sharing property the
# orchestrator's own cache relies on).
_worker_cache = None


def _advance_shard(payload):
    """Worker entry point: checkpoint in, advanced checkpoint out.

    Runs in a separate process; everything crossing the boundary is plain
    JSON-shaped data, so results cannot depend on pickling object graphs.
    """
    global _worker_cache
    if _worker_cache is None:
        from repro.campaign.cache import InstrumentationCache

        _worker_cache = InstrumentationCache()
    checkpoint = CampaignCheckpoint.from_dict(payload["checkpoint"])
    session = checkpoint.restore(cache=_worker_cache)
    command = payload["command"]
    if command == "run_for_virtual_time":
        session.run_for_virtual_time(payload["frontier"],
                                     max_iterations=payload["max_iterations"])
    elif command == "run_iterations":
        session.run_iterations(payload["count"])
    else:
        raise ValueError(f"unknown shard command {command!r}")
    return CampaignCheckpoint.capture(session).to_dict()


@register_backend("process-pool")
class ProcessPoolBackend(ExecutionBackend):
    """Advance shards in worker processes, merging at slice frontiers.

    Each shard travels as a ``(spec, state)`` checkpoint; the worker
    restores it, runs the slice, and returns the advanced checkpoint.
    Results are merged back into the orchestrator's sessions in label
    order, so reports, coverage series, and bus-milestone ordering are
    deterministic regardless of worker completion order.
    """

    name = "process-pool"

    def __init__(self, processes=None, mp_context=None):
        self.processes = processes
        self._mp_context = mp_context

    def _make_pool(self, shard_count):
        from concurrent.futures import ProcessPoolExecutor

        context = self._mp_context
        if context is None:
            import multiprocessing

            # Prefer fork where available: workers inherit third-party
            # registry entries (custom fuzzers/cores/instrumentations).
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
        workers = self.processes or min(shard_count,
                                        max(1, os.cpu_count() or 1))
        return ProcessPoolExecutor(max_workers=max(1, workers),
                                   mp_context=context)

    def _dispatch_and_merge(self, orchestrator, pool, payloads):
        """Submit one payload per shard; merge results in label order."""
        futures = {
            label: pool.submit(_advance_shard, payload)
            for label, payload in payloads.items()
        }
        for label in orchestrator.labels:
            future = futures.get(label)
            if future is None:
                continue
            advanced = CampaignCheckpoint.from_dict(future.result())
            orchestrator.sessions[label].load_state(advanced.state)

    def run_for_virtual_time(self, orchestrator, budget_seconds,
                             max_iterations=None, slices=8):
        frontiers = _slice_frontiers(budget_seconds, slices)
        with self._make_pool(len(orchestrator.sessions)) as pool:
            for step, frontier in enumerate(frontiers, start=1):
                payloads = {}
                for label, session in orchestrator.sessions.items():
                    if session.clock.seconds >= frontier:
                        continue  # already past: the worker would no-op
                    if (max_iterations is not None
                            and session.iterations >= max_iterations):
                        continue
                    payloads[label] = {
                        "command": "run_for_virtual_time",
                        "frontier": frontier,
                        "max_iterations": max_iterations,
                        "checkpoint":
                            CampaignCheckpoint.capture(session).to_dict(),
                    }
                self._dispatch_and_merge(orchestrator, pool, payloads)
                orchestrator.bus.milestone(
                    "time_slice", orchestrator=orchestrator,
                    frontier=frontier, step=step, slices=len(frontiers))
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)

    def run_iterations(self, orchestrator, count, batch=16):
        # Round-robin batching only matters for event interleaving inside
        # one process; across processes each shard runs its full budget in
        # one dispatch (identical results, one checkpoint round-trip).
        with self._make_pool(len(orchestrator.sessions)) as pool:
            payloads = {
                label: {
                    "command": "run_iterations",
                    "count": count,
                    "checkpoint":
                        CampaignCheckpoint.capture(session).to_dict(),
                }
                for label, session in orchestrator.sessions.items()
            }
            self._dispatch_and_merge(orchestrator, pool, payloads)
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)
