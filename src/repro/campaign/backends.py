"""Pluggable execution backends: how an orchestrator advances its shards.

PR 1's orchestrator advanced every shard inline, single-threaded.  The
scheduling *policy* (batched round-robin on a shared virtual-time axis)
is unchanged, but the *mechanism* is now a backend behind the
:data:`BACKENDS` registry:

* :class:`SerialBackend` — the extracted in-process loops, behaviour
  identical to PR 1 bit for bit;
* :class:`ProcessPoolBackend` — ships each shard to a worker process as a
  :class:`~repro.campaign.checkpoint.CampaignCheckpoint`, runs the time
  slice remotely, and merges the returned checkpoints back into the
  orchestrator's sessions in deterministic label order at each slice
  frontier.  Shards share no mutable state, so per-shard results match
  the serial backend bit for bit; only wall-clock changes.
* :class:`SupervisedQueueBackend` — long-running worker processes
  consuming shard-slice tasks from a multiprocessing queue, supervised
  with heartbeats: a dead, hung, or silent worker is respawned and its
  shard's last good checkpoint re-dispatched (idempotent — the re-run
  slice merges bit-identically); a shard that keeps failing is
  quarantined instead of aborting the grid; when workers cannot be
  (re)spawned at all the supervisor degrades to in-process execution.
  Workers forward session events over a relay queue, so grid-wide
  subscribers on the orchestrator's bus observe remote iterations
  (re-emitted with ``remote=True``, ``shard=<label>``, and JSON-shaped
  payloads — see :mod:`repro.campaign.queue_worker`).

Both parallel backends share one recovery code path
(:class:`~repro.campaign.resilience.ShardRecovery` driven by a
:class:`~repro.campaign.resilience.FaultPolicy`) and accept a
:class:`~repro.campaign.resilience.FaultInjector` for reproducible chaos
testing.  With the pool backend, per-iteration events stay on the
worker's private bus (no relay); custom fuzzers/cores/instrumentations
registered by the parent are visible to workers on fork-capable
platforms (Linux); on spawn-only platforms workers know the built-ins
plus whatever registers at import time.
"""

import os
import queue
import time  # analyze: ignore[DET001] supervision deadlines/backoff; never feeds campaign state

from repro.campaign.checkpoint import CampaignCheckpoint, CheckpointError
from repro.campaign.queue_worker import execute_task, worker_main
from repro.campaign.resilience import FaultPolicy, ShardRecovery
from repro.registry import Registry

BACKENDS = Registry("execution backend")


def register_backend(name, backend_class=None, replace=False):
    """Register an :class:`ExecutionBackend` class; usable directly or as
    a class decorator."""
    return BACKENDS.register(name, backend_class, replace=replace)


def resolve_backend(backend):
    """Normalize ``backend`` (None / name / class / instance) to an instance."""
    if backend is None:
        backend = "serial"
    if isinstance(backend, str):
        backend = BACKENDS.get(backend)
    if isinstance(backend, type):
        backend = backend()
    return backend


class ExecutionBackend:
    """How shards advance.  Backends receive the orchestrator and drive its
    sessions; they must preserve the invariant that each shard's results
    are identical to running that session alone for the same budget."""

    name = "base"

    def run_for_virtual_time(self, orchestrator, budget_seconds,
                             max_iterations=None, slices=8):
        raise NotImplementedError

    def run_iterations(self, orchestrator, count, batch=16):
        raise NotImplementedError


def _slice_frontiers(budget_seconds, slices):
    """The shared virtual-time frontiers; the last one is exactly the
    budget (no floating-point shortfall on the final slice)."""
    slices = max(1, int(slices))
    return [
        budget_seconds if step == slices else budget_seconds * step / slices
        for step in range(1, slices + 1)
    ]


def _shard_health(orchestrator):
    """The orchestrator's shard-health mapping (tolerates bare test
    doubles that predate it)."""
    return getattr(orchestrator, "shard_health", None)


def _eligible(orchestrator, frontier, max_iterations):
    """(label, shard_index, session) triples that still need this slice."""
    health = _shard_health(orchestrator) or {}
    rows = []
    for shard_index, (label, session) in enumerate(orchestrator.sessions.items()):
        if health.get(label) == "quarantined":
            continue
        if frontier is not None and session.clock.seconds >= frontier:
            continue  # already past: the worker would no-op
        if (max_iterations is not None
                and session.iterations >= max_iterations):
            continue
        rows.append((label, shard_index, session))
    return rows


def _make_task(label, shard_index, session, command, *, frontier=None,
               max_iterations=None, count=None, relay=()):
    """One shard-slice unit of work, as plain JSON-shaped data."""
    task = {
        "label": label,
        "shard_index": shard_index,
        "command": command,
        "checkpoint_json": CampaignCheckpoint.capture(session).to_json(),
    }
    if relay:
        task["relay"] = list(relay)
    if command == "run_for_virtual_time":
        task["frontier"] = frontier
        task["max_iterations"] = max_iterations
    else:
        task["count"] = count
    return task


@register_backend("serial")
class SerialBackend(ExecutionBackend):
    """In-process batched round-robin (PR 1's inline loops, extracted)."""

    name = "serial"

    def run_for_virtual_time(self, orchestrator, budget_seconds,
                             max_iterations=None, slices=8):
        frontiers = _slice_frontiers(budget_seconds, slices)
        for step, frontier in enumerate(frontiers, start=1):
            for label, session in orchestrator.sessions.items():
                session.run_for_virtual_time(frontier,
                                             max_iterations=max_iterations)
            orchestrator.bus.milestone(
                "time_slice", orchestrator=orchestrator, frontier=frontier,
                step=step, slices=len(frontiers))
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)

    def run_iterations(self, orchestrator, count, batch=16):
        remaining = {label: count for label in orchestrator.sessions}
        while any(remaining.values()):
            for label, session in orchestrator.sessions.items():
                for _ in range(min(batch, remaining[label])):
                    session.run_iteration()
                    remaining[label] -= 1
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)


def _preferred_context(mp_context):
    """Fork where available: workers inherit third-party registry
    entries (custom fuzzers/cores/instrumentations)."""
    if mp_context is not None:
        return mp_context
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# ---------------------------------------------------------------------------
# Process-pool backend
# ---------------------------------------------------------------------------
# One instrumentation cache per worker process: checkpoints restored for
# successive time slices of the same grid rebuild identical layouts, and
# layouts are read-only after construction (the same sharing property the
# orchestrator's own cache relies on).
_worker_cache = None


def _advance_shard(task):
    """Pool worker entry point: task in, advanced-checkpoint JSON out.

    Runs in a separate process; everything crossing the boundary is plain
    JSON-shaped data, so results cannot depend on pickling object graphs.
    Injected-fault directives are honoured at their stages (a pre-stage
    ``kill-worker`` hard-exits here, which the parent sees as a broken
    pool); a dropped result is reported as ``{"dropped": True}`` — the
    pool-shaped analogue of silence, since a future must resolve.
    """
    global _worker_cache
    if _worker_cache is None:
        from repro.campaign.cache import InstrumentationCache

        _worker_cache = InstrumentationCache()
    from repro.campaign.resilience import apply_fault_directives

    context = {"task": task, "drop": False, "checkpoint_json": None}
    directives = task.get("faults") or ()
    apply_fault_directives(directives, "pre", context)
    context["checkpoint_json"] = execute_task(task, cache=_worker_cache)
    apply_fault_directives(directives, "post", context)
    apply_fault_directives(directives, "result", context)
    if context["drop"]:
        return {"dropped": True}
    return {"checkpoint_json": context["checkpoint_json"]}


@register_backend("process-pool")
class ProcessPoolBackend(ExecutionBackend):
    """Advance shards in worker processes, merging at slice frontiers.

    Each shard travels as a ``(spec, state)`` checkpoint; the worker
    restores it, runs the slice, and returns the advanced checkpoint.
    Results are merged back into the orchestrator's sessions in label
    order, so reports, coverage series, and bus-milestone ordering are
    deterministic regardless of worker completion order.

    Failure handling shares the supervised backend's recovery path: a
    slice that times out (``policy.slice_timeout_s``), returns a corrupt
    checkpoint, or dies with its worker is re-dispatched from the same
    last-good checkpoint with deterministic backoff, up to
    ``policy.max_retries`` — then the shard is quarantined and the rest
    of the grid continues.  A broken pool is rebuilt in place.
    """

    name = "process-pool"

    def __init__(self, processes=None, mp_context=None, policy=None,
                 injector=None):
        self.processes = processes
        self._mp_context = mp_context
        self.policy = policy or FaultPolicy()
        self.injector = injector
        self._recovery = None

    def resilience_stats(self):
        """Retry/quarantine counters of the most recent run (None before
        any run); surfaced by ``orchestrator.report()``."""
        if self._recovery is None:
            return None
        stats = self._recovery.stats()
        if self.injector is not None:
            stats["faults"] = self.injector.stats()
        return stats

    def _make_pool(self, shard_count):
        from concurrent.futures import ProcessPoolExecutor

        context = _preferred_context(self._mp_context)
        workers = self.processes or min(shard_count,
                                        max(1, os.cpu_count() or 1))
        return ProcessPoolExecutor(max_workers=max(1, workers),
                                   mp_context=context)

    def _dispatch_and_merge(self, orchestrator, pool, tasks, recovery,
                            slice_index):
        """Submit one task per shard; retry/quarantine failures; merge
        survivors in label order.  Returns the (possibly rebuilt) pool."""
        from concurrent.futures.process import BrokenProcessPool

        pending = dict(tasks)
        merged = {}
        while pending:
            submitted = {}
            for label in sorted(pending):
                task = dict(pending[label])
                attempt = recovery.attempts_for(label, slice_index)
                task["attempt"] = attempt
                if self.injector is not None:
                    faults = self.injector.faults_for(
                        task["shard_index"], slice_index, attempt)
                    if faults:
                        task["faults"] = faults
                        recovery.note("faults_injected", len(faults))
                submitted[label] = pool.submit(_advance_shard, task)
            failed = []
            broken = False
            for label in sorted(submitted):
                future = submitted[label]
                if broken:
                    failed.append((label, "worker-lost"))
                    continue
                try:
                    result = future.result(timeout=self.policy.slice_timeout_s)
                    if result.get("dropped"):
                        recovery.note("dropped_results")
                        failed.append((label, "dropped-result"))
                        continue
                    advanced = CampaignCheckpoint.from_json(
                        result["checkpoint_json"])
                except CheckpointError:
                    recovery.note("corrupt_checkpoints")
                    failed.append((label, "corrupt-checkpoint"))
                except TimeoutError:
                    future.cancel()
                    recovery.note("timeouts")
                    failed.append((label, "timeout"))
                except BrokenProcessPool:
                    broken = True
                    failed.append((label, "worker-lost"))
                except Exception as exc:
                    recovery.note("worker_errors")
                    failed.append((label, f"worker-error: {exc}"))
                else:
                    merged[label] = advanced
                    pending.pop(label)
            if broken:
                recovery.worker_lost(worker_id=None)
                pool.shutdown(wait=False)
                pool = self._make_pool(len(orchestrator.sessions))
            for label, reason in failed:
                task = pending.get(label)
                if task is None:
                    continue
                action, backoff = recovery.record_failure(
                    label, slice_index=slice_index,
                    shard_index=task["shard_index"], reason=reason)
                if action == ShardRecovery.QUARANTINE:
                    pending.pop(label)
                elif backoff:
                    time.sleep(backoff)
        for label in orchestrator.labels:
            if label in merged:
                orchestrator.sessions[label].load_state(merged[label].state)
        return pool

    def run_for_virtual_time(self, orchestrator, budget_seconds,
                             max_iterations=None, slices=8):
        frontiers = _slice_frontiers(budget_seconds, slices)
        recovery = self._recovery = ShardRecovery(
            self.policy, bus=orchestrator.bus,
            health=_shard_health(orchestrator))
        pool = self._make_pool(len(orchestrator.sessions))
        try:
            for step, frontier in enumerate(frontiers, start=1):
                tasks = {
                    label: _make_task(label, shard_index, session,
                                      "run_for_virtual_time",
                                      frontier=frontier,
                                      max_iterations=max_iterations)
                    for label, shard_index, session in _eligible(
                        orchestrator, frontier, max_iterations)
                }
                pool = self._dispatch_and_merge(orchestrator, pool, tasks,
                                                recovery, step - 1)
                orchestrator.bus.milestone(
                    "time_slice", orchestrator=orchestrator,
                    frontier=frontier, step=step, slices=len(frontiers))
        finally:
            pool.shutdown()
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)

    def run_iterations(self, orchestrator, count, batch=16):
        # Round-robin batching only matters for event interleaving inside
        # one process; across processes each shard runs its full budget in
        # one dispatch (identical results, one checkpoint round-trip).
        recovery = self._recovery = ShardRecovery(
            self.policy, bus=orchestrator.bus,
            health=_shard_health(orchestrator))
        pool = self._make_pool(len(orchestrator.sessions))
        try:
            tasks = {
                label: _make_task(label, shard_index, session,
                                  "run_iterations", count=count)
                for label, shard_index, session in _eligible(
                    orchestrator, None, None)
            }
            self._dispatch_and_merge(orchestrator, pool, tasks, recovery, 0)
        finally:
            pool.shutdown()
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)


# ---------------------------------------------------------------------------
# Supervised work-queue backend
# ---------------------------------------------------------------------------
class _Supervisor:
    """One backend run's worker fleet, queues, and supervision loop.

    The failure/recovery state machine per task: *dispatched* →
    *claimed* (worker announced pickup) → *result* | *error* | *timeout*
    | *worker lost*.  Every non-result outcome routes through
    :meth:`ShardRecovery.record_failure`, which either re-dispatches the
    same last-good checkpoint (after deterministic backoff) or
    quarantines the shard.  Worker loss triggers a respawn; when the
    respawn budget is exhausted or spawning fails outright, the
    supervisor emits ``degraded`` and falls back to in-process execution
    of the remaining tasks — same :func:`execute_task` code path, so
    results stay bit-identical.
    """

    POLL_S = 0.05

    def __init__(self, backend, orchestrator):
        self.backend = backend
        self.orchestrator = orchestrator
        self.policy = backend.policy
        self.injector = backend.injector
        self.recovery = ShardRecovery(self.policy, bus=orchestrator.bus,
                                      health=_shard_health(orchestrator))
        self.inline = False
        self._context = None
        self._workers = {}     # worker_id -> Process
        self._last_beat = {}   # worker_id -> monotonic seconds
        self._claims = {}      # worker_id -> task_id
        self._stale = set()    # task_ids whose late results must be ignored
        self._next_task_id = 0
        self._next_worker_id = 0
        self._respawns = 0
        try:
            context = _preferred_context(backend._mp_context)
            self.task_queue = context.Queue()
            self.result_queue = context.Queue()
            self.relay_queue = context.Queue(maxsize=4096)
            self._context = context
        except Exception as exc:
            self._degrade(f"multiprocessing unavailable: {exc}")
            return
        shard_count = len(orchestrator.sessions)
        target = backend.workers or min(shard_count,
                                        max(1, os.cpu_count() or 1))
        self._target_workers = max(1, target)
        for _ in range(self._target_workers):
            if not self._spawn_worker():
                break
        if not self._workers:
            self._degrade("no workers could be spawned")

    # -- fleet ------------------------------------------------------------------
    def _spawn_worker(self):
        try:
            worker_id = self._next_worker_id
            process = self._context.Process(
                target=worker_main,
                args=(worker_id, self.task_queue, self.result_queue,
                      self.relay_queue),
                kwargs={"heartbeat_interval_s":
                        self.policy.heartbeat_interval_s},
                daemon=True, name=f"campaign-worker-{worker_id}")
            process.start()
        except Exception:
            self.recovery.note("respawn_failures")
            return False
        self._next_worker_id = worker_id + 1
        self._workers[worker_id] = process
        self._last_beat[worker_id] = time.monotonic()
        self.recovery.note("spawns")
        return True

    def _ensure_workers(self, outstanding):
        """Respawn toward the target while work is outstanding; shrink the
        target (degrading gracefully) when spawning keeps failing."""
        if self.inline or not outstanding:
            return
        while len(self._workers) < self._target_workers:
            if self._respawns >= self.policy.max_respawns:
                self._degrade("respawn budget exhausted")
                return
            self._respawns += 1
            self.recovery.note("respawns")
            if not self._spawn_worker():
                self._target_workers -= 1
                if self._target_workers <= 0 or not self._workers:
                    self._degrade("respawn kept failing")
                else:
                    self.recovery.degraded("respawn failed",
                                           workers_left=len(self._workers))
                return

    def _degrade(self, reason):
        """Fall back to in-process execution (the last resort: correctness
        is preserved — same execute_task path — at serial speed)."""
        self.inline = True
        self.recovery.degraded(reason, workers_left=len(self._workers))

    # -- dispatch ---------------------------------------------------------------
    def _dispatch(self, template, slice_index, attempt, pending):
        task = {key: value for key, value in template.items()
                if key not in ("task_id", "faults", "attempt")}
        task_id = self._next_task_id
        self._next_task_id += 1
        task["task_id"] = task_id
        task["attempt"] = attempt
        task["slice_index"] = slice_index
        if self.injector is not None:
            faults = self.injector.faults_for(task["shard_index"], slice_index,
                                              attempt)
            if faults:
                task["faults"] = faults
                self.recovery.note("faults_injected", len(faults))
        pending[task_id] = {"task": task, "worker": None, "claimed_at": None,
                            "enqueued_at": time.monotonic()}
        self.task_queue.put(task)

    def _fail_task(self, task_id, pending, delayed, slice_index, reason):
        record = pending.pop(task_id, None)
        if record is None:
            return
        self._stale.add(task_id)
        task = record["task"]
        label = task["label"]
        action, backoff = self.recovery.record_failure(
            label, slice_index=slice_index, shard_index=task["shard_index"],
            reason=reason)
        if action == ShardRecovery.QUARANTINE:
            return
        attempt = self.recovery.attempts_for(label, slice_index)
        delayed.append([time.monotonic() + backoff, task, attempt])

    def _requeue_unclaimed(self, pending, delayed, slice_index):
        """A worker died before claiming: any unclaimed task *might* have
        died with it (its claim message can be lost in the queue's feeder
        thread).  Re-dispatch them all without charging failures —
        re-running a slice is idempotent, so the worst case of a false
        suspicion is one wasted duplicate whose late twin is ignored."""
        for task_id, record in sorted(pending.items()):
            if record["worker"] is not None:
                continue
            pending.pop(task_id)
            self._stale.add(task_id)
            task = record["task"]
            self.recovery.requeue(task["label"], slice_index,
                                  "worker-lost-unclaimed")
            # attempt+1 suppresses first-attempt fault injection: the
            # directive that killed the worker must not fire forever.
            delayed.append([time.monotonic(), task, task["attempt"] + 1])

    # -- supervision loop -------------------------------------------------------
    def execute_slice(self, slice_index, templates):
        """Run one slice frontier's tasks to completion (or quarantine)
        and merge results into the orchestrator in label order."""
        results = {}
        if self.inline:
            for label in sorted(templates):
                self._run_inline(templates[label], slice_index, results)
        else:
            self._supervise(slice_index, templates, results)
        for label in self.orchestrator.labels:
            if label in results:
                self.orchestrator.sessions[label].load_state(results[label])

    def _supervise(self, slice_index, templates, results):
        pending = {}
        delayed = []  # [not_before, task-template, attempt]
        now = time.monotonic()
        for worker_id in self._last_beat:
            self._last_beat[worker_id] = now  # we weren't listening between slices
        for label in sorted(templates):
            self._dispatch(templates[label], slice_index, 0, pending)
        while pending or delayed:
            if self.inline:
                for task_id, record in sorted(pending.items()):
                    self._stale.add(task_id)
                    self._run_inline(record["task"], slice_index, results)
                for _, task, _ in delayed:
                    self._run_inline(task, slice_index, results)
                pending.clear()
                delayed.clear()
                break
            now = time.monotonic()
            ready = [entry for entry in delayed if now >= entry[0]]
            if ready:
                delayed[:] = [entry for entry in delayed if now < entry[0]]
                for _, task, attempt in ready:
                    self._dispatch(task, slice_index, attempt, pending)
            self._drain_relay()
            self._pump_results(pending, delayed, results, slice_index)
            self._reap_workers(pending, delayed, slice_index)
            self._check_heartbeats()
            self._check_deadlines(pending, delayed, slice_index)
            self._ensure_workers(pending or delayed)
        self._drain_relay()

    def _run_inline(self, template, slice_index, results):
        """Degraded-mode execution: same task, same code path, this
        process, fault directives ignored (chaos targets workers)."""
        label = template["label"]
        if self.recovery.health.get(label) == "quarantined":
            return
        task = {key: value for key, value in template.items()
                if key not in ("faults", "relay")}
        while True:
            self.recovery.note("inline_tasks")
            try:
                advanced = CampaignCheckpoint.from_json(execute_task(
                    task, cache=self.orchestrator.cache,
                    bus=self.orchestrator.bus))
                results[label] = advanced.state
                break
            except Exception as exc:
                action, backoff = self.recovery.record_failure(
                    label, slice_index=slice_index,
                    shard_index=task["shard_index"],
                    reason=f"inline-error: {exc}")
                if action == ShardRecovery.QUARANTINE:
                    break
                if backoff:
                    time.sleep(backoff)

    # -- message handling -------------------------------------------------------
    def _pump_results(self, pending, delayed, results, slice_index):
        try:
            message = self.result_queue.get(timeout=self.POLL_S)
        except queue.Empty:
            return
        self._handle_message(message, pending, delayed, results, slice_index)
        while True:
            try:
                message = self.result_queue.get_nowait()
            except queue.Empty:
                return
            self._handle_message(message, pending, delayed, results,
                                 slice_index)

    def _handle_message(self, message, pending, delayed, results, slice_index):
        worker_id = message.get("worker")
        if worker_id is not None:
            self._last_beat[worker_id] = time.monotonic()
        mtype = message.get("type")
        if mtype == "heartbeat":
            return
        task_id = message.get("task_id")
        if mtype == "claim":
            record = pending.get(task_id)
            if record is not None:
                record["worker"] = worker_id
                record["claimed_at"] = time.monotonic()
                self._claims[worker_id] = task_id
            return
        if task_id in self._stale or task_id not in pending:
            return  # late twin of a re-dispatched task; merges are idempotent
        record = pending[task_id]
        if self._claims.get(record["worker"]) == task_id:
            self._claims.pop(record["worker"], None)
        if mtype == "result":
            try:
                advanced = CampaignCheckpoint.from_json(
                    message["checkpoint_json"])
            except CheckpointError:
                self.recovery.note("corrupt_checkpoints")
                self._fail_task(task_id, pending, delayed, slice_index,
                                "corrupt-checkpoint")
                return
            results[record["task"]["label"]] = advanced.state
            pending.pop(task_id)
        elif mtype == "error":
            self.recovery.note("worker_errors")
            self._fail_task(task_id, pending, delayed, slice_index,
                            message.get("error", "worker-error"))

    # -- liveness ---------------------------------------------------------------
    def _reap_workers(self, pending, delayed, slice_index):
        for worker_id, process in list(self._workers.items()):
            if process.is_alive():
                continue
            process.join(timeout=0)
            self._workers.pop(worker_id)
            self._last_beat.pop(worker_id, None)
            task_id = self._claims.pop(worker_id, None)
            label = None
            if task_id in pending:
                label = pending[task_id]["task"]["label"]
            self.recovery.worker_lost(worker_id, label=label,
                                      exit_code=process.exitcode)
            if task_id is not None and task_id in pending:
                self._fail_task(task_id, pending, delayed, slice_index,
                                "worker-lost")
            else:
                # Died between picking a task up and claiming it: the
                # task may be gone from the queue with nobody to run it.
                self._requeue_unclaimed(pending, delayed, slice_index)

    def _check_heartbeats(self):
        """A worker silent past the heartbeat deadline is presumed wedged
        (beats flow from a daemon thread even mid-slice) and terminated;
        the reaper then handles it like any other death."""
        now = time.monotonic()
        for worker_id, last in list(self._last_beat.items()):
            if now - last <= self.policy.heartbeat_timeout_s:
                continue
            process = self._workers.get(worker_id)
            if process is None:
                continue
            self.recovery.note("heartbeat_losses")
            self._last_beat.pop(worker_id, None)  # terminate exactly once
            process.terminate()

    def _check_deadlines(self, pending, delayed, slice_index):
        now = time.monotonic()
        timeout = self.policy.slice_timeout_s
        for task_id, record in list(pending.items()):
            started = record["claimed_at"] or record["enqueued_at"]
            if now - started <= timeout:
                continue
            self.recovery.note("timeouts")
            worker_id = record["worker"]
            if worker_id is not None and worker_id in self._workers:
                # Whatever it is doing, it is not finishing this slice.
                self._claims.pop(worker_id, None)
                self._workers[worker_id].terminate()
            self._fail_task(task_id, pending, delayed, slice_index, "timeout")

    # -- event relay ------------------------------------------------------------
    def _drain_relay(self):
        if self._context is None:
            return
        bus = self.orchestrator.bus
        while True:
            try:
                message = self.relay_queue.get_nowait()
            except queue.Empty:
                return
            except (OSError, ValueError):
                return  # queue closed mid-shutdown
            payload = message.get("payload") or {}
            self.recovery.note("relay_events")
            bus.emit(message["event"], session=None, shard=message.get("shard"),
                     remote=True, **payload)

    # -- teardown ---------------------------------------------------------------
    def shutdown(self):
        if self._context is None:
            return
        for _ in self._workers:
            self.task_queue.put(None)
        deadline = time.monotonic() + 5.0
        for process in self._workers.values():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self._workers.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._workers.clear()
        self._drain_relay()
        for relay_queue in (self.task_queue, self.result_queue,
                            self.relay_queue):
            relay_queue.cancel_join_thread()
            relay_queue.close()


@register_backend("supervised-queue")
class SupervisedQueueBackend(ExecutionBackend):
    """Fault-tolerant work-queue execution with long-running workers.

    The ROADMAP's campaign-service backend: shard-slice tasks stream over
    a multiprocessing queue to a supervised worker fleet; worker death,
    heartbeat loss, and slice timeouts are survived by respawning and
    re-dispatching the shard's last good checkpoint (bit-identical by
    construction), poison shards are quarantined instead of aborting the
    grid, and session events are relayed back so grid-wide subscribers
    observe remote iterations.  ``relay_events`` selects which event
    topics are forwarded (only topics with subscribers on the
    orchestrator's bus at dispatch time are shipped)."""

    name = "supervised-queue"

    RELAY_EVENTS = ("iteration", "new_coverage", "mismatch", "milestone")

    def __init__(self, workers=None, policy=None, injector=None,
                 mp_context=None, relay_events=RELAY_EVENTS):
        self.workers = workers
        self.policy = policy or FaultPolicy()
        self.injector = injector
        self._mp_context = mp_context
        self.relay_events = tuple(relay_events)
        self._recovery = None

    def resilience_stats(self):
        """Retry/redispatch/quarantine counters of the most recent run
        (None before any run); surfaced by ``orchestrator.report()``."""
        if self._recovery is None:
            return None
        stats = self._recovery.stats()
        if self.injector is not None:
            stats["faults"] = self.injector.stats()
        return stats

    def _relay_wanted(self, orchestrator):
        return tuple(event for event in self.relay_events
                     if orchestrator.bus.has_subscribers(event))

    def run_for_virtual_time(self, orchestrator, budget_seconds,
                             max_iterations=None, slices=8):
        frontiers = _slice_frontiers(budget_seconds, slices)
        supervisor = _Supervisor(self, orchestrator)
        self._recovery = supervisor.recovery
        relay = self._relay_wanted(orchestrator)
        try:
            for step, frontier in enumerate(frontiers, start=1):
                templates = {
                    label: _make_task(label, shard_index, session,
                                      "run_for_virtual_time",
                                      frontier=frontier,
                                      max_iterations=max_iterations,
                                      relay=relay)
                    for label, shard_index, session in _eligible(
                        orchestrator, frontier, max_iterations)
                }
                supervisor.execute_slice(step - 1, templates)
                orchestrator.bus.milestone(
                    "time_slice", orchestrator=orchestrator,
                    frontier=frontier, step=step, slices=len(frontiers))
        finally:
            supervisor.shutdown()
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)

    def run_iterations(self, orchestrator, count, batch=16):
        supervisor = _Supervisor(self, orchestrator)
        self._recovery = supervisor.recovery
        relay = self._relay_wanted(orchestrator)
        try:
            templates = {
                label: _make_task(label, shard_index, session,
                                  "run_iterations", count=count, relay=relay)
                for label, shard_index, session in _eligible(
                    orchestrator, None, None)
            }
            supervisor.execute_slice(0, templates)
        finally:
            supervisor.shutdown()
        for label, session in orchestrator.sessions.items():
            orchestrator.bus.milestone("shard_done", orchestrator=orchestrator,
                                       shard=label, session=session)
