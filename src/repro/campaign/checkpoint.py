"""Campaign checkpoints: (spec, session state) bundles that survive JSON.

A long grid run must be preemptible: :class:`CampaignCheckpoint` captures
one session's full schedule-determining state — fuzzer LFSR + corpus,
observed coverage, feedback weights, virtual clock, history, detection
LFSR — next to the spec that built it, round-trips through JSON, and
restores into a session whose continued run is **bit-identical** to one
that was never interrupted.  The checkpoint is taken at an iteration
boundary (the only state the session drivers expose); everything else
(DUT core, runner, REF) is rebuilt per iteration and never crosses one.

The same bundle is the unit of work the
:class:`~repro.campaign.backends.ProcessPoolBackend` ships to worker
processes: a shard travels to the worker as a checkpoint, runs its time
slice there, and comes back as a checkpoint.
"""

import contextlib
import json
import os
from dataclasses import dataclass, field

from repro.campaign.spec import CampaignSpec

STATE_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint could not be parsed or validated: truncated/corrupt
    JSON, a non-object payload, missing required keys, or an unknown
    format version.  Subclasses :class:`ValueError` so pre-existing
    callers catching the old raw errors keep working."""


@dataclass
class CampaignCheckpoint:
    """One campaign frozen at an iteration boundary."""

    spec: CampaignSpec
    state: dict
    version: int = STATE_FORMAT_VERSION
    meta: dict = field(default_factory=dict)  # free-form (labels, notes)

    # -- capture / restore ------------------------------------------------------
    @classmethod
    def capture(cls, session, **meta):
        """Snapshot a running :class:`CampaignSession`."""
        return cls(spec=session.spec, state=session.state_dict(),
                   meta=dict(meta))

    def restore(self, *, bus=None, cache=None):
        """Rebuild the session from the spec, then load the frozen state.

        ``bus``/``cache`` are fresh-construction wiring (a restored shard
        joins the orchestrator's shared bus and layout cache); they carry
        no campaign state, so they do not affect bit-identity.
        """
        from repro.campaign.session import build_session

        session = build_session(self.spec, bus=bus, cache=cache)
        session.load_state(self.state)
        return session

    # -- JSON round-trip --------------------------------------------------------
    def to_dict(self):
        return {
            "version": self.version,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise CheckpointError(
                f"checkpoint payload must be an object, got {type(data).__name__}"
            )
        version = data.get("version", STATE_FORMAT_VERSION)
        if not isinstance(version, int):
            raise CheckpointError(
                f"checkpoint version must be an integer, got {version!r}"
            )
        if version > STATE_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format v{version} is newer than this code "
                f"(supports up to v{STATE_FORMAT_VERSION})"
            )
        missing = [key for key in ("spec", "state") if key not in data]
        if missing:
            raise CheckpointError(
                f"checkpoint is missing required keys: {', '.join(missing)}"
            )
        return cls(spec=CampaignSpec.from_dict(data["spec"]),
                   state=data["state"], version=version,
                   meta=dict(data.get("meta", {})))

    def to_json(self):
        """Compact JSON string (the process-pool wire format)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint JSON is truncated or corrupt: {exc}"
            ) from exc
        return cls.from_dict(data)

    # -- files ------------------------------------------------------------------
    def save(self, path):
        """Write the checkpoint as indented JSON; returns ``path``.

        The write is atomic: JSON lands in a same-directory temp file
        that is fsynced and then :func:`os.replace`\\ d over ``path``, so
        a crash mid-save (power loss, a killed worker) leaves either the
        complete old checkpoint or the complete new one — never a
        truncated file.
        """
        path = os.fspath(path)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        finally:
            with contextlib.suppress(OSError):
                os.remove(tmp_path)
        return path

    @classmethod
    def load(cls, path):
        """Read a saved checkpoint; raises :class:`CheckpointError` on
        truncated/corrupt JSON or an unknown format version."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def checkpoint_session(session, path=None, **meta):
    """Capture a session; optionally persist to ``path`` in one call."""
    checkpoint = CampaignCheckpoint.capture(session, **meta)
    if path is not None:
        checkpoint.save(path)
    return checkpoint


def resume_session(source, *, bus=None, cache=None):
    """Restore a session from a checkpoint, a dict, or a JSON file path."""
    if isinstance(source, CampaignCheckpoint):
        checkpoint = source
    elif isinstance(source, dict):
        checkpoint = CampaignCheckpoint.from_dict(source)
    else:
        checkpoint = CampaignCheckpoint.load(source)
    return checkpoint.restore(bus=bus, cache=cache)
