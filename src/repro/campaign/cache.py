"""Shared instrumentation cache for campaign grids.

``instrument_design`` runs the control-register extraction pass and builds
one deterministic layout per module — the same work for every shard of a
fig11-style grid that instruments the same core the same way.  The cache
keys that work by ``(core, layout class, max_state_size, seed)`` — the
layout class being the style's :data:`~repro.coverage.layout.INSTRUMENTATIONS`
registry entry, so re-registering a style name cannot serve stale
layouts — and reuses the
*layouts* across shards, building only the cheap per-shard collector state
(coverage maps, memo tables), so runtime coverage stays fully isolated
per shard while the placement computation runs once per distinct key.

Layout sharing is sound because a layout only reads static register
attributes (width, value domain) that are identical across instances of
the same core class, and cores bind to collectors by register *name*
(:meth:`~repro.dut.core.DutCore.attach_coverage`), never through the
layout's register objects.
"""

from repro.coverage import FeedbackWeights, instrument_design
from repro.coverage.instrument import DesignCoverage, ModuleCoverage
from repro.coverage.layout import INSTRUMENTATIONS


class InstrumentationCache:
    """Memoizes instrumentation layouts across campaign shards."""

    def __init__(self):
        self._layouts = {}  # key -> [(module_name, layout), ...]
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._layouts)

    @property
    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._layouts)}

    def instrument(self, core, style="optimized", max_state_size=15,
                   seed=0, weights=None):
        """Return a fresh :class:`DesignCoverage` for ``core``, reusing
        cached layouts when an identical instrumentation was built before.

        ``weights`` is per-shard state and is never part of the key.

        The key carries the *registered layout class* (the
        :data:`~repro.coverage.layout.INSTRUMENTATIONS` entry), not the
        style string: re-registering a style name with ``replace=True``
        (plugin development, A/B-ing a layout) can never serve stale
        layouts built by the previous registrant.
        """
        key = (core.name, INSTRUMENTATIONS.get(style), max_state_size, seed)
        weights = weights or FeedbackWeights()
        cached = self._layouts.get(key)
        if cached is None:
            self.misses += 1
            design = instrument_design(
                core.top, style=style, max_state_size=max_state_size,
                seed=seed, weights=weights,
            )
            self._layouts[key] = [
                (coverage.name, coverage.layout) for coverage in design.modules
            ]
            return design
        self.hits += 1
        modules_by_name = {module.name: module for module in core.top.walk()}
        coverages = []
        for module_name, layout in cached:
            module = modules_by_name.get(module_name)
            if module is None:
                raise ValueError(
                    f"cached instrumentation for {key!r} names module "
                    f"{module_name!r}, absent from this {core.name!r} netlist"
                )
            coverages.append(ModuleCoverage(module, layout))
        return DesignCoverage(coverages, weights=weights)

    def clear(self):
        self._layouts.clear()
        self.hits = 0
        self.misses = 0
