"""Campaign result export: figure data as JSON, diffable across PRs.

The benchmark harness regenerates the paper's figures/tables as plain
dicts; :func:`dump_json` persists them (deterministically ordered) so two
runs — or two PRs — can be diffed file-against-file.  :func:`to_jsonable`
normalizes the campaign object graph (outcomes, run results, specs,
tuples, module counts) into JSON-safe plain data.
"""

import json
import os

DEFAULT_DATA_DIR = os.path.join("benchmarks", "data")


def to_jsonable(value):
    """Recursively convert campaign values into JSON-encodable data."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # NaN/inf are not valid JSON; keep the report loadable everywhere.
        if value != value or value in (float("inf"), float("-inf")):
            return repr(value)
        return value
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item) for item in value)
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    if hasattr(value, "describe"):
        return value.describe()
    return repr(value)


def campaign_report(session):
    """One session's full exportable record (spec + history + totals)."""
    return {
        "spec": session.spec.to_dict(),
        "iterations": session.iterations,
        "virtual_seconds": session.clock.seconds,
        "coverage_total": session.coverage_total,
        "coverage_by_module": session.coverage.counts_by_module(),
        "executed_instructions": session.total_executed,
        "generated_instructions": session.total_generated,
        "iteration_rate_hz": session.iteration_rate_hz(),
        "executed_per_second": session.executed_per_second(),
        "history": session.history_dicts(),
    }


def dump_json(payload, name, directory=None):
    """Write ``payload`` as ``<directory>/<name>.json`` and return the path.

    ``directory`` defaults to ``$TURBOFUZZ_DATA_DIR`` or
    ``benchmarks/data``.  Output is sorted and indented so diffs are
    stable.
    """
    # analyze: ignore[DET005] output location only; never feeds campaign state
    directory = (directory or os.environ.get("TURBOFUZZ_DATA_DIR")
                 or DEFAULT_DATA_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_jsonable(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
