"""The Campaign API: declarative, pluggable, multi-session fuzzing.

This package turns the monolithic session factory into a layered API:

* :class:`CampaignSpec` — a declarative, JSON-round-trippable description
  of one campaign (:mod:`repro.campaign.spec`),
* registries + ``@register_fuzzer`` / ``@register_core`` /
  ``register_timing`` — third-party fuzzers, cores, and timing models plug
  in without touching core files (:mod:`repro.campaign.registry`),
* :class:`EventBus` — ``iteration`` / ``new_coverage`` / ``mismatch`` /
  ``milestone`` observers replace driver-loop special cases
  (:mod:`repro.campaign.events`),
* :class:`CampaignSession` / :func:`build_session` — spec -> running
  campaign (:mod:`repro.campaign.session`),
* :class:`CampaignOrchestrator` — N specs as shards: batched round-robin
  on a shared virtual-time axis, per-shard deterministic seeding, a shared
  :class:`InstrumentationCache`, aggregate reporting
  (:mod:`repro.campaign.orchestrator`),
* :mod:`repro.campaign.report` — JSON export of figure data.
"""

from repro.campaign.cache import InstrumentationCache
from repro.campaign.events import EventBus
from repro.campaign.orchestrator import CampaignOrchestrator, derive_seed
from repro.campaign.registry import (
    CORES,
    FUZZERS,
    TIMINGS,
    FuzzerPlugin,
    Registry,
    register_core,
    register_fuzzer,
    register_timing,
)
from repro.campaign.report import campaign_report, dump_json, to_jsonable
from repro.campaign.session import (
    CampaignSession,
    IterationOutcome,
    build_session,
)
from repro.campaign.spec import CampaignSpec

__all__ = [
    "CampaignSpec",
    "CampaignSession",
    "CampaignOrchestrator",
    "IterationOutcome",
    "InstrumentationCache",
    "EventBus",
    "Registry",
    "FuzzerPlugin",
    "FUZZERS",
    "CORES",
    "TIMINGS",
    "register_fuzzer",
    "register_core",
    "register_timing",
    "build_session",
    "derive_seed",
    "campaign_report",
    "dump_json",
    "to_jsonable",
]
