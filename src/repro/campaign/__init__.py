"""The Campaign API: declarative, pluggable, multi-session fuzzing.

This package turns the monolithic session factory into a layered API:

* :class:`CampaignSpec` — a declarative, JSON-round-trippable description
  of one campaign (:mod:`repro.campaign.spec`),
* registries + ``@register_fuzzer`` / ``@register_core`` /
  ``register_timing`` / ``@register_instrumentation`` — third-party
  fuzzers, cores, timing models, and coverage layouts plug in without
  touching core files (:mod:`repro.campaign.registry`),
* :class:`EventBus` — ``iteration`` / ``new_coverage`` / ``mismatch`` /
  ``milestone`` observers replace driver-loop special cases
  (:mod:`repro.campaign.events`),
* :class:`CampaignSession` / :func:`build_session` — spec -> running
  campaign (:mod:`repro.campaign.session`),
* :class:`CampaignCheckpoint` — (spec, session state) bundles that
  round-trip through JSON for preempt/resume and for shipping shards to
  worker processes (:mod:`repro.campaign.checkpoint`),
* :data:`BACKENDS` + :class:`SerialBackend` / :class:`ProcessPoolBackend`
  / :class:`SupervisedQueueBackend` — pluggable shard-execution
  mechanisms, the latter fault-tolerant with heartbeats, re-dispatch,
  and quarantine (:mod:`repro.campaign.backends`),
* :class:`FaultPolicy` / :class:`FaultInjector` / :class:`ShardRecovery`
  — failure-handling policy, deterministic chaos injection, and the
  shared recovery path (:mod:`repro.campaign.resilience`),
* :class:`CampaignOrchestrator` — N specs as shards: batched round-robin
  on a shared virtual-time axis, per-shard deterministic seeding, a shared
  :class:`InstrumentationCache`, checkpoint/resume, aggregate reporting
  (:mod:`repro.campaign.orchestrator`),
* :mod:`repro.campaign.report` — JSON export of figure data.
"""

from repro.campaign.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SupervisedQueueBackend,
    register_backend,
    resolve_backend,
)
from repro.campaign.cache import InstrumentationCache
from repro.campaign.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    checkpoint_session,
    resume_session,
)
from repro.campaign.events import AsyncSink, BufferedSink, EventBus
from repro.campaign.orchestrator import (
    CampaignOrchestrator,
    coverage_at_time,
    derive_seed,
)
from repro.campaign.registry import (
    CORES,
    FUZZERS,
    INSTRUMENTATIONS,
    TIMINGS,
    FuzzerPlugin,
    Registry,
    register_core,
    register_fuzzer,
    register_instrumentation,
    register_timing,
)
from repro.campaign.report import campaign_report, dump_json, to_jsonable
from repro.campaign.resilience import (
    FAULTS,
    FaultInjector,
    FaultPolicy,
    ShardRecovery,
    register_fault,
)
from repro.campaign.session import (
    CampaignSession,
    IterationOutcome,
    build_session,
)
from repro.campaign.spec import CampaignSpec

__all__ = [
    "CampaignSpec",
    "CampaignSession",
    "CampaignOrchestrator",
    "CampaignCheckpoint",
    "IterationOutcome",
    "InstrumentationCache",
    "EventBus",
    "BufferedSink",
    "AsyncSink",
    "Registry",
    "FuzzerPlugin",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SupervisedQueueBackend",
    "CheckpointError",
    "FaultPolicy",
    "FaultInjector",
    "ShardRecovery",
    "FUZZERS",
    "CORES",
    "TIMINGS",
    "INSTRUMENTATIONS",
    "BACKENDS",
    "FAULTS",
    "register_fuzzer",
    "register_core",
    "register_timing",
    "register_instrumentation",
    "register_backend",
    "register_fault",
    "resolve_backend",
    "build_session",
    "checkpoint_session",
    "resume_session",
    "derive_seed",
    "coverage_at_time",
    "campaign_report",
    "dump_json",
    "to_jsonable",
]
