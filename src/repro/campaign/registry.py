"""Pluggable registries for fuzzers, cores, and timing models.

The old ``make_session()`` factory hard-wired every fuzzer/core/timing
combination through an if/elif chain; the registries collapse that chain
into data.  A third-party scenario registers its pieces with a decorator
and every campaign driver can name them in a :class:`CampaignSpec`
without touching core files::

    from repro.campaign import register_fuzzer, register_timing

    MY_TIMING = register_timing(IterationTiming(name="myfuzz", ...))

    @register_fuzzer("myfuzz", config_class=MyConfig, timing="myfuzz")
    class MyFuzzer:
        def generate_iteration(self): ...
        def feedback(self, iteration, increment): ...

Built-in fuzzers (turbofuzz / difuzzrtl / cascade), cores (rocket / cva6 /
boom), and timing presets are pre-registered on import.  The
:data:`INSTRUMENTATIONS` registry (coverage layout styles; built-ins
``legacy``/``optimized``) lives in :mod:`repro.coverage.layout` — below
this package, so the coverage pass can consult it without an import cycle
— and is re-exported here so campaign callers register every plugin kind
from one place.  Execution backends register in
:data:`repro.campaign.backends.BACKENDS`.
"""

from dataclasses import dataclass, field

from repro.baselines.cascade import CascadeConfig, CascadeFuzzer
from repro.baselines.difuzzrtl import DifuzzRtlConfig, DifuzzRtlFuzzer
from repro.coverage.layout import INSTRUMENTATIONS, register_instrumentation
from repro.dut import CORE_CLASSES
from repro.fuzzer import TurboFuzzConfig, TurboFuzzer
from repro.harness.timing import TIMING_PRESETS
from repro.isa.instructions import Category
from repro.registry import Registry

__all__ = [
    "Registry",
    "FUZZERS", "CORES", "TIMINGS", "INSTRUMENTATIONS",
    "FuzzerPlugin",
    "register_fuzzer", "register_core", "register_timing",
    "register_instrumentation",
]

FUZZERS = Registry("fuzzer")
CORES = Registry("core")
TIMINGS = Registry("timing model")


@dataclass(frozen=True)
class FuzzerPlugin:
    """Everything a campaign needs to know about one fuzzer kind.

    ``factory`` is called with a config instance and must return an object
    implementing the fuzzer protocol (``generate_iteration()`` /
    ``feedback()``).  ``timing`` names a :data:`TIMINGS` preset used when a
    spec does not pick one explicitly.  ``stop_on_trap`` is the runner
    default for this fuzzer (DifuzzRTL-style harnesses abort at the first
    trap).  ``tweaks`` maps tweak names (e.g. ``allow_ebreak``) to
    ``fn(fuzzer)`` callables applied after construction.
    """

    name: str
    factory: object
    config_class: type
    timing: str
    stop_on_trap: bool = False
    tweaks: dict = field(default_factory=dict)

    def build_config(self, options):
        """Instantiate the config class from a plain options dict."""
        return self.config_class(**dict(options or {}))

    def build(self, options=None, config=None):
        """Construct the fuzzer from ``options`` (or a prebuilt config)."""
        if config is None:
            config = self.build_config(options)
        return self.factory(config)

    def apply_tweak(self, fuzzer, name):
        try:
            tweak = self.tweaks[name]
        except KeyError:
            raise ValueError(
                f"fuzzer {self.name!r} has no tweak {name!r} "
                f"(available: {sorted(self.tweaks) or '<none>'})"
            ) from None
        tweak(fuzzer)


def register_fuzzer(name, *, config_class, timing, stop_on_trap=False,
                    tweaks=None, factory=None, replace=False):
    """Register a fuzzer kind; usable directly or as a class decorator."""
    def _register(cls_or_factory):
        FUZZERS.register(
            name,
            FuzzerPlugin(
                name=name,
                factory=cls_or_factory,
                config_class=config_class,
                timing=timing,
                stop_on_trap=stop_on_trap,
                tweaks=dict(tweaks or {}),
            ),
            replace=replace,
        )
        return cls_or_factory

    if factory is not None:
        return _register(factory)
    return _register


def register_core(name, core_class=None, replace=False):
    """Register a DUT core class; usable directly or as a decorator."""
    return CORES.register(name, core_class, replace=replace)


def register_timing(timing, name=None, replace=False):
    """Register an :class:`~repro.harness.timing.IterationTiming` preset."""
    return TIMINGS.register(name or timing.name, timing, replace=replace)


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------
def _turbofuzz_allow_ebreak(fuzzer):
    fuzzer.direct.category_weights[Category.SYSTEM] = 1


def _baseline_allow_ebreak(fuzzer):
    fuzzer._weights[Category.SYSTEM] = 1


for _timing in TIMING_PRESETS.values():
    register_timing(_timing)

register_fuzzer(
    "turbofuzz", config_class=TurboFuzzConfig, timing="turbofuzz",
    tweaks={"allow_ebreak": _turbofuzz_allow_ebreak},
    factory=TurboFuzzer,
)
register_fuzzer(
    "difuzzrtl", config_class=DifuzzRtlConfig, timing="difuzzrtl-fpga",
    stop_on_trap=True,
    tweaks={"allow_ebreak": _baseline_allow_ebreak},
    factory=DifuzzRtlFuzzer,
)
register_fuzzer(
    "cascade", config_class=CascadeConfig, timing="cascade",
    tweaks={"allow_ebreak": _baseline_allow_ebreak},
    factory=CascadeFuzzer,
)

for _name, _cls in CORE_CLASSES.items():
    register_core(_name, _cls)
