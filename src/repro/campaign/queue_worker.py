"""Supervised campaign workers: the process side of the work-queue backend.

A worker is a **long-running** process (unlike the pool backend's
stateless futures): it loops on a multiprocessing task queue, restores
each shard-slice task from its checkpoint, runs the slice, and posts the
advanced checkpoint back on the result queue.  Alongside the task loop:

* a daemon **heartbeat thread** posts liveness beats every
  ``heartbeat_interval_s`` even while the main thread is deep in a slice,
  so the supervisor can tell "busy" from "dead";
* a :class:`RelayPublisher` subscribes to the worker session's private
  :class:`~repro.campaign.events.EventBus` and forwards sanitized,
  JSON-shaped event payloads over the **relay queue** — the cross-process
  event relay that lets grid-wide subscribers on the orchestrator's bus
  observe remote iterations;
* injected-fault directives attached to a task are applied at their
  stages via :func:`~repro.campaign.resilience.apply_fault_directives`
  (chaos testing; see :class:`~repro.campaign.resilience.FaultInjector`).

Everything crossing a queue is plain JSON-shaped data (checkpoints travel
as compact JSON strings), so results cannot depend on pickled object
graphs, and a re-dispatched task re-runs bit-identically from the same
last-good checkpoint.
"""

import queue
import threading

from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.events import EventBus
from repro.campaign.resilience import apply_fault_directives

DEFAULT_HEARTBEAT_S = 0.2

#: Event payload keys the supervisor adds on re-emission; the sanitizer
#: must never forward a colliding key from the remote payload.
_RESERVED_KEYS = frozenset({"session", "shard", "remote"})


def _plain(value):
    return value is None or isinstance(value, (bool, int, float, str))


def sanitize_event(event, payload):
    """Reduce a live event payload to JSON-shaped data for the relay.

    Live payloads carry heavyweight objects (the session, iteration, run
    result) that must not cross the process boundary; remote subscribers
    get the outcome dict plus the scalar fields."""
    if event == "milestone":
        data = {key: value for key, value in payload.items()
                if _plain(value) and key not in _RESERVED_KEYS}
        data["kind"] = payload.get("kind")
        return data
    data = {}
    outcome = payload.get("outcome")
    if outcome is not None:
        data["outcome"] = outcome.to_dict()
    if event == "new_coverage":
        data["new_points"] = payload.get("new_points")
    if event == "mismatch":
        mismatch = payload.get("mismatch")
        data["mismatch"] = (mismatch.describe()
                            if hasattr(mismatch, "describe") else repr(mismatch))
    return data


class RelayPublisher:
    """Forwards a worker session's events onto the relay queue.

    Delivery is best-effort by design: when the relay queue is full the
    event is shed (and counted) rather than stalling the iteration loop —
    campaign progress is never hostage to observers."""

    def __init__(self, relay_queue, shard, events):
        self.relay_queue = relay_queue
        self.shard = shard
        self.events = tuple(events)
        self.forwarded = 0
        self.dropped = 0

    def attach(self, bus):
        for event in self.events:
            bus.subscribe(event, self._handler(event))
        return bus

    def _handler(self, event):
        def forward(**payload):
            message = {
                "type": "event",
                "event": event,
                "shard": self.shard,
                "payload": sanitize_event(event, payload),
            }
            try:
                self.relay_queue.put_nowait(message)
                self.forwarded += 1
            except queue.Full:
                self.dropped += 1  # shed under backpressure, never block
        return forward


def execute_task(task, cache=None, relay_queue=None, bus=None):
    """Restore the shard from its checkpoint, run the slice, and return
    the advanced checkpoint as compact JSON.

    Shared by worker processes, the pool backend's futures, and the
    supervisor's degraded in-process fallback — one code path, so every
    execution mode is bit-identical by construction.  ``bus`` overrides
    the private per-task bus (the inline fallback passes the
    orchestrator's bus so local subscribers see full-fidelity events)."""
    if bus is None:
        bus = EventBus()
        if relay_queue is not None and task.get("relay"):
            RelayPublisher(relay_queue, task["label"], task["relay"]).attach(bus)
    checkpoint = CampaignCheckpoint.from_json(task["checkpoint_json"])
    session = checkpoint.restore(bus=bus, cache=cache)
    command = task["command"]
    if command == "run_for_virtual_time":
        session.run_for_virtual_time(task["frontier"],
                                     max_iterations=task.get("max_iterations"))
    elif command == "run_iterations":
        session.run_iterations(task["count"])
    else:
        raise ValueError(f"unknown task command {command!r}")
    return CampaignCheckpoint.capture(session).to_json()


def _heartbeat_loop(worker_id, result_queue, interval_s, stop):
    while not stop.wait(interval_s):
        try:
            result_queue.put_nowait({"type": "heartbeat", "worker": worker_id})
        except queue.Full:
            continue  # supervisor is behind; skip this beat


def worker_main(worker_id, task_queue, result_queue, relay_queue,
                heartbeat_interval_s=DEFAULT_HEARTBEAT_S):
    """The worker process entry point: loop until the ``None`` sentinel.

    A task that raises is reported as an ``error`` message and the loop
    continues — a poison shard must not take the worker (or the grid)
    down with it; retry/quarantine policy lives with the supervisor."""
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(worker_id, result_queue, heartbeat_interval_s, stop),
        daemon=True,
    )
    beat.start()
    # One instrumentation cache per worker: successive slices of the same
    # grid restore identical layouts (layouts are read-only once built).
    from repro.campaign.cache import InstrumentationCache

    cache = InstrumentationCache()
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            result_queue.put({"type": "claim", "task_id": task["task_id"],
                              "worker": worker_id, "label": task["label"]})
            context = {"task": task, "drop": False, "checkpoint_json": None}
            directives = task.get("faults") or ()
            try:
                apply_fault_directives(directives, "pre", context)
                context["checkpoint_json"] = execute_task(
                    task, cache=cache, relay_queue=relay_queue)
                apply_fault_directives(directives, "post", context)
                apply_fault_directives(directives, "result", context)
            except Exception as exc:  # poison shard: report, keep serving
                result_queue.put({
                    "type": "error", "task_id": task["task_id"],
                    "worker": worker_id, "label": task["label"],
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            if context["drop"]:
                continue  # injected drop-result: supervisor recovers by deadline
            result_queue.put({
                "type": "result", "task_id": task["task_id"],
                "worker": worker_id, "label": task["label"],
                "checkpoint_json": context["checkpoint_json"],
            })
    finally:
        stop.set()
