"""Declarative campaign description: one spec == one reproducible campaign.

A :class:`CampaignSpec` names everything by registry key (fuzzer, core,
timing model) and carries plain-data options, so it round-trips through
JSON (``to_dict`` / ``from_dict``) and can be stored next to the figure
data it produced.  Specs are immutable; the fluent ``with_*`` builder
methods return modified copies, so a grid driver can derive a family of
shards from one base spec::

    base = CampaignSpec(core="rocket").with_fuzzer("turbofuzz")
    shards = [base.named(f"tf_{n}").with_options(instructions_per_iteration=n)
              for n in (1000, 4000)]
"""

from dataclasses import asdict, dataclass, field, replace


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to construct and replay one campaign."""

    name: str = ""                       # shard / campaign label
    fuzzer: str = "turbofuzz"            # FUZZERS registry key
    core: str = "rocket"                 # CORES registry key
    bugs: tuple = ()                     # injected Table II bug ids
    rv32a_only: bool = False
    instrument_style: str = "optimized"  # INSTRUMENTATIONS registry key
    max_state_size: int = 15
    instrument_seed: int = 0
    weight_shifts: dict = field(default_factory=dict)  # module -> shift
    with_ref: bool = False
    capture_snapshots: bool = False
    stop_on_trap: object = None          # None -> fuzzer plugin default
    timing: object = None                # TIMINGS key; None -> plugin default
    fuzzer_options: dict = field(default_factory=dict)  # config kwargs
    tweaks: tuple = ()                   # plugin tweak names (allow_ebreak)

    # -- identity ---------------------------------------------------------------
    @property
    def label(self):
        return self.name or f"{self.fuzzer}@{self.core}"

    def instrument_key(self):
        """Cache key for shared instrumentation: campaigns with equal keys
        instrument identical netlists identically."""
        return (self.core, self.instrument_style, self.max_state_size,
                self.instrument_seed)

    # -- fluent builder ---------------------------------------------------------
    def named(self, name):
        return replace(self, name=name)

    def with_fuzzer(self, fuzzer, **options):
        """Pick the fuzzer; ``options`` merge into the accumulated config
        options (so an earlier ``with_seed`` survives).  To drop options
        that do not apply to the new fuzzer, rebuild the spec instead."""
        merged = dict(self.fuzzer_options)
        merged.update(options)
        return replace(self, fuzzer=fuzzer, fuzzer_options=merged)

    def with_options(self, **options):
        """Merge kwargs into the fuzzer's config options."""
        merged = dict(self.fuzzer_options)
        merged.update(options)
        return replace(self, fuzzer_options=merged)

    def with_core(self, core, bugs=None, rv32a_only=None):
        spec = replace(self, core=core)
        if bugs is not None:
            spec = replace(spec, bugs=tuple(bugs))
        if rv32a_only is not None:
            spec = replace(spec, rv32a_only=rv32a_only)
        return spec

    def with_instrumentation(self, style=None, max_state_size=None,
                             seed=None):
        spec = self
        if style is not None:
            spec = replace(spec, instrument_style=style)
        if max_state_size is not None:
            spec = replace(spec, max_state_size=max_state_size)
        if seed is not None:
            spec = replace(spec, instrument_seed=seed)
        return spec

    def with_timing(self, timing):
        return replace(self, timing=timing)

    def with_seed(self, seed):
        """Deterministic campaign seeding (routes to the fuzzer config)."""
        return self.with_options(seed=seed)

    def with_tweak(self, *names):
        return replace(self, tweaks=self.tweaks + names)

    def with_checking(self, with_ref=True, capture_snapshots=False):
        return replace(self, with_ref=with_ref,
                       capture_snapshots=capture_snapshots)

    # -- JSON round-trip --------------------------------------------------------
    def to_dict(self):
        """Plain-data form; ``from_dict(to_dict(s)) == s``."""
        data = asdict(self)
        data["bugs"] = list(self.bugs)
        data["tweaks"] = list(self.tweaks)
        return data

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown CampaignSpec keys: {sorted(unknown)}")
        for key in ("bugs", "tweaks"):
            if key in data:
                data[key] = tuple(data[key])
        for key in ("weight_shifts", "fuzzer_options"):
            if key in data:
                data[key] = dict(data[key])
        return cls(**data)
