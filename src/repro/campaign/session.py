"""Campaign sessions: one reproducible fuzzing campaign built from a spec.

A :class:`CampaignSession` resolves a declarative
:class:`~repro.campaign.spec.CampaignSpec` through the registries
(:mod:`repro.campaign.registry`), wires DUT + instrumentation + fuzzer +
runner + virtual clock, and publishes its progress on an
:class:`~repro.campaign.events.EventBus` — reporting, plotting, and bug
triage subscribe instead of special-casing the driver loop.

The legacy :class:`~repro.harness.session.FuzzSession` is now a thin
compatibility shim over this class.
"""

from dataclasses import dataclass

from repro.campaign.events import EventBus
from repro.campaign.registry import CORES, FUZZERS, TIMINGS
from repro.campaign.spec import CampaignSpec
from repro.coverage import FeedbackWeights, instrument_design
from repro.fuzzer.lfsr import Lfsr
from repro.harness.clock import VirtualClock
from repro.harness.runner import IterationRunner

# The probabilistic end-of-program detection model (coarse_detection) draws
# from its own LFSR so detection luck is decoupled from generation; the
# seed is a campaign-level constant unless a caller overrides it.
DEFAULT_DETECTION_SEED = 0xC0FFEE


@dataclass
class IterationOutcome:
    """One point of a campaign's history."""

    index: int
    virtual_seconds: float
    coverage_total: int
    new_coverage: int
    executed_instructions: int
    prevalence: float
    mismatch: object = None

    def to_dict(self):
        """Plain-data form for JSON export (Fig./Table persistence)."""
        return {
            "index": self.index,
            "virtual_seconds": self.virtual_seconds,
            "coverage_total": self.coverage_total,
            "new_coverage": self.new_coverage,
            "executed_instructions": self.executed_instructions,
            "prevalence": self.prevalence,
            "mismatch": (self.mismatch.describe()
                         if self.mismatch is not None else None),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a history point from its :meth:`to_dict` form.

        A recorded mismatch comes back as a :class:`RestoredMismatch`
        placeholder whose ``describe()`` echoes the archived text, so the
        round-trip ``to_dict(from_dict(d)) == d`` holds bit-for-bit."""
        described = data["mismatch"]
        return cls(
            index=data["index"],
            virtual_seconds=data["virtual_seconds"],
            coverage_total=data["coverage_total"],
            new_coverage=data["new_coverage"],
            executed_instructions=data["executed_instructions"],
            prevalence=data["prevalence"],
            mismatch=(None if described is None
                      else RestoredMismatch(described)),
        )


class RestoredMismatch:
    """Stand-in for a checker mismatch rebuilt from a checkpoint: the live
    record objects do not outlive their run, but the archived description
    must keep exporting identically."""

    def __init__(self, described):
        self.described = described

    def describe(self):
        return self.described

    def __repr__(self):
        return f"RestoredMismatch({self.described!r})"


class CampaignSession:
    """A fuzzing campaign bound to one DUT and one fuzzer.

    Normally constructed from a spec (``CampaignSession(spec)`` or
    :func:`build_session`); the keyword overrides exist for the
    ``FuzzSession`` compatibility shim and for tests that inject prebuilt
    components:

    * ``fuzzer`` — a prebuilt fuzzer instance (skips registry lookup),
    * ``fuzzer_config`` — a prebuilt config for the plugin factory,
    * ``timing`` — an :class:`~repro.harness.timing.IterationTiming`
      instance overriding the spec/plugin timing preset,
    * ``weights`` — a prebuilt :class:`~repro.coverage.FeedbackWeights`,
    * ``cache`` — a shared
      :class:`~repro.campaign.cache.InstrumentationCache`,
    * ``bus`` — a shared :class:`~repro.campaign.events.EventBus`
      (the orchestrator passes one bus to all shards).
    """

    def __init__(self, spec=None, *, fuzzer=None, fuzzer_config=None,
                 timing=None, weights=None, cache=None, bus=None,
                 detection_seed=DEFAULT_DETECTION_SEED):
        self.spec = spec or CampaignSpec()
        spec = self.spec
        self.bus = bus or EventBus()
        plugin = FUZZERS.get(spec.fuzzer) if spec.fuzzer in FUZZERS else None
        if plugin is None and (fuzzer is None or timing is None):
            FUZZERS.get(spec.fuzzer)  # raises with the known-names message
        if plugin is None and spec.tweaks:
            raise ValueError(
                f"spec declares tweaks {spec.tweaks!r} but fuzzer "
                f"{spec.fuzzer!r} is not registered; register the fuzzer "
                "or apply the tweaks to the prebuilt instance"
            )

        # Exact registry match first; fall back to the lowercase form the
        # core factory has always accepted ("Rocket" == "rocket").
        core_name = (spec.core if spec.core in CORES
                     else str(spec.core).lower())
        core_class = CORES.get(core_name)
        self.core = core_class(bugs=tuple(spec.bugs),
                               rv32a_only=spec.rv32a_only)
        self.weights = weights or FeedbackWeights(dict(spec.weight_shifts))
        if cache is not None:
            self.coverage = cache.instrument(
                self.core, style=spec.instrument_style,
                max_state_size=spec.max_state_size,
                seed=spec.instrument_seed, weights=self.weights,
            )
        else:
            self.coverage = instrument_design(
                self.core.top, style=spec.instrument_style,
                max_state_size=spec.max_state_size,
                seed=spec.instrument_seed, weights=self.weights,
            )
        self.core.attach_coverage(self.coverage)

        self.fuzzer = fuzzer or plugin.build(spec.fuzzer_options,
                                             config=fuzzer_config)
        if plugin is not None:
            for tweak in spec.tweaks:
                plugin.apply_tweak(self.fuzzer, tweak)

        if spec.stop_on_trap is not None:
            stop_on_trap = bool(spec.stop_on_trap)
        else:
            stop_on_trap = plugin.stop_on_trap if plugin else False
        self.runner = IterationRunner(
            self.core,
            with_ref=spec.with_ref,
            capture_snapshots=spec.capture_snapshots,
            stop_on_trap=stop_on_trap,
        )

        if timing is not None:
            self.timing = timing
        elif spec.timing is not None:
            self.timing = TIMINGS.get(spec.timing)
        else:
            self.timing = TIMINGS.get(plugin.timing)

        self.clock = VirtualClock(self.core.default_frequency_hz)
        self.history = []
        self.total_executed = 0
        self.total_generated = 0
        self._detection_seed = detection_seed
        # Session-level so its draw position survives a checkpoint: a
        # resumed bug-detection wait continues the same detection-luck
        # stream instead of restarting it.
        self.detection_lfsr = Lfsr(0xDE7EC7 ^ detection_seed)
        self.bus.milestone("campaign_start", session=self, spec=spec)

    # -- process tuning --------------------------------------------------------
    def freeze_steady_state(self):
        """Move the session's long-lived object graph out of GC scanning.

        A warmed session holds a large, effectively immortal structure —
        netlist, coverage maps, decode and compiled-slot caches — that
        every full collection re-scans even though none of it ever becomes
        garbage.  Collect pending cycles first, then ``gc.freeze()`` what
        survived into the permanent generation.  Call after warmup from a
        long-running driver (the perf harness does, for both sides of the
        ratio); short-lived sessions in tests should not bother — frozen
        objects are never reclaimed by the cycle collector.
        """
        import gc

        gc.collect()
        gc.freeze()

    # -- one iteration ---------------------------------------------------------
    def run_iteration(self):
        """Generate, execute, feed back, account time; returns the outcome."""
        iteration = self.fuzzer.generate_iteration()
        before = self.coverage.counts_by_module()
        result = self.runner.run(iteration)
        after = self.coverage.counts_by_module()
        # The fuzzer's feedback scalar is the *weighted* N_cov increment
        # (the auxiliary-shift mechanism of Section VI); the raw increment
        # is what the experiment reports.
        weighted_increment = self.coverage.weights.weighted_total(
            {name: after[name] - before.get(name, 0) for name in after}
        )
        self.fuzzer.feedback(iteration, weighted_increment)
        self.clock.advance_seconds(
            self.timing.iteration_seconds(
                generated=iteration.total_instructions,
                executed=result.executed_instructions,
                dut_cycles=result.cycles,
                frequency_hz=self.core.default_frequency_hz,
            )
        )
        self.total_executed += result.executed_instructions
        self.total_generated += iteration.total_instructions
        outcome = IterationOutcome(
            index=len(self.history),
            virtual_seconds=self.clock.seconds,
            coverage_total=self.coverage.total_points,
            new_coverage=result.new_coverage,
            executed_instructions=result.executed_instructions,
            prevalence=result.prevalence,
            mismatch=result.mismatch,
        )
        self.history.append(outcome)
        bus = self.bus
        bus.emit("iteration", session=self, iteration=iteration,
                 result=result, outcome=outcome)
        if result.new_coverage > 0:
            bus.emit("new_coverage", session=self, outcome=outcome,
                     new_points=result.new_coverage)
        if result.mismatch is not None:
            bus.emit("mismatch", session=self, outcome=outcome,
                     mismatch=result.mismatch, snapshot=result.snapshot)
        return outcome

    # -- campaign drivers ------------------------------------------------------
    def run_for_virtual_time(self, virtual_seconds, max_iterations=None):
        """Iterate until the virtual clock passes the budget."""
        while self.clock.seconds < virtual_seconds:
            if max_iterations is not None and len(self.history) >= max_iterations:
                break
            self.run_iteration()
        return self.history

    def run_iterations(self, count):
        """Run a fixed number of iterations."""
        for _ in range(count):
            self.run_iteration()
        return self.history

    def run_until_coverage(self, target_points, max_iterations=100_000):
        """Iterate until total coverage reaches the target; returns the
        virtual time at which it was reached (None if never)."""
        for _ in range(max_iterations):
            outcome = self.run_iteration()
            if outcome.coverage_total >= target_points:
                self.bus.milestone("coverage_target", session=self,
                                   target=target_points, outcome=outcome)
                return outcome.virtual_seconds
        return None

    def run_until_mismatch(self, max_iterations=100_000):
        """Iterate (with REF checking on) until a mismatch; returns
        ``(virtual_seconds, mismatch)`` or ``(None, None)``.

        The reported time includes the timing model's detection latency
        (snapshot capture and readback for TurboFuzz, trace dump for the
        software fuzzers).
        """
        for _ in range(max_iterations):
            outcome = self.run_iteration()
            if outcome.mismatch is not None:
                self.clock.advance_seconds(self.timing.detection_s)
                self.bus.milestone("mismatch_confirmed", session=self,
                                   outcome=outcome,
                                   seconds=self.clock.seconds)
                return self.clock.seconds, outcome.mismatch
        return None, None

    def bug_trigger_set(self):
        """The DUT hooks' fired-bug set; raises if the core carries no
        injected bugs (the hooks then have no trigger set and a trigger
        wait would be a guaranteed-timeout no-op)."""
        triggered = getattr(self.core.hooks, "triggered", None)
        if triggered is None:
            raise ValueError(
                f"core {self.spec.core!r} has no injected bugs: build the "
                "campaign with CampaignSpec(bugs=(bug_id, ...)) so the DUT "
                "hooks expose a bug-trigger set"
            )
        return triggered

    def run_until_bug_triggered(self, bug_id, max_iterations=100_000,
                                coarse_detection=None):
        """Iterate until an injected bug's condition fires on the DUT.

        This is the REF-free fast path for Table II: with TurboFuzz's
        instruction-level lockstep checking, the moment the bug's
        architecturally-visible condition fires it is flagged; running the
        REF only doubles the cost.

        ``coarse_detection`` models DifuzzRTL-style checking ("coarse-
        grained comparisons between the DUT and REF after thousands of
        instructions", paper Section I): a ``(num, den)`` probability that
        an end-of-iteration comparison still sees the divergence (register
        overwrites mask transient differences).  ``None`` = fine-grained.
        """
        triggered = self.bug_trigger_set()
        injected = getattr(self.core.hooks, "bug_ids", frozenset())
        if bug_id not in injected:
            raise ValueError(
                f"bug {bug_id!r} is not injected in this campaign "
                f"(injected: {sorted(injected) or '<none>'})"
            )
        detection_lfsr = self.detection_lfsr
        for _ in range(max_iterations):
            self.run_iteration()
            if bug_id in triggered:
                if (coarse_detection is not None
                        and not detection_lfsr.chance(coarse_detection)):
                    # The end-of-program comparison missed it; keep going.
                    triggered.discard(bug_id)
                    continue
                self.clock.advance_seconds(self.timing.detection_s)
                self.bus.milestone("bug_triggered", session=self,
                                   bug_id=bug_id,
                                   seconds=self.clock.seconds)
                return self.clock.seconds
        return None

    # -- reporting -------------------------------------------------------------
    @property
    def coverage_total(self):
        return self.coverage.total_points

    @property
    def iterations(self):
        return len(self.history)

    def iteration_rate_hz(self):
        """Mean iterations per virtual second (the Table I metric)."""
        if not self.history or self.clock.seconds == 0:
            return 0.0
        return len(self.history) / self.clock.seconds

    def executed_per_second(self):
        if self.clock.seconds == 0:
            return 0.0
        return self.total_executed / self.clock.seconds

    def coverage_series(self):
        """(virtual_seconds, coverage_total) pairs for plotting."""
        return [(o.virtual_seconds, o.coverage_total) for o in self.history]

    def history_dicts(self):
        """The campaign history as plain dicts (JSON export hook)."""
        return [outcome.to_dict() for outcome in self.history]

    # -- checkpoint protocol ---------------------------------------------------
    def _fuzzer_protocol(self, method):
        """The fuzzer's checkpoint hook, with a protocol-naming error for
        plugins that predate it (instead of a bare AttributeError)."""
        hook = getattr(self.fuzzer, method, None)
        if hook is None:
            raise TypeError(
                f"fuzzer {type(self.fuzzer).__name__!r} does not implement "
                f"the checkpoint protocol ({method}()); checkpointing and "
                "the process-pool backend require registered fuzzers to "
                "provide state_dict()/load_state()"
            )
        return hook

    def state_dict(self):
        """Every piece of mutable campaign state, as plain JSON data.

        Taken at an iteration boundary (the only place the session drivers
        can observe the campaign), this is sufficient for a bit-identical
        resume: the DUT core and runner are reset at the start of every
        iteration, so their in-flight state never crosses a boundary, and
        the instrumentation layouts rebuild deterministically from the
        spec.  Bundle with the spec via
        :class:`~repro.campaign.checkpoint.CampaignCheckpoint`.
        """
        state = {
            "history": [outcome.to_dict() for outcome in self.history],
            "total_executed": self.total_executed,
            "total_generated": self.total_generated,
            "fuzzer": self._fuzzer_protocol("state_dict")(),
            "coverage": self.coverage.state_dict(),
            "weights": self.weights.state_dict(),
            "clock": self.clock.state_dict(),
            "detection_seed": self._detection_seed,
            "detection_lfsr": self.detection_lfsr.state_dict(),
            # Cross-iteration core state (empty for most cores; BOOM's
            # persistent branch predictor lives here).
            "core": self.core.core_state_dict(),
        }
        triggered = getattr(self.core.hooks, "triggered", None)
        if triggered is not None:
            state["triggered_bugs"] = sorted(triggered)
        return state

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot into this (freshly built,
        spec-identical) session."""
        self.history = [IterationOutcome.from_dict(outcome)
                        for outcome in state["history"]]
        self.total_executed = state["total_executed"]
        self.total_generated = state["total_generated"]
        self._fuzzer_protocol("load_state")(state["fuzzer"])
        self.coverage.load_state(state["coverage"])
        self.weights.load_state(state["weights"])
        self.clock.load_state(state["clock"])
        self._detection_seed = state["detection_seed"]
        self.detection_lfsr.load_state(state["detection_lfsr"])
        # Absent in pre-PR-5 checkpoints (which only ever resumed
        # correctly on predictor-less cores).
        core_state = state.get("core")
        if core_state:
            self.core.load_core_state(core_state)
        triggered = getattr(self.core.hooks, "triggered", None)
        if triggered is not None:
            triggered.clear()
            triggered.update(state.get("triggered_bugs", ()))
        return self


def build_session(spec, *, bus=None, cache=None):
    """Resolve a :class:`CampaignSpec` into a ready-to-run session."""
    return CampaignSession(spec, bus=bus, cache=cache)
