"""Tiny L1 cache models feeding the DUT's cache-state coverage registers
and the instruction latency model."""


class DirectMappedCache:
    """Direct-mapped cache: tag array only (data values come from memory)."""

    def __init__(self, sets=256, line_shift=6):
        self.sets = sets
        self.line_shift = line_shift
        self._tags = [None] * sets
        self.hits = 0
        self.misses = 0

    def access(self, address):
        """Look up (and on miss, install) the line; True on hit."""
        line = address >> self.line_shift
        index = line % self.sets
        if self._tags[index] == line:
            self.hits += 1
            return True
        self._tags[index] = line
        self.misses += 1
        return False

    def flush(self):
        """Invalidate everything (fence.i / reset)."""
        self._tags = [None] * self.sets

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        total = self.accesses
        return self.misses / total if total else 0.0
