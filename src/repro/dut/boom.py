"""BOOM (SonicBOOM): superscalar out-of-order RV64 core.

Adds the out-of-order machinery modules (ROB, rename, issue queues,
load/store queue) on top of the shared micro-architectural modules; the two
BOOM bugs (B1, B2) inject in the FPU rounding-mode path.

The timing model captures the essential OoO behaviour for the paper's
experiments: sub-1.0 effective CPI on independent streams, heavy branch
mispredict penalties, and unpipelined division.
"""

from repro.analyze.markers import hot_path
from repro.dut.core import CoreTiming, DutCore
from repro.isa.instructions import Category

# Module-level category groups: membership tests against these cost no
# per-call tuple construction in the hot _update_microarch override.
_LONG_LATENCY = frozenset({Category.DIV, Category.FP_DIV, Category.AMO})
_LOADS = frozenset({Category.LOAD, Category.FP_LOAD})
_STORES = frozenset({Category.STORE, Category.FP_STORE})


class BoomCore(DutCore):
    """2-wide out-of-order BOOM model with ROB/rename/IQ coverage state."""

    name = "boom"
    top_name = "BOOM"
    timing = CoreTiming(
        base=0.55,          # 2-wide issue on independent streams
        branch_taken=1.0,   # predicted-taken branches are cheap...
        jump=1.0,
        load_hit=1.5,
        store_hit=0.7,
        cache_miss=28.0,
        icache_miss=18.0,
        mul=2.0,
        div=26.0,
        fp_arith=2.0,
        fp_div=22.0,
        fp_fma=2.5,
        csr=6.0,            # CSR ops serialize the pipeline
        amo=16.0,
        trap=12.0,          # full pipeline flush
        extra={"mispredict": 9.0},
    )

    def _build_netlist(self):
        self._common_modules()
        top = self.top
        rob = top.submodule("ROB")
        rob_occ = self._reg(rob, "rob_occupancy", 3)
        rob_flush = self._reg(rob, "rob_flush", 1)
        rob_excep = self._reg(rob, "rob_exception", 1)
        sel = rob.logic("rob_sel", 2, sources=[rob_occ, rob_flush, rob_excep])
        rob.mux("rob_commit_mux", select=sel, width=64)
        rob.memory("rob_entries", depth=96, width=80)

        rename = top.submodule("Rename")
        map_hash = self._reg(rename, "map_hash", 4)
        freelist = self._reg(rename, "freelist_level", 3)
        sel = rename.logic("ren_sel", 2, sources=[map_hash, freelist])
        rename.mux("ren_mux", select=sel, width=8)
        rename.memory("map_table", depth=32, width=7)

        issue_queue = top.submodule("IssueQueue")
        iq_int = self._reg(issue_queue, "iq_int_level", 3)
        iq_mem = self._reg(issue_queue, "iq_mem_level", 2)
        iq_fp = self._reg(issue_queue, "iq_fp_level", 2)
        sel = issue_queue.logic("iq_sel", 2, sources=[iq_int, iq_mem, iq_fp])
        issue_queue.mux("iq_grant_mux", select=sel, width=8)

        lsq = top.submodule("LSQ")
        ldq_level = self._reg(lsq, "ldq_level", 3)
        stq_level = self._reg(lsq, "stq_level", 3)
        sel = lsq.logic("lsq_sel", 2, sources=[ldq_level, stq_level])
        lsq.mux("lsq_fwd_mux", select=sel, width=64)
        lsq.memory("ldq_entries", depth=24, width=96)
        lsq.memory("stq_entries", depth=16, width=96)

        execute = top.submodule("Execute")
        execute.logic("int_datapath", width=64, lut_cost=150_000)
        execute.register("pipe_data_regs", width=70_000)
        fpu = top.submodule("FPU")
        fpu.logic("fp_datapath", width=64, lut_cost=100_000)
        fpu.register("fp_pipe_regs", width=50_000)
        top.memory("int_prf", depth=100, width=64)
        top.memory("fp_prf", depth=64, width=64)

    def __init__(self, *args, **kwargs):
        self._mispredicts = 0
        self._branch_predictor = {}
        super().__init__(*args, **kwargs)

    # -- checkpoint protocol ---------------------------------------------------
    def core_state_dict(self):
        """The branch predictor (and its mispredict counter) deliberately
        survives iteration resets, like the persistent BTB/BIM arrays on
        the FPGA — so it must travel with a checkpoint for resumed
        latency accounting to stay bit-identical."""
        return {
            "branch_predictor": {str(pc): counter for pc, counter
                                 in self._branch_predictor.items()},
            "mispredicts": self._mispredicts,
        }

    def load_core_state(self, state):
        self._branch_predictor = {
            int(pc): int(counter)
            for pc, counter in state.get("branch_predictor", {}).items()
        }
        self._mispredicts = int(state.get("mispredicts", 0))

    @hot_path
    def _latency(self, record, decoded):
        cycles = super()._latency(record, decoded)
        if decoded is not None and decoded.spec.category is Category.BRANCH:
            taken = record.next_pc != record.pc + 4
            counter = self._branch_predictor.get(record.pc, 1)
            predicted_taken = counter >= 2
            if predicted_taken != taken:
                cycles += self.timing.extra["mispredict"]
                self._mispredicts += 1
            counter = min(3, counter + 1) if taken else max(0, counter - 1)
            self._branch_predictor[record.pc] = counter
        return cycles

    @hot_path
    def _update_microarch(self, record, decoded):
        super()._update_microarch(record, decoded)
        if decoded is None:
            return
        category = decoded.spec.category
        vals = self.vals
        # ROB occupancy rises with long-latency ops in flight, falls on
        # flushes (mispredicts, traps).
        occupancy = vals["rob_occupancy"]
        if category in _LONG_LATENCY:
            occupancy = min(7, occupancy + 2)
        elif category in _LOADS:
            occupancy = min(7, occupancy + 1)
        else:
            occupancy = max(0, occupancy - 1)
        flush = 1 if record.trap is not None else 0
        if flush:
            occupancy = 0
        vals["rob_occupancy"] = occupancy
        vals["rob_flush"] = flush
        vals["rob_exception"] = flush
        vals["map_hash"] = (decoded.rd * 3 + decoded.rs1) & 0xF
        vals["freelist_level"] = min(7, 7 - occupancy)
        vals["iq_int_level"] = min(7, occupancy + (1 if category is Category.ALU else 0))
        vals["iq_mem_level"] = min(3, occupancy // 2)
        vals["iq_fp_level"] = min(3, occupancy // 2 if decoded.spec.is_fp else 0)
        if category in _LOADS:
            vals["ldq_level"] = min(7, vals["ldq_level"] + 1)
        else:
            vals["ldq_level"] = max(0, vals["ldq_level"] - 1)
        if category in _STORES:
            vals["stq_level"] = min(7, vals["stq_level"] + 1)
        else:
            vals["stq_level"] = max(0, vals["stq_level"] - 1)

    def compiled_microarch_extra(self, decoded):
        # Mirrors the _update_microarch override above for the integer
        # value-slot categories (ALU/ALU_IMM/MUL/DIV): never a trap, never
        # a load/store, never FP, so flush is 0 and the ldq/stq levels
        # only drain.
        vals = self.vals
        category = decoded.spec.category
        occupancy_bump = 2 if category in _LONG_LATENCY else -1
        map_hash = (decoded.rd * 3 + decoded.rs1) & 0xF
        int_bump = 1 if category is Category.ALU else 0

        def extra():
            occupancy = vals["rob_occupancy"] + occupancy_bump
            if occupancy < 0:
                occupancy = 0
            elif occupancy > 7:
                occupancy = 7
            vals["rob_occupancy"] = occupancy
            vals["rob_flush"] = 0
            vals["rob_exception"] = 0
            vals["map_hash"] = map_hash
            vals["freelist_level"] = 7 - occupancy
            level = occupancy + int_bump
            vals["iq_int_level"] = 7 if level > 7 else level
            half = occupancy >> 1
            vals["iq_mem_level"] = 3 if half > 3 else half
            vals["iq_fp_level"] = 0
            ldq = vals["ldq_level"] - 1
            vals["ldq_level"] = 0 if ldq < 0 else ldq
            stq = vals["stq_level"] - 1
            vals["stq_level"] = 0 if stq < 0 else stq

        return extra
