"""DUT cores: cycle-approximate micro-architectural models of the paper's
three evaluation targets.

* :class:`RocketCore` — 64-bit in-order 5-stage (the main evaluation DUT)
* :class:`Cva6Core` — single-issue 6-stage application core
* :class:`BoomCore` — superscalar out-of-order core

Each core couples the architectural executor (with injectable Table II bug
hooks) to a structural RTL-IR netlist whose control registers are updated
behaviourally every instruction, so register-coverage instrumentation sees
the same kind of state the paper's FIRRTL pass instruments.
"""

from repro.dut.bugs import Bug, BUGS, BUGS_BY_ID, BuggyHooks, bugs_for_core
from repro.dut.core import DutCore
from repro.dut.rocket import RocketCore
from repro.dut.cva6 import Cva6Core
from repro.dut.boom import BoomCore

CORE_CLASSES = {
    "rocket": RocketCore,
    "cva6": Cva6Core,
    "boom": BoomCore,
}


def make_core(name, **kwargs):
    """Instantiate a DUT core by name (``rocket`` / ``cva6`` / ``boom``)."""
    try:
        cls = CORE_CLASSES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown core {name!r}") from None
    return cls(**kwargs)


__all__ = [
    "Bug",
    "BUGS",
    "BUGS_BY_ID",
    "BuggyHooks",
    "bugs_for_core",
    "DutCore",
    "RocketCore",
    "Cva6Core",
    "BoomCore",
    "CORE_CLASSES",
    "make_core",
]
