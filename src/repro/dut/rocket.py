"""Rocket: the 64-bit in-order 5-stage core (the paper's primary DUT).

The netlist carries the shared micro-architectural modules plus bulk
datapath nodes calibrated so :func:`repro.rtl.area.estimate_area` lands on
the Table III resource footprint (308,739 LUTs / 20 BRAM36 / 170,400 FFs
including instrumented cover points).
"""

from repro.dut.core import CoreTiming, DutCore


class RocketCore(DutCore):
    """64-bit in-order RV64GC-style Rocket model."""

    name = "rocket"
    top_name = "Rocket"
    timing = CoreTiming(
        base=1.0,
        branch_taken=3.0,
        jump=2.0,
        load_hit=2.0,
        store_hit=1.0,
        cache_miss=22.0,
        icache_miss=14.0,
        mul=4.0,
        div=33.0,
        fp_arith=4.0,
        fp_div=24.0,
        fp_fma=5.0,
        csr=3.0,
        amo=12.0,
        trap=5.0,
    )

    def _build_netlist(self):
        self._common_modules()
        top = self.top
        # Bulk datapath (not in any mux-select cone, so it contributes area
        # but is never instrumented as control registers).
        execute = top.submodule("Execute")
        execute.logic("int_datapath", width=64, lut_cost=100_000)
        execute.register("pipe_data_regs", width=64_000)
        fpu = top.submodule("FPU")
        fpu.logic("fp_datapath", width=64, lut_cost=96_000)
        fpu.register("fp_pipe_regs", width=46_000)
        muldiv = top.submodule("MulDiv")
        muldiv.logic("md_array", width=64, lut_cost=14_000)
        muldiv.register("md_pipe_regs", width=6_000)
        frontend = top.submodule("Frontend")
        frontend.logic("fetch_datapath", width=64, lut_cost=22_000)
        frontend.register("fetch_pipe_regs", width=22_000)
        frontend.memory("l1l2_buffers", depth=4096, width=32)
        lsu = top.submodule("LSU")
        lsu.logic("lsu_datapath", width=64, lut_cost=28_000)
        lsu.register("lsu_pipe_regs", width=20_000)
        lsu.memory("victim_buffer", depth=1024, width=64)
        csr_file = top.submodule("CSRFile")
        csr_file.logic("csr_datapath", width=64, lut_cost=9_000)
        csr_file.register("csr_regs", width=9_000)
        ptw = top.submodule("PTW")
        ptw.logic("ptw_datapath", width=64, lut_cost=4_000)
        ptw.register("ptw_regs", width=2_600)
        top.memory("int_regfile", depth=31, width=64)
