"""CVA6 (Ariane): single-issue, 6-stage application-class RV64 core.

Carries the CVA6-specific scoreboard module in addition to the shared
micro-architectural modules; all ten CVA6 bugs (C1-C10) inject here.
"""

from repro.analyze.markers import hot_path
from repro.dut.core import CoreTiming, DutCore
from repro.isa.instructions import Category

# Hoisted so the hot _update_microarch override allocates nothing per call.
_DIVIDES = frozenset({Category.DIV, Category.FP_DIV})


class Cva6Core(DutCore):
    """Single-issue CVA6 model with scoreboard-based issue tracking."""

    name = "cva6"
    top_name = "CVA6"
    timing = CoreTiming(
        base=1.0,
        branch_taken=5.0,   # deeper frontend than Rocket
        jump=2.0,
        load_hit=3.0,
        store_hit=1.0,
        cache_miss=25.0,
        icache_miss=16.0,
        mul=3.0,
        div=21.0,
        fp_arith=5.0,
        fp_div=30.0,        # iterative FPU divider
        fp_fma=6.0,
        csr=4.0,
        amo=14.0,
        trap=6.0,
    )

    def _build_netlist(self):
        self._common_modules()
        top = self.top
        scoreboard = top.submodule("Scoreboard")
        sb_issue = self._reg(scoreboard, "sb_issue_ptr", 3)
        sb_commit = self._reg(scoreboard, "sb_commit_ptr", 3)
        sb_full = self._reg(scoreboard, "sb_full", 1)
        sel = scoreboard.logic("sb_sel", 2, sources=[sb_issue, sb_commit, sb_full])
        scoreboard.mux("sb_fwd_mux", select=sel, width=64)
        scoreboard.memory("sb_entries", depth=8, width=160)

        execute = top.submodule("Execute")
        execute.logic("int_datapath", width=64, lut_cost=70_000)
        execute.register("pipe_data_regs", width=34_000)
        fpu = top.submodule("FPU")
        fpu.logic("fpnew_datapath", width=64, lut_cost=60_000)
        fpu.register("fp_pipe_regs", width=24_000)
        frontend = top.submodule("Frontend")
        frontend.logic("fetch_datapath", width=64, lut_cost=16_000)
        frontend.register("fetch_pipe_regs", width=12_000)
        top.memory("int_regfile", depth=31, width=64)

    @hot_path
    def _update_microarch(self, record, decoded):
        super()._update_microarch(record, decoded)
        if decoded is None:
            return
        # Scoreboard pointers advance with issue/commit; long-latency ops
        # leave the scoreboard partially full.
        vals = self.vals
        issue = (vals["sb_issue_ptr"] + 1) & 7
        vals["sb_issue_ptr"] = issue
        category = decoded.spec.category
        lag = 2 if category in _DIVIDES else 1
        vals["sb_commit_ptr"] = (issue - lag) & 7
        vals["sb_full"] = 1 if lag > 1 else 0

    def compiled_microarch_extra(self, decoded):
        # Mirrors the _update_microarch override above with the category
        # resolved at compile time (value slots never trap, never None).
        vals = self.vals
        lag = 2 if decoded.spec.category in _DIVIDES else 1
        full = 1 if lag > 1 else 0

        def extra():
            issue = (vals["sb_issue_ptr"] + 1) & 7
            vals["sb_issue_ptr"] = issue
            vals["sb_commit_ptr"] = (issue - lag) & 7
            vals["sb_full"] = full

        return extra
