"""The Table II bug inventory and its injection hooks.

Every bug is an architecturally-visible deviation from correct semantics,
implemented as an override in :class:`BuggyHooks` guarded by the bug id.
The REF model never installs these hooks, so a DUT/REF commit-record
mismatch occurs exactly when a stimulus *triggers* the bug — reproducing
the paper's time-to-bug experiments.
"""

from dataclasses import dataclass

from repro.isa import csr as CSR
from repro.ref.executor import ExecHooks
from repro.softfloat import F32, F64
from repro.softfloat.formats import (
    inf_bits_signed,
    is_inf,
    is_nan,
    is_zero,
    sign_of,
)


@dataclass(frozen=True)
class Bug:
    """One entry of the paper's Table II."""

    bug_id: str
    core: str
    description: str
    sw_time_s: float  # paper: software fuzzer detection time
    hw_time_s: float  # paper: TurboFuzz detection time


BUGS = (
    Bug("C1", "cva6", "Incorrect setting of DZ flag for 0/0 division", 39.53, 1.03),
    Bug("C2", "cva6", "Incorrect fflags set when fdiv divides by infinity (single)", 701.95, 1.48),
    Bug("C3", "cva6", "Wrong handling of invalid NaN-boxed single-precision fdiv", 931.30, 1.63),
    Bug("C4", "cva6", "Same as C2 (double precision)", 445.28, 1.31),
    Bug("C5", "cva6",
        "Double-precision multiplication yields wrong sign when rounding down",
        35.64, 1.03),
    Bug("C6", "cva6", "Duplicate of C3 (another stimulus)", 442.63, 1.31),
    Bug("C7", "cva6", "Co-simulation mismatch when reading stval CSR", 19.48, 1.01),
    Bug("C8", "cva6", "RV32A enabled without RV64A fails to raise exception", 581.21, 1.42),
    Bug("C9", "cva6", "fdiv returns infinity when dividing by 0", 610.81, 1.42),
    Bug("C10", "cva6", "Division of +0 by a normal value results in -0", 844.18, 1.58),
    Bug("B1", "boom", "Floating-point rounding mode not working correctly", 457.99, 1.31),
    Bug("B2", "boom", "FP instruction with invalid frm does not raise exception", 358.60, 1.24),
    Bug("R1", "rocket", "Executing ebreak does not increment minstret", 18.22, 1.01),
)

BUGS_BY_ID = {bug.bug_id: bug for bug in BUGS}


def bugs_for_core(core_name):
    """All Table II bugs belonging to one core."""
    return [bug for bug in BUGS if bug.core == core_name.lower()]


class CorrectHooks(ExecHooks):
    """Architecturally correct hooks honouring core configuration knobs.

    ``rv32a_only`` models a CVA6 configuration with only RV32A wired up:
    the correct behaviour is to raise illegal-instruction for ``.d`` AMOs
    (which bug C8 fails to do).
    """

    def __init__(self, rv32a_only=False):
        self.rv32a_only = rv32a_only

    def amo_legal(self, spec):
        if self.rv32a_only and spec.name.endswith(".d"):
            return False
        return True


class BuggyHooks(CorrectHooks):
    """Correct hooks plus a set of enabled Table II bugs."""

    def __init__(self, bug_ids=(), rv32a_only=False):
        super().__init__(rv32a_only=rv32a_only)
        self.bug_ids = frozenset(bug_ids)
        unknown = self.bug_ids - set(BUGS_BY_ID)
        if unknown:
            raise ValueError(f"unknown bug ids: {sorted(unknown)}")
        self.triggered = set()  # bug ids whose condition has fired

    def _fire(self, bug_id):
        self.triggered.add(bug_id)

    # --- rounding-mode bugs (B1, B2) -----------------------------------------
    def resolve_rm(self, instr_rm, frm):
        rm = frm if instr_rm == CSR.RM_DYN else instr_rm
        if rm not in CSR.VALID_RMS:
            if "B2" in self.bug_ids:
                # Invalid frm silently falls back to RNE instead of trapping.
                self._fire("B2")
                return CSR.RM_RNE
            return None
        if "B1" in self.bug_ids and rm != CSR.RM_RNE:
            # Rounding mode wiring broken: everything computes as RNE.
            self._fire("B1")
            return CSR.RM_RNE
        return rm

    # --- NaN boxing bugs (C3, C6) ----------------------------------------------
    def nan_unbox(self, bits64):
        if ("C3" in self.bug_ids or "C6" in self.bug_ids) and (
            bits64 & 0xFFFFFFFF_00000000 != 0xFFFFFFFF_00000000
        ):
            # Invalid box used verbatim instead of the canonical NaN.
            if "C3" in self.bug_ids:
                self._fire("C3")
            if "C6" in self.bug_ids:
                self._fire("C6")
            return bits64 & 0xFFFFFFFF
        return super().nan_unbox(bits64)

    # --- FPU result bugs (C1, C2, C4, C5, C9, C10) ------------------------------
    def fp_post(self, name, fmt, operands, result, flags, rm):
        bug_ids = self.bug_ids
        if name == "fdiv" and len(operands) == 2:
            dividend, divisor = operands
            dividend_zero = is_zero(dividend, fmt)
            divisor_zero = is_zero(divisor, fmt)
            if "C1" in bug_ids and dividend_zero and divisor_zero:
                # 0/0 must raise NV only; buggy unit also raises DZ.
                self._fire("C1")
                flags |= CSR.FFLAGS_DZ
            if "C9" in bug_ids and dividend_zero and divisor_zero:
                # 0/0 returns infinity (with DZ) instead of NaN (with NV).
                self._fire("C9")
                sign = sign_of(dividend, fmt) ^ sign_of(divisor, fmt)
                result = inf_bits_signed(sign, fmt)
                flags = CSR.FFLAGS_DZ
            if divisor_zero is False and is_inf(divisor, fmt) and not is_nan(dividend, fmt):
                if "C2" in bug_ids and fmt is F32 and not is_inf(dividend, fmt):
                    # finite / inf = exact zero; buggy unit raises NX.
                    self._fire("C2")
                    flags |= CSR.FFLAGS_NX
                if "C4" in bug_ids and fmt is F64 and not is_inf(dividend, fmt):
                    self._fire("C4")
                    flags |= CSR.FFLAGS_NX
            if (
                "C10" in bug_ids
                and dividend_zero
                and not divisor_zero
                and not is_nan(divisor, fmt)
                and not is_inf(divisor, fmt)
                and sign_of(dividend, fmt) == 0
                and sign_of(divisor, fmt) == 0
            ):
                # +0 / normal comes out as -0.
                self._fire("C10")
                result |= fmt.sign_bit
        if (
            "C5" in bug_ids
            and name == "fmul"
            and fmt is F64
            and rm == CSR.RM_RDN
            and len(operands) == 2
            and sign_of(operands[0], fmt) != sign_of(operands[1], fmt)
            and not is_nan(result, fmt)
        ):
            # Negative product loses its sign under round-down.
            self._fire("C5")
            result &= ~fmt.sign_bit
        return result, flags

    # --- CSR bug (C7) -------------------------------------------------------------
    def csr_read(self, address, value):
        if "C7" in self.bug_ids and address == CSR.STVAL:
            # DUT returns a stale zero for stval.
            if value != 0:
                self._fire("C7")
            return 0
        return value

    # --- AMO legality bug (C8) ------------------------------------------------------
    def amo_legal(self, spec):
        legal = super().amo_legal(spec)
        if not legal and "C8" in self.bug_ids:
            # The decoder fails to reject RV64A encodings.
            self._fire("C8")
            return True
        return legal

    # --- retirement bug (R1) ----------------------------------------------------------
    def counts_minstret(self, decoded, trapped):
        if (
            "R1" in self.bug_ids
            and decoded is not None
            and decoded.name == "ebreak"
        ):
            self._fire("R1")
            return False
        return True
