"""Shared DUT core machinery.

A :class:`DutCore` couples three things:

1. an architectural executor with (optionally buggy) hooks,
2. a structural RTL-IR netlist whose *control registers* mirror the
   micro-architectural state updated behaviourally every instruction, and
3. a latency model that converts the committed instruction stream into
   cycles, which the harness's :class:`~repro.harness.clock.VirtualClock`
   turns into the paper's 100 MHz wall-clock time axis.

Runtime coverage sampling is performance-critical (it runs for every
instruction of every fuzzing iteration), so the core keeps all
micro-architectural values in a plain dict and hands per-module value
tuples to :meth:`~repro.coverage.ModuleCoverage.observe_state`, which
memoizes the tuple -> coverage-index mapping.

Subclasses build the netlist (:meth:`_build_netlist`), set their timing
table, and may extend :meth:`_update_microarch` with core-specific state
(e.g. BOOM's ROB occupancy).
"""

from dataclasses import dataclass, field

from repro.dut.bugs import BuggyHooks, CorrectHooks
from repro.dut.caches import DirectMappedCache
from repro.isa import csr as CSR
from repro.isa.decoder import try_decode
from repro.isa.instructions import Category
from repro.ref.executor import ExecConfig, Executor
from repro.ref.memory import SparseMemory
from repro.ref.state import ArchState
from repro.rtl.module import Module

# Stable small hashes for instruction identities.
_CATEGORY_INDEX = {category: index for index, category in enumerate(Category)}
_CATEGORY_DOMAIN = tuple(range(len(Category)))


def _name_hash(name):
    return sum(ord(ch) * (i + 1) for i, ch in enumerate(name)) & 0xF


# Precomputed per-mnemonic hash (hot path).
from repro.isa.instructions import SPECS as _SPECS  # noqa: E402

_NAME_HASH = {spec.name: _name_hash(spec.name) for spec in _SPECS}


_TRAP_CAUSE_DOMAIN = tuple(range(12))


@dataclass
class CoreTiming:
    """Per-instruction latency table, in cycles (floats allow sub-cycle
    effective CPI on superscalar cores)."""

    base: float = 1.0
    branch_taken: float = 3.0
    jump: float = 2.0
    load_hit: float = 2.0
    store_hit: float = 1.0
    cache_miss: float = 20.0
    icache_miss: float = 12.0
    mul: float = 4.0
    div: float = 33.0
    fp_arith: float = 4.0
    fp_div: float = 24.0
    fp_fma: float = 5.0
    csr: float = 3.0
    amo: float = 10.0
    trap: float = 5.0
    extra: dict = field(default_factory=dict)


class DutCore:
    """Base class for the Rocket/CVA6/BOOM DUT models."""

    name = "generic"
    timing = CoreTiming()
    default_frequency_hz = 100e6  # the paper's FPGA clock

    def __init__(self, bugs=(), rv32a_only=False, reset_pc=0x8000_0000):
        self.reset_pc = reset_pc
        self.rv32a_only = rv32a_only
        if bugs:
            self.hooks = BuggyHooks(bugs, rv32a_only=rv32a_only)
        else:
            self.hooks = CorrectHooks(rv32a_only=rv32a_only)
        self.memory = SparseMemory()
        self.state = ArchState(pc=reset_pc)
        self.executor = Executor(
            self.state, self.memory, config=ExecConfig(), hooks=self.hooks
        )
        self.icache = DirectMappedCache(sets=256)
        self.dcache = DirectMappedCache(sets=256)
        self.coverage = None
        self._cov_bindings = []  # (ModuleCoverage, names, layout positions)
        self._cov_by_module = {}
        self._active_modules = set()
        self._prev_active = set()
        self.cycles = 0.0
        self.retired = 0
        self._prev_rd = 0
        self._br_hist = 0
        self.top = Module(self.top_name)
        self.regs = {}
        self.vals = {}
        self._build_netlist()

    # -- to be provided by subclasses ------------------------------------------
    top_name = "Core"

    def _build_netlist(self):
        raise NotImplementedError

    # -- netlist helpers --------------------------------------------------------
    def _reg(self, module, name, width, domain=None):
        register = module.register(name, width, domain=domain)
        self.regs[name] = register
        self.vals[name] = 0
        return register

    def _static_bank(self, module, prefix, widths):
        """Structural-only control registers (replay flags, beat counters,
        fill buffers...).  They participate in instrumentation layout and
        reachability analysis like any control register, but this
        abstraction level does not model their dynamics, so at runtime
        they hold their reset value.  Real modules carry far more control
        bits than the handful we animate; these banks restore realistic
        per-module control-register totals."""
        bank = []
        for position, width in enumerate(widths):
            register = module.register(f"{prefix}{position}", width)
            self.regs[register.name] = register
            bank.append(register)
        return bank

    def _common_modules(self):
        """Build the micro-architectural modules every core shares.

        Each module gets its control registers plus muxes whose selects
        trace back to them, so the instrumentation pass discovers exactly
        these registers.  Register bit budgets are sized like RocketChip's
        modules: the big datapath-adjacent modules carry well over
        ``maxStateSize`` control bits, PTW carries almost none (the paper
        calls out FPU/CSRFile/PTW as poorly reachable under the legacy
        layout, which emerges here from their restricted-value domains).
        """
        top = self.top
        frontend = top.submodule("Frontend")
        regs = [
            self._reg(frontend, "pc_lo", 3),
            self._reg(frontend, "br_hist", 2),
            self._reg(frontend, "icache_state", 2, domain=(0, 1, 2)),
            self._reg(frontend, "ras_ptr", 2),
            self._reg(frontend, "fq_count", 3),
            self._reg(frontend, "btb_tag_lo", 5),
            self._reg(frontend, "pred_cnt", 2),
            self._reg(frontend, "fetch_addr_lo", 4),
            self._reg(frontend, "misfetch", 1),
        ]
        regs += self._static_bank(frontend, "if_ctrl", (6, 6, 6, 6))
        sel = frontend.logic("npc_sel", 2, sources=regs)
        frontend.mux("next_pc_mux", select=sel, width=64)
        frontend.mux("fetch_buf_mux", select=regs[4], width=32)
        frontend.memory("icache_data", depth=2048, width=64)
        frontend.memory("icache_tags", depth=256, width=20)
        frontend.memory("btb", depth=512, width=40)

        decode = top.submodule("Decode")
        regs = [
            self._reg(decode, "dec_class", 5, domain=_CATEGORY_DOMAIN),
            self._reg(decode, "dec_illegal", 1),
            self._reg(decode, "raw_hazard", 1),
            self._reg(decode, "rd_lo", 3),
            self._reg(decode, "rs1_lo", 3),
            self._reg(decode, "rs2_lo", 3),
            self._reg(decode, "opcode_lo", 5),
            self._reg(decode, "imm_sign", 1),
            self._reg(decode, "dec_buf_cnt", 2),
        ]
        regs += self._static_bank(decode, "id_ctrl", (6, 6, 6))
        sel = decode.logic("dec_sel", 2, sources=regs)
        decode.mux("decode_mux", select=sel, width=32)

        execute = top.submodule("Execute")
        regs = [
            self._reg(execute, "ex_subop", 4),
            self._reg(execute, "br_taken", 1),
            self._reg(execute, "wb_sel", 2, domain=(0, 1, 2)),
            self._reg(execute, "fwd_sel", 2),
            self._reg(execute, "operand_a_lo", 4),
            self._reg(execute, "operand_b_lo", 4),
            self._reg(execute, "alu_res_lo", 6),
            self._reg(execute, "result_zero", 1),
            self._reg(execute, "result_sign", 1),
            self._reg(execute, "cmp_flags", 2),
            self._reg(execute, "shamt_reg", 4),
        ]
        regs += self._static_bank(execute, "ex_ctrl", (6, 6, 6, 6))
        sel = execute.logic("ex_sel", 2, sources=regs)
        execute.mux("alu_out_mux", select=sel, width=64)
        execute.mux("bypass_mux", select=regs[3], width=64)

        muldiv = top.submodule("MulDiv")
        regs = [
            self._reg(muldiv, "md_state", 2, domain=(0, 1, 2, 3)),
            self._reg(muldiv, "md_counter", 5),
            self._reg(muldiv, "md_op", 2, domain=(0, 1, 2)),
            self._reg(muldiv, "md_sign", 2),
            self._reg(muldiv, "md_zero", 1),
            self._reg(muldiv, "md_word", 1),
            self._reg(muldiv, "md_quot_lo", 4),
            self._reg(muldiv, "md_rem_lo", 4),
        ]
        regs += self._static_bank(muldiv, "md_ctrl", (6, 6, 6))
        sel = muldiv.logic("md_sel", 2, sources=regs)
        muldiv.mux("md_out_mux", select=sel, width=64)

        fpu = top.submodule("FPU")
        regs = [
            self._reg(fpu, "fpu_state", 3, domain=(0, 1, 2, 3, 4, 5)),
            self._reg(fpu, "fpu_fmt", 1),
            self._reg(fpu, "fpu_rm", 3, domain=(0, 1, 2, 3, 4, 7)),
            self._reg(fpu, "fpu_flags", 5),
            self._reg(fpu, "fdiv_cnt", 5, domain=tuple(range(25))),
            self._reg(fpu, "fp_sign", 2),
            self._reg(fpu, "fp_exp_lo", 5),
            self._reg(fpu, "fp_man_lo", 6),
            self._reg(fpu, "fp_nv_sticky", 1),
        ]
        regs += self._static_bank(fpu, "fp_ctrl", (5, 4))
        sel = fpu.logic("fpu_sel", 3, sources=regs)
        fpu.mux("fpu_out_mux", select=sel, width=64)
        fpu.memory("fp_regfile", depth=32, width=64)

        lsu = top.submodule("LSU")
        regs = [
            self._reg(lsu, "lsu_state", 3, domain=(0, 1, 2, 3, 4)),
            self._reg(lsu, "mem_size", 2),
            self._reg(lsu, "mem_op", 2, domain=(0, 1, 2, 3)),
            self._reg(lsu, "dcache_hit", 1),
            self._reg(lsu, "addr_lo", 3),
            self._reg(lsu, "line_off", 3),
            self._reg(lsu, "set_lo", 4),
            self._reg(lsu, "wdata_lo", 5),
            self._reg(lsu, "wb_dirty", 1),
        ]
        regs += self._static_bank(lsu, "ls_ctrl", (6, 6, 6, 6))
        sel = lsu.logic("lsu_sel", 3, sources=regs)
        lsu.mux("lsu_resp_mux", select=sel, width=64)
        lsu.memory("dcache_data", depth=2048, width=64)
        lsu.memory("dcache_tags", depth=256, width=22)

        csr_file = top.submodule("CSRFile")
        regs = [
            self._reg(csr_file, "csr_cls", 3, domain=(0, 1, 2, 3, 4, 5)),
            self._reg(csr_file, "priv", 2, domain=(0, 1, 3)),
            self._reg(csr_file, "trap_cause", 4, domain=_TRAP_CAUSE_DOMAIN),
            self._reg(csr_file, "trap_valid", 1),
            self._reg(csr_file, "fs_status", 2),
            self._reg(csr_file, "csr_addr_lo", 4),
            self._reg(csr_file, "csr_wdata_lo", 5),
            self._reg(csr_file, "mie_bit", 1),
        ]
        regs += self._static_bank(csr_file, "csr_ctrl", (6, 6))
        sel = csr_file.logic("csr_sel", 3, sources=regs)
        csr_file.mux("csr_rdata_mux", select=sel, width=64)

        ptw = top.submodule("PTW")
        regs = [
            self._reg(ptw, "ptw_state", 2, domain=(0, 1, 2, 3)),
            self._reg(ptw, "ptw_level", 2, domain=(0, 1, 2)),
        ]
        sel = ptw.logic("ptw_sel", 2, sources=regs)
        ptw.mux("ptw_resp_mux", select=sel, width=64)
        ptw.memory("tlb", depth=32, width=64)

    # -- coverage wiring -----------------------------------------------------------
    CONDITIONAL_MODULES = frozenset({"MulDiv", "FPU", "LSU", "CSRFile", "PTW"})

    def attach_coverage(self, design_coverage):
        """Install a :class:`~repro.coverage.DesignCoverage` built over
        :attr:`top`; micro-architectural samples start flowing into it.

        Only the *dynamic* control registers (those this abstraction level
        animates) enter the observation tuples; static structural registers
        hold zero and contribute nothing to the running index.
        """
        self.coverage = design_coverage
        self._cov_bindings = []
        self._cov_by_module = {}
        for module_cov in design_coverage.modules:
            names = []
            positions = []
            for position, register in enumerate(module_cov.layout.registers):
                if register.name in self.vals:
                    names.append(register.name)
                    positions.append(position)
            binding = (module_cov, tuple(names), tuple(positions))
            self._cov_bindings.append(binding)
            self._cov_by_module[module_cov.name] = binding
        self._active_modules = set()
        self._prev_active = set()

    def _observe_active(self):
        """Observe always-active modules plus any module whose state was
        touched this instruction or the last (to capture return-to-idle)."""
        vals = self.vals
        observe_set = self._active_modules | self._prev_active
        for module_cov, names, positions in self._cov_bindings:
            if (module_cov.name in self.CONDITIONAL_MODULES
                    and module_cov.name not in observe_set):
                continue
            module_cov.observe_state(
                tuple([vals[name] for name in names]), positions
            )
        self._prev_active = self._active_modules
        self._active_modules = set()

    def _observe_module(self, module_name):
        binding = self._cov_by_module.get(module_name)
        if binding is None:
            return
        module_cov, names, positions = binding
        vals = self.vals
        module_cov.observe_state(
            tuple([vals[name] for name in names]), positions
        )

    # -- program control ----------------------------------------------------------------
    def reset(self, keep_memory=False):
        """Reset architectural and micro-architectural state."""
        if not keep_memory:
            self.memory = SparseMemory()
        self.state = ArchState(pc=self.reset_pc)
        self.executor = Executor(
            self.state, self.memory, config=self.executor.config, hooks=self.hooks
        )
        self.icache.flush()
        self.dcache.flush()
        self.cycles = 0.0
        self.retired = 0
        self._prev_rd = 0
        self._br_hist = 0
        for name in self.vals:
            self.vals[name] = 0

    def load_program(self, address, words):
        self.memory.write_program(address, words)

    # -- execution ------------------------------------------------------------------------
    def step(self):
        """Execute one instruction; update microarch state and cycles."""
        record = self.executor.step()
        decoded = try_decode(record.word) if record.word else None
        self.cycles += self._latency(record, decoded)
        self.retired += 1
        self._update_microarch(record, decoded)
        if self.coverage is not None:
            self._observe_active()
        return record

    def run(self, max_instructions, stop_on=None):
        """Step up to ``max_instructions``; ``stop_on(record)`` can halt."""
        records = []
        for _ in range(max_instructions):
            record = self.step()
            records.append(record)
            if stop_on is not None and stop_on(record):
                break
        return records

    # -- latency model -----------------------------------------------------------------------
    def _latency(self, record, decoded):
        timing = self.timing
        cycles = timing.base
        if not self.icache.access(record.pc):
            cycles += timing.icache_miss
        if record.trap is not None:
            return cycles + timing.trap
        if decoded is None:
            return cycles
        category = decoded.spec.category
        if category is Category.BRANCH:
            if record.next_pc != record.pc + 4:
                cycles += timing.branch_taken
        elif category is Category.JUMP:
            cycles += timing.jump
        elif category in (Category.LOAD, Category.FP_LOAD):
            address = record.pc if record.mem_addr is None else record.mem_addr
            hit = self.dcache.access(address)
            cycles += timing.load_hit if hit else timing.cache_miss
        elif category in (Category.STORE, Category.FP_STORE):
            if record.mem_addr is not None:
                hit = self.dcache.access(record.mem_addr)
                cycles += timing.store_hit if hit else timing.cache_miss
        elif category is Category.MUL:
            cycles += timing.mul
        elif category is Category.DIV:
            cycles += timing.div
        elif category is Category.AMO:
            cycles += timing.amo
        elif category is Category.FP_DIV:
            cycles += timing.fp_div
        elif category is Category.FP_FMA:
            cycles += timing.fp_fma
        elif category in (Category.FP_ARITH, Category.FP_CVT, Category.FP_CMP,
                          Category.FP_MOVE):
            cycles += timing.fp_arith
        elif category is Category.CSR:
            cycles += timing.csr
        return cycles

    # -- microarch state update ---------------------------------------------------------------
    def _update_microarch(self, record, decoded):
        """Drive the control-register values from this instruction."""
        vals = self.vals
        vals["pc_lo"] = (record.pc >> 2) & 7
        vals["fetch_addr_lo"] = (record.pc >> 2) & 15
        vals["btb_tag_lo"] = (record.pc >> 5) & 31
        vals["fq_count"] = (vals["fq_count"] + 1) & 7

        active = self._active_modules
        if record.trap is not None:
            vals["trap_valid"] = 1
            vals["trap_cause"] = min(record.trap.cause, 11)
            vals["dec_illegal"] = 1 if record.trap.cause == 2 else 0
            vals["misfetch"] = 1 if record.trap.cause in (0, 1) else 0
            active.add("CSRFile")
            self._prev_rd = 0
            return

        vals["trap_valid"] = 0
        vals["dec_illegal"] = 0
        vals["misfetch"] = 0
        if decoded is None:
            return
        spec = decoded.spec
        category = spec.category
        vals["dec_class"] = _CATEGORY_INDEX[category]
        vals["ex_subop"] = _NAME_HASH[decoded.name]
        vals["rd_lo"] = decoded.rd & 7
        vals["rs1_lo"] = decoded.rs1 & 7
        vals["rs2_lo"] = decoded.rs2 & 7
        vals["opcode_lo"] = (record.word >> 2) & 31
        vals["imm_sign"] = 1 if decoded.imm < 0 else 0
        vals["dec_buf_cnt"] = (vals["dec_buf_cnt"] + 1) & 3
        vals["shamt_reg"] = decoded.shamt & 15

        raw = 1 if self._prev_rd and self._prev_rd in (decoded.rs1, decoded.rs2) else 0
        vals["raw_hazard"] = raw
        self._prev_rd = record.rd or 0

        taken = 0
        if category is Category.BRANCH:
            taken = 1 if record.next_pc != record.pc + 4 else 0
            self._br_hist = ((self._br_hist << 1) | taken) & 3
            vals["br_hist"] = self._br_hist
            vals["pred_cnt"] = (vals["pred_cnt"] + (1 if taken else -1)) & 3
        vals["br_taken"] = taken
        if category is Category.JUMP:
            vals["ras_ptr"] = (vals["ras_ptr"] + 1) & 3

        state = self.state
        rs1_value = state.xregs[decoded.rs1]
        vals["operand_a_lo"] = rs1_value & 15
        vals["operand_b_lo"] = state.xregs[decoded.rs2] & 15
        if record.rd is not None:
            vals["wb_sel"] = 1
            vals["alu_res_lo"] = record.rd_value & 63
            vals["result_zero"] = 1 if record.rd_value == 0 else 0
            vals["result_sign"] = (record.rd_value >> 63) & 1
        elif record.frd is not None:
            vals["wb_sel"] = 2
        else:
            vals["wb_sel"] = 0
        vals["cmp_flags"] = ((vals["result_zero"] << 1) | vals["result_sign"]) & 3
        vals["fwd_sel"] = raw * 2 + (1 if vals["wb_sel"] else 0)

        # MulDiv
        if category is Category.MUL or category is Category.DIV:
            active.add("MulDiv")
            vals["md_op"] = 1 if category is Category.MUL else 2
            vals["md_sign"] = ((rs1_value >> 63) << 1 | (state.xregs[decoded.rs2] >> 63)) & 3
            vals["md_zero"] = 1 if state.xregs[decoded.rs2] == 0 else 0
            vals["md_word"] = 1 if decoded.name.endswith("w") else 0
            if record.rd_value is not None:
                vals["md_quot_lo"] = record.rd_value & 15
                vals["md_rem_lo"] = (record.rd_value >> 4) & 15
            if category is Category.DIV:
                self._multi_cycle("MulDiv", "md_state", "md_counter",
                                  int(self.timing.div))
            else:
                vals["md_state"] = 1
                vals["md_counter"] = int(self.timing.mul) & 31
        else:
            vals["md_state"] = 0
            vals["md_op"] = 0

        # FPU
        if spec.is_fp:
            active.add("FPU")
            vals["fpu_state"] = _FPU_STATE.get(category, 1)
            vals["fpu_fmt"] = 1 if decoded.name.endswith(".d") else 0
            vals["fpu_rm"] = decoded.rm if decoded.rm in (0, 1, 2, 3, 4, 7) else 7
            vals["fpu_flags"] = record.fflags_set & 0x1F
            if record.fflags_set & CSR.FFLAGS_NV:
                vals["fp_nv_sticky"] = 1
            if record.frd_value is not None:
                vals["fp_sign"] = ((record.frd_value >> 63) << 1 | ((record.frd_value >> 31) & 1)) & 3
                vals["fp_exp_lo"] = (record.frd_value >> 52) & 31
                vals["fp_man_lo"] = record.frd_value & 63
            if category is Category.FP_DIV:
                self._multi_cycle("FPU", "fpu_state", "fdiv_cnt",
                                  int(self.timing.fp_div), busy_value=2)
        else:
            vals["fpu_state"] = 0

        # LSU
        if spec.is_memory:
            active.add("LSU")
            op = _MEM_OP[category]
            vals["mem_op"] = op
            vals["lsu_state"] = 4 if category is Category.AMO else op
            address = record.mem_addr
            if address is not None:
                vals["addr_lo"] = address & 7
                vals["line_off"] = (address >> 3) & 7
                vals["set_lo"] = (address >> 6) & 15
                vals["mem_size"] = (record.mem_size or 1).bit_length() - 1
                if record.mem_value is not None:
                    vals["wdata_lo"] = record.mem_value & 31
                    vals["wb_dirty"] = 1
                vals["dcache_hit"] = 1 if self.dcache.hits else 0
        else:
            vals["lsu_state"] = 0
            vals["mem_op"] = 0

        # CSRFile
        if category is Category.CSR:
            active.add("CSRFile")
            vals["csr_cls"] = self._csr_class(decoded.csr)
            vals["csr_addr_lo"] = decoded.csr & 15
            if record.csr_value is not None:
                vals["csr_wdata_lo"] = record.csr_value & 31
        elif category is Category.SYSTEM:
            active.add("CSRFile")
            vals["csr_cls"] = 5
        else:
            vals["csr_cls"] = 0
        status = state.csrs[CSR.MSTATUS]
        fs_status = (status >> CSR.MSTATUS_FS_SHIFT) & 3
        mie_bit = (status >> 3) & 1
        if (fs_status != vals["fs_status"] or mie_bit != vals["mie_bit"]
                or state.privilege != vals["priv"]):
            active.add("CSRFile")
        vals["fs_status"] = fs_status
        vals["mie_bit"] = mie_bit
        vals["priv"] = state.privilege

        # PTW activity is tied to fences in this M-mode-only model.
        if category is Category.FENCE:
            active.add("PTW")
            ptw_state = (vals["ptw_state"] + 1) & 3
            vals["ptw_state"] = ptw_state if ptw_state else 1
            vals["ptw_level"] = (vals["ptw_level"] + 1) % 3

    @staticmethod
    def _csr_class(address):
        if address in (CSR.FFLAGS, CSR.FRM, CSR.FCSR):
            return 1
        if address in (CSR.MSTATUS, CSR.MISA, CSR.SSTATUS):
            return 2
        if address in (CSR.MCYCLE, CSR.MINSTRET, CSR.CYCLE, CSR.INSTRET, CSR.TIME):
            return 3
        if address in (CSR.MEPC, CSR.MCAUSE, CSR.MTVAL, CSR.MTVEC,
                       CSR.SEPC, CSR.SCAUSE, CSR.STVAL, CSR.STVEC):
            return 4
        return 5

    def _multi_cycle(self, module_name, state_name, counter_name, total,
                     busy_value=2):
        """Expose intermediate busy-counter states to coverage (a few
        sampled values rather than one observation per cycle)."""
        vals = self.vals
        vals[state_name] = busy_value
        if self.coverage is None:
            vals[counter_name] = 0
            return
        for sample in (total & 31, (total // 2) & 31, 1):
            vals[counter_name] = min(sample, 24)
            self._observe_module(module_name)
        vals[counter_name] = 0

    # -- introspection -----------------------------------------------------------------
    @property
    def coverage_points(self):
        return self.coverage.total_points if self.coverage else 0

    def seconds_elapsed(self, frequency_hz=None):
        """Virtual seconds of FPGA time consumed so far."""
        frequency = frequency_hz or self.default_frequency_hz
        return self.cycles / frequency


_FPU_STATE = {
    Category.FP_ARITH: 1,
    Category.FP_DIV: 2,
    Category.FP_FMA: 3,
    Category.FP_CVT: 4,
    Category.FP_CMP: 5,
    Category.FP_MOVE: 5,
    Category.FP_LOAD: 1,
    Category.FP_STORE: 1,
}

_MEM_OP = {
    Category.LOAD: 1,
    Category.FP_LOAD: 1,
    Category.STORE: 2,
    Category.FP_STORE: 2,
    Category.AMO: 3,
}
