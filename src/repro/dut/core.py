"""Shared DUT core machinery.

A :class:`DutCore` couples three things:

1. an architectural executor with (optionally buggy) hooks,
2. a structural RTL-IR netlist whose *control registers* mirror the
   micro-architectural state updated behaviourally every instruction, and
3. a latency model that converts the committed instruction stream into
   cycles, which the harness's :class:`~repro.harness.clock.VirtualClock`
   turns into the paper's 100 MHz wall-clock time axis.

Runtime coverage sampling is performance-critical (it runs for every
instruction of every fuzzing iteration).  The core keeps all
micro-architectural values in a plain dict (subclasses extend
:meth:`_update_microarch` through the same interface), but observation no
longer rebuilds name-keyed value tuples per instruction: each instrumented
module gets a :class:`_SlotBinding` resolved once in
:meth:`attach_coverage` — a position-indexed view (itemgetter over the
dynamic register names, per-position contribution tables from the layout)
that maintains a *running XOR index* by diffing against the previously
observed values, so per-instruction cost scales with the number of
registers that changed.  The binding then samples the running index into
the module's coverage map ("update-on-write, sample-on-tick" — the
software analogue of the hardware computing the index combinationally for
free).  The pre-overhaul tuple/memo path is preserved as
``use_reference_observer()`` and is asserted bit-identical by
``tests/test_hotpath_equiv.py``.

Subclasses build the netlist (:meth:`_build_netlist`), set their timing
table, and may extend :meth:`_update_microarch` with core-specific state
(e.g. BOOM's ROB occupancy).
"""

from dataclasses import dataclass, field
from operator import itemgetter

from repro.analyze.markers import hot_path
from repro.dut.bugs import BuggyHooks, CorrectHooks
from repro.dut.caches import DirectMappedCache
from repro.isa import csr as CSR
from repro.perf.evict import evict_half
from repro.isa.decoder import _CACHE as _DECODE_CACHE
from repro.isa.decoder import try_decode
from repro.isa.instructions import (
    Category,
    FP_CATEGORIES as _FP_CATEGORIES,
    MEMORY_CATEGORIES as _MEMORY_CATEGORIES,
)
from repro.ref.executor import ExecConfig, Executor
from repro.ref.memory import SparseMemory
from repro.ref.state import ArchState
from repro.rtl.module import Module

# Stable small hashes for instruction identities.
_CATEGORY_INDEX = {category: index for index, category in enumerate(Category)}
_CATEGORY_DOMAIN = tuple(range(len(Category)))

# Per-step enum constants as plain module globals (one LOAD_GLOBAL each on
# the hot path instead of an attribute lookup on the enum class).
_BRANCH = Category.BRANCH
_JUMP = Category.JUMP
_MUL = Category.MUL
_DIV = Category.DIV
_AMO = Category.AMO
_FP_DIV = Category.FP_DIV
_CSR_CAT = Category.CSR
_SYSTEM = Category.SYSTEM
_FENCE = Category.FENCE


def _name_hash(name):
    return sum(ord(ch) * (i + 1) for i, ch in enumerate(name)) & 0xF


# Precomputed per-mnemonic hash (hot path).
from repro.isa.instructions import SPECS as _SPECS  # noqa: E402

_NAME_HASH = {spec.name: _name_hash(spec.name) for spec in _SPECS}


_TRAP_CAUSE_DOMAIN = tuple(range(12))

# Bound for the combined-observation skip cache (idempotent to evict).
_COMBINED_SKIP_LIMIT = 1 << 20


class _SlotBinding:
    """Allocation-free per-module observer, resolved once per attach.

    Holds a position-indexed view of one module's dynamic control
    registers: an :func:`~operator.itemgetter` over their names (one C
    call per observation instead of a Python list-build), the layout's
    per-position contribution tables and width masks, and a running XOR
    index diffed against the previously observed value tuple — so the
    per-instruction cost scales with the number of registers that
    *changed*, and an unchanged module costs one tuple compare.
    """

    __slots__ = ("cov", "names", "seen", "getter", "tables", "masks",
                 "prev", "contribs", "index")

    def __init__(self, module_cov, names, positions, vals):
        self.cov = module_cov
        self.names = tuple(names)
        # Direct reference into the module's CoverageMap; valid across
        # checkpoint restores because CoverageMap.load_state mutates the
        # set in place instead of replacing it.
        self.seen = module_cov.map._seen
        layout_tables = module_cov.tables
        layout_masks = module_cov.value_masks
        self.tables = [layout_tables[position] for position in positions]
        self.masks = [layout_masks[position] for position in positions]
        if not names:
            self.getter = lambda values: ()
        elif len(names) == 1:
            name = names[0]
            self.getter = lambda values: (values[name],)
        else:
            self.getter = itemgetter(*names)
        self.prev = ()
        self.contribs = []
        self.index = 0
        self.rebind(vals)

    def rebind(self, vals):
        """Recompute the running index from the current register values."""
        self.seen = self.cov.map._seen  # refresh after any map restore
        values = self.getter(vals)
        self.prev = values
        contribs = [table[value & mask] for table, mask, value
                    in zip(self.tables, self.masks, values)]
        self.contribs = contribs
        index = 0
        for contribution in contribs:
            index ^= contribution
        self.index = index

    @hot_path
    def observe(self, vals):
        """Sample the module state into the coverage map (hot path)."""
        values = self.getter(vals)
        index = self.index
        if values != self.prev:
            prev = self.prev
            contribs = self.contribs
            tables = self.tables
            masks = self.masks
            for position, value in enumerate(values):
                if value != prev[position]:
                    new_contribution = tables[position][value & masks[position]]
                    index ^= contribs[position] ^ new_contribution
                    contribs[position] = new_contribution
            self.index = index
            self.prev = values
        seen = self.seen
        if index in seen:
            return False
        seen.add(index)
        return True


@dataclass
class CoreTiming:
    """Per-instruction latency table, in cycles (floats allow sub-cycle
    effective CPI on superscalar cores)."""

    base: float = 1.0
    branch_taken: float = 3.0
    jump: float = 2.0
    load_hit: float = 2.0
    store_hit: float = 1.0
    cache_miss: float = 20.0
    icache_miss: float = 12.0
    mul: float = 4.0
    div: float = 33.0
    fp_arith: float = 4.0
    fp_div: float = 24.0
    fp_fma: float = 5.0
    csr: float = 3.0
    amo: float = 10.0
    trap: float = 5.0
    extra: dict = field(default_factory=dict)


class _FusedObserver:
    """One combined-index observer for all always-observed modules.

    Fuses their slot bindings behind a single itemgetter over the union of
    their dynamic register names and a single previous-values tuple, and
    concatenates the member modules' running XOR indices into ONE integer:
    each module occupies its own bit field and every contribution table is
    pre-shifted into the owning module's field, so a register change is
    two list indexings and two XORs on a single int — no per-module
    routing.  (A value-tuple memo was tried here and measured ~98% misses:
    the group contains free-running counters, so the combined state almost
    never repeats — incremental diffing is the right shape.)

    Observation then needs one membership test: ``seen_combined`` is a
    skip cache whose entries assert "this combined state's per-module
    indices are already recorded in their coverage maps".  On first sight
    the combined index is decomposed immediately and each field added to
    its module's seen-set, so the per-module maps are exact after every
    instruction — bit-identical to observing each module separately.  The
    cache is monotone-safe: maps only grow during a run, entries are only
    trusted while no map shrank (tracked via CoverageMap.epoch, checked at
    every rebind), and eviction merely costs a redundant, idempotent
    re-decomposition.
    """

    __slots__ = ("slots", "getter", "tables", "masks", "prev", "contribs",
                 "combined", "seen_combined", "decomp", "_epochs")

    def __init__(self, slot_bindings, vals):
        self.slots = list(slot_bindings)
        names = []
        tables = []
        masks = []
        decomp = []
        offset = 0
        for slot in self.slots:
            field_bits = slot.cov.layout.max_state_size
            for position, name in enumerate(slot.names):
                names.append(name)
                tables.append([contribution << offset
                               for contribution in slot.tables[position]])
                masks.append(slot.masks[position])
            decomp.append([offset, (1 << field_bits) - 1, slot.seen])
            offset += field_bits
        self.tables = tables
        self.masks = masks
        self.decomp = decomp
        if not names:
            self.getter = lambda values: ()
        elif len(names) == 1:
            single = names[0]
            self.getter = lambda values: (values[single],)
        else:
            self.getter = itemgetter(*names)
        self.seen_combined = set()
        self._epochs = None
        self.rebind(vals)

    def rebind(self, vals):
        """Re-sync from the member bindings (callers rebind those first);
        refreshes seen-set references after any checkpoint restore and
        drops the skip cache if any member map shrank (epoch moved)."""
        epochs = [slot.cov.map.epoch for slot in self.slots]
        if epochs != self._epochs:
            self.seen_combined.clear()
            self._epochs = epochs
        for entry, slot in zip(self.decomp, self.slots):
            entry[2] = slot.seen  # slot.rebind refreshed it first
        values = self.getter(vals)
        self.prev = values
        self.contribs = [table[value & mask] for table, mask, value
                         in zip(self.tables, self.masks, values)]
        combined = 0
        for contribution in self.contribs:
            combined ^= contribution
        self.combined = combined

    @hot_path
    def observe(self, vals):
        """Observe every member module for this instruction (hot path)."""
        values = self.getter(vals)
        combined = self.combined
        if values != self.prev:
            prev = self.prev
            contribs = self.contribs
            tables = self.tables
            masks = self.masks
            for position, value in enumerate(values):
                if value != prev[position]:
                    new_contribution = tables[position][value & masks[position]]
                    combined ^= contribs[position] ^ new_contribution
                    contribs[position] = new_contribution
            self.combined = combined
            self.prev = values
        seen = self.seen_combined
        if combined not in seen:
            if len(seen) >= _COMBINED_SKIP_LIMIT:
                evict_half(seen)
            seen.add(combined)
            for offset, mask, module_seen in self.decomp:
                module_seen.add((combined >> offset) & mask)


class DutCore:
    """Base class for the Rocket/CVA6/BOOM DUT models."""

    name = "generic"
    timing = CoreTiming()
    default_frequency_hz = 100e6  # the paper's FPGA clock

    # Cross-iteration checkpoints carry only what core_state_dict()
    # returns: architectural/memory state travels through the session's
    # own snapshot machinery, per-iteration state is rebuilt by reset(),
    # and everything here is observation plumbing (re-derived by
    # attach_coverage / use_reference_observer on the restored design)
    # or netlist structure identical in any same-spec process.
    _checkpoint_transient = frozenset({
        "coverage", "regs",
        "_cov_bindings", "_cov_by_module", "_slot_bindings",
        "_always_bindings", "_cond_bindings", "_slot_by_module",
        "_fused", "_active_modules", "_prev_active", "_reference_observer",
        # Block-compile caches: pure derived state, content-keyed on
        # instruction words / block version stamps; rebuilt on demand.
        "_slot_cache", "_template_map", "_entry_heat", "_compile_stats",
    })

    def __init__(self, bugs=(), rv32a_only=False, reset_pc=0x8000_0000):
        self.reset_pc = reset_pc
        self.rv32a_only = rv32a_only
        if bugs:
            self.hooks = BuggyHooks(bugs, rv32a_only=rv32a_only)
        else:
            self.hooks = CorrectHooks(rv32a_only=rv32a_only)
        self.memory = SparseMemory()
        self.state = ArchState(pc=reset_pc)
        self.executor = Executor(
            self.state, self.memory, config=ExecConfig(), hooks=self.hooks
        )
        self.icache = DirectMappedCache(sets=256)
        self.dcache = DirectMappedCache(sets=256)
        self.coverage = None
        self._cov_bindings = []  # (ModuleCoverage, names, layout positions)
        self._cov_by_module = {}
        self._slot_bindings = []  # _SlotBinding per module, same order
        self._always_bindings = []
        self._cond_bindings = []  # (module name, _SlotBinding)
        self._slot_by_module = {}
        self._fused = None  # _FusedObserver over the always-observed group
        self._reference_observer = False
        self._active_modules = set()
        self._prev_active = set()
        # Block-compile caches (repro.ref.blockcompile): word -> slot
        # closure, template regions -> pc->extent map, and counters.
        # Bounded by evict-half, cleared whenever bindings change.
        self._slot_cache = {}
        self._template_map = {}
        # block version stamp -> sightings across iterations (populated
        # only under set_fuzz_gating(True)): retained blocks accumulate
        # heat and get compiled; fresh or mutated (re-stamped) blocks
        # never cross the threshold.
        self._entry_heat = {}
        self._compile_stats = {
            "map_hits": 0, "map_misses": 0,
            "word_hits": 0, "word_misses": 0,
            "compiled_instructions": 0, "bailouts": 0,
            "entries_compiled": 0,
        }
        self.cycles = 0.0
        self.retired = 0
        self._prev_rd = 0
        self._br_hist = 0
        self._last_mstatus = None
        self._last_priv = None
        self.top = Module(self.top_name)
        self.regs = {}
        self.vals = {}
        self._fixed_latency = self._build_fixed_latency()
        self._build_netlist()

    # -- to be provided by subclasses ------------------------------------------
    top_name = "Core"

    def _build_netlist(self):
        raise NotImplementedError

    # -- netlist helpers --------------------------------------------------------
    def _reg(self, module, name, width, domain=None):
        register = module.register(name, width, domain=domain)
        self.regs[name] = register
        self.vals[name] = 0
        return register

    def _static_bank(self, module, prefix, widths):
        """Structural-only control registers (replay flags, beat counters,
        fill buffers...).  They participate in instrumentation layout and
        reachability analysis like any control register, but this
        abstraction level does not model their dynamics, so at runtime
        they hold their reset value.  Real modules carry far more control
        bits than the handful we animate; these banks restore realistic
        per-module control-register totals."""
        bank = []
        for position, width in enumerate(widths):
            register = module.register(f"{prefix}{position}", width)
            self.regs[register.name] = register
            bank.append(register)
        return bank

    def _common_modules(self):
        """Build the micro-architectural modules every core shares.

        Each module gets its control registers plus muxes whose selects
        trace back to them, so the instrumentation pass discovers exactly
        these registers.  Register bit budgets are sized like RocketChip's
        modules: the big datapath-adjacent modules carry well over
        ``maxStateSize`` control bits, PTW carries almost none (the paper
        calls out FPU/CSRFile/PTW as poorly reachable under the legacy
        layout, which emerges here from their restricted-value domains).
        """
        top = self.top
        frontend = top.submodule("Frontend")
        regs = [
            self._reg(frontend, "pc_lo", 3),
            self._reg(frontend, "br_hist", 2),
            self._reg(frontend, "icache_state", 2, domain=(0, 1, 2)),
            self._reg(frontend, "ras_ptr", 2),
            self._reg(frontend, "fq_count", 3),
            self._reg(frontend, "btb_tag_lo", 5),
            self._reg(frontend, "pred_cnt", 2),
            self._reg(frontend, "fetch_addr_lo", 4),
            self._reg(frontend, "misfetch", 1),
        ]
        regs += self._static_bank(frontend, "if_ctrl", (6, 6, 6, 6))
        sel = frontend.logic("npc_sel", 2, sources=regs)
        frontend.mux("next_pc_mux", select=sel, width=64)
        frontend.mux("fetch_buf_mux", select=regs[4], width=32)
        frontend.memory("icache_data", depth=2048, width=64)
        frontend.memory("icache_tags", depth=256, width=20)
        frontend.memory("btb", depth=512, width=40)

        decode = top.submodule("Decode")
        regs = [
            self._reg(decode, "dec_class", 5, domain=_CATEGORY_DOMAIN),
            self._reg(decode, "dec_illegal", 1),
            self._reg(decode, "raw_hazard", 1),
            self._reg(decode, "rd_lo", 3),
            self._reg(decode, "rs1_lo", 3),
            self._reg(decode, "rs2_lo", 3),
            self._reg(decode, "opcode_lo", 5),
            self._reg(decode, "imm_sign", 1),
            self._reg(decode, "dec_buf_cnt", 2),
        ]
        regs += self._static_bank(decode, "id_ctrl", (6, 6, 6))
        sel = decode.logic("dec_sel", 2, sources=regs)
        decode.mux("decode_mux", select=sel, width=32)

        execute = top.submodule("Execute")
        regs = [
            self._reg(execute, "ex_subop", 4),
            self._reg(execute, "br_taken", 1),
            self._reg(execute, "wb_sel", 2, domain=(0, 1, 2)),
            self._reg(execute, "fwd_sel", 2),
            self._reg(execute, "operand_a_lo", 4),
            self._reg(execute, "operand_b_lo", 4),
            self._reg(execute, "alu_res_lo", 6),
            self._reg(execute, "result_zero", 1),
            self._reg(execute, "result_sign", 1),
            self._reg(execute, "cmp_flags", 2),
            self._reg(execute, "shamt_reg", 4),
        ]
        regs += self._static_bank(execute, "ex_ctrl", (6, 6, 6, 6))
        sel = execute.logic("ex_sel", 2, sources=regs)
        execute.mux("alu_out_mux", select=sel, width=64)
        execute.mux("bypass_mux", select=regs[3], width=64)

        muldiv = top.submodule("MulDiv")
        regs = [
            self._reg(muldiv, "md_state", 2, domain=(0, 1, 2, 3)),
            self._reg(muldiv, "md_counter", 5),
            self._reg(muldiv, "md_op", 2, domain=(0, 1, 2)),
            self._reg(muldiv, "md_sign", 2),
            self._reg(muldiv, "md_zero", 1),
            self._reg(muldiv, "md_word", 1),
            self._reg(muldiv, "md_quot_lo", 4),
            self._reg(muldiv, "md_rem_lo", 4),
        ]
        regs += self._static_bank(muldiv, "md_ctrl", (6, 6, 6))
        sel = muldiv.logic("md_sel", 2, sources=regs)
        muldiv.mux("md_out_mux", select=sel, width=64)

        fpu = top.submodule("FPU")
        regs = [
            self._reg(fpu, "fpu_state", 3, domain=(0, 1, 2, 3, 4, 5)),
            self._reg(fpu, "fpu_fmt", 1),
            self._reg(fpu, "fpu_rm", 3, domain=(0, 1, 2, 3, 4, 7)),
            self._reg(fpu, "fpu_flags", 5),
            self._reg(fpu, "fdiv_cnt", 5, domain=tuple(range(25))),
            self._reg(fpu, "fp_sign", 2),
            self._reg(fpu, "fp_exp_lo", 5),
            self._reg(fpu, "fp_man_lo", 6),
            self._reg(fpu, "fp_nv_sticky", 1),
        ]
        regs += self._static_bank(fpu, "fp_ctrl", (5, 4))
        sel = fpu.logic("fpu_sel", 3, sources=regs)
        fpu.mux("fpu_out_mux", select=sel, width=64)
        fpu.memory("fp_regfile", depth=32, width=64)

        lsu = top.submodule("LSU")
        regs = [
            self._reg(lsu, "lsu_state", 3, domain=(0, 1, 2, 3, 4)),
            self._reg(lsu, "mem_size", 2),
            self._reg(lsu, "mem_op", 2, domain=(0, 1, 2, 3)),
            self._reg(lsu, "dcache_hit", 1),
            self._reg(lsu, "addr_lo", 3),
            self._reg(lsu, "line_off", 3),
            self._reg(lsu, "set_lo", 4),
            self._reg(lsu, "wdata_lo", 5),
            self._reg(lsu, "wb_dirty", 1),
        ]
        regs += self._static_bank(lsu, "ls_ctrl", (6, 6, 6, 6))
        sel = lsu.logic("lsu_sel", 3, sources=regs)
        lsu.mux("lsu_resp_mux", select=sel, width=64)
        lsu.memory("dcache_data", depth=2048, width=64)
        lsu.memory("dcache_tags", depth=256, width=22)

        csr_file = top.submodule("CSRFile")
        regs = [
            self._reg(csr_file, "csr_cls", 3, domain=(0, 1, 2, 3, 4, 5)),
            self._reg(csr_file, "priv", 2, domain=(0, 1, 3)),
            self._reg(csr_file, "trap_cause", 4, domain=_TRAP_CAUSE_DOMAIN),
            self._reg(csr_file, "trap_valid", 1),
            self._reg(csr_file, "fs_status", 2),
            self._reg(csr_file, "csr_addr_lo", 4),
            self._reg(csr_file, "csr_wdata_lo", 5),
            self._reg(csr_file, "mie_bit", 1),
        ]
        regs += self._static_bank(csr_file, "csr_ctrl", (6, 6))
        sel = csr_file.logic("csr_sel", 3, sources=regs)
        csr_file.mux("csr_rdata_mux", select=sel, width=64)

        ptw = top.submodule("PTW")
        regs = [
            self._reg(ptw, "ptw_state", 2, domain=(0, 1, 2, 3)),
            self._reg(ptw, "ptw_level", 2, domain=(0, 1, 2)),
        ]
        sel = ptw.logic("ptw_sel", 2, sources=regs)
        ptw.mux("ptw_resp_mux", select=sel, width=64)
        ptw.memory("tlb", depth=32, width=64)

    # -- coverage wiring -----------------------------------------------------------
    CONDITIONAL_MODULES = frozenset({"MulDiv", "FPU", "LSU", "CSRFile", "PTW"})

    def attach_coverage(self, design_coverage):
        """Install a :class:`~repro.coverage.DesignCoverage` built over
        :attr:`top`; micro-architectural samples start flowing into it.

        Only the *dynamic* control registers (those this abstraction level
        animates) enter the observations; static structural registers hold
        zero and contribute nothing to the running index.  All per-module
        lookup work (name resolution, contribution tables, width masks) is
        resolved here, once, into :class:`_SlotBinding` objects that the
        per-instruction path reuses allocation-free.
        """
        self.coverage = design_coverage
        self._cov_bindings = []
        self._cov_by_module = {}
        self._slot_bindings = []
        self._always_bindings = []
        self._cond_bindings = []
        self._slot_by_module = {}
        for module_cov in design_coverage.modules:
            names = []
            positions = []
            for position, register in enumerate(module_cov.layout.registers):
                if register.name in self.vals:
                    names.append(register.name)
                    positions.append(position)
            binding = (module_cov, tuple(names), tuple(positions))
            self._cov_bindings.append(binding)
            self._cov_by_module[module_cov.name] = binding
            slot = _SlotBinding(module_cov, names, positions, self.vals)
            self._slot_bindings.append(slot)
            self._slot_by_module[module_cov.name] = slot
            if module_cov.name in self.CONDITIONAL_MODULES:
                self._cond_bindings.append((module_cov.name, slot))
            else:
                self._always_bindings.append(slot)
        self._fused = _FusedObserver(self._always_bindings, self.vals)
        self._active_modules = set()
        self._prev_active = set()
        # Compiled slots capture _fused/_cond_bindings at compile time;
        # new bindings invalidate every compiled entry.
        self._slot_cache.clear()
        self._template_map.clear()
        self._entry_heat.clear()

    def use_reference_observer(self, enabled=True):
        """Route observation through the pre-overhaul tuple/memo slow path
        (:meth:`ModuleCoverage.observe_state`).  The equivalence suite runs
        both paths and asserts bit-identical coverage."""
        self._reference_observer = enabled
        if not enabled and self.coverage is not None:
            # Re-sync the incremental bindings with whatever state the
            # reference path left behind.
            for slot in self._slot_bindings:
                slot.rebind(self.vals)
            self._fused.rebind(self.vals)

    @hot_path
    def _observe_active(self):
        """Observe always-active modules plus any module whose state was
        touched this instruction or the last (to capture return-to-idle)."""
        vals = self.vals
        if self._reference_observer:
            observe_set = self._active_modules | self._prev_active
            for module_cov, names, positions in self._cov_bindings:
                if (module_cov.name in self.CONDITIONAL_MODULES
                        and module_cov.name not in observe_set):
                    continue
                module_cov.observe_state_reference(
                    # analyze: ignore[HOT001,HOT002] reference path, the oracle
                    tuple([vals[name] for name in names]), positions
                )
            self._prev_active = self._active_modules
            self._active_modules = set()  # analyze: ignore[HOT002] reference observer path only
            return
        self._fused.observe(vals)
        active = self._active_modules
        prev = self._prev_active
        if active or prev:
            for name, slot in self._cond_bindings:
                if name in active or name in prev:
                    slot.observe(vals)
        # Swap-and-clear instead of allocating a fresh set per instruction.
        self._prev_active = active
        prev.clear()
        self._active_modules = prev

    def _observe_module(self, module_name):
        if self._reference_observer:
            binding = self._cov_by_module.get(module_name)
            if binding is None:
                return
            module_cov, names, positions = binding
            vals = self.vals
            module_cov.observe_state_reference(
                tuple([vals[name] for name in names]), positions
            )
            return
        slot = self._slot_by_module.get(module_name)
        if slot is not None:
            slot.observe(self.vals)

    # -- program control ----------------------------------------------------------------
    def reset(self, keep_memory=False):
        """Reset architectural and micro-architectural state."""
        if not keep_memory:
            self.memory = SparseMemory()
        self.state = ArchState(pc=self.reset_pc)
        self.executor = Executor(
            self.state, self.memory, config=self.executor.config, hooks=self.hooks
        )
        self.icache.flush()
        self.dcache.flush()
        self.cycles = 0.0
        self.retired = 0
        self._prev_rd = 0
        self._br_hist = 0
        self._last_mstatus = None
        self._last_priv = None
        for name in self.vals:
            self.vals[name] = 0
        for slot in self._slot_bindings:
            slot.rebind(self.vals)
        if self._fused is not None:
            self._fused.rebind(self.vals)

    def load_program(self, address, words):
        self.memory.write_program(address, words)

    # -- execution ------------------------------------------------------------------------
    @hot_path
    def step(self):
        """Execute one instruction; update microarch state and cycles."""
        record = self.executor.step()
        # Inline decode-cache hit (the overwhelmingly common case); the
        # try_decode call is only paid on a cache miss.
        word = record.word
        decoded = _DECODE_CACHE.get(word) if word else None
        if decoded is None and word:
            decoded = try_decode(word)
        self.cycles += self._latency(record, decoded)
        self.retired += 1
        self._update_microarch(record, decoded)
        if self.coverage is not None:
            self._observe_active()
        return record

    def run(self, max_instructions, stop_on=None):
        """Step up to ``max_instructions``; ``stop_on(record)`` can halt."""
        records = []
        for _ in range(max_instructions):
            record = self.step()
            records.append(record)
            if stop_on is not None and stop_on(record):
                break
        return records

    # -- latency model -----------------------------------------------------------------------
    def _build_fixed_latency(self):
        """Per-category constant extra cycles, resolved once per core.

        Every category whose latency does not depend on the individual
        instruction (i.e. everything except branches and memory ops, which
        consult direction / the D-cache) collapses to one dict lookup on
        the hot path; categories with no extra cost map to 0.0 so the
        lookup also covers plain ALU traffic.
        """
        timing = self.timing
        extras = {
            Category.JUMP: timing.jump,
            Category.MUL: timing.mul,
            Category.DIV: timing.div,
            Category.AMO: timing.amo,
            Category.FP_DIV: timing.fp_div,
            Category.FP_FMA: timing.fp_fma,
            Category.FP_ARITH: timing.fp_arith,
            Category.FP_CVT: timing.fp_arith,
            Category.FP_CMP: timing.fp_arith,
            Category.FP_MOVE: timing.fp_arith,
            Category.CSR: timing.csr,
        }
        dynamic = {Category.BRANCH, Category.LOAD, Category.FP_LOAD,
                   Category.STORE, Category.FP_STORE}
        return {category: extras.get(category, 0.0)
                for category in Category if category not in dynamic}

    @hot_path
    def _latency(self, record, decoded):
        timing = self.timing
        cycles = timing.base
        if not self.icache.access(record.pc):
            cycles += timing.icache_miss
        if record.trap is not None:
            return cycles + timing.trap
        if decoded is None:
            return cycles
        category = decoded.spec.category
        extra = self._fixed_latency.get(category)
        if extra is not None:
            return cycles + extra
        if category is _BRANCH:
            if record.next_pc != record.pc + 4:
                cycles += timing.branch_taken
            return cycles
        if category is Category.STORE or category is Category.FP_STORE:
            if record.mem_addr is not None:
                hit = self.dcache.access(record.mem_addr)
                cycles += timing.store_hit if hit else timing.cache_miss
            return cycles
        # LOAD / FP_LOAD
        address = record.pc if record.mem_addr is None else record.mem_addr
        hit = self.dcache.access(address)
        cycles += timing.load_hit if hit else timing.cache_miss
        return cycles

    # -- microarch state update ---------------------------------------------------------------
    @hot_path
    def _update_microarch(self, record, decoded):
        """Drive the control-register values from this instruction."""
        vals = self.vals
        vals["pc_lo"] = (record.pc >> 2) & 7
        vals["fetch_addr_lo"] = (record.pc >> 2) & 15
        vals["btb_tag_lo"] = (record.pc >> 5) & 31
        vals["fq_count"] = (vals["fq_count"] + 1) & 7

        active = self._active_modules
        if record.trap is not None:
            vals["trap_valid"] = 1
            vals["trap_cause"] = min(record.trap.cause, 11)
            vals["dec_illegal"] = 1 if record.trap.cause == 2 else 0
            vals["misfetch"] = 1 if record.trap.cause in (0, 1) else 0
            active.add("CSRFile")
            self._prev_rd = 0
            return

        vals["trap_valid"] = 0
        vals["dec_illegal"] = 0
        vals["misfetch"] = 0
        if decoded is None:
            return
        spec = decoded.spec
        category = spec.category
        name = spec.name
        vals["dec_class"] = _CATEGORY_INDEX[category]
        vals["ex_subop"] = _NAME_HASH[name]
        vals["rd_lo"] = decoded.rd & 7
        vals["rs1_lo"] = decoded.rs1 & 7
        vals["rs2_lo"] = decoded.rs2 & 7
        vals["opcode_lo"] = (record.word >> 2) & 31
        vals["imm_sign"] = 1 if decoded.imm < 0 else 0
        vals["dec_buf_cnt"] = (vals["dec_buf_cnt"] + 1) & 3
        vals["shamt_reg"] = decoded.shamt & 15

        prev_rd = self._prev_rd
        raw = 1 if prev_rd and (prev_rd == decoded.rs1 or prev_rd == decoded.rs2) else 0
        vals["raw_hazard"] = raw
        self._prev_rd = record.rd or 0

        taken = 0
        if category is _BRANCH:
            taken = 1 if record.next_pc != record.pc + 4 else 0
            self._br_hist = ((self._br_hist << 1) | taken) & 3
            vals["br_hist"] = self._br_hist
            vals["pred_cnt"] = (vals["pred_cnt"] + (1 if taken else -1)) & 3
        vals["br_taken"] = taken
        if category is _JUMP:
            vals["ras_ptr"] = (vals["ras_ptr"] + 1) & 3

        state = self.state
        rs1_value = state.xregs[decoded.rs1]
        vals["operand_a_lo"] = rs1_value & 15
        vals["operand_b_lo"] = state.xregs[decoded.rs2] & 15
        if record.rd is not None:
            vals["wb_sel"] = 1
            vals["alu_res_lo"] = record.rd_value & 63
            vals["result_zero"] = 1 if record.rd_value == 0 else 0
            vals["result_sign"] = (record.rd_value >> 63) & 1
        elif record.frd is not None:
            vals["wb_sel"] = 2
        else:
            vals["wb_sel"] = 0
        vals["cmp_flags"] = ((vals["result_zero"] << 1) | vals["result_sign"]) & 3
        vals["fwd_sel"] = raw * 2 + (1 if vals["wb_sel"] else 0)

        # MulDiv
        if category is _MUL or category is _DIV:
            active.add("MulDiv")
            vals["md_op"] = 1 if category is _MUL else 2
            vals["md_sign"] = ((rs1_value >> 63) << 1 | (state.xregs[decoded.rs2] >> 63)) & 3
            vals["md_zero"] = 1 if state.xregs[decoded.rs2] == 0 else 0
            vals["md_word"] = 1 if name.endswith("w") else 0
            if record.rd_value is not None:
                vals["md_quot_lo"] = record.rd_value & 15
                vals["md_rem_lo"] = (record.rd_value >> 4) & 15
            if category is _DIV:
                self._multi_cycle("MulDiv", "md_state", "md_counter",
                                  int(self.timing.div))
            else:
                vals["md_state"] = 1
                vals["md_counter"] = int(self.timing.mul) & 31
        else:
            vals["md_state"] = 0
            vals["md_op"] = 0

        # FPU
        if category in _FP_CATEGORIES:
            active.add("FPU")
            vals["fpu_state"] = _FPU_STATE.get(category, 1)
            vals["fpu_fmt"] = 1 if name.endswith(".d") else 0
            vals["fpu_rm"] = decoded.rm if decoded.rm in (0, 1, 2, 3, 4, 7) else 7
            vals["fpu_flags"] = record.fflags_set & 0x1F
            if record.fflags_set & CSR.FFLAGS_NV:
                vals["fp_nv_sticky"] = 1
            if record.frd_value is not None:
                frd_value = record.frd_value
                vals["fp_sign"] = ((frd_value >> 63) << 1
                                   | ((frd_value >> 31) & 1)) & 3
                vals["fp_exp_lo"] = (record.frd_value >> 52) & 31
                vals["fp_man_lo"] = record.frd_value & 63
            if category is _FP_DIV:
                self._multi_cycle("FPU", "fpu_state", "fdiv_cnt",
                                  int(self.timing.fp_div), busy_value=2)
        else:
            vals["fpu_state"] = 0

        # LSU
        if category in _MEMORY_CATEGORIES:
            active.add("LSU")
            op = _MEM_OP[category]
            vals["mem_op"] = op
            vals["lsu_state"] = 4 if category is _AMO else op
            address = record.mem_addr
            if address is not None:
                vals["addr_lo"] = address & 7
                vals["line_off"] = (address >> 3) & 7
                vals["set_lo"] = (address >> 6) & 15
                vals["mem_size"] = (record.mem_size or 1).bit_length() - 1
                if record.mem_value is not None:
                    vals["wdata_lo"] = record.mem_value & 31
                    vals["wb_dirty"] = 1
                vals["dcache_hit"] = 1 if self.dcache.hits else 0
        else:
            vals["lsu_state"] = 0
            vals["mem_op"] = 0

        # CSRFile
        if category is _CSR_CAT:
            active.add("CSRFile")
            vals["csr_cls"] = self._csr_class(decoded.csr)
            vals["csr_addr_lo"] = decoded.csr & 15
            if record.csr_value is not None:
                vals["csr_wdata_lo"] = record.csr_value & 31
        elif category is _SYSTEM:
            active.add("CSRFile")
            vals["csr_cls"] = 5
        else:
            vals["csr_cls"] = 0
        self._mstatus_sync()

        # PTW activity is tied to fences in this M-mode-only model.
        if category is _FENCE:
            active.add("PTW")
            ptw_state = (vals["ptw_state"] + 1) & 3
            vals["ptw_state"] = ptw_state if ptw_state else 1
            vals["ptw_level"] = (vals["ptw_level"] + 1) % 3

    @hot_path
    def _mstatus_sync(self):
        """MSTATUS/privilege change detection, cached: when neither moved
        since the last non-trap instruction, the fs/mie/priv vals already
        hold the current decoding and the whole block is skipped.  Shared
        by :meth:`_update_microarch` and compiled value slots (an FP
        predecessor dirtying MSTATUS must surface on the next commit)."""
        state = self.state
        status = state.csrs[CSR.MSTATUS]
        privilege = state.privilege
        if status == self._last_mstatus and privilege == self._last_priv:
            return
        vals = self.vals
        fs_status = (status >> CSR.MSTATUS_FS_SHIFT) & 3
        mie_bit = (status >> 3) & 1
        if (fs_status != vals["fs_status"] or mie_bit != vals["mie_bit"]
                or privilege != vals["priv"]):
            self._active_modules.add("CSRFile")
        vals["fs_status"] = fs_status
        vals["mie_bit"] = mie_bit
        vals["priv"] = privilege
        self._last_mstatus = status
        self._last_priv = privilege

    def compiled_microarch_extra(self, decoded):
        """Hook for per-core microarch updates in compiled value slots.

        Subclasses that extend :meth:`_update_microarch` return a zero-arg
        closure replicating that extension for a non-trapping instruction
        of this identity; the block compiler calls it once per executed
        slot, after the shared register writes and MSTATUS sync.  Record
        slots go through :meth:`_update_microarch` itself and must not
        also apply this.  None means no per-core extension (Rocket).
        """
        return None

    @staticmethod
    def _csr_class(address):
        if address in (CSR.FFLAGS, CSR.FRM, CSR.FCSR):
            return 1
        if address in (CSR.MSTATUS, CSR.MISA, CSR.SSTATUS):
            return 2
        if address in (CSR.MCYCLE, CSR.MINSTRET, CSR.CYCLE, CSR.INSTRET, CSR.TIME):
            return 3
        if address in (CSR.MEPC, CSR.MCAUSE, CSR.MTVAL, CSR.MTVEC,
                       CSR.SEPC, CSR.SCAUSE, CSR.STVAL, CSR.STVEC):
            return 4
        return 5

    def _multi_cycle(self, module_name, state_name, counter_name, total,
                     busy_value=2):
        """Expose intermediate busy-counter states to coverage (a few
        sampled values rather than one observation per cycle)."""
        vals = self.vals
        vals[state_name] = busy_value
        if self.coverage is None:
            vals[counter_name] = 0
            return
        for sample in (total & 31, (total // 2) & 31, 1):
            vals[counter_name] = min(sample, 24)
            self._observe_module(module_name)
        vals[counter_name] = 0

    # -- checkpoint protocol ---------------------------------------------------
    def core_state_dict(self):
        """Micro-architectural state that survives ACROSS iterations.

        Almost everything in a core is rebuilt by the per-iteration
        ``reset()``, so the base class has nothing to record; cores that
        deliberately carry state across iterations (BOOM's branch
        predictor) override this pair so checkpoint resume stays
        bit-identical.  Returns JSON-plain data.
        """
        return {}

    def load_core_state(self, state):
        """Restore a :meth:`core_state_dict` snapshot (default: no-op)."""

    # -- introspection -----------------------------------------------------------------
    @property
    def coverage_points(self):
        return self.coverage.total_points if self.coverage else 0

    def seconds_elapsed(self, frequency_hz=None):
        """Virtual seconds of FPGA time consumed so far."""
        frequency = frequency_hz or self.default_frequency_hz
        return self.cycles / frequency


_FPU_STATE = {
    Category.FP_ARITH: 1,
    Category.FP_DIV: 2,
    Category.FP_FMA: 3,
    Category.FP_CVT: 4,
    Category.FP_CMP: 5,
    Category.FP_MOVE: 5,
    Category.FP_LOAD: 1,
    Category.FP_STORE: 1,
}

_MEM_OP = {
    Category.LOAD: 1,
    Category.FP_LOAD: 1,
    Category.STORE: 2,
    Category.FP_STORE: 2,
    Category.AMO: 3,
}
