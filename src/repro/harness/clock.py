"""Virtual time: the experiment time axis.

All paper results are time-to-coverage or time-to-bug at a 100 MHz DUT
clock.  The virtual clock accumulates DUT cycles plus modelled host-side
overheads (generation, DMA transfer, checking), so campaigns replay the
paper's hour-scale time axis deterministically in seconds of host time.
"""


class VirtualClock:
    """Accumulates virtual seconds from cycles and host-side costs."""

    def __init__(self, frequency_hz=100e6):
        self.frequency_hz = frequency_hz
        self._seconds = 0.0

    def advance_cycles(self, cycles):
        """Account DUT execution time."""
        self._seconds += cycles / self.frequency_hz

    def advance_seconds(self, seconds):
        """Account host-side or fixed-latency time."""
        if seconds < 0:
            raise ValueError("time cannot flow backwards")
        self._seconds += seconds

    @property
    def seconds(self):
        return self._seconds

    @property
    def minutes(self):
        return self._seconds / 60.0

    @property
    def hours(self):
        return self._seconds / 3600.0

    def reset(self):
        self._seconds = 0.0

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot.  Floats survive JSON exactly
        (shortest-repr round-trip), so a restored clock is bit-identical."""
        return {"frequency_hz": self.frequency_hz, "seconds": self._seconds}

    def load_state(self, state):
        self.frequency_hz = state["frequency_hz"]
        self._seconds = state["seconds"]

    def __repr__(self):
        return f"VirtualClock({self._seconds:.6f}s @ {self.frequency_hz/1e6:.0f}MHz)"
