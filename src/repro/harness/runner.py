"""Iteration execution: DUT alone or DUT/REF lockstep with checking."""

from dataclasses import dataclass

from repro.harness.checker import DifferentialChecker
from repro.harness.image import build_image
from repro.harness.snapshot import HardwareSnapshot
from repro.ref import blockcompile
from repro.ref.executor import ExecConfig, Executor
from repro.ref.memory import SparseMemory
from repro.ref.state import ArchState
from repro.dut.bugs import CorrectHooks


@dataclass(slots=True)
class RunResult:
    """Outcome of executing one iteration."""

    executed_instructions: int = 0
    executed_fuzzing: int = 0
    executed_template: int = 0
    cycles: float = 0.0
    new_coverage: int = 0
    completed: bool = False
    mismatch: object = None  # harness.checker.Mismatch
    snapshot: object = None  # HardwareSnapshot on mismatch
    traps: int = 0

    @property
    def prevalence(self):
        """Fuzzing instructions / executed instructions (Fig. 8 metric)."""
        if not self.executed_instructions:
            return 0.0
        return self.executed_fuzzing / self.executed_instructions

    def to_dict(self):
        """Plain-data form for JSON export (Fig./Table persistence)."""
        return {
            "executed_instructions": self.executed_instructions,
            "executed_fuzzing": self.executed_fuzzing,
            "executed_template": self.executed_template,
            "cycles": self.cycles,
            "new_coverage": self.new_coverage,
            "completed": self.completed,
            "prevalence": self.prevalence,
            "traps": self.traps,
            "mismatch": (self.mismatch.describe()
                         if self.mismatch is not None else None),
        }


class IterationRunner:
    """Runs assembled iterations on a DUT core (optionally vs a REF)."""

    def __init__(self, core, with_ref=False, capture_snapshots=False,
                 max_instruction_factor=4, stop_on_trap=False):
        self.core = core
        self.with_ref = with_ref
        self.capture_snapshots = capture_snapshots
        self.max_instruction_factor = max_instruction_factor
        # DifuzzRTL-style harnesses abort the iteration at the first trap
        # instead of repairing and resuming (no execution-guarantee
        # templates); TurboFuzz keeps this False.
        self.stop_on_trap = stop_on_trap

    def _make_ref(self, image):
        """Fresh REF: same ISA semantics, correct hooks, own memory."""
        memory = SparseMemory()
        image.install(memory)
        state = ArchState(pc=image.layout.reset)
        hooks = CorrectHooks(rv32a_only=self.core.rv32a_only)
        return Executor(state, memory, config=ExecConfig(), hooks=hooks)

    def run(self, iteration, instruction_cap=None):
        """Execute one iteration to the done loop (or caps/mismatch)."""
        core = self.core
        image = build_image(iteration)
        core.reset_pc = image.layout.reset
        core.reset()
        image.install(core.memory)
        ref = self._make_ref(image) if self.with_ref else None
        checker = DifferentialChecker() if self.with_ref else None

        layout = iteration.layout
        blocks_base = iteration.fuzz_base
        cap = instruction_cap or (
            self.max_instruction_factor * max(1, iteration.total_instructions)
            + image.total_template_instructions * 8
        )
        result = RunResult()
        start_points = core.coverage.total_points if core.coverage else 0
        start_cycles = core.cycles
        traps_since_fuzz = 0

        # Compiled block dispatch: straight-line extents run as pre-bound
        # closure chains; anything else (and every bailout) falls through
        # to the interpreted body below.  Lockstep checking and snapshot
        # capture need the per-instruction records, and the reference
        # observer is the oracle the compiled path is measured against —
        # those configurations interpret everything.
        block_map = None
        memory = core.memory
        program_version = 0
        if (ref is None and not self.capture_snapshots
                and blockcompile.enabled()
                and blockcompile.core_supports_compile(core)):
            block_map = blockcompile.build_block_map(core, image, iteration)
            program_version = memory.program_version
        state = core.state
        run_block = blockcompile.run_block
        promote = blockcompile.promote

        # Per-instruction bookkeeping runs on locals; the result object is
        # filled in once after the loop.
        core_step = core.step
        stop_on_trap = self.stop_on_trap
        done_pc = layout.done
        executed = fuzzing = template = traps = 0
        remaining = cap
        while remaining > 0:
            if block_map is not None:
                if memory.program_version != program_version:
                    block_map = None  # self-modifying program: interpret
                else:
                    extent = block_map.get(state.pc)
                    if extent is not None and extent.__class__ is tuple:
                        # Pending entry: compile only once the landing
                        # heat crosses the threshold (once-run fuzz code
                        # stays interpreted — compiling it costs more
                        # than dispatch savings recoup).
                        extent = promote(core, block_map, state.pc, extent)
                    if extent is not None:
                        base_pc = state.pc
                        advanced = run_block(core, extent, base_pc, remaining)
                        if advanced:
                            remaining -= advanced
                            executed += advanced
                            if base_pc >= blocks_base:
                                below = 0
                            else:
                                below = (blocks_base - base_pc) >> 2
                                if below > advanced:
                                    below = advanced
                            template += below
                            if advanced > below:
                                fuzzing += advanced - below
                                # Compiled instructions never trap.
                                traps_since_fuzz = 0
                            if state.pc == done_pc:
                                # The last committed slot's next_pc is the
                                # done loop — same condition the record
                                # check below applies per instruction.
                                result.completed = True
                                break
                            continue
            record = core_step()
            remaining -= 1
            executed += 1
            if record.pc >= blocks_base:
                fuzzing += 1
                if record.trap is None:
                    traps_since_fuzz = 0
            else:
                template += 1
            if record.trap is not None:
                traps += 1
                if stop_on_trap and record.pc >= blocks_base:
                    break
                # Iteration watchdog: a destroyed trap vector spins in
                # fault loops; hardware moves to the next iteration.
                traps_since_fuzz += 1
                if traps_since_fuzz > 64:
                    break
            if ref is not None:
                ref_record = ref.step()
                mismatch = checker.check(record, ref_record)
                if mismatch is not None:
                    result.mismatch = mismatch
                    if self.capture_snapshots:
                        result.snapshot = HardwareSnapshot.capture(
                            core, annotation=mismatch.describe()
                        )
                    break
            if record.next_pc == done_pc:
                result.completed = True
                break

        result.executed_instructions = executed
        result.executed_fuzzing = fuzzing
        result.executed_template = template
        result.traps = traps
        result.cycles = core.cycles - start_cycles
        if core.coverage:
            result.new_coverage = core.coverage.total_points - start_points
        return result
