"""Legacy fuzzing-session entry point (compatibility shim).

The campaign machinery lives in :mod:`repro.campaign` now:
:class:`~repro.campaign.session.CampaignSession` runs the loop,
:class:`~repro.campaign.spec.CampaignSpec` describes a campaign
declaratively, and the registries resolve fuzzers/cores/timing models.
:class:`FuzzSession` remains as a thin shim so existing callers keep
working: it translates a :class:`SessionConfig` (which carries *resolved*
objects — a fuzzer config instance, a timing model, a weights object)
into a spec plus construction overrides.
"""

from dataclasses import dataclass, field

from repro.campaign.session import CampaignSession, IterationOutcome
from repro.campaign.spec import CampaignSpec
from repro.fuzzer import TurboFuzzConfig
from repro.harness.timing import TURBOFUZZ_TIMING

__all__ = ["SessionConfig", "IterationOutcome", "FuzzSession"]


@dataclass
class SessionConfig:
    """Everything needed to reproduce one campaign (legacy form).

    New code should prefer :class:`~repro.campaign.spec.CampaignSpec`,
    which is declarative and JSON-round-trippable; this config carries
    live objects instead.
    """

    core: str = "rocket"
    bugs: tuple = ()
    rv32a_only: bool = False
    instrument_style: str = "optimized"
    max_state_size: int = 15
    instrument_seed: int = 0
    weights: object = None  # FeedbackWeights
    with_ref: bool = False
    capture_snapshots: bool = False
    stop_on_trap: bool = False
    fuzzer_config: TurboFuzzConfig = field(default_factory=TurboFuzzConfig)
    timing: object = TURBOFUZZ_TIMING


class FuzzSession(CampaignSession):
    """A fuzzing campaign bound to one DUT and one fuzzer (legacy API).

    ``FuzzSession(config)`` builds a TurboFuzz campaign from the config's
    ``fuzzer_config``; passing ``fuzzer`` installs a prebuilt fuzzer
    instance (the baselines) while the rest of the config still applies.
    """

    def __init__(self, config=None, fuzzer=None):
        config = config or SessionConfig()
        spec = CampaignSpec(
            fuzzer="turbofuzz" if fuzzer is None else getattr(
                fuzzer, "name", "turbofuzz"),
            core=config.core,
            bugs=tuple(config.bugs),
            rv32a_only=config.rv32a_only,
            instrument_style=config.instrument_style,
            max_state_size=config.max_state_size,
            instrument_seed=config.instrument_seed,
            with_ref=config.with_ref,
            capture_snapshots=config.capture_snapshots,
            stop_on_trap=config.stop_on_trap,
        )
        super().__init__(
            spec,
            fuzzer=fuzzer,
            fuzzer_config=config.fuzzer_config if fuzzer is None else None,
            timing=config.timing,
            weights=config.weights,
            detection_seed=config.fuzzer_config.seed,
        )
        self.config = config
