"""Fuzzing sessions: a complete campaign with virtual-time accounting.

A session wires together a DUT core (with optional injected bugs), coverage
instrumentation, a fuzzer (TurboFuzzer or one of the baselines — anything
with ``generate_iteration()`` / ``feedback()``), the iteration runner, and
a per-iteration timing model.  Experiments drive sessions by virtual-time
budget, coverage target, or bug trigger.
"""

from dataclasses import dataclass, field

from repro.coverage import FeedbackWeights, instrument_design
from repro.dut import make_core
from repro.fuzzer import TurboFuzzConfig, TurboFuzzer
from repro.harness.clock import VirtualClock
from repro.harness.runner import IterationRunner
from repro.harness.timing import TURBOFUZZ_TIMING


@dataclass
class SessionConfig:
    """Everything needed to reproduce one campaign."""

    core: str = "rocket"
    bugs: tuple = ()
    rv32a_only: bool = False
    instrument_style: str = "optimized"
    max_state_size: int = 15
    instrument_seed: int = 0
    weights: object = None  # FeedbackWeights
    with_ref: bool = False
    capture_snapshots: bool = False
    stop_on_trap: bool = False
    fuzzer_config: TurboFuzzConfig = field(default_factory=TurboFuzzConfig)
    timing: object = TURBOFUZZ_TIMING


@dataclass
class IterationOutcome:
    """One point of a campaign's history."""

    index: int
    virtual_seconds: float
    coverage_total: int
    new_coverage: int
    executed_instructions: int
    prevalence: float
    mismatch: object = None


class FuzzSession:
    """A fuzzing campaign bound to one DUT and one fuzzer."""

    def __init__(self, config=None, fuzzer=None):
        self.config = config or SessionConfig()
        cfg = self.config
        self.core = make_core(cfg.core, bugs=cfg.bugs, rv32a_only=cfg.rv32a_only)
        self.coverage = instrument_design(
            self.core.top,
            style=cfg.instrument_style,
            max_state_size=cfg.max_state_size,
            seed=cfg.instrument_seed,
            weights=cfg.weights or FeedbackWeights(),
        )
        self.core.attach_coverage(self.coverage)
        self.fuzzer = fuzzer or TurboFuzzer(cfg.fuzzer_config)
        self.runner = IterationRunner(
            self.core,
            with_ref=cfg.with_ref,
            capture_snapshots=cfg.capture_snapshots,
            stop_on_trap=cfg.stop_on_trap,
        )
        self.clock = VirtualClock(self.core.default_frequency_hz)
        self.history = []
        self.total_executed = 0
        self.total_generated = 0

    # -- one iteration ---------------------------------------------------------
    def run_iteration(self):
        """Generate, execute, feed back, account time; returns the outcome."""
        iteration = self.fuzzer.generate_iteration()
        before = self.coverage.counts_by_module()
        result = self.runner.run(iteration)
        after = self.coverage.counts_by_module()
        # The fuzzer's feedback scalar is the *weighted* N_cov increment
        # (the auxiliary-shift mechanism of Section VI); the raw increment
        # is what the experiment reports.
        weighted_increment = self.coverage.weights.weighted_total(
            {name: after[name] - before.get(name, 0) for name in after}
        )
        self.fuzzer.feedback(iteration, weighted_increment)
        self.clock.advance_seconds(
            self.config.timing.iteration_seconds(
                generated=iteration.total_instructions,
                executed=result.executed_instructions,
                dut_cycles=result.cycles,
                frequency_hz=self.core.default_frequency_hz,
            )
        )
        self.total_executed += result.executed_instructions
        self.total_generated += iteration.total_instructions
        outcome = IterationOutcome(
            index=len(self.history),
            virtual_seconds=self.clock.seconds,
            coverage_total=self.coverage.total_points,
            new_coverage=result.new_coverage,
            executed_instructions=result.executed_instructions,
            prevalence=result.prevalence,
            mismatch=result.mismatch,
        )
        self.history.append(outcome)
        return outcome

    # -- campaign drivers -----------------------------------------------------------
    def run_for_virtual_time(self, virtual_seconds, max_iterations=None):
        """Iterate until the virtual clock passes the budget."""
        while self.clock.seconds < virtual_seconds:
            if max_iterations is not None and len(self.history) >= max_iterations:
                break
            self.run_iteration()
        return self.history

    def run_iterations(self, count):
        """Run a fixed number of iterations."""
        for _ in range(count):
            self.run_iteration()
        return self.history

    def run_until_coverage(self, target_points, max_iterations=100_000):
        """Iterate until total coverage reaches the target; returns the
        virtual time at which it was reached (None if never)."""
        for _ in range(max_iterations):
            outcome = self.run_iteration()
            if outcome.coverage_total >= target_points:
                return outcome.virtual_seconds
        return None

    def run_until_mismatch(self, max_iterations=100_000):
        """Iterate (with REF checking on) until a mismatch; returns
        ``(virtual_seconds, mismatch)`` or ``(None, None)``.

        The reported time includes the timing model's detection latency
        (snapshot capture and readback for TurboFuzz, trace dump for the
        software fuzzers).
        """
        for _ in range(max_iterations):
            outcome = self.run_iteration()
            if outcome.mismatch is not None:
                self.clock.advance_seconds(self.config.timing.detection_s)
                return self.clock.seconds, outcome.mismatch
        return None, None

    def run_until_bug_triggered(self, bug_id, max_iterations=100_000,
                                coarse_detection=None):
        """Iterate until an injected bug's condition fires on the DUT.

        This is the REF-free fast path for Table II: with TurboFuzz's
        instruction-level lockstep checking, the moment the bug's
        architecturally-visible condition fires it is flagged; running the
        REF only doubles the cost.

        ``coarse_detection`` models DifuzzRTL-style checking ("coarse-
        grained comparisons between the DUT and REF after thousands of
        instructions", paper Section I): a ``(num, den)`` probability that
        an end-of-iteration comparison still sees the divergence (register
        overwrites mask transient differences).  ``None`` = fine-grained.
        """
        from repro.fuzzer.lfsr import Lfsr

        detection_lfsr = Lfsr(0xDE7EC7 ^ self.config.fuzzer_config.seed)
        triggered = getattr(self.core.hooks, "triggered", set())
        for _ in range(max_iterations):
            self.run_iteration()
            if bug_id in triggered:
                if (coarse_detection is not None
                        and not detection_lfsr.chance(coarse_detection)):
                    # The end-of-program comparison missed it; keep going.
                    triggered.discard(bug_id)
                    continue
                self.clock.advance_seconds(self.config.timing.detection_s)
                return self.clock.seconds
        return None

    # -- reporting ---------------------------------------------------------------------
    @property
    def coverage_total(self):
        return self.coverage.total_points

    @property
    def iterations(self):
        return len(self.history)

    def iteration_rate_hz(self):
        """Mean iterations per virtual second (the Table I metric)."""
        if not self.history or self.clock.seconds == 0:
            return 0.0
        return len(self.history) / self.clock.seconds

    def executed_per_second(self):
        if self.clock.seconds == 0:
            return 0.0
        return self.total_executed / self.clock.seconds

    def coverage_series(self):
        """(virtual_seconds, coverage_total) pairs for plotting."""
        return [(o.virtual_seconds, o.coverage_total) for o in self.history]
