"""Experiment drivers: one function per paper figure/table.

Every driver is deterministic given its arguments and returns a plain dict
of the numbers the corresponding figure/table plots, so the benchmark
harness can print paper-shaped rows and the tests can assert the shape
(who wins, by roughly what factor, where crossovers fall).

Scale note: the paper's campaigns run for hours of FPGA time; these drivers
take iteration budgets so benchmark runs complete in seconds-to-minutes of
host time while exercising identical code paths.  EXPERIMENTS.md records
the paper-vs-measured values.
"""

import math

from repro.baselines import CascadeFuzzer, DifuzzRtlFuzzer
from repro.coverage import design_reachability, instrument_design
from repro.deepexplore import DeepExplore, DeepExploreConfig
from repro.dut import BUGS_BY_ID, RocketCore, make_core
from repro.fpga import table3_report
from repro.fuzzer import TurboFuzzConfig, TurboFuzzer
from repro.harness.session import FuzzSession, SessionConfig
from repro.harness.timing import (
    CASCADE_TIMING,
    DIFUZZRTL_FPGA_TIMING,
    TURBOFUZZ_TIMING,
)
from repro.isa.decoder import try_decode
from repro.isa.instructions import Category
from repro.workloads import all_workloads


def make_session(fuzzer_name, instructions_per_iteration=None, core="rocket",
                 bugs=(), rv32a_only=False, instrument_style="optimized",
                 max_state_size=15, corpus_policy="coverage",
                 corpus_capacity=None, seed=None,
                 with_ref=False, allow_ebreak=False):
    """Session factory used by all experiments (one place to wire the
    fuzzer/timing/instrumentation combinations)."""
    if fuzzer_name == "turbofuzz":
        fuzzer_config = TurboFuzzConfig(
            corpus_policy=corpus_policy,
            **({"instructions_per_iteration": instructions_per_iteration}
               if instructions_per_iteration else {}),
            **({"corpus_capacity": corpus_capacity}
               if corpus_capacity is not None else {}),
            **({"seed": seed} if seed is not None else {}),
        )
        config = SessionConfig(
            core=core, bugs=tuple(bugs), rv32a_only=rv32a_only,
            instrument_style=instrument_style, max_state_size=max_state_size,
            with_ref=with_ref, fuzzer_config=fuzzer_config,
            timing=TURBOFUZZ_TIMING,
        )
        session = FuzzSession(config)
        if allow_ebreak:
            session.fuzzer.direct.category_weights[Category.SYSTEM] = 1
        return session
    if fuzzer_name == "difuzzrtl":
        from repro.baselines.difuzzrtl import DifuzzRtlConfig

        fz_config = DifuzzRtlConfig(
            **({"instructions_per_iteration": instructions_per_iteration}
               if instructions_per_iteration else {}),
            **({"seed": seed} if seed is not None else {}),
        )
        fuzzer = DifuzzRtlFuzzer(fz_config)
        if allow_ebreak:
            fuzzer._weights[Category.SYSTEM] = 1
        config = SessionConfig(
            core=core, bugs=tuple(bugs), rv32a_only=rv32a_only,
            instrument_style=instrument_style, max_state_size=max_state_size,
            with_ref=with_ref, timing=DIFUZZRTL_FPGA_TIMING,
            stop_on_trap=True,
        )
        return FuzzSession(config, fuzzer=fuzzer)
    if fuzzer_name == "cascade":
        from repro.baselines.cascade import CascadeConfig

        fz_config = CascadeConfig(
            **({"instructions_per_iteration": instructions_per_iteration}
               if instructions_per_iteration else {}),
            **({"seed": seed} if seed is not None else {}),
        )
        config = SessionConfig(
            core=core, bugs=tuple(bugs), rv32a_only=rv32a_only,
            instrument_style=instrument_style, max_state_size=max_state_size,
            with_ref=with_ref, timing=CASCADE_TIMING,
        )
        return FuzzSession(config, fuzzer=CascadeFuzzer(fz_config))
    raise ValueError(f"unknown fuzzer {fuzzer_name!r}")


# ---------------------------------------------------------------------------
# Fig. 4 — proportion of executable instructions (DifuzzRTL-style streams)
# ---------------------------------------------------------------------------
def fig4_executable_proportion(iterations=20):
    """Instruction-type histogram: generated vs executed vs control flow."""
    session = make_session("difuzzrtl")
    generated = {}
    executed = {}
    executed_cf = 0
    executed_total = 0
    generated_total = 0
    for _ in range(iterations):
        iteration = session.fuzzer.generate_iteration()
        for block in iteration.blocks:
            for entry in block.entries:
                decoded = try_decode(entry.word)
                if decoded is None:
                    continue
                key = decoded.spec.category.value
                generated[key] = generated.get(key, 0) + 1
                generated_total += 1
        # Setup routines are generated instructions too, and they always
        # complete execution (they precede the first wild jump/fault).
        setup_count = len(iteration.setup_words)
        generated_total += setup_count
        result = session.runner.run(iteration)
        executed_total += result.executed_fuzzing + setup_count
        session.fuzzer.feedback(iteration, result.new_coverage)
    # Category attribution of executed instructions: re-run one iteration
    # with a recording hook for the histogram.
    iteration = session.fuzzer.generate_iteration()
    core = session.core
    from repro.harness.image import build_image

    image = build_image(iteration)
    core.reset_pc = image.layout.reset
    core.reset()
    image.install(core.memory)
    for _ in range(4 * iteration.total_instructions):
        record = core.step()
        if record.pc >= iteration.fuzz_base and record.word:
            decoded = try_decode(record.word)
            if decoded is not None:
                key = decoded.spec.category.value
                executed[key] = executed.get(key, 0) + 1
                if decoded.spec.is_control_flow:
                    executed_cf += 1
        if record.trap is not None and record.pc >= iteration.fuzz_base:
            break
        if record.next_pc == iteration.layout.done:
            break
    cf_generated = sum(
        count for key, count in generated.items()
        if key in (Category.BRANCH.value, Category.JUMP.value)
    )
    return {
        "generated_by_category": generated,
        "executed_by_category": executed,
        "generated_total": generated_total,
        "executed_fuzzing_total": executed_total,
        "executed_fraction": executed_total / max(1, generated_total),
        "control_flow_share_generated": cf_generated / max(1, generated_total),
        "executed_control_flow": executed_cf,
    }


# ---------------------------------------------------------------------------
# Fig. 6 — instrumented vs achievable coverage points
# ---------------------------------------------------------------------------
def fig6_reachable_points(core_name="rocket", state_sizes=(13, 14, 15),
                          seed=7):
    """Reachability analysis for both layouts at each maxStateSize."""
    core = make_core(core_name)
    rows = {}
    for bits in state_sizes:
        legacy = design_reachability(
            instrument_design(core.top, style="legacy", max_state_size=bits,
                              seed=seed)
        )
        optimized = design_reachability(
            instrument_design(core.top, style="optimized",
                              max_state_size=bits, seed=seed)
        )
        rows[bits] = {"legacy": legacy, "optimized": optimized}
    return rows


# ---------------------------------------------------------------------------
# Fig. 7 — coverage gain from the optimized instrumentation
# ---------------------------------------------------------------------------
def fig7_instrumentation_gain(iterations=40, fuzzers=("difuzzrtl", "cascade",
                                                      "turbofuzz"),
                              instructions_per_iteration=None):
    """Max coverage under legacy vs optimized instrumentation, per fuzzer."""
    results = {}
    for fuzzer_name in fuzzers:
        per_style = {}
        for style in ("legacy", "optimized"):
            session = make_session(
                fuzzer_name, instrument_style=style,
                instructions_per_iteration=instructions_per_iteration,
            )
            session.run_iterations(iterations)
            per_style[style] = session.coverage_total
        per_style["gain"] = (
            per_style["optimized"] / per_style["legacy"]
            if per_style["legacy"] else math.inf
        )
        results[fuzzer_name] = per_style
    return results


# ---------------------------------------------------------------------------
# Fig. 8 — prevalence
# ---------------------------------------------------------------------------
def fig8_prevalence(iterations=15, turbofuzz_sizes=(1000, 4000)):
    """Prevalence per fuzzer (and per iteration size for TurboFuzz)."""
    out = {}
    session = make_session("difuzzrtl")
    session.run_iterations(iterations)
    prevalences = [h.prevalence for h in session.history]
    out["difuzzrtl"] = _prevalence_stats(prevalences)
    session = make_session("cascade")
    session.run_iterations(iterations)
    out["cascade"] = _prevalence_stats([h.prevalence for h in session.history])
    for size in turbofuzz_sizes:
        session = make_session("turbofuzz", instructions_per_iteration=size)
        session.run_iterations(iterations)
        out[f"turbofuzz_{size}"] = _prevalence_stats(
            [h.prevalence for h in session.history]
        )
    return out


def _prevalence_stats(values):
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }


# ---------------------------------------------------------------------------
# Fig. 9 — corpus scheduling
# ---------------------------------------------------------------------------
def fig9_corpus_scheduling(iterations=200, instructions_per_iteration=1000,
                           corpus_capacity=8, max_state_size=12,
                           seed=0xC0FFEE):
    """Coverage-increment scheduling vs FIFO on identical budgets.

    The corpus capacity is kept small so eviction pressure (where the two
    policies differ) appears within the scaled-down iteration budget; the
    paper's hour-long campaigns reach that regime by sheer volume.
    """
    series = {}
    finals = {}
    for policy in ("coverage", "fifo"):
        session = make_session(
            "turbofuzz", corpus_policy=policy, seed=seed,
            corpus_capacity=corpus_capacity, max_state_size=max_state_size,
            instructions_per_iteration=instructions_per_iteration,
        )
        session.run_iterations(iterations)
        series[policy] = session.coverage_series()
        finals[policy] = session.coverage_total
    improvement = finals["coverage"] / finals["fifo"] - 1.0
    # Time-to-target speedup: target = what FIFO ends at.
    target = finals["fifo"]
    speedup = _time_to_target_ratio(series["fifo"], series["coverage"], target)
    return {
        "series": series,
        "final_coverage": finals,
        "improvement": improvement,
        "time_to_target_speedup": speedup,
    }


def _time_to_target(series, target):
    for seconds, points in series:
        if points >= target:
            return seconds
    return None


def _time_to_target_ratio(baseline_series, improved_series, target):
    baseline_time = _time_to_target(baseline_series, target)
    improved_time = _time_to_target(improved_series, target)
    if baseline_time is None or improved_time is None or improved_time == 0:
        return None
    return baseline_time / improved_time


# ---------------------------------------------------------------------------
# Fig. 10 — deepExplore
# ---------------------------------------------------------------------------
def fig10_deepexplore(fuzz_iterations=100, instructions_per_iteration=1000,
                      workload_scale=1, profile_cap=40_000):
    """deepExplore vs pure fuzzing vs benchmark-only execution."""
    # Pure fuzzing.
    fuzz_session = make_session(
        "turbofuzz", instructions_per_iteration=instructions_per_iteration
    )
    fuzz_session.run_iterations(fuzz_iterations)
    fuzz_series = fuzz_session.coverage_series()
    budget = fuzz_session.clock.seconds

    # deepExplore: stage 1 + refinement + stage 2 within the same budget.
    de_session = make_session(
        "turbofuzz", instructions_per_iteration=instructions_per_iteration
    )
    explorer = DeepExplore(
        de_session,
        # Refinement is capped so stage 1 stays a small fraction of the
        # scaled-down budget (at paper scale it is negligible).
        DeepExploreConfig(profile_cap=profile_cap, refine_rounds=2),
    )
    explorer.run_stage1(all_workloads(scale=workload_scale))
    stage1_end = de_session.clock.seconds
    stage1_cov = de_session.coverage_total
    explorer.refine_marked_seeds()
    explorer.run_stage2(budget)
    de_series = [(stage1_end, stage1_cov)] + de_session.coverage_series()

    # Benchmark-only execution: loop the workloads on the DUT.
    bench_session = make_session("turbofuzz")
    bench_explorer = DeepExplore(
        bench_session, DeepExploreConfig(profile_cap=profile_cap)
    )
    bench_series = []
    while bench_session.clock.seconds < budget:
        for program in all_workloads(scale=workload_scale):
            bench_explorer._profile(program)
            bench_series.append(
                (bench_session.clock.seconds, bench_session.coverage_total)
            )
        if len(bench_series) > 400:
            break

    final = {
        "deepexplore": de_session.coverage_total,
        "fuzz_only": fuzz_session.coverage_total,
        "benchmark_only": bench_series[-1][1] if bench_series else 0,
    }
    return {
        "series": {
            "deepexplore": de_series,
            "fuzz_only": fuzz_series,
            "benchmark_only": bench_series,
        },
        "final": final,
        "gain_vs_benchmarks": final["deepexplore"] / max(1, final["benchmark_only"]),
        "gain_vs_fuzz_only": final["deepexplore"] / max(1, final["fuzz_only"]),
        "crossover_seconds": _crossover(fuzz_series, de_series),
    }


def _crossover(fuzz_series, de_series):
    """Virtual time where deepExplore's coverage overtakes pure fuzzing."""
    if not fuzz_series or not de_series:
        return None

    def coverage_at(series, seconds):
        best = 0
        for time_point, points in series:
            if time_point <= seconds:
                best = points
            else:
                break
        return best

    horizon = min(fuzz_series[-1][0], de_series[-1][0])
    steps = 200
    for step in range(1, steps + 1):
        seconds = horizon * step / steps
        if coverage_at(de_series, seconds) > coverage_at(fuzz_series, seconds):
            return seconds
    return None


# ---------------------------------------------------------------------------
# Fig. 11 — coverage convergence comparison
# ---------------------------------------------------------------------------
def fig11_convergence(budget_seconds=4.0, checkpoints=(1.0, 2.0, 4.0),
                      max_iterations=400):
    """All three fuzzers on the same virtual-time axis.

    ``budget_seconds``/``checkpoints`` are virtual seconds; the paper uses
    1/2/4 hours — the scaled axis preserves the saturation shape because
    every fuzzer pays its own per-iteration time model.
    """
    sessions = {
        "turbofuzz_4000": make_session("turbofuzz",
                                       instructions_per_iteration=4000),
        "turbofuzz_1000": make_session("turbofuzz",
                                       instructions_per_iteration=1000),
        "cascade": make_session("cascade"),
        "difuzzrtl": make_session("difuzzrtl"),
    }
    series = {}
    for name, session in sessions.items():
        session.run_for_virtual_time(budget_seconds,
                                     max_iterations=max_iterations)
        series[name] = session.coverage_series()

    def coverage_at(name, seconds):
        best = 0
        for time_point, points in series[name]:
            if time_point <= seconds:
                best = points
        return best

    table = {}
    for checkpoint in checkpoints:
        row = {name: coverage_at(name, checkpoint) for name in sessions}
        row["tf_vs_cascade"] = (
            row["turbofuzz_4000"] / row["cascade"] if row["cascade"] else None
        )
        row["tf_vs_difuzzrtl"] = (
            row["turbofuzz_4000"] / row["difuzzrtl"]
            if row["difuzzrtl"] else None
        )
        table[checkpoint] = row
    # Speedup to a shared coverage target (the paper's 35000-points story).
    target = int(0.6 * max(points for _, points in series["turbofuzz_4000"]))
    speedup = _time_to_target_ratio(
        series["cascade"], series["turbofuzz_4000"], target
    )
    return {
        "series": series,
        "checkpoints": table,
        "target_points": target,
        "speedup_vs_cascade_to_target": speedup,
    }


# ---------------------------------------------------------------------------
# Table I — fuzzing speed
# ---------------------------------------------------------------------------
def table1_fuzzing_speed(iterations=12):
    """Iteration rate (Hz) and executed instructions per second."""
    rows = {}
    for name, kwargs in (
        ("difuzzrtl", {}),
        ("cascade", {}),
        ("turbofuzz", {"instructions_per_iteration": 4000}),
    ):
        session = make_session(name, **kwargs)
        session.run_iterations(iterations)
        rows[name] = {
            "fuzzing_speed_hz": session.iteration_rate_hz(),
            "executed_per_second": session.executed_per_second(),
        }
    return rows


# ---------------------------------------------------------------------------
# Table II — bug identification performance
# ---------------------------------------------------------------------------
def table2_bug_detection(bug_ids=None, hw_max_iterations=400,
                         sw_max_iterations=4000, seed=1):
    """Time-to-trigger for TurboFuzz (HW) vs DifuzzRTL (SW), per bug."""
    if bug_ids is None:
        bug_ids = sorted(BUGS_BY_ID)
    rows = {}
    for bug_id in bug_ids:
        bug = BUGS_BY_ID[bug_id]
        rv32a_only = bug_id == "C8"
        allow_ebreak = bug_id == "R1"
        hw_session = make_session(
            "turbofuzz", core=bug.core, bugs=(bug_id,),
            rv32a_only=rv32a_only, seed=seed, allow_ebreak=allow_ebreak,
            instructions_per_iteration=1000,
        )
        hw_time = hw_session.run_until_bug_triggered(
            bug_id, max_iterations=hw_max_iterations
        )
        sw_session = make_session(
            "difuzzrtl", core=bug.core, bugs=(bug_id,),
            rv32a_only=rv32a_only, seed=seed, allow_ebreak=allow_ebreak,
        )
        # DifuzzRTL's end-of-program comparison masks transient
        # divergences; half the triggering iterations surface the bug.
        sw_time = sw_session.run_until_bug_triggered(
            bug_id, max_iterations=sw_max_iterations,
            coarse_detection=(1, 2),
        )
        ratio = (sw_time / hw_time) if hw_time and sw_time else None
        rows[bug_id] = {
            "description": bug.description,
            "core": bug.core,
            "hw_seconds": hw_time,
            "sw_seconds": sw_time,
            "acceleration": ratio,
            "paper_hw_seconds": bug.hw_time_s,
            "paper_sw_seconds": bug.sw_time_s,
            "paper_acceleration": bug.sw_time_s / bug.hw_time_s,
        }
    detected = [row["acceleration"] for row in rows.values()
                if row["acceleration"]]
    geomean = (
        math.exp(sum(math.log(value) for value in detected) / len(detected))
        if detected else None
    )
    return {"bugs": rows, "geomean_acceleration": geomean}


# ---------------------------------------------------------------------------
# Table III — area
# ---------------------------------------------------------------------------
def table3_area(core_name="rocket"):
    """Resource usage rows (delegates to the fpga package)."""
    return table3_report(make_core(core_name))
