"""Experiment drivers: one function per paper figure/table.

Every driver is deterministic given its arguments and returns a plain dict
of the numbers the corresponding figure/table plots, so the benchmark
harness can print paper-shaped rows and the tests can assert the shape
(who wins, by roughly what factor, where crossovers fall).

All drivers construct their campaigns declaratively through
:class:`~repro.campaign.CampaignSpec` and the fuzzer/core/timing
registries; grid-shaped experiments (Fig. 7/8/9/11, Table I) run their
shards through a :class:`~repro.campaign.CampaignOrchestrator` with a
shared instrumentation cache, so identical netlists are instrumented once
per grid instead of once per shard.  Grid drivers take a ``backend=`` knob
(``None``/``"serial"`` or ``"process-pool"``, or any registered
:data:`~repro.campaign.BACKENDS` entry) selecting the execution backend;
results are bit-identical across backends.

Scale note: the paper's campaigns run for hours of FPGA time; these drivers
take iteration budgets so benchmark runs complete in seconds-to-minutes of
host time while exercising identical code paths.  EXPERIMENTS.md records
the paper-vs-measured values.
"""

import math

from repro.campaign import (
    CampaignOrchestrator,
    CampaignSpec,
    FUZZERS,
    InstrumentationCache,
    build_session,
)
from repro.coverage import design_reachability, instrument_design
from repro.deepexplore import DeepExplore, DeepExploreConfig
from repro.dut import BUGS_BY_ID, make_core
from repro.fpga import table3_report
from repro.isa.decoder import try_decode
from repro.isa.instructions import Category
from repro.workloads import all_workloads


def campaign_spec(fuzzer_name, instructions_per_iteration=None,
                  core="rocket", bugs=(), rv32a_only=False,
                  instrument_style="optimized", max_state_size=15,
                  corpus_policy="coverage", corpus_capacity=None, seed=None,
                  with_ref=False, allow_ebreak=False):
    """One spec from the knobs the experiments vary.

    Fuzzer options are filtered against the registered config class, so a
    knob a fuzzer does not expose (e.g. ``corpus_policy`` for Cascade,
    which has no corpus) is dropped rather than wired through per-fuzzer
    branches.
    """
    options = {"corpus_policy": corpus_policy}
    if instructions_per_iteration:
        options["instructions_per_iteration"] = instructions_per_iteration
    if corpus_capacity is not None:
        options["corpus_capacity"] = corpus_capacity
    if seed is not None:
        options["seed"] = seed
    fields = FUZZERS.get(fuzzer_name).config_class.__dataclass_fields__
    spec = CampaignSpec(
        fuzzer=fuzzer_name,
        core=core,
        bugs=tuple(bugs),
        rv32a_only=rv32a_only,
        instrument_style=instrument_style,
        max_state_size=max_state_size,
        with_ref=with_ref,
        fuzzer_options={key: value for key, value in options.items()
                        if key in fields},
    )
    if allow_ebreak:
        spec = spec.with_tweak("allow_ebreak")
    return spec


def make_session(fuzzer_name, **kwargs):
    """Legacy session factory: resolve a spec through the registries."""
    return build_session(campaign_spec(fuzzer_name, **kwargs))


# ---------------------------------------------------------------------------
# Fig. 4 — proportion of executable instructions (DifuzzRTL-style streams)
# ---------------------------------------------------------------------------
def fig4_executable_proportion(iterations=20):
    """Instruction-type histogram: generated vs executed vs control flow.

    The per-iteration tallies ride on the session's ``iteration`` event, so
    the campaign runs through the exact session path every other driver
    uses — including the weighted feedback scalar — instead of a hand-run
    generate/run/feedback loop.
    """
    session = build_session(campaign_spec("difuzzrtl"))
    generated = {}
    executed = {}
    totals = {"generated": 0, "executed": 0}

    @session.bus.on_iteration
    def _tally(session, iteration, result, outcome):
        for block in iteration.blocks:
            for entry in block.entries:
                decoded = try_decode(entry.word)
                if decoded is None:
                    continue
                key = decoded.spec.category.value
                generated[key] = generated.get(key, 0) + 1
                totals["generated"] += 1
        # Setup routines are generated instructions too, and they always
        # complete execution (they precede the first wild jump/fault).
        setup_count = len(iteration.setup_words)
        totals["generated"] += setup_count
        totals["executed"] += result.executed_fuzzing + setup_count

    session.run_iterations(iterations)
    executed_total = totals["executed"]
    generated_total = totals["generated"]
    # Category attribution of executed instructions: re-run one iteration
    # with a recording hook for the histogram.
    iteration = session.fuzzer.generate_iteration()
    core = session.core
    from repro.harness.image import build_image

    image = build_image(iteration)
    core.reset_pc = image.layout.reset
    core.reset()
    image.install(core.memory)
    executed_cf = 0
    for _ in range(4 * iteration.total_instructions):
        record = core.step()
        if record.pc >= iteration.fuzz_base and record.word:
            decoded = try_decode(record.word)
            if decoded is not None:
                key = decoded.spec.category.value
                executed[key] = executed.get(key, 0) + 1
                if decoded.spec.is_control_flow:
                    executed_cf += 1
        if record.trap is not None and record.pc >= iteration.fuzz_base:
            break
        if record.next_pc == iteration.layout.done:
            break
    cf_generated = sum(
        count for key, count in generated.items()
        if key in (Category.BRANCH.value, Category.JUMP.value)
    )
    return {
        "generated_by_category": generated,
        "executed_by_category": executed,
        "generated_total": generated_total,
        "executed_fuzzing_total": executed_total,
        "executed_fraction": executed_total / max(1, generated_total),
        "control_flow_share_generated": cf_generated / max(1, generated_total),
        "executed_control_flow": executed_cf,
    }


# ---------------------------------------------------------------------------
# Fig. 6 — instrumented vs achievable coverage points
# ---------------------------------------------------------------------------
def fig6_reachable_points(core_name="rocket", state_sizes=(13, 14, 15),
                          seed=7):
    """Reachability analysis for both layouts at each maxStateSize."""
    core = make_core(core_name)
    rows = {}
    for bits in state_sizes:
        legacy = design_reachability(
            instrument_design(core.top, style="legacy", max_state_size=bits,
                              seed=seed)
        )
        optimized = design_reachability(
            instrument_design(core.top, style="optimized",
                              max_state_size=bits, seed=seed)
        )
        rows[bits] = {"legacy": legacy, "optimized": optimized}
    return rows


# ---------------------------------------------------------------------------
# Fig. 7 — coverage gain from the optimized instrumentation
# ---------------------------------------------------------------------------
def fig7_instrumentation_gain(iterations=40, fuzzers=("difuzzrtl", "cascade",
                                                      "turbofuzz"),
                              instructions_per_iteration=None, backend=None):
    """Max coverage under legacy vs optimized instrumentation, per fuzzer."""
    styles = ("legacy", "optimized")
    orchestrator = CampaignOrchestrator([
        campaign_spec(
            fuzzer_name, instrument_style=style,
            instructions_per_iteration=instructions_per_iteration,
        ).named(f"{fuzzer_name}:{style}")
        for fuzzer_name in fuzzers for style in styles
    ], backend=backend)
    orchestrator.run_iterations(iterations)
    results = {}
    for fuzzer_name in fuzzers:
        per_style = {
            style: orchestrator[f"{fuzzer_name}:{style}"].coverage_total
            for style in styles
        }
        per_style["gain"] = (
            per_style["optimized"] / per_style["legacy"]
            if per_style["legacy"] else math.inf
        )
        results[fuzzer_name] = per_style
    return results


# ---------------------------------------------------------------------------
# Fig. 8 — prevalence
# ---------------------------------------------------------------------------
def fig8_prevalence(iterations=15, turbofuzz_sizes=(1000, 4000),
                    backend=None):
    """Prevalence per fuzzer (and per iteration size for TurboFuzz)."""
    specs = [campaign_spec("difuzzrtl").named("difuzzrtl"),
             campaign_spec("cascade").named("cascade")]
    specs += [
        campaign_spec("turbofuzz", instructions_per_iteration=size)
        .named(f"turbofuzz_{size}")
        for size in turbofuzz_sizes
    ]
    orchestrator = CampaignOrchestrator(specs, backend=backend)
    orchestrator.run_iterations(iterations)
    return {
        label: _prevalence_stats([h.prevalence for h in session.history])
        for label, session in orchestrator
    }


def _prevalence_stats(values):
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }


# ---------------------------------------------------------------------------
# Fig. 9 — corpus scheduling
# ---------------------------------------------------------------------------
def fig9_corpus_scheduling(iterations=200, instructions_per_iteration=1000,
                           corpus_capacity=8, max_state_size=12,
                           seed=0xC0FFEE, backend=None):
    """Coverage-increment scheduling vs FIFO on identical budgets.

    The corpus capacity is kept small so eviction pressure (where the two
    policies differ) appears within the scaled-down iteration budget; the
    paper's hour-long campaigns reach that regime by sheer volume.
    """
    orchestrator = CampaignOrchestrator([
        campaign_spec(
            "turbofuzz", corpus_policy=policy, seed=seed,
            corpus_capacity=corpus_capacity, max_state_size=max_state_size,
            instructions_per_iteration=instructions_per_iteration,
        ).named(policy)
        for policy in ("coverage", "fifo")
    ], backend=backend)
    orchestrator.run_iterations(iterations)
    series = orchestrator.coverage_series()
    finals = {label: session.coverage_total
              for label, session in orchestrator}
    improvement = finals["coverage"] / finals["fifo"] - 1.0
    # Time-to-target speedup: target = what FIFO ends at.
    target = finals["fifo"]
    speedup = _time_to_target_ratio(series["fifo"], series["coverage"], target)
    return {
        "series": series,
        "final_coverage": finals,
        "improvement": improvement,
        "time_to_target_speedup": speedup,
    }


def _time_to_target(series, target):
    for seconds, points in series:
        if points >= target:
            return seconds
    return None


def _time_to_target_ratio(baseline_series, improved_series, target):
    baseline_time = _time_to_target(baseline_series, target)
    improved_time = _time_to_target(improved_series, target)
    if baseline_time is None or improved_time is None or improved_time == 0:
        return None
    return baseline_time / improved_time


# ---------------------------------------------------------------------------
# Fig. 10 — deepExplore
# ---------------------------------------------------------------------------
def fig10_deepexplore(fuzz_iterations=100, instructions_per_iteration=1000,
                      workload_scale=1, profile_cap=40_000):
    """deepExplore vs pure fuzzing vs benchmark-only execution."""
    spec = campaign_spec(
        "turbofuzz", instructions_per_iteration=instructions_per_iteration
    )
    cache = InstrumentationCache()

    # Pure fuzzing.
    fuzz_session = build_session(spec, cache=cache)
    fuzz_session.run_iterations(fuzz_iterations)
    fuzz_series = fuzz_session.coverage_series()
    budget = fuzz_session.clock.seconds

    # deepExplore: stage 1 + refinement + stage 2 within the same budget.
    de_session = build_session(spec, cache=cache)
    explorer = DeepExplore(
        de_session,
        # Refinement is capped so stage 1 stays a small fraction of the
        # scaled-down budget (at paper scale it is negligible).
        DeepExploreConfig(profile_cap=profile_cap, refine_rounds=2),
    )
    explorer.run_stage1(all_workloads(scale=workload_scale))
    stage1_end = de_session.clock.seconds
    stage1_cov = de_session.coverage_total
    explorer.refine_marked_seeds()
    explorer.run_stage2(budget)
    de_series = [(stage1_end, stage1_cov)] + de_session.coverage_series()

    # Benchmark-only execution: loop the workloads on the DUT.
    bench_session = build_session(campaign_spec("turbofuzz"), cache=cache)
    bench_explorer = DeepExplore(
        bench_session, DeepExploreConfig(profile_cap=profile_cap)
    )
    bench_series = []
    while bench_session.clock.seconds < budget:
        for program in all_workloads(scale=workload_scale):
            bench_explorer._profile(program)
            bench_series.append(
                (bench_session.clock.seconds, bench_session.coverage_total)
            )
        if len(bench_series) > 400:
            break

    final = {
        "deepexplore": de_session.coverage_total,
        "fuzz_only": fuzz_session.coverage_total,
        "benchmark_only": bench_series[-1][1] if bench_series else 0,
    }
    return {
        "series": {
            "deepexplore": de_series,
            "fuzz_only": fuzz_series,
            "benchmark_only": bench_series,
        },
        "final": final,
        "gain_vs_benchmarks": final["deepexplore"] / max(1, final["benchmark_only"]),
        "gain_vs_fuzz_only": final["deepexplore"] / max(1, final["fuzz_only"]),
        "crossover_seconds": _crossover(fuzz_series, de_series),
    }


def _crossover(fuzz_series, de_series):
    """Virtual time where deepExplore's coverage overtakes pure fuzzing."""
    if not fuzz_series or not de_series:
        return None

    def coverage_at(series, seconds):
        best = 0
        for time_point, points in series:
            if time_point <= seconds:
                best = points
            else:
                break
        return best

    horizon = min(fuzz_series[-1][0], de_series[-1][0])
    steps = 200
    for step in range(1, steps + 1):
        seconds = horizon * step / steps
        if coverage_at(de_series, seconds) > coverage_at(fuzz_series, seconds):
            return seconds
    return None


# ---------------------------------------------------------------------------
# Fig. 11 — coverage convergence comparison
# ---------------------------------------------------------------------------
def fig11_convergence(budget_seconds=4.0, checkpoints=(1.0, 2.0, 4.0),
                      max_iterations=400, backend=None):
    """All three fuzzers on the same virtual-time axis.

    ``budget_seconds``/``checkpoints`` are virtual seconds; the paper uses
    1/2/4 hours — the scaled axis preserves the saturation shape because
    every fuzzer pays its own per-iteration time model.

    The four shards share one instrumentation cache: the three Rocket
    campaigns with identical instrumentation reuse a single layout
    computation.
    """
    orchestrator = CampaignOrchestrator([
        campaign_spec("turbofuzz",
                      instructions_per_iteration=4000).named("turbofuzz_4000"),
        campaign_spec("turbofuzz",
                      instructions_per_iteration=1000).named("turbofuzz_1000"),
        campaign_spec("cascade").named("cascade"),
        campaign_spec("difuzzrtl").named("difuzzrtl"),
    ], backend=backend)
    orchestrator.run_for_virtual_time(budget_seconds,
                                      max_iterations=max_iterations)
    series = orchestrator.coverage_series()

    table = {}
    for checkpoint in checkpoints:
        row = {name: orchestrator.coverage_at(name, checkpoint)
               for name in orchestrator.labels}
        row["tf_vs_cascade"] = (
            row["turbofuzz_4000"] / row["cascade"] if row["cascade"] else None
        )
        row["tf_vs_difuzzrtl"] = (
            row["turbofuzz_4000"] / row["difuzzrtl"]
            if row["difuzzrtl"] else None
        )
        table[checkpoint] = row
    # Speedup to a shared coverage target (the paper's 35000-points story).
    target = int(0.6 * max(points for _, points in series["turbofuzz_4000"]))
    speedup = _time_to_target_ratio(
        series["cascade"], series["turbofuzz_4000"], target
    )
    return {
        "series": series,
        "checkpoints": table,
        "target_points": target,
        "speedup_vs_cascade_to_target": speedup,
        "instrumentation_cache": dict(orchestrator.cache.stats),
    }


# ---------------------------------------------------------------------------
# Table I — fuzzing speed
# ---------------------------------------------------------------------------
def table1_fuzzing_speed(iterations=12, backend=None):
    """Iteration rate (Hz) and executed instructions per second."""
    orchestrator = CampaignOrchestrator([
        campaign_spec("difuzzrtl").named("difuzzrtl"),
        campaign_spec("cascade").named("cascade"),
        campaign_spec("turbofuzz",
                      instructions_per_iteration=4000).named("turbofuzz"),
    ], backend=backend)
    orchestrator.run_iterations(iterations)
    return {
        label: {
            "fuzzing_speed_hz": session.iteration_rate_hz(),
            "executed_per_second": session.executed_per_second(),
        }
        for label, session in orchestrator
    }


# ---------------------------------------------------------------------------
# Table II — bug identification performance
# ---------------------------------------------------------------------------
def table2_bug_detection(bug_ids=None, hw_max_iterations=400,
                         sw_max_iterations=4000, seed=1):
    """Time-to-trigger for TurboFuzz (HW) vs DifuzzRTL (SW), per bug."""
    if bug_ids is None:
        bug_ids = sorted(BUGS_BY_ID)
    cache = InstrumentationCache()
    rows = {}
    for bug_id in bug_ids:
        bug = BUGS_BY_ID[bug_id]
        rv32a_only = bug_id == "C8"
        allow_ebreak = bug_id == "R1"
        hw_session = build_session(campaign_spec(
            "turbofuzz", core=bug.core, bugs=(bug_id,),
            rv32a_only=rv32a_only, seed=seed, allow_ebreak=allow_ebreak,
            instructions_per_iteration=1000,
        ), cache=cache)
        hw_time = hw_session.run_until_bug_triggered(
            bug_id, max_iterations=hw_max_iterations
        )
        sw_session = build_session(campaign_spec(
            "difuzzrtl", core=bug.core, bugs=(bug_id,),
            rv32a_only=rv32a_only, seed=seed, allow_ebreak=allow_ebreak,
        ), cache=cache)
        # DifuzzRTL's end-of-program comparison masks transient
        # divergences; half the triggering iterations surface the bug.
        sw_time = sw_session.run_until_bug_triggered(
            bug_id, max_iterations=sw_max_iterations,
            coarse_detection=(1, 2),
        )
        ratio = (sw_time / hw_time) if hw_time and sw_time else None
        rows[bug_id] = {
            "description": bug.description,
            "core": bug.core,
            "hw_seconds": hw_time,
            "sw_seconds": sw_time,
            "acceleration": ratio,
            "paper_hw_seconds": bug.hw_time_s,
            "paper_sw_seconds": bug.sw_time_s,
            "paper_acceleration": bug.sw_time_s / bug.hw_time_s,
        }
    detected = [row["acceleration"] for row in rows.values()
                if row["acceleration"]]
    geomean = (
        math.exp(sum(math.log(value) for value in detected) / len(detected))
        if detected else None
    )
    return {"bugs": rows, "geomean_acceleration": geomean}


# ---------------------------------------------------------------------------
# Table III — area
# ---------------------------------------------------------------------------
def table3_area(core_name="rocket"):
    """Resource usage rows (delegates to the fpga package)."""
    return table3_report(make_core(core_name))
