"""Co-simulation harness: the FPGA platform glue of the paper.

* :mod:`repro.harness.clock` — the 100 MHz virtual wall clock
* :mod:`repro.harness.image` — program image building (templates + blocks
  + randomized data segment)
* :mod:`repro.harness.runner` — DUT(/REF lockstep) iteration execution
* :mod:`repro.harness.checker` — ENCORE-style instruction-level checking
* :mod:`repro.harness.snapshot` — hardware snapshot capture/restore
* :mod:`repro.harness.session` — a fuzzing campaign with time accounting
"""

from repro.harness.clock import VirtualClock
from repro.harness.image import ProgramImage, build_image
from repro.harness.checker import DifferentialChecker, Mismatch
from repro.harness.snapshot import HardwareSnapshot
from repro.harness.runner import IterationRunner, RunResult
from repro.harness.session import FuzzSession, SessionConfig

__all__ = [
    "VirtualClock",
    "ProgramImage",
    "build_image",
    "DifferentialChecker",
    "Mismatch",
    "HardwareSnapshot",
    "IterationRunner",
    "RunResult",
    "FuzzSession",
    "SessionConfig",
]
