"""Co-simulation harness: the FPGA platform glue of the paper.

* :mod:`repro.harness.clock` — the 100 MHz virtual wall clock
* :mod:`repro.harness.image` — program image building (templates + blocks
  + randomized data segment)
* :mod:`repro.harness.runner` — DUT(/REF lockstep) iteration execution
* :mod:`repro.harness.checker` — ENCORE-style instruction-level checking
* :mod:`repro.harness.snapshot` — hardware snapshot capture/restore
* :mod:`repro.harness.session` — legacy session shim over
  :mod:`repro.campaign` (the campaign layer proper)
"""

from repro.harness.clock import VirtualClock
from repro.harness.image import ProgramImage, build_image
from repro.harness.checker import DifferentialChecker, Mismatch
from repro.harness.snapshot import HardwareSnapshot
from repro.harness.runner import IterationRunner, RunResult

__all__ = [
    "VirtualClock",
    "ProgramImage",
    "build_image",
    "DifferentialChecker",
    "Mismatch",
    "HardwareSnapshot",
    "IterationRunner",
    "RunResult",
    "FuzzSession",
    "SessionConfig",
    "IterationOutcome",
]

_SESSION_EXPORTS = ("FuzzSession", "SessionConfig", "IterationOutcome")


def __getattr__(name):
    # Imported lazily: repro.harness.session sits on top of repro.campaign,
    # which itself imports harness submodules — a module-level import here
    # would close an import cycle when repro.campaign is imported first.
    if name in _SESSION_EXPORTS:
        from repro.harness import session

        return getattr(session, name)
    raise AttributeError(f"module 'repro.harness' has no attribute {name!r}")
