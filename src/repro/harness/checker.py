"""ENCORE-style fine-grained differential checking (paper Section III).

The DUT and the REF execute in instruction-level lockstep; after every
instruction their commit records are compared.  Any divergence — register
writeback, memory write, CSR effect, accrued fflags, control flow, or trap
cause — halts both sides immediately, which is the paper's "hardware and
software pausing immediately on mismatches".
"""

from dataclasses import dataclass

from repro.isa.disasm import disassemble


@dataclass
class Mismatch:
    """One detected DUT/REF divergence."""

    instruction_index: int
    pc: int
    word: int
    field: str
    dut_value: object
    ref_value: object

    def describe(self):
        """Human-readable mismatch report (for snapshots and logs)."""
        return (
            f"mismatch at #{self.instruction_index} pc={self.pc:#010x} "
            f"[{disassemble(self.word)}]: {self.field}: "
            f"dut={self.dut_value!r} ref={self.ref_value!r}"
        )


_FIELD_NAMES = (
    "pc",
    "next_pc",
    "trap_cause",
    "rd",
    "rd_value",
    "frd",
    "frd_value",
    "mem_addr",
    "mem_value",
    "csr_addr",
    "csr_value",
    "fflags_set",
)


class DifferentialChecker:
    """Compares per-instruction commit records from DUT and REF."""

    def __init__(self):
        self.instructions_checked = 0
        self.mismatches = []

    def check(self, dut_record, ref_record):
        """Compare one instruction; returns a Mismatch or None."""
        index = self.instructions_checked
        self.instructions_checked += 1
        dut_fields = dut_record.key_fields()
        ref_fields = ref_record.key_fields()
        if dut_fields == ref_fields:
            return None
        for name, dut_value, ref_value in zip(_FIELD_NAMES, dut_fields, ref_fields):
            if dut_value != ref_value:
                mismatch = Mismatch(
                    instruction_index=index,
                    pc=dut_record.pc,
                    word=dut_record.word,
                    field=name,
                    dut_value=dut_value,
                    ref_value=ref_value,
                )
                self.mismatches.append(mismatch)
                return mismatch
        return None  # pragma: no cover - fields differ iff tuples differ

    @property
    def clean(self):
        return not self.mismatches
