"""Program image construction: templates + iteration blocks + data segment.

The image is what gets committed to the DUT's (and REF's) memory for one
fuzzing iteration: prologue at the reset vector, trap handler, done loop,
the assembled instruction blocks, and the LFSR-randomized data segment with
an *interesting-values table* at the data base (zeros, infinities, NaNs,
an improperly NaN-boxed single — the special operands that make the FP
corner cases of Table II reachable at all).
"""

import struct
from dataclasses import dataclass, field

from repro.fuzzer.context import MemoryLayout
from repro.fuzzer.lfsr import Lfsr
from repro.fuzzer.templates import build_done_loop, build_prologue, build_trap_handler

# The interesting-values table, laid out at the data base register (so the
# generator's small positive fld displacements reach it).  Doubles first,
# then NaN-boxed singles, then deliberately *mis-boxed* singles (upper bits
# not all-ones) for the C3/C6 NaN-boxing bugs.
_D = lambda value: struct.unpack("<Q", struct.pack("<d", value))[0]  # noqa: E731

INTERESTING_F64 = (
    _D(0.0),
    _D(-0.0),
    _D(float("inf")),
    _D(float("-inf")),
    0x7FF8_0000_0000_0000,  # qNaN
    0x7FF0_0000_0000_0001,  # sNaN
    _D(1.0),
    _D(-1.0),
    _D(1.5),
    _D(2.0 ** -1060),  # subnormal territory after ops
    _D(1.7976931348623157e308),  # DBL_MAX
    _D(5e-324),  # smallest subnormal
)

_BOX = 0xFFFFFFFF_00000000
_S = lambda value: struct.unpack("<I", struct.pack("<f", value))[0]  # noqa: E731

INTERESTING_BOXED_F32 = (
    _BOX | _S(0.0),
    _BOX | 0x8000_0000,  # -0.0f
    _BOX | _S(float("inf")),
    _BOX | _S(float("-inf")),
    _BOX | 0x7FC0_0000,  # qNaNf
    _BOX | 0x7F80_0001,  # sNaNf
    _BOX | _S(1.0),
    _BOX | _S(3.5),
)

MISBOXED_F32 = (
    0x0000_0000_3F80_0000,  # 1.0f with a zero box (invalid)
    0xDEADBEEF_7F80_0000,   # +inf-f with a garbage box (invalid)
)

INTERESTING_TABLE = INTERESTING_F64 + INTERESTING_BOXED_F32 + MISBOXED_F32


@dataclass
class ProgramImage:
    """Everything needed to install one iteration into a memory."""

    layout: MemoryLayout
    prologue: list
    handler: list
    done: list
    block_words: list
    data_bytes: bytes
    block_bases: list = field(default_factory=list)

    @property
    def total_template_instructions(self):
        return len(self.prologue) + len(self.handler) + len(self.done)

    def install(self, memory):
        """Write all segments and whitelist the legal address windows."""
        layout = self.layout
        for base, size in layout.memory_ranges():
            memory.add_range(base, size)
        memory.write_program(layout.reset, self.prologue)
        memory.write_program(layout.handler, self.handler)
        memory.write_program(layout.done, self.done)
        memory.write_program(layout.blocks, self.block_words)
        memory.store_bytes(layout.data, self.data_bytes, check=False)

    def is_done_pc(self, pc):
        return pc == self.layout.done


def build_data_segment(layout, data_seed, patches=()):
    """LFSR-randomized data segment with the interesting-values table at
    the data base register's window.  ``patches`` are (offset, bytes)
    pairs applied last (deepExplore uses them to plant interval
    initialization contexts)."""
    lfsr = Lfsr(data_seed or 1)
    data = bytearray(lfsr.fill_bytes(layout.data_size))
    table_offset = layout.data_base_reg_value - layout.data
    cursor = table_offset
    for value in INTERESTING_TABLE:
        data[cursor : cursor + 8] = value.to_bytes(8, "little")
        cursor += 8
    for offset, blob in patches:
        data[offset : offset + len(blob)] = blob
    return bytes(data)


def build_image(iteration, fp_init_count=8):
    """Assemble a :class:`ProgramImage` from an assembled iteration."""
    layout = iteration.layout
    if not iteration.words:
        iteration.assemble()
    return ProgramImage(
        layout=layout,
        prologue=build_prologue(layout, fp_init_count),
        handler=build_trap_handler(layout),
        done=build_done_loop(),
        block_words=list(iteration.words),
        data_bytes=build_data_segment(
            layout, iteration.data_seed,
            patches=getattr(iteration, "data_patches", ()),
        ),
        block_bases=list(iteration.block_bases),
    )
