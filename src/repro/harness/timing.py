"""Per-iteration timing models (the Table I calibration).

Each fuzzing system spends its iteration time differently:

* **TurboFuzz** — generation, execution and coverage collection are all in
  hardware; the dominant cost is instruction-level synchronization with the
  REF model on the SoC's ARM cores (the fine-grained self-checking).
* **DifuzzRTL (with FPGA)** — DUT execution is offloaded, but mutation +
  input compilation run on the host and every iteration pays DMA transfer
  and coverage-map readback over PCIe (the host-FPGA bottleneck).
* **Cascade** — pure software: program generation dominates, plus RTL
  simulation at tens of kHz.

The defaults reproduce Table I's 75.12 / 4.13 / 12.80 Hz and the
corresponding executed-instructions-per-second figures.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class IterationTiming:
    """Virtual-time cost model of one fuzzing iteration."""

    name: str
    fixed_s: float = 0.0              # per-iteration fixed overhead
    host_generation_s: float = 0.0    # host-side generation / compilation
    transfer_s: float = 0.0           # host<->FPGA DMA per iteration
    coverage_scan_s: float = 0.0      # feedback readout
    gen_per_instruction_s: float = 0.0  # hardware generation pipeline
    per_instruction_s: float = 0.0    # execution/checking cost per executed
    use_dut_cycles: bool = False      # count DUT cycles at the FPGA clock
    detection_s: float = 0.0          # one-off latency to surface a finding
    #   TurboFuzz: full-design snapshot capture + readback to the host
    #   software fuzzers: trace dump + triage

    def iteration_seconds(self, generated, executed, dut_cycles,
                          frequency_hz=100e6):
        """Total virtual seconds consumed by one iteration."""
        seconds = (
            self.fixed_s
            + self.host_generation_s
            + self.transfer_s
            + self.coverage_scan_s
            + self.gen_per_instruction_s * generated
            + self.per_instruction_s * executed
        )
        if self.use_dut_cycles:
            seconds += dut_cycles / frequency_hz
        return seconds


# TurboFuzz: all-hardware loop; REF sync on the ARM cores dominates.
TURBOFUZZ_TIMING = IterationTiming(
    name="turbofuzz",
    fixed_s=100e-6,            # iteration setup / corpus bookkeeping
    coverage_scan_s=400e-6,    # per-module N_cov readout
    gen_per_instruction_s=10e-9,  # pipelined generation at ~1 instr/cycle
    per_instruction_s=3.05e-6,  # ARM-side instruction-level checking
    use_dut_cycles=True,
    detection_s=1.0,            # snapshot capture + PCIe readback
)

# DifuzzRTL offloading the DUT to the FPGA: host generation + DMA dominate.
DIFUZZRTL_FPGA_TIMING = IterationTiming(
    name="difuzzrtl-fpga",
    fixed_s=2e-3,
    host_generation_s=120e-3,  # mutation + input compilation on the host
    transfer_s=60e-3,          # stimulus down + trace up over PCIe
    coverage_scan_s=60e-3,     # control-register coverage readback
    per_instruction_s=0.0,
    use_dut_cycles=True,
    detection_s=0.5,           # trace dump + triage
)

# Cascade: software program generation + RTL simulation at tens of kHz.
CASCADE_TIMING = IterationTiming(
    name="cascade",
    fixed_s=1e-3,
    host_generation_s=73e-3,   # intricate program construction
    per_instruction_s=20e-6,   # RTL simulation throughput (~50 kHz)
    use_dut_cycles=False,
    detection_s=0.5,           # waveform dump + triage
)

TIMING_PRESETS = {
    timing.name: timing
    for timing in (TURBOFUZZ_TIMING, DIFUZZRTL_FPGA_TIMING, CASCADE_TIMING)
}
