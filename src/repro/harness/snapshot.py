"""Hardware snapshots (paper Section III / StateMover lineage).

On the FPGA, TurboFuzz captures the complete design state — logic, FFs,
on-chip memories, DDR — via configuration readback when a mismatch occurs,
for offline replay in a software simulator.  Here a snapshot captures the
complete model state (architectural state, memory pages, micro-arch values,
coverage counters, cycle count) and can restore it bit-for-bit, which the
debugging workflow in the examples uses the same way.
"""

import pickle
from dataclasses import dataclass, field


@dataclass
class HardwareSnapshot:
    """A frozen, restorable copy of a DUT core's complete state."""

    core_name: str
    cycles: float
    retired: int
    arch_state: dict
    memory_pages: dict
    microarch_values: dict
    coverage_counts: dict = field(default_factory=dict)
    annotation: str = ""

    @classmethod
    def capture(cls, core, annotation=""):
        """Freeze the complete state of a DUT core."""
        return cls(
            core_name=core.name,
            cycles=core.cycles,
            retired=core.retired,
            arch_state=core.state.snapshot(),
            memory_pages=core.memory.snapshot_pages(),
            microarch_values=dict(core.vals),
            coverage_counts=(
                core.coverage.counts_by_module() if core.coverage else {}
            ),
            annotation=annotation,
        )

    def restore(self, core):
        """Load this snapshot back into a compatible core."""
        if core.name != self.core_name:
            raise ValueError(
                f"snapshot of {self.core_name!r} cannot restore {core.name!r}"
            )
        core.state.restore(self.arch_state)
        core.memory.restore_pages(self.memory_pages)
        core.vals.update(self.microarch_values)
        core.cycles = self.cycles
        core.retired = self.retired

    def to_bytes(self):
        """Serialize (the host-PC transfer of the paper's workflow)."""
        return pickle.dumps(self)

    @classmethod
    def from_bytes(cls, blob):
        snapshot = pickle.loads(blob)
        if not isinstance(snapshot, cls):
            raise TypeError("blob does not contain a HardwareSnapshot")
        return snapshot

    @property
    def resident_memory_bytes(self):
        return sum(len(page) for page in self.memory_pages.values())
