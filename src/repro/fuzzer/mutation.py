"""Mutation mode: coverage-guided transformation of corpus seeds
(paper Section IV-B.3).

The engine walks the selected seed's blocks; at each position the fuzzer
chooses direct mode (9/16) or mutation mode (7/16).  Mutation-mode block
operations follow the paper's defaults — generate 3/16, delete 11/16,
retain 2/16 — with retained blocks undergoing operand rebinding and
retained control flow preserving its original (unrestricted) jump distance.
"""

from repro.fuzzer.blocks import InstructionBlock, StimulusEntry, next_block_version
from repro.isa.decoder import try_decode


class MutationEngine:
    """Applies block-level and operand-level mutations to seeds."""

    def __init__(self, config, context, direct_generator):
        self.config = config
        self.context = context
        self.direct = direct_generator

    # -- block-level ops ------------------------------------------------------------
    def roll_block_op(self):
        """Draw one of generate/delete/retain with the configured odds."""
        lfsr = self.context.lfsr
        roll = lfsr.next() & 15
        generate_cut = self.config.block_generate_prob[0]
        delete_cut = generate_cut + self.config.block_delete_prob[0] * 16 // (
            self.config.block_delete_prob[1]
        )
        if roll < generate_cut:
            return "generate"
        if roll < delete_cut:
            return "delete"
        return "retain"

    def retain_block(self, seed_block, old_index, new_index):
        """Clone a seed block into the new iteration.

        Control-flow blocks keep their original relative jump distance
        (the paper deliberately leaves preserved jumps unrestricted); the
        assembler clamps any target that falls off the iteration end.
        Operands are rebound with the configured probability.

        Copy-on-write: the entry list is deep-copied only when operand
        rebinding will actually touch it; an unmutated retain shares the
        seed's (never-mutated-in-place) entries.  The rebind chance is
        drawn up front — the clone consumes no randomness, so the LFSR
        stream is unchanged.
        """
        rebind = self.context.lfsr.chance(self.config.operand_mutation_prob)
        if rebind:
            block = seed_block.clone(generated=False)  # clone() re-stamps
        else:
            # Copy-on-write identity: sharing the seed's entries means
            # sharing its version stamp, so the block compiler reuses the
            # seed's compiled slots.
            block = InstructionBlock(
                prime_name=seed_block.prime_name,
                entries=seed_block.entries,
                cf_kind=seed_block.cf_kind,
                target_block=seed_block.target_block,
                generated=False,
                version=seed_block.version,
            )
        if block.is_control_flow:
            if block.target_block is not None:
                delta = max(1, block.target_block - old_index)
                block.target_block = new_index + delta
            # Assembly patches control-flow words from the (re-indexed)
            # target and the block's position, so the assembled bytes can
            # differ from the seed's placement even with shared entries.
            block.version = next_block_version()
        if rebind:
            self._rebind_operands(block)
        return block

    # -- operand-level ops ----------------------------------------------------------
    def _rebind_operands(self, block):
        """Coverage-sensitive operand rebinding: re-draw register and
        immediate fields while keeping each instruction's identity."""
        if block.is_control_flow:
            # jalr's displacement (and a branch's fallback offset) are part
            # of the control-flow contract; mutating them would create
            # wild jumps outside the block-boundary guarantee.
            return
        for position, entry in enumerate(block.entries):
            if entry.needs_target_patch:
                continue  # control-flow words are patched at assembly
            mutated = self._mutate_word(entry.word)
            if mutated is not None:
                block.entries[position] = StimulusEntry(
                    mutated, entry.is_prime, entry.needs_target_patch,
                    entry.patch_kind,
                )

    def _mutate_word(self, word):
        """Bit-flip within operand fields, validated by re-decode.

        Flips 1-2 random bits in the upper operand field (bits 20..31:
        immediates, rs2, funct7); rd/rs1 stay intact so base-register
        conventions survive mutation.  The result is kept only if it still
        decodes (the hardware-enforced validity check of the paper),
        otherwise a second attempt is made before giving up.
        """
        original = try_decode(word)
        if original is None or original.spec.fmt in ("CSR", "CSRI"):
            # Bits 20..31 of a CSR instruction are the CSR *address*;
            # flipping them could retarget mtvec and tear down the
            # exception templates.  Leave CSR ops untouched.
            return None
        lfsr = self.context.lfsr
        for _ in range(2):
            flips = 1 + (lfsr.next() & 1)
            mutated = word
            for _ in range(flips):
                bit = 20 + lfsr.below(12)
                mutated ^= 1 << bit
            decoded = try_decode(mutated)
            if (
                decoded is not None
                and decoded.spec.fmt == original.spec.fmt
                and decoded.spec.writes_fp == original.spec.writes_fp
            ):
                # Format-preserving only: a funct7 flip could otherwise
                # morph e.g. fadd.d f5 into fmv.x.d x5, silently turning
                # an FP destination into the integer base register.
                return mutated
        return None
