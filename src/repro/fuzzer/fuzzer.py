"""The TurboFuzzer top level: iteration generation + coverage feedback.

One :meth:`TurboFuzzer.generate_iteration` call produces a complete,
assembled :class:`~repro.fuzzer.blocks.Iteration`; after the harness runs
it on the DUT, :meth:`TurboFuzzer.feedback` folds the measured coverage
increment back into the corpus (new seeds in generation mode, increment
updates in mutation mode — paper Section IV-D).
"""

from dataclasses import dataclass, field

from repro.fuzzer.blocks import Iteration
from repro.fuzzer.config import TurboFuzzConfig
from repro.fuzzer.context import FuzzContext, MemoryLayout
from repro.fuzzer.corpus import Corpus, Seed
from repro.fuzzer.direct import DirectGenerator
from repro.fuzzer.instrlib import InstructionLibrary
from repro.fuzzer.lfsr import Lfsr
from repro.fuzzer.mutation import MutationEngine


@dataclass(slots=True)
class FuzzerStats:
    """Counters a campaign accumulates."""

    iterations: int = 0
    instructions_generated: int = 0
    blocks_generated: int = 0
    blocks_retained: int = 0
    blocks_deleted: int = 0
    seeds_added: int = 0
    mode_counts: dict = field(
        default_factory=lambda: {"direct": 0, "mutation": 0}
    )

    def state_dict(self):
        return {
            "iterations": self.iterations,
            "instructions_generated": self.instructions_generated,
            "blocks_generated": self.blocks_generated,
            "blocks_retained": self.blocks_retained,
            "blocks_deleted": self.blocks_deleted,
            "seeds_added": self.seeds_added,
            "mode_counts": dict(self.mode_counts),
        }

    def load_state(self, state):
        self.iterations = int(state["iterations"])
        self.instructions_generated = int(state["instructions_generated"])
        self.blocks_generated = int(state["blocks_generated"])
        self.blocks_retained = int(state["blocks_retained"])
        self.blocks_deleted = int(state["blocks_deleted"])
        self.seeds_added = int(state["seeds_added"])
        self.mode_counts = {key: int(value)
                            for key, value in state["mode_counts"].items()}


class TurboFuzzer:
    """The synthesizable fuzzer IP (behavioural model)."""

    def __init__(self, config=None, layout=None):
        self.config = config or TurboFuzzConfig()
        self.layout = layout or MemoryLayout()
        self.lfsr = Lfsr(self.config.seed)
        self.context = FuzzContext(self.lfsr, self.config, self.layout)
        self.library = InstructionLibrary(self.config.extensions)
        self.direct = DirectGenerator(self.library, self.context)
        self.mutation = MutationEngine(self.config, self.context, self.direct)
        self.corpus = Corpus(
            capacity=self.config.corpus_capacity,
            policy=self.config.corpus_policy,
            priority_prob=self.config.seed_priority_prob,
        )
        self.stats = FuzzerStats()
        self._pending = None  # (iteration, parent_seed or None)
        # Data patches applied to every future iteration's data segment
        # (deepExplore plants interval init contexts here).
        self.persistent_data_patches = []

    # -- generation ------------------------------------------------------------------
    def generate_iteration(self, instruction_budget=None):
        """Produce the next assembled iteration.

        A corpus seed is selected once per iteration; then, per block
        position, the engine chooses direct generation (9/16) or a
        mutation-mode operation on the next seed block (7/16).  With an
        empty corpus the iteration is pure direct mode.
        """
        config = self.config
        budget = instruction_budget or config.instructions_per_iteration
        window = config.jump_window_blocks
        parent = self.corpus.select(self.lfsr)
        blocks = []
        total = 0
        new_index = 0
        seed_cursor = 0
        estimated = budget
        seed_blocks = parent.blocks if parent is not None else ()
        seed_count = len(seed_blocks)
        # The mode-choice Bernoulli parameters are invariant across the
        # block loop; validate the power-of-two denominator once and draw
        # with a plain mask below (bit-identical to lfsr.chance()).
        mode_numerator, mode_denominator = config.mutation_mode_prob
        if mode_denominator & (mode_denominator - 1):
            raise ValueError("denominator must be a power of two")
        mode_mask = mode_denominator - 1
        lfsr = self.lfsr
        while total < budget:
            use_mutation = (
                seed_cursor < seed_count
                and (lfsr.next() & mode_mask) < mode_numerator
            )
            if use_mutation:
                operation = self.mutation.roll_block_op()
                if operation == "delete":
                    seed_cursor += 1
                    self.stats.blocks_deleted += 1
                    continue
                if operation == "retain":
                    # Stream a contiguous run of seed blocks (burst read
                    # from corpus storage) so the retained sequence keeps
                    # its micro-architectural context.
                    run_length = max(1, config.retain_run_blocks)
                    appended = 0
                    while (appended < run_length
                           and seed_cursor < len(seed_blocks)
                           and total < budget):
                        block = self.mutation.retain_block(
                            seed_blocks[seed_cursor], seed_cursor, new_index
                        )
                        seed_cursor += 1
                        self.stats.blocks_retained += 1
                        self.stats.mode_counts["mutation"] += 1
                        blocks.append(block)
                        total += block.size
                        new_index += 1
                        appended += 1
                    continue
                # generate: insert a fresh block at this point
                block = self.direct.generate_block(
                    new_index, estimated, window
                )
                self.stats.blocks_generated += 1
                self.stats.mode_counts["mutation"] += 1
            else:
                block = self.direct.generate_block(new_index, estimated, window)
                self.stats.blocks_generated += 1
                self.stats.mode_counts["direct"] += 1
            blocks.append(block)
            total += block.size
            new_index += 1
        iteration = Iteration(
            blocks=blocks,
            layout=self.layout,
            data_seed=self.lfsr.next(),
            data_patches=list(self.persistent_data_patches),
        )
        iteration.assemble()
        self.stats.iterations += 1
        self.stats.instructions_generated += iteration.total_instructions
        self._pending = (iteration, parent)
        return iteration

    # -- feedback ---------------------------------------------------------------------
    def feedback(self, iteration, coverage_increment):
        """Fold a run's measured coverage increment into the corpus."""
        parent = None
        if self._pending is not None and self._pending[0] is iteration:
            parent = self._pending[1]
            self._pending = None
        if parent is not None:
            # Mutation mode: refresh the parent seed's recorded increment.
            self.corpus.update_increment(parent, coverage_increment)
        if coverage_increment > 0:
            # Blocks are never mutated in place once assembled (retention
            # builds new block objects, operand rebinding works on fresh
            # clones), so the seed can reference them directly instead of
            # deep-copying ~hundreds of entry lists per new seed.
            stored = self.corpus.add(
                Seed(
                    list(iteration.blocks),
                    coverage_increment=coverage_increment,
                    born_iteration=self.stats.iterations,
                    origin="mutation" if parent is not None else "direct",
                )
            )
            if stored:
                self.stats.seeds_added += 1

    # -- checkpoint protocol -----------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot of all schedule-determining state.

        Checkpoints are taken at iteration boundaries (after ``feedback``);
        a generated-but-unfed iteration cannot be serialized faithfully.
        """
        if self._pending is not None:
            raise ValueError(
                "cannot checkpoint mid-iteration: feedback() has not been "
                "called for the last generated iteration"
            )
        return {
            "lfsr": self.lfsr.state_dict(),
            "corpus": self.corpus.state_dict(),
            "stats": self.stats.state_dict(),
            "library": self.library.state_dict(),
            "persistent_data_patches": [
                [offset, blob.hex()]
                for offset, blob in self.persistent_data_patches
            ],
        }

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot; the resumed stream of
        iterations is bit-identical to an uninterrupted run."""
        self.lfsr.load_state(state["lfsr"])
        self.corpus.load_state(state["corpus"])
        self.stats.load_state(state["stats"])
        # Older checkpoints predate the library key; they could only have
        # been taken with the constructor-default extension set, which the
        # fresh build already holds.
        if "library" in state:
            self.library.load_state(state["library"])
        self.persistent_data_patches = [
            (int(offset), bytes.fromhex(blob))
            for offset, blob in state["persistent_data_patches"]
        ]
        self._pending = None

    def add_interval_seed(self, blocks, coverage_increment, data_patch=None):
        """deepExplore stage-1 entry point: archive a benchmark interval.

        ``data_patch`` is the interval's init-context blob; it is applied
        to every subsequent iteration so retained interval blocks find
        their context in place.
        """
        seed = Seed(list(blocks), coverage_increment=coverage_increment,
                    origin="interval")
        self.corpus.add(seed)
        if data_patch is not None:
            self.persistent_data_patches.append(data_patch)
        return seed
