"""Direct mode: constrained-random generation without coverage guidance
(paper Section IV-B.2).

The LFSR selects prime instructions from the instruction library with
category weights keeping roughly the paper's observed 1:5 ratio of
control-flow to non-control-flow instructions; the block builder performs
the context-aware sizing and operand assignment.
"""

from repro.fuzzer.blocks import BlockBuilder
from repro.isa.instructions import Category

# Uniform sampling over ~170 specs would give ~5% control flow; these
# weights restore the ~1:6 mix the paper measures in Fig. 4.
DEFAULT_CATEGORY_WEIGHTS = {
    Category.BRANCH: 3,
    Category.JUMP: 2,
    Category.ALU: 2,
    Category.ALU_IMM: 2,
    Category.LOAD: 2,
    Category.STORE: 2,
    # ebreak (the only generatable SYSTEM instruction) traps on every
    # execution; keeping it out of the default mix preserves the paper's
    # 0.96+ prevalence.  Bug-hunting configs re-enable it explicitly.
    Category.SYSTEM: 0,
}


class DirectGenerator:
    """Generates whole iterations (or single blocks) of random stimulus."""

    def __init__(self, library, context, category_weights=None):
        self.library = library
        self.context = context
        self.builder = BlockBuilder(context)
        self.category_weights = (
            dict(category_weights)
            if category_weights is not None
            else dict(DEFAULT_CATEGORY_WEIGHTS)
        )
        # Cached expanded weighted spec list: rebuilding (or even re-keying)
        # it per generated block dominates generation cost, so it is
        # revalidated with two cheap compares — the library's active-set
        # version and a snapshot of the weights dict (callers may mutate
        # ``category_weights`` in place between blocks).
        self._expanded = None
        self._expanded_version = None
        self._expanded_weights = None

    def _weighted_specs(self):
        version = self.library.version
        if (self._expanded is None
                or self._expanded_version != version
                or self._expanded_weights != self.category_weights):
            self._expanded = self.library.weighted_specs(self.category_weights)
            self._expanded_version = version
            self._expanded_weights = dict(self.category_weights)
        return self._expanded

    def generate_block(self, block_index, estimated_blocks, jump_window):
        """One random instruction block."""
        spec = self.context.lfsr.choice(self._weighted_specs())
        return self.builder.build(spec, block_index, estimated_blocks,
                                  jump_window)

    def generate_blocks(self, instruction_budget, jump_window):
        """Blocks until the cumulative instruction count reaches budget."""
        blocks = []
        total = 0
        index = 0
        estimated = instruction_budget  # upper bound on block count
        while total < instruction_budget:
            block = self.generate_block(index, estimated, jump_window)
            blocks.append(block)
            total += block.size
            index += 1
        return blocks
