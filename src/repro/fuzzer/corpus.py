"""Seeds and corpus scheduling (paper Section IV-D).

Seeds store valuable instruction sequences with metadata.  The paper's
optimization replaces FIFO eviction with *coverage-increment* scheduling:

* generation mode: a new test case enters the corpus only when it improved
  coverage; at capacity it replaces the seed with the lowest recorded
  coverage improvement;
* mutation mode: running a mutated seed updates that seed's recorded
  coverage improvement.

The FIFO policy is kept as the baseline for the Fig. 9 experiment.
"""

import itertools

_seed_ids = itertools.count()


class Seed:
    """One corpus entry: instruction blocks + scheduling metadata."""

    __slots__ = ("seed_id", "blocks", "coverage_increment", "born_iteration",
                 "origin", "uses")

    def __init__(self, blocks, coverage_increment=0, born_iteration=0,
                 origin="direct"):
        self.seed_id = next(_seed_ids)
        self.blocks = list(blocks)
        self.coverage_increment = coverage_increment
        self.born_iteration = born_iteration
        self.origin = origin  # "direct" | "mutation" | "interval"
        self.uses = 0

    @property
    def size(self):
        return sum(block.size for block in self.blocks)

    def __repr__(self):
        return (
            f"Seed(id={self.seed_id}, blocks={len(self.blocks)}, "
            f"inc={self.coverage_increment}, origin={self.origin})"
        )

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot (blocks + scheduling metadata).

        ``seed_id`` is deliberately excluded: it comes from a
        process-global counter, so including it would make checkpoint
        files differ between otherwise bit-identical campaigns (resumed
        vs. uninterrupted, worker process vs. serial).  Nothing keys on
        it — a restored seed gets a fresh id.
        """
        return {
            "blocks": [block.state_dict() for block in self.blocks],
            "coverage_increment": self.coverage_increment,
            "born_iteration": self.born_iteration,
            "origin": self.origin,
            "uses": self.uses,
        }

    @classmethod
    def from_state(cls, state):
        from repro.fuzzer.blocks import InstructionBlock

        seed = cls(
            [InstructionBlock.from_state(block) for block in state["blocks"]],
            coverage_increment=state["coverage_increment"],
            born_iteration=int(state["born_iteration"]),
            origin=str(state["origin"]),
        )
        seed.uses = int(state["uses"])
        return seed


class Corpus:
    """Bounded seed store with pluggable scheduling policy."""

    def __init__(self, capacity=64, policy="coverage",
                 priority_prob=(3, 4)):
        if policy not in ("coverage", "fifo"):
            raise ValueError(f"unknown corpus policy {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self.priority_prob = priority_prob
        self.seeds = []
        self.evictions = 0
        self.rejected = 0

    def __len__(self):
        return len(self.seeds)

    @property
    def full(self):
        return len(self.seeds) >= self.capacity

    # -- insertion ---------------------------------------------------------------
    def add(self, seed):
        """Insert a seed per the active policy; returns True if stored."""
        if not self.full:
            self.seeds.append(seed)
            return True
        if self.policy == "fifo":
            # Replace the oldest seed unconditionally.
            self.seeds.pop(0)
            self.seeds.append(seed)
            self.evictions += 1
            return True
        # Coverage policy: replace the lowest-increment seed, but only if
        # the newcomer actually beats it.
        victim_index = min(
            range(len(self.seeds)),
            key=lambda index: self.seeds[index].coverage_increment,
        )
        if self.seeds[victim_index].coverage_increment >= seed.coverage_increment:
            self.rejected += 1
            return False
        self.seeds[victim_index] = seed
        self.evictions += 1
        return True

    # -- feedback -----------------------------------------------------------------
    def update_increment(self, seed, measured_increment):
        """Mutation-mode feedback: refresh a seed's recorded improvement."""
        seed.coverage_increment = measured_increment

    # -- selection -----------------------------------------------------------------
    def select(self, lfsr):
        """Dual-strategy probabilistic selection (paper IV-B.3).

        With probability ``priority_prob`` pick the seed with the highest
        coverage increment; otherwise pick uniformly at random so archived
        patterns are never starved.
        """
        if not self.seeds:
            return None
        if lfsr.chance(self.priority_prob):
            best = max(self.seeds, key=lambda seed: seed.coverage_increment)
            best.uses += 1
            return best
        seed = lfsr.choice(self.seeds)
        seed.uses += 1
        return seed

    # -- checkpoint protocol -----------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot: seeds in list order (selection
        and eviction break increment ties by position, so order is part of
        the schedule-determining state)."""
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "priority_prob": list(self.priority_prob),
            "seeds": [seed.state_dict() for seed in self.seeds],
            "evictions": self.evictions,
            "rejected": self.rejected,
        }

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot in place."""
        self.capacity = int(state["capacity"])
        self.policy = str(state["policy"])
        self.priority_prob = tuple(state["priority_prob"])
        self.seeds = [Seed.from_state(seed) for seed in state["seeds"]]
        self.evictions = int(state["evictions"])
        self.rejected = int(state["rejected"])

    # -- introspection -----------------------------------------------------------------
    def increments(self):
        return [seed.coverage_increment for seed in self.seeds]

    def best(self):
        if not self.seeds:
            return None
        return max(self.seeds, key=lambda seed: seed.coverage_increment)
