"""Instruction blocks and iterations (paper Section IV-A).

An *instruction block* is the unit of generation: one mandatory prime
instruction plus optional affiliated instructions that establish
prerequisites (base-address materialization for jalr, aligned-address setup
for AMOs).  An *iteration* is the fuzzer's output unit: tens to thousands
of instruction blocks assembled into an executable program image.

Control-flow targets always land on block base addresses (the paper's
validity guarantee); assembly is two-pass — blocks are laid out, then
branch/jump/jalr words are patched with real offsets.
"""

from dataclasses import dataclass, field
from itertools import count

from repro.fuzzer.context import REG_JALR_TEMP
from repro.isa.encoder import encode
from repro.isa.instructions import Category, SPECS_BY_NAME


@dataclass(slots=True)
class StimulusEntry:
    """One instruction inside a block, with its mutation metadata
    (the paper's seed stimulus entry: instruction, position, control-flow
    status, branch target position)."""

    word: int
    is_prime: bool = True
    needs_target_patch: bool = False  # branch/jal imm patched at assembly
    patch_kind: str = ""  # "branch" | "jal" | "lui" | "addi"

    def state_dict(self):
        """JSON-round-trippable form (corpus checkpointing)."""
        return {"word": self.word, "is_prime": self.is_prime,
                "needs_target_patch": self.needs_target_patch,
                "patch_kind": self.patch_kind}

    @classmethod
    def from_state(cls, state):
        return cls(int(state["word"]), bool(state["is_prime"]),
                   bool(state["needs_target_patch"]),
                   str(state["patch_kind"]))


# Monotonic stamp for block content identity.  The block compiler's
# per-core maps key on these, so any path that changes a block's words
# (mutation rebind, control-flow re-targeting) must assign a fresh stamp;
# shared-content copies (copy-on-write retention) share the stamp and
# therefore the compiled entries.  Process-local and deterministic (pure
# call-order): stamps are never serialized — from_state re-stamps, so a
# restored corpus simply compiles cold.  itertools.count keeps the
# per-block stamping cost at one C call (it runs for every generated
# block, inside the generation loop).
next_block_version = count(1).__next__


@dataclass(slots=True)
class InstructionBlock:
    """Prime instruction + affiliated instructions + control-flow metadata."""

    prime_name: str
    entries: list
    cf_kind: str = ""  # "" | "branch" | "jal" | "jalr"
    target_block: int = None  # iteration-relative block index
    generated: bool = True  # False when retained from a seed
    # Content stamp, not checkpoint state: deliberately absent from
    # state_dict()/from_state(), so a restored corpus compiles cold.
    version: int = field(default_factory=next_block_version)

    @property
    def spec(self):
        return SPECS_BY_NAME[self.prime_name]

    @property
    def size(self):
        """Instruction count of the block."""
        return len(self.entries)

    @property
    def is_control_flow(self):
        return bool(self.cf_kind)

    def state_dict(self):
        """JSON-round-trippable form (corpus checkpointing)."""
        return {
            "prime_name": self.prime_name,
            "entries": [entry.state_dict() for entry in self.entries],
            "cf_kind": self.cf_kind,
            "target_block": self.target_block,
            "generated": self.generated,
        }

    @classmethod
    def from_state(cls, state):
        target = state["target_block"]
        return cls(
            prime_name=str(state["prime_name"]),
            entries=[StimulusEntry.from_state(entry)
                     for entry in state["entries"]],
            cf_kind=str(state["cf_kind"]),
            target_block=None if target is None else int(target),
            generated=bool(state["generated"]),
        )

    def clone(self, generated=None):
        """Deep copy (mutation retains blocks by copying them)."""
        return InstructionBlock(
            prime_name=self.prime_name,
            entries=[
                StimulusEntry(
                    entry.word, entry.is_prime,
                    entry.needs_target_patch, entry.patch_kind,
                )
                for entry in self.entries
            ],
            cf_kind=self.cf_kind,
            target_block=self.target_block,
            generated=self.generated if generated is None else generated,
        )


@dataclass
class Iteration:
    """An assembled fuzzing iteration: blocks, program image, metadata.

    ``setup_words`` model per-iteration setup routines placed ahead of the
    fuzzing blocks (register-file initialization and the like).  TurboFuzz
    keeps this empty — its environment setup lives in the shared templates —
    but the software-fuzzer baselines carry hundreds of setup instructions,
    which is what drags their prevalence below 0.2 (Fig. 4 / Fig. 8).
    """

    blocks: list
    layout: object  # MemoryLayout
    data_seed: int = 0
    words: list = field(default_factory=list)
    block_bases: list = field(default_factory=list)  # absolute addresses
    setup_words: list = field(default_factory=list)
    data_patches: list = field(default_factory=list)  # (offset, bytes) pairs
    _total_cache: int = None  # filled by assemble(); blocks are frozen then

    @property
    def total_instructions(self):
        if self._total_cache is not None:
            return self._total_cache
        return sum(block.size for block in self.blocks) + len(self.setup_words)

    @property
    def fuzz_base(self):
        """First address of actual fuzzing instructions."""
        return self.layout.blocks + 4 * len(self.setup_words)

    @property
    def control_flow_blocks(self):
        return sum(1 for block in self.blocks if block.is_control_flow)

    def assemble(self):
        """Two-pass assembly into ``words`` with control flow patched.

        Pass 1 lays out block base addresses; pass 2 patches branch/jal
        displacements and jalr's lui/addi absolute target pairs.  A final
        ``ecall`` terminates the iteration (the trap handler routes it to
        the done loop).
        """
        base = self.fuzz_base
        self.block_bases = []
        cursor = base
        for block in self.blocks:
            self.block_bases.append(cursor)
            cursor += 4 * block.size

        words = list(self.setup_words)
        cursor = base
        for index, block in enumerate(self.blocks):
            target_address = None
            if block.is_control_flow and block.target_block is not None:
                # Clamp to a strictly-forward block: a target at or before
                # the block itself (possible after retention re-indexing)
                # would create a backward edge or a self-loop.
                target_index = min(block.target_block, len(self.blocks) - 1)
                if target_index <= index:
                    target_index = index + 1
                if target_index < len(self.blocks):
                    target_address = self.block_bases[target_index]
            for entry in block.entries:
                word = entry.word
                if entry.needs_target_patch:
                    # Fallback for dangling control flow (e.g. a retained
                    # jalr whose target fell off the end): continue at the
                    # next sequential block.
                    effective_target = (
                        target_address
                        if target_address is not None
                        else self.block_bases[index] + 4 * block.size
                    )
                    word = self._patch(entry, word, cursor, effective_target)
                words.append(word)
                cursor += 4
        words.append(encode("ecall"))
        self.words = words
        self._total_cache = ((cursor - base) >> 2) + len(self.setup_words)
        return words

    @staticmethod
    def _patch(entry, word, address, target):
        """Patch one control-flow word with its final displacement."""
        if entry.patch_kind == "branch":
            offset = target - address
            # B-format reach is +/-4 KiB; clamp to the next instruction
            # when out of range, and never allow a non-forward edge.
            if offset <= 0 or offset > 4094:
                offset = 4
            return _set_b_imm(word, offset)
        if entry.patch_kind == "jal":
            offset = target - address
            if offset <= 0 or offset > (1 << 20) - 2:
                offset = 4
            return _set_j_imm(word, offset)
        if entry.patch_kind == "lui":
            upper = (target + 0x800) & 0xFFFFF000
            return encode("lui", rd=REG_JALR_TEMP, imm=upper)
        if entry.patch_kind == "addi":
            upper = (target + 0x800) & 0xFFFFF000
            return encode("addi", rd=REG_JALR_TEMP, rs1=REG_JALR_TEMP,
                          imm=target - upper)
        raise ValueError(f"unknown patch kind {entry.patch_kind!r}")


def _set_b_imm(word, imm):
    word &= ~0xFE000F80  # clear imm bits of B-format
    imm &= 0x1FFF
    word |= (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25)
    word |= (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7)
    return word


def _set_j_imm(word, imm):
    word &= 0x00000FFF  # keep rd + opcode
    imm &= 0x1FFFFF
    word |= (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21)
    word |= (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12)
    return word


class BlockBuilder:
    """Builds instruction blocks from specs + a fuzzing context
    (the paper's random generation + operand assignment modules)."""

    def __init__(self, context):
        self.context = context

    def build(self, spec, block_index, total_blocks, jump_window):
        """Generate one block for a prime instruction spec.

        ``jump_window`` limits forward control-flow distance in blocks
        (``None`` = unbounded, the prior-work behaviour).
        """
        ctx = self.context
        fmt = spec.fmt
        name = spec.name
        category = spec.category

        if category is Category.BRANCH:
            word = encode(name, rs1=ctx.gen_rs(), rs2=ctx.gen_rs(), imm=4)
            target = ctx.pick_jump_target(block_index, total_blocks, jump_window)
            entry = StimulusEntry(word, needs_target_patch=target is not None,
                                  patch_kind="branch")
            return InstructionBlock(name, [entry], cf_kind="branch",
                                    target_block=target)

        if name == "jal":
            word = encode("jal", rd=ctx.gen_rd(), imm=4)
            target = ctx.pick_jump_target(block_index, total_blocks, jump_window)
            entry = StimulusEntry(word, needs_target_patch=target is not None,
                                  patch_kind="jal")
            return InstructionBlock(name, [entry], cf_kind="jal",
                                    target_block=target)

        if name == "jalr":
            target = ctx.pick_jump_target(block_index, total_blocks, jump_window)
            if target is None:
                # No forward block to land on: degrade to a nop-like addi.
                word = encode("addi", rd=ctx.gen_rd(), rs1=0, imm=ctx.gen_imm12())
                return InstructionBlock("addi", [StimulusEntry(word)])
            lui = StimulusEntry(0, is_prime=False, needs_target_patch=True,
                                patch_kind="lui")
            addi = StimulusEntry(0, is_prime=False, needs_target_patch=True,
                                 patch_kind="addi")
            word = encode("jalr", rd=ctx.gen_rd(), rs1=REG_JALR_TEMP, imm=0)
            prime = StimulusEntry(word)
            return InstructionBlock(name, [lui, addi, prime], cf_kind="jalr",
                                    target_block=target)

        if fmt == "L":
            word = encode(name, rd=ctx.gen_rd(), rs1=ctx.read_base_reg(),
                          imm=ctx.mem_offset(_access_size(name)))
            return InstructionBlock(name, [StimulusEntry(word)])
        if fmt == "FL":
            word = encode(name, rd=ctx.gen_freg(), rs1=ctx.read_base_reg(),
                          imm=ctx.mem_offset(_access_size(name)))
            return InstructionBlock(name, [StimulusEntry(word)])
        if fmt == "S":
            word = encode(name, rs2=ctx.gen_rs(), rs1=ctx.write_base_reg(),
                          imm=ctx.mem_offset(_access_size(name)))
            return InstructionBlock(name, [StimulusEntry(word)])
        if fmt == "FS":
            word = encode(name, rs2=ctx.gen_freg(), rs1=ctx.write_base_reg(),
                          imm=ctx.mem_offset(_access_size(name)))
            return InstructionBlock(name, [StimulusEntry(word)])

        if fmt in ("AMO", "LR"):
            size = 8 if name.endswith(".d") else 4
            setup = StimulusEntry(
                encode("addi", rd=REG_JALR_TEMP, rs1=ctx.write_base_reg(),
                       imm=ctx.amo_offset(size)),
                is_prime=False,
            )
            if fmt == "LR":
                word = encode(name, rd=ctx.gen_rd(), rs1=REG_JALR_TEMP)
            else:
                word = encode(name, rd=ctx.gen_rd(), rs1=REG_JALR_TEMP,
                              rs2=ctx.gen_rs())
            return InstructionBlock(name, [setup, StimulusEntry(word)])

        if fmt == "R":
            word = encode(name, rd=ctx.gen_rd(), rs1=ctx.gen_rs(), rs2=ctx.gen_rs())
        elif fmt == "I":
            word = encode(name, rd=ctx.gen_rd(), rs1=ctx.gen_rs(),
                          imm=ctx.gen_imm12())
        elif fmt == "R_SH":
            word = encode(name, rd=ctx.gen_rd(), rs1=ctx.gen_rs(),
                          shamt=ctx.gen_shamt())
        elif fmt == "R_SHW":
            word = encode(name, rd=ctx.gen_rd(), rs1=ctx.gen_rs(),
                          shamt=ctx.gen_shamt(word_variant=True))
        elif fmt == "U":
            word = encode(name, rd=ctx.gen_rd(), imm=ctx.gen_uimm20() << 12)
        elif fmt == "CSR":
            writable = name != "csrrs" and name != "csrrc"
            word = encode(name, rd=ctx.gen_rd(), rs1=ctx.gen_rs(),
                          csr=ctx.gen_csr(writable))
        elif fmt == "CSRI":
            writable = name == "csrrwi"
            word = encode(name, rd=ctx.gen_rd(), zimm=ctx.lfsr.bits(5),
                          csr=ctx.gen_csr(writable))
        elif fmt == "FR":
            word = encode(name, rd=ctx.gen_freg(), rs1=ctx.gen_freg(),
                          rs2=ctx.gen_freg(), rm=ctx.gen_rm())
        elif fmt == "R4":
            word = encode(name, rd=ctx.gen_freg(), rs1=ctx.gen_freg(),
                          rs2=ctx.gen_freg(), rs3=ctx.gen_freg(),
                          rm=ctx.gen_rm())
        elif fmt == "FR1":
            word = encode(name, rd=ctx.gen_freg(), rs1=ctx.gen_freg(),
                          rm=ctx.gen_rm())
        elif fmt == "FRN":
            word = encode(name, rd=ctx.gen_freg(), rs1=ctx.gen_freg(),
                          rs2=ctx.gen_freg())
        elif fmt == "FCMP":
            word = encode(name, rd=ctx.gen_rd(), rs1=ctx.gen_freg(),
                          rs2=ctx.gen_freg())
        elif fmt == "FCVT_IF":
            word = encode(name, rd=ctx.gen_rd(), rs1=ctx.gen_freg(),
                          rm=ctx.gen_rm())
        elif fmt == "FCVT_FI":
            word = encode(name, rd=ctx.gen_freg(), rs1=ctx.gen_rs(),
                          rm=ctx.gen_rm())
        elif fmt in ("NONE", "FENCE"):
            word = encode(name)
        else:
            raise ValueError(f"block builder cannot handle format {fmt!r}")
        return InstructionBlock(name, [StimulusEntry(word)])


_ACCESS_SIZES = {
    "lb": 1, "lbu": 1, "sb": 1,
    "lh": 2, "lhu": 2, "sh": 2,
    "lw": 4, "lwu": 4, "sw": 4, "flw": 4, "fsw": 4,
    "ld": 8, "sd": 8, "fld": 8, "fsd": 8,
}


def _access_size(name):
    return _ACCESS_SIZES[name]
