"""LFSR: the fuzzer's hardware-style pseudo-random source.

A 64-bit xorshift register — three shift-XOR stages per step, exactly
implementable in FFs and XOR gates.  A plain one-tap Galois LFSR is *not*
usable here: consecutive states are bit-shifted copies of each other, so
back-to-back field draws (mode choice, then block-operation roll) would be
strongly correlated and some outcomes would become unreachable.  The
xorshift configuration diffuses every state bit across the word each step,
which is why real hardware fuzzers drive independent decision fields from
separate tap networks.

All stochastic choices in the fuzzer draw from this, so a TurboFuzzer run
is a pure function of its seed.
"""

from repro.analyze.markers import hot_path

_MASK64 = (1 << 64) - 1


class Lfsr:
    """64-bit xorshift LFSR with convenience draws."""

    __slots__ = ("state",)

    def __init__(self, seed=1):
        self.state = (seed & _MASK64) or 1  # all-zero state is absorbing

    @hot_path
    def next(self):
        """Advance one step and return the new 64-bit state."""
        state = self.state
        state ^= (state << 13) & _MASK64
        state ^= state >> 7
        state ^= (state << 17) & _MASK64
        self.state = state
        return state

    @hot_path
    def bits(self, count):
        """Draw ``count`` pseudo-random bits (as an unsigned int)."""
        if count <= 64:
            return self.next() & ((1 << count) - 1)
        value = 0
        remaining = count
        while remaining > 0:
            take = min(64, remaining)
            value = (value << take) | (self.next() & ((1 << take) - 1))
            remaining -= take
        return value

    # The draw helpers below inline the xorshift advance instead of calling
    # :meth:`next`: they run once or more per generated operand, and the
    # call overhead dominates the three shift-XOR stages.

    @hot_path
    def below(self, bound):
        """Uniform-ish integer in ``[0, bound)`` (hardware-style modulo)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        state = self.state
        state ^= (state << 13) & _MASK64
        state ^= state >> 7
        state ^= (state << 17) & _MASK64
        self.state = state
        return state % bound

    @hot_path
    def chance(self, probability):
        """Bernoulli draw with ``probability = (numerator, denominator)``;
        the denominator must be a power of two (hardware bit-slicing)."""
        numerator, denominator = probability
        if denominator & (denominator - 1):
            raise ValueError("denominator must be a power of two")
        state = self.state
        state ^= (state << 13) & _MASK64
        state ^= state >> 7
        state ^= (state << 17) & _MASK64
        self.state = state
        return (state & (denominator - 1)) < numerator

    @hot_path
    def choice(self, sequence):
        """Pick one element of a non-empty sequence."""
        length = len(sequence)
        if length <= 0:
            raise ValueError("bound must be positive")
        state = self.state
        state ^= (state << 13) & _MASK64
        state ^= state >> 7
        state ^= (state << 17) & _MASK64
        self.state = state
        return sequence[state % length]

    def fork(self):
        """Derive an independent LFSR (e.g. per-iteration data seeds)."""
        return Lfsr(self.next() ^ 0x9E3779B97F4A7C15)

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot of the generator state."""
        return {"state": self.state}

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot (bit-identical stream)."""
        self.state = int(state["state"]) & _MASK64 or 1

    def fill_words(self, count):
        """Batch-draw ``count`` 64-bit states (one advance per word).

        The inner xorshift is inlined on a local so the whole batch costs
        one attribute write; the stream is bit-identical to ``count``
        successive :meth:`next` calls.
        """
        state = self.state
        words = []
        append = words.append
        for _ in range(count):
            state ^= (state << 13) & _MASK64
            state ^= state >> 7
            state ^= (state << 17) & _MASK64
            append(state)
        self.state = state
        return words

    def fill_bytes(self, count):
        """Generate ``count`` pseudo-random bytes (data segment contents).

        Bit-identical to the little-endian concatenation of successive
        :meth:`next` words.  Small requests run the plain batched loop;
        large ones (the 16 KiB data segment, drawn once per iteration)
        exploit that xorshift is GF(2)-linear: the whole word stream for a
        seed is the XOR of precomputed per-seed-bit basis streams, packed
        as big ints — ~64 wide XORs and one ``to_bytes`` replace tens of
        thousands of Python-level shift steps.  The final LFSR state is
        reconstructed the same way, so the draw stream continues exactly
        as if every word had been stepped individually.
        """
        if count <= 0:
            return b""
        words = (count + 7) // 8
        if words < _FILL_BASIS_MIN_WORDS:
            blob = b"".join(
                word.to_bytes(8, "little") for word in self.fill_words(words)
            )
            return blob[:count] if count & 7 else blob
        streams, finals = _fill_basis(words)
        state = self.state
        blob_int = 0
        final = 0
        bit = 0
        while state:
            if state & 1:
                blob_int ^= streams[bit]
                final ^= finals[bit]
            state >>= 1
            bit += 1
        self.state = final
        blob = blob_int.to_bytes(words * 8, "little")
        return blob[:count] if count & 7 else blob


# Basis-stream cache for the large-fill fast path: for each requested word
# count, per-seed-bit (stream, final state) pairs.  Built lazily on first
# use of a given size and shared process-wide (the data-segment size is a
# layout constant, so real campaigns populate exactly one entry).
_FILL_BASIS_MIN_WORDS = 256
_FILL_BASIS = {}


def _fill_basis(words):
    basis = _FILL_BASIS.get(words)
    if basis is None:
        streams = []
        finals = []
        for bit in range(64):
            lfsr = Lfsr(1 << bit)
            stream = int.from_bytes(
                b"".join(word.to_bytes(8, "little")
                         for word in lfsr.fill_words(words)),
                "little",
            )
            streams.append(stream)
            finals.append(lfsr.state)
        _FILL_BASIS[words] = basis = (streams, finals)
    return basis
