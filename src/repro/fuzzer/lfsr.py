"""LFSR: the fuzzer's hardware-style pseudo-random source.

A 64-bit xorshift register — three shift-XOR stages per step, exactly
implementable in FFs and XOR gates.  A plain one-tap Galois LFSR is *not*
usable here: consecutive states are bit-shifted copies of each other, so
back-to-back field draws (mode choice, then block-operation roll) would be
strongly correlated and some outcomes would become unreachable.  The
xorshift configuration diffuses every state bit across the word each step,
which is why real hardware fuzzers drive independent decision fields from
separate tap networks.

All stochastic choices in the fuzzer draw from this, so a TurboFuzzer run
is a pure function of its seed.
"""

_MASK64 = (1 << 64) - 1


class Lfsr:
    """64-bit xorshift LFSR with convenience draws."""

    def __init__(self, seed=1):
        self.state = (seed & _MASK64) or 1  # all-zero state is absorbing

    def next(self):
        """Advance one step and return the new 64-bit state."""
        state = self.state
        state ^= (state << 13) & _MASK64
        state ^= state >> 7
        state ^= (state << 17) & _MASK64
        self.state = state
        return state

    def bits(self, count):
        """Draw ``count`` pseudo-random bits (as an unsigned int)."""
        if count <= 64:
            return self.next() & ((1 << count) - 1)
        value = 0
        remaining = count
        while remaining > 0:
            take = min(64, remaining)
            value = (value << take) | (self.next() & ((1 << take) - 1))
            remaining -= take
        return value

    def below(self, bound):
        """Uniform-ish integer in ``[0, bound)`` (hardware-style modulo)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next() % bound

    def chance(self, probability):
        """Bernoulli draw with ``probability = (numerator, denominator)``;
        the denominator must be a power of two (hardware bit-slicing)."""
        numerator, denominator = probability
        if denominator & (denominator - 1):
            raise ValueError("denominator must be a power of two")
        return (self.next() & (denominator - 1)) < numerator

    def choice(self, sequence):
        """Pick one element of a non-empty sequence."""
        return sequence[self.below(len(sequence))]

    def fork(self):
        """Derive an independent LFSR (e.g. per-iteration data seeds)."""
        return Lfsr(self.next() ^ 0x9E3779B97F4A7C15)

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot of the generator state."""
        return {"state": self.state}

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot (bit-identical stream)."""
        self.state = int(state["state"]) & _MASK64 or 1

    def fill_bytes(self, count):
        """Generate ``count`` pseudo-random bytes (data segment contents)."""
        out = bytearray()
        while len(out) < count:
            out.extend(self.next().to_bytes(8, "little"))
        return bytes(out[:count])
