"""TurboFuzzer configuration: every paper default in one place.

All probabilities are expressed as ``(numerator, denominator)`` pairs over a
power-of-two denominator, exactly as a hardware implementation would draw
them from LFSR bits.
"""

from dataclasses import dataclass, field

from repro.isa.instructions import Extension


@dataclass
class TurboFuzzConfig:
    """Knobs of the TurboFuzzer (paper Section IV defaults)."""

    # Section IV-B.1: per-block choice between modes.
    mutation_mode_prob: tuple = (7, 16)  # direct mode gets the other 9/16

    # Section IV-B.3: dual-strategy seed selection.
    seed_priority_prob: tuple = (3, 4)  # prioritize high coverage-increment

    # Section IV-B.3: block operations inside mutation mode.
    block_generate_prob: tuple = (3, 16)
    block_delete_prob: tuple = (11, 16)
    block_retain_prob: tuple = (2, 16)

    # Section IV-B.2 / IV-C: memory address generation.
    data_segment_prob: tuple = (3, 4)  # loads: data vs instruction segment

    # Section IV-C: iteration sizing and jump-range limitation.
    instructions_per_iteration: int = 4000
    jump_window_blocks: int = 2  # generated control flow targets within this
    retain_unrestricted_jumps: bool = True  # preserved blocks keep old targets

    # Operand mutation probability for retained blocks (bit-flip /
    # operand-substitution pass of the mutation engine).
    operand_mutation_prob: tuple = (1, 2)

    # A retain operation streams this many consecutive seed blocks (the
    # hardware reads corpus storage in bursts); contiguous runs preserve
    # the micro-architectural state sequences that made the seed valuable.
    retain_run_blocks: int = 4

    # Instruction library configuration (the VIO-toggled subsets).
    extensions: frozenset = field(
        default_factory=lambda: frozenset(
            {
                Extension.I,
                Extension.M,
                Extension.A,
                Extension.F,
                Extension.D,
                Extension.ZICSR,
                Extension.SYSTEM,
            }
        )
    )

    # Corpus management (Section IV-D).
    corpus_capacity: int = 64
    corpus_policy: str = "coverage"  # "coverage" (TurboFuzz) or "fifo"

    # Probability that an FP instruction carries an *invalid* rounding mode
    # (exercises the illegal-instruction path and bug B2).
    invalid_rm_prob: tuple = (1, 256)

    # Deterministic seeding.
    seed: int = 0xC0FFEE

    def __post_init__(self):
        total = (
            self.block_generate_prob[0] * 16 // self.block_generate_prob[1]
            + self.block_delete_prob[0] * 16 // self.block_delete_prob[1]
            + self.block_retain_prob[0] * 16 // self.block_retain_prob[1]
        )
        if total != 16:
            raise ValueError(
                "block operation probabilities must sum to 1 "
                f"(got {total}/16)"
            )
        if self.corpus_policy not in ("coverage", "fifo"):
            raise ValueError(f"unknown corpus policy {self.corpus_policy!r}")
