"""Execution-guarantee templates (paper Section IV-C).

The prologue sets up the execution environment (trap vector, FPU enable,
base registers, initial FP values); the trap handler implements the paper's
"templates with execution guarantee": exceptions re-enable the relevant
FCSR/mstatus bit-fields and execution resumes at the next instruction, so
one bad instruction never kills the iteration.  An ``ecall`` (the iteration
terminator) is routed to the done loop.

Both templates are identical for DUT and REF, so they never contribute
differential mismatches; they count as *non-fuzzing* instructions in the
prevalence metric (Fig. 8).
"""

from repro.fuzzer.context import (
    MemoryLayout,
    REG_DATA_BASE,
    REG_HANDLER_T0,
    REG_HANDLER_T1,
    REG_INSTR_BASE,
)
from repro.isa import csr as CSR
from repro.isa.encoder import encode


def _load_address(rd, address):
    """lui+addi pair materializing a 31-bit address."""
    upper = (address + 0x800) & 0xFFFFF000  # round so addi's sext works
    lower = address - upper
    return [
        encode("lui", rd=rd, imm=upper),
        encode("addi", rd=rd, rs1=rd, imm=lower),
    ]


def build_prologue(layout=None, fp_init_count=8):
    """The iteration prologue placed at the reset vector.

    Sets mtvec to the trap handler, enables the FPU, points the data /
    instruction base registers 2 KiB into their segments, preloads the
    first ``fp_init_count`` FP registers from the (LFSR-randomized) data
    segment, and jumps to the first instruction block.
    """
    layout = layout or MemoryLayout()
    words = []
    # mtvec = handler
    words += _load_address(REG_HANDLER_T1, layout.handler)
    words.append(encode("csrrw", rd=0, csr=CSR.MTVEC, rs1=REG_HANDLER_T1))
    # mstatus.FS = dirty (enable the FPU)
    words.append(encode("lui", rd=REG_HANDLER_T1, imm=0x6000))
    words.append(encode("csrrs", rd=0, csr=CSR.MSTATUS, rs1=REG_HANDLER_T1))
    # base registers
    words += _load_address(REG_DATA_BASE, layout.data_base_reg_value)
    words += _load_address(REG_INSTR_BASE, layout.instr_base_reg_value)
    # preload FP registers from the data segment
    for index in range(fp_init_count):
        words.append(
            encode("fld", rd=index, rs1=REG_DATA_BASE, imm=index * 8)
        )
    # jump to the block area
    prologue_end = layout.reset + 4 * (len(words) + 1)
    offset = layout.blocks - (prologue_end - 4)
    words.append(encode("jal", rd=0, imm=offset))
    return words


def build_trap_handler(layout=None):
    """The trap handler placed at ``layout.handler``.

    * ``ecall`` (the iteration terminator) branches to the done loop;
    * every other cause re-enables mstatus.FS (the FCSR-template repair),
      advances ``mepc`` past the faulting instruction, and returns.

    Clobbers x30/x31 only (reserved by the register convention).
    """
    layout = layout or MemoryLayout()
    words = []
    # x31 = mcause ; x30 = ECALL_M
    words.append(encode("csrrs", rd=REG_HANDLER_T1, csr=CSR.MCAUSE, rs1=0))
    words.append(encode("addi", rd=REG_HANDLER_T0, rs1=0,
                        imm=CSR.CAUSE_ECALL_M))
    # beq x31, x30, -> done loop
    branch_pc = layout.handler + 4 * len(words)
    words.append(
        encode("beq", rs1=REG_HANDLER_T1, rs2=REG_HANDLER_T0,
               imm=layout.done - branch_pc)
    )
    # FCSR/mstatus template repair: re-enable FS and restore a valid
    # rounding mode (a fuzzed fcsr write can leave frm invalid, which
    # would otherwise turn every dynamic-rm FP op into a trap).
    words.append(encode("lui", rd=REG_HANDLER_T0, imm=0x6000))
    words.append(encode("csrrs", rd=0, csr=CSR.MSTATUS, rs1=REG_HANDLER_T0))
    words.append(encode("csrrci", rd=0, csr=CSR.FRM, zimm=7))
    # mepc += 4 ; mret
    words.append(encode("csrrs", rd=REG_HANDLER_T1, csr=CSR.MEPC, rs1=0))
    words.append(encode("addi", rd=REG_HANDLER_T1, rs1=REG_HANDLER_T1, imm=4))
    words.append(encode("csrrw", rd=0, csr=CSR.MEPC, rs1=REG_HANDLER_T1))
    words.append(encode("mret"))
    return words


def build_done_loop():
    """The done loop: a self-jump the harness recognizes as completion."""
    return [encode("jal", rd=0, imm=0)]


def template_instruction_count(layout=None, fp_init_count=8):
    """Total non-fuzzing template instructions (prevalence accounting)."""
    layout = layout or MemoryLayout()
    return (
        len(build_prologue(layout, fp_init_count))
        + len(build_trap_handler(layout))
        + len(build_done_loop())
    )
