"""The dynamically configurable instruction library (paper Section IV-B.2).

Individual ISA subsets (RISC-V I, M, F, A, Zicsr, ...) are organized into
categories and can be activated or deactivated at runtime — the paper does
this through VIO configuration interfaces; here it is a plain API that the
:mod:`repro.fpga.vio` model drives.
"""

from repro.isa.instructions import (
    Extension,
    SPECS,
)

# Instructions the generator must not emit freely: they would tear down the
# execution environment (ecall ends the iteration, mret corrupts the trap
# flow, wfi stalls).  ebreak stays: the exception template skips over it and
# it exercises the breakpoint path (and bug R1).
_EXCLUDED_NAMES = frozenset({"ecall", "mret", "wfi"})


class InstructionLibrary:
    """Runtime-toggleable repository of generatable instruction specs."""

    # Everything below is a pure function of (_enabled, _excluded_names):
    # _rebuild() reconstructs it after load_state, and version is a
    # process-local cache key that must not travel (a restored process's
    # samplers must re-expand their caches regardless).
    _checkpoint_transient = frozenset({
        "_active", "_by_category", "_weighted_cache", "version",
    })

    def __init__(self, extensions=None, exclude=()):
        self._enabled = set(
            extensions
            if extensions is not None
            else (Extension.I, Extension.M, Extension.A, Extension.F,
                  Extension.D, Extension.ZICSR, Extension.SYSTEM)
        )
        self._excluded_names = _EXCLUDED_NAMES | frozenset(exclude)
        self._rebuild()

    def _rebuild(self):
        self._active = [
            spec
            for spec in SPECS
            if spec.extension in self._enabled
            and spec.name not in self._excluded_names
        ]
        self._by_category = {}
        for spec in self._active:
            self._by_category.setdefault(spec.category, []).append(spec)
        self._weighted_cache = {}
        # Bumped on every active-set change; samplers that cache expanded
        # weighted lists (DirectGenerator) key their cache on this.
        self.version = getattr(self, "version", 0) + 1

    # -- VIO-style configuration -----------------------------------------------
    def enable(self, extension):
        """Activate an ISA subset."""
        self._enabled.add(Extension(extension))
        self._rebuild()

    def disable(self, extension):
        """Deactivate an ISA subset."""
        self._enabled.discard(Extension(extension))
        self._rebuild()

    @property
    def enabled_extensions(self):
        return frozenset(self._enabled)

    # -- sampling -----------------------------------------------------------------
    @property
    def active_specs(self):
        """All currently generatable instruction specs."""
        return list(self._active)

    def categories(self):
        return list(self._by_category)

    def specs_in_category(self, category):
        return list(self._by_category.get(category, ()))

    def sample(self, lfsr):
        """Uniformly sample a prime instruction spec."""
        return lfsr.choice(self._active)

    def sample_category(self, lfsr, category):
        """Sample a prime instruction from one category."""
        specs = self._by_category.get(category)
        if not specs:
            raise ValueError(f"no active instructions in category {category}")
        return lfsr.choice(specs)

    def sample_weighted(self, lfsr, weights):
        """Sample with per-category integer weights (default weight 1).

        ``weights`` maps :class:`Category` to a non-negative integer; this
        is how the DifuzzRTL-style baseline biases toward control flow and
        how TurboFuzz keeps the paper's roughly 1:5 control-flow ratio.

        The expanded weighted list is invariant per (active set, weights)
        and is drawn from once per generated block, so it is cached; the
        cache is dropped whenever the active set changes (:meth:`_rebuild`)
        and keyed on the effective per-category weights so callers can
        mutate their weight dicts freely.
        """
        expanded = self.weighted_specs(weights)
        return lfsr.choice(expanded)

    def weighted_specs(self, weights):
        """The expanded weighted spec list :meth:`sample_weighted` draws
        from (cached per effective weight vector; see above)."""
        key = tuple(weights.get(category, 1) for category in self._by_category)
        expanded = self._weighted_cache.get(key)
        if expanded is None:
            expanded = []
            for category, specs in self._by_category.items():
                weight = weights.get(category, 1)
                if weight > 0:
                    expanded.extend(specs * weight)
            self._weighted_cache[key] = expanded
        if not expanded:
            raise ValueError("no instructions active after weighting")
        return expanded

    # -- checkpoint protocol ---------------------------------------------------
    def state_dict(self):
        """JSON-round-trippable snapshot of the VIO-style configuration.

        Without this, mid-campaign ``enable``/``disable`` toggles were
        silently lost across a checkpoint/resume: the resumed library came
        back with its constructor defaults and the instruction stream
        diverged from the uninterrupted run.
        """
        return {"enabled": sorted(ext.name for ext in self._enabled)}

    def load_state(self, state):
        """Restore the active-extension set (derived tables are rebuilt)."""
        self._enabled = {Extension[name] for name in state["enabled"]}
        self._rebuild()

    def __len__(self):
        return len(self._active)

    def __contains__(self, name):
        return any(spec.name == name for spec in self._active)
