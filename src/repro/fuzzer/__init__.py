"""The TurboFuzzer: a synthesizable-hardware-style processor fuzzer.

This package implements Section IV of the paper:

* LFSR-driven **direct mode** generation over a VIO-configurable
  instruction library (:mod:`repro.fuzzer.direct`,
  :mod:`repro.fuzzer.instrlib`),
* the **mutation mode** engine with its generate / delete / retain block
  operations and coverage-aware seed selection
  (:mod:`repro.fuzzer.mutation`),
* **instruction blocks** (prime + affiliated instructions) and iteration
  assembly with the control-flow optimizations of Section IV-C — bounded
  jump windows, 4000-instruction iterations, exception templates
  (:mod:`repro.fuzzer.blocks`, :mod:`repro.fuzzer.templates`),
* **corpus scheduling** by coverage increment rather than FIFO age
  (:mod:`repro.fuzzer.corpus`, Section IV-D).
"""

from repro.fuzzer.config import TurboFuzzConfig
from repro.fuzzer.lfsr import Lfsr
from repro.fuzzer.instrlib import InstructionLibrary
from repro.fuzzer.blocks import InstructionBlock, Iteration, StimulusEntry
from repro.fuzzer.context import FuzzContext, MemoryLayout
from repro.fuzzer.corpus import Corpus, Seed
from repro.fuzzer.direct import DirectGenerator
from repro.fuzzer.mutation import MutationEngine
from repro.fuzzer.templates import build_prologue, build_trap_handler
from repro.fuzzer.fuzzer import TurboFuzzer

__all__ = [
    "TurboFuzzConfig",
    "Lfsr",
    "InstructionLibrary",
    "InstructionBlock",
    "Iteration",
    "StimulusEntry",
    "FuzzContext",
    "MemoryLayout",
    "Corpus",
    "Seed",
    "DirectGenerator",
    "MutationEngine",
    "build_prologue",
    "build_trap_handler",
    "TurboFuzzer",
]
