"""Fuzzing context: memory layout, register conventions, operand generation.

This is the paper's *fuzzing context module*: it manages symbol values to
enforce memory-address requirements (3/4 data segment vs 1/4 instruction
segment for reads; writes confined to the data region to prevent
self-modifying code) and supplies operand values to the unified operand
assignment stage.
"""

from dataclasses import dataclass

from repro.isa.csr import FCSR, FFLAGS, FRM, MCAUSE, MEPC, MSCRATCH, MTVAL, STVAL


@dataclass(frozen=True)
class MemoryLayout:
    """Address-space layout of one fuzzing iteration.

    Segments sit below 2**31 so LUI-built addresses need no sign-extension
    fixups.  The data base registers point 2 KiB into their segments so any
    12-bit signed displacement stays in range.
    """

    reset: int = 0x4000_0000
    handler: int = 0x4000_0200
    done: int = 0x4000_0400
    blocks: int = 0x4000_1000
    data: int = 0x4004_0000
    data_size: int = 1 << 16
    code_size: int = 1 << 18

    @property
    def data_base_reg_value(self):
        return self.data + 0x800

    @property
    def instr_base_reg_value(self):
        return self.blocks + 0x800

    def memory_ranges(self):
        """Legal windows for the iteration's SparseMemory."""
        return [
            (self.reset, self.code_size),
            (self.data, self.data_size),
        ]


# Register conventions (shared by generator, templates, and checker):
REG_DATA_BASE = 5    # t0 -> data segment base (+2 KiB)
REG_INSTR_BASE = 6   # t1 -> instruction segment base (+2 KiB)
REG_JALR_TEMP = 29   # t4 -> jalr target materialization
REG_HANDLER_T0 = 30  # t5 -> clobbered by the trap handler
REG_HANDLER_T1 = 31  # t6 -> clobbered by the trap handler

# Destination pool: avoid zero/ra/sp plus the reserved registers above.
_RD_POOL = tuple(
    index for index in range(7, 29)
)
# Source pool: anything readable including x0 and the base registers.
_RS_POOL = tuple(index for index in range(0, 30))

# CSRs the generator may touch.  mtvec is excluded (it would tear down the
# exception template); everything else is fair game — including stval,
# which bug C7 needs to be read.
_GENERATABLE_CSRS = (
    FFLAGS, FRM, FCSR, MSCRATCH, MEPC, MCAUSE, MTVAL, STVAL,
)
# Writes are restricted to harmless CSRs.
_WRITABLE_CSRS = (FFLAGS, FRM, FCSR, MSCRATCH)

_VALID_RMS = (0, 1, 2, 3, 4, 7)
_INVALID_RMS = (5, 6)


class FuzzContext:
    """Operand factory bound to one LFSR and one memory layout."""

    def __init__(self, lfsr, config, layout=None):
        self.lfsr = lfsr
        self.config = config
        self.layout = layout or MemoryLayout()

    # -- register operands -----------------------------------------------------
    def gen_rd(self):
        return self.lfsr.choice(_RD_POOL)

    def gen_rs(self):
        return self.lfsr.choice(_RS_POOL)

    def gen_freg(self):
        return self.lfsr.below(32)

    # -- immediates ----------------------------------------------------------------
    def gen_imm12(self):
        """Signed 12-bit immediate."""
        return self.lfsr.bits(12) - (1 << 11)

    def gen_shamt(self, word_variant=False):
        return self.lfsr.below(32 if word_variant else 64)

    def gen_uimm20(self):
        return self.lfsr.bits(20)

    def gen_rm(self):
        """Rounding mode: usually valid, occasionally invalid (exercises
        the illegal-instruction path and bug B2)."""
        if self.lfsr.chance(self.config.invalid_rm_prob):
            return self.lfsr.choice(_INVALID_RMS)
        return self.lfsr.choice(_VALID_RMS)

    # -- memory operands ----------------------------------------------------------------
    def read_base_reg(self):
        """Base register for a load: 3/4 data segment, 1/4 instruction
        segment (user-configurable probability, paper Section IV-C)."""
        if self.lfsr.chance(self.config.data_segment_prob):
            return REG_DATA_BASE
        return REG_INSTR_BASE

    def write_base_reg(self):
        """Stores always target the data segment (no self-modifying code)."""
        return REG_DATA_BASE

    def mem_offset(self, access_size):
        """Naturally aligned signed displacement within the segment window."""
        span = 1 << 11  # +/- 2 KiB around the base register
        raw = self.lfsr.bits(11) - (span >> 1)
        return raw & ~(access_size - 1)

    def amo_offset(self, access_size):
        """AMO addresses must be aligned; keep them in the data segment."""
        return self.lfsr.bits(10) * access_size % (1 << 11)

    # -- CSRs -------------------------------------------------------------------------------
    def gen_csr(self, writable):
        pool = _WRITABLE_CSRS if writable else _GENERATABLE_CSRS
        return self.lfsr.choice(pool)

    # -- control flow ---------------------------------------------------------------------------
    def pick_jump_target(self, current_block, total_blocks, window=None):
        """Pick a forward target block index.

        ``window`` bounds the distance (the paper's jump-range limitation);
        ``None`` reproduces the unbounded behaviour of prior fuzzers, whose
        expected jump distance E_j = 1 + (L - p)/2 wastes most of the
        iteration (paper eq. 1).
        """
        first = current_block + 1
        if first >= total_blocks:
            return None
        if window is None:
            last = total_blocks - 1
        else:
            last = min(total_blocks - 1, current_block + window)
        return first + self.lfsr.below(last - first + 1)
