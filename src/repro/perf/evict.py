"""Bounded-cache eviction shared by the framework's hot-path memo tables.

The previous policy was a wholesale ``clear()`` once a cache hit its limit,
which produces a recurring latency cliff: the very next window of hot-path
work re-misses on *every* lookup.  ``evict_half`` instead discards half of
the entries — for dicts the oldest half (insertion order, which correlates
well with recency-of-first-use in a fuzzing campaign where state churn is
gradual), for sets an arbitrary half — and keeps the rest warm, retaining
most of the hit rate at half the memory.
"""

from itertools import islice


def evict_half(cache):
    """Delete half of ``cache`` (dict or set) in place.

    For dicts the evicted half is the oldest by insertion order.  Returns
    the number of evicted entries.  A cache with fewer than two entries is
    left untouched.
    """
    drop = len(cache) // 2
    if drop <= 0:
        return 0
    stale = list(islice(cache, drop))
    if isinstance(cache, dict):
        for key in stale:
            del cache[key]
    else:
        for key in stale:
            cache.discard(key)
    return drop
