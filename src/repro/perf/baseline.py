"""Perf baseline persistence and the >10% regression gate.

``benchmarks/data/perf_baseline.json`` is the committed record of what
the hot path achieved when this PR landed.  It stores two kinds of
numbers:

* **ratios** (``macro.speedup_vs_reference``) — two same-process runs on
  the same machine, so they transfer across hardware.  These are gated in
  CI: a change that erodes the optimized path's advantage over the
  preserved reference path by more than ``tolerance`` (default 10%)
  fails.
* **absolute throughput** (``macro.instructions_per_sec`` and the micro
  metrics) — recorded for same-machine comparisons and trend reading.
  Absolute numbers are NOT gated by default (CI hardware varies run to
  run); export ``PERF_GATE_ABSOLUTE=1`` to gate them too, e.g. on a
  dedicated perf box.

Use ``python -m repro.perf update-baseline`` after intentional perf work
and commit the refreshed JSON alongside the change.
"""

import json
import os
import platform
import sys

DEFAULT_TOLERANCE = 0.10

# Ratio metrics: machine-independent, always gated.
GATED_RATIO_METRICS = ("macro.speedup_vs_reference",)
# Absolute metrics: gated only when PERF_GATE_ABSOLUTE is set.
GATED_ABSOLUTE_METRICS = (
    "macro.instructions_per_sec",
    "micro.lfsr_fill_mb_per_sec",
    "micro.decode_hot_per_sec",
    "micro.observe_per_sec",
)


def baseline_path():
    """Default committed location (``$TURBOFUZZ_DATA_DIR`` overrides,
    matching the benchmark suite's ``persist()`` convention)."""
    data_dir = os.environ.get("TURBOFUZZ_DATA_DIR")
    if data_dir is None:
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        data_dir = os.path.join(root, "benchmarks", "data")
    return os.path.join(data_dir, "perf_baseline.json")


def save_baseline(result, path=None, notes=None):
    """Persist a :func:`repro.perf.harness.collect` result as the new
    committed baseline; returns the path."""
    from repro.perf.harness import flat_metrics

    path = path or baseline_path()
    payload = {
        "schema": 1,
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "metrics": flat_metrics(result),
        "detail": result,
    }
    if notes:
        payload["notes"] = notes
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path=None):
    path = path or baseline_path()
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def gated_metrics():
    metrics = list(GATED_RATIO_METRICS)
    if os.environ.get("PERF_GATE_ABSOLUTE"):
        metrics += list(GATED_ABSOLUTE_METRICS)
    return tuple(metrics)


def compare(current_metrics, baseline, tolerance=DEFAULT_TOLERANCE,
            metrics=None):
    """Regressions of ``current_metrics`` against a stored baseline.

    Returns a list of dicts (empty = gate passes).  A metric regresses
    when ``current < baseline * (1 - tolerance)``.  Metrics missing on
    either side are reported as regressions — silently skipping a gate is
    how perf rot sneaks in.
    """
    recorded = baseline.get("metrics", {})
    regressions = []
    for name in (metrics if metrics is not None else gated_metrics()):
        base_value = recorded.get(name)
        current_value = current_metrics.get(name)
        if base_value is None or current_value is None:
            regressions.append({
                "metric": name,
                "current": current_value,
                "baseline": base_value,
                "reason": "metric missing",
            })
            continue
        floor = base_value * (1.0 - tolerance)
        if current_value < floor:
            regressions.append({
                "metric": name,
                "current": current_value,
                "baseline": base_value,
                "floor": floor,
                "reason": (
                    f"{name} regressed: {current_value:.3f} < "
                    f"{floor:.3f} ({base_value:.3f} - {tolerance:.0%})"
                ),
            })
    return regressions


def gate(result=None, path=None, tolerance=DEFAULT_TOLERANCE):
    """Measure (if needed), compare, and return ``(ok, regressions,
    current_metrics)`` — the programmatic form of ``python -m repro.perf
    gate``."""
    from repro.perf.harness import collect, flat_metrics

    if result is None:
        result = collect()
    current = flat_metrics(result)
    baseline = load_baseline(path)
    regressions = compare(current, baseline, tolerance=tolerance)
    return (not regressions), regressions, current
