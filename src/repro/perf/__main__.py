"""CLI for the perf harness: measure, update the baseline, or gate.

Examples::

    PYTHONPATH=src python -m repro.perf measure
    PYTHONPATH=src python -m repro.perf measure --stages
    PYTHONPATH=src python -m repro.perf update-baseline
    PYTHONPATH=src python -m repro.perf gate --tolerance 0.10
"""

import argparse
import json
import os
import sys

from repro.perf.baseline import (
    DEFAULT_TOLERANCE,
    baseline_path,
    compare,
    load_baseline,
    save_baseline,
)
from repro.perf.harness import collect, flat_metrics


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Hot-path benchmark harness and regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    measure = sub.add_parser("measure", help="run the benchmarks and print JSON")
    measure.add_argument("--repeats", type=int, default=7)
    measure.add_argument("--iterations", type=int, default=30)
    measure.add_argument("--stages", action="store_true",
                         help="include the cProfile per-stage breakdown")

    update = sub.add_parser("update-baseline",
                            help="measure and rewrite the committed baseline")
    update.add_argument("--repeats", type=int, default=7)
    update.add_argument("--iterations", type=int, default=30)
    update.add_argument("--path", default=None)

    gate = sub.add_parser("gate",
                          help="measure and fail (exit 1) on regression")
    gate.add_argument("--repeats", type=int, default=7)
    gate.add_argument("--iterations", type=int, default=30)
    gate.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    gate.add_argument("--path", default=None)
    return parser


def _pin_hash_seed():
    """Re-exec with a fixed PYTHONHASHSEED if none was requested.

    Per-process hash randomization gives each run a dict-layout
    "personality" worth ±15% on the dict-heavy hot path — more than the
    gate's tolerance.  Pinning the seed makes measure/gate runs of the
    same code reproduce; export PYTHONHASHSEED yourself to study the
    spread.
    """
    if os.environ.get("PYTHONHASHSEED") is None:
        env = dict(os.environ, PYTHONHASHSEED="0")
        os.execve(sys.executable, [sys.executable, "-m", "repro.perf",
                                   *sys.argv[1:]], env)


def main(argv=None):
    if argv is None:
        _pin_hash_seed()
    args = _parser().parse_args(argv)

    if args.command == "measure":
        result = collect(repeats=args.repeats, iterations=args.iterations,
                         with_stages=args.stages)
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0

    if args.command == "update-baseline":
        result = collect(repeats=args.repeats, iterations=args.iterations)
        path = save_baseline(result, path=args.path)
        print(f"baseline written: {path}")
        print(json.dumps(flat_metrics(result), indent=2, sort_keys=True))
        return 0

    # gate
    result = collect(repeats=args.repeats, iterations=args.iterations)
    current = flat_metrics(result)
    baseline = load_baseline(args.path)
    regressions = compare(current, baseline, tolerance=args.tolerance)
    print("current:", json.dumps(current, indent=2, sort_keys=True))
    print("baseline:", args.path or baseline_path())
    if regressions:
        for regression in regressions:
            print("REGRESSION:", regression.get("reason", regression),
                  file=sys.stderr)
        print("hint: check the hot paths for reintroduced allocations with\n"
              "      PYTHONPATH=src python -m repro.analyze report --select HOT src/\n"
              "hint: if macro.speedup_vs_reference regressed, compare the\n"
              "      macro.block_compile.* stats above against the baseline —\n"
              "      a collapsed compiled_share or word_cache_hit_rate means\n"
              "      block invalidation churn (version stamps re-stamping\n"
              "      unchanged content); a ballooned entries_compiled means\n"
              "      the hotness gate stopped filtering once-run code.",
              file=sys.stderr)
        return 1
    print(f"perf gate OK (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
