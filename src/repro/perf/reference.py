"""Re-enactment of preserved pre-overhaul code paths, for benchmarking.

The hot-path overhaul kept its replaced implementations alive as
reference oracles (``ModuleCoverage.observe_state_reference``, the
equivalence suite runs them for bit-identity).  This module gathers the
toggles into one context manager so the perf harness can measure a
campaign with the pre-PR per-instruction machinery re-enacted **in the
same process** — the only way to get a machine-state-independent speedup
ratio on noisy shared runners.

Covered re-enactments (everything with a preserved implementation):

* observer: tuple-build + ``observe_state_reference`` per module per
  instruction (``DutCore.use_reference_observer``),
* data segment: per-word loop ``fill_bytes`` instead of the GF(2)
  basis-stream fast path,
* weighted sampling: rebuild the expanded weighted spec list per
  generated block instead of the cached list.

Executor-level rewrites (decode caches, dispatch pre-binding, softfloat
memoization) have no preserved alternates, so the re-enacted ratio is a
*lower bound* on the full speedup vs the true pre-PR tree; the committed
baseline's notes record the out-of-process paired measurement against the
actual pre-PR checkout for the full number.
"""

from contextlib import contextmanager

from repro.fuzzer.direct import DirectGenerator
from repro.fuzzer.lfsr import Lfsr


def _fill_bytes_reference(self, count):
    """Pre-overhaul fill: one xorshift step + 8-byte extend per word."""
    out = bytearray()
    while len(out) < count:
        out.extend(self.next().to_bytes(8, "little"))
    return bytes(out[:count])


def _weighted_specs_reference(self):
    """Pre-overhaul sampling: rebuild the expanded list per block."""
    expanded = []
    for category, specs in self.library._by_category.items():
        weight = self.category_weights.get(category, 1)
        if weight > 0:
            expanded.extend(specs * weight)
    if not expanded:
        raise ValueError("no instructions active after weighting")
    return expanded


@contextmanager
def reenact_pre_overhaul():
    """Swap the preserved pre-overhaul implementations in, process-wide.

    Only for benchmarking (the harness's reference variant); sessions
    built inside the block still need ``use_reference_observer(True)``
    for the observer part.
    """
    original_fill = Lfsr.fill_bytes
    original_weighted = DirectGenerator._weighted_specs
    Lfsr.fill_bytes = _fill_bytes_reference
    DirectGenerator._weighted_specs = _weighted_specs_reference
    try:
        yield
    finally:
        Lfsr.fill_bytes = original_fill
        DirectGenerator._weighted_specs = original_weighted
