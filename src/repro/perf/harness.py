"""Micro/macro benchmark harness for the per-instruction hot path.

The macro benchmark runs a real ``CampaignSession`` (the fig11-style
TurboFuzz-on-Rocket configuration) for a fixed iteration window and
reports **instructions/sec** (executed DUT instructions per wall second —
the paper's throughput axis) and **iterations/sec**.  Every measurement
is best-of-``repeats``: the repo's CI boxes and dev containers have noisy
clocks, and the minimum wall time of N identical workloads is the
standard estimator for "how fast can this code run".

Two numbers matter downstream:

* ``macro.instructions_per_sec`` — absolute throughput, recorded for
  humans and for same-machine comparisons;
* ``macro.speedup_vs_reference`` — the optimized observer hot path vs the
  preserved pre-overhaul reference path (``use_reference_observer``),
  measured in the same process seconds apart.  Being a ratio of two
  same-machine runs it is the machine-independent metric the CI
  regression gate keys on.

The per-stage breakdown uses a short ``cProfile`` capture and buckets
cumulative time into the pipeline stages (generate / execute / observe /
microarch update), which is how this PR's optimizations were found.
"""

import cProfile
import pstats
import statistics
import time

from repro.fuzzer.lfsr import Lfsr


def _build_session(core="rocket", style="optimized",
                   instructions_per_iteration=1000):
    from repro.campaign.session import CampaignSession
    from repro.campaign.spec import CampaignSpec

    spec = (CampaignSpec()
            .with_fuzzer("turbofuzz",
                         instructions_per_iteration=instructions_per_iteration)
            .with_core(core)
            .with_instrumentation(style=style))
    return CampaignSession(spec)


def _measure_session(session, iterations, repeats):
    """Best-of-``repeats`` throughput over ``iterations``-sized windows."""
    best_ips = 0.0
    best_itps = 0.0
    for _ in range(repeats):
        executed_before = session.total_executed
        start = time.perf_counter()
        session.run_iterations(iterations)
        elapsed = time.perf_counter() - start
        executed = session.total_executed - executed_before
        if elapsed > 0:
            best_ips = max(best_ips, executed / elapsed)
            best_itps = max(best_itps, iterations / elapsed)
    return best_ips, best_itps


def measure_macro(core="rocket", style="optimized", iterations=30, warmup=3,
                  instructions_per_iteration=1000, repeats=7):
    """The headline benchmark: optimized vs reference hot path.

    Both variants run the identical deterministic workload (same spec,
    same seeds — the campaigns are bit-identical by construction, which
    the equivalence suite asserts), so the ratio isolates the hot-path
    implementation.
    """
    from repro.perf.reference import reenact_pre_overhaul

    session = _build_session(core, style, instructions_per_iteration)
    session.run_iterations(warmup)
    with reenact_pre_overhaul():
        reference = _build_session(core, style, instructions_per_iteration)
        reference.core.use_reference_observer(True)
        reference.run_iterations(warmup)
    # Deliberately NOT freeze_steady_state(): the freeze lifts absolute
    # throughput on both sides, but it relieves the allocation-heavy
    # reference path far more than the allocation-free optimized one and
    # compresses the gated ratio by ~25% (measured).  The baseline series
    # has always been collected unfrozen; keep it comparable.

    # Interleave the two variants' measurement windows so machine-speed
    # drift (shared CI runners fluctuate on the scale of seconds) hits
    # both sides of the ratio equally.  The *absolute* throughputs keep
    # the best window (what the code can do), but the gated *ratio* is
    # the median of per-pair ratios: each optimized window divided by
    # the reference window adjacent to it in time, so common-mode speed
    # drift cancels pair-wise.  Taking the ratio of the two independent
    # maxima instead flaps badly on single-vCPU runners — the sides'
    # best windows can land at opposite ends of a frequency ramp.
    optimized_ips = optimized_itps = reference_ips = 0.0
    pair_ratios = []
    for _ in range(repeats):
        ips, itps = _measure_session(session, iterations, 1)
        optimized_ips = max(optimized_ips, ips)
        optimized_itps = max(optimized_itps, itps)
        with reenact_pre_overhaul():
            ref_ips, _ = _measure_session(reference, iterations, 1)
        reference_ips = max(reference_ips, ref_ips)
        if ref_ips:
            pair_ratios.append(ips / ref_ips)

    from repro.ref import blockcompile

    compile_stats = blockcompile.compile_stats(session.core)
    executed = session.total_executed
    compile_stats["compiled_share"] = (
        compile_stats["compiled_instructions"] / executed if executed else 0.0
    )
    cache_probes = compile_stats["word_hits"] + compile_stats["word_misses"]
    compile_stats["word_cache_hit_rate"] = (
        compile_stats["word_hits"] / cache_probes if cache_probes else 0.0
    )

    return {
        "core": core,
        "style": style,
        "iterations": iterations,
        "instructions_per_iteration": instructions_per_iteration,
        "repeats": repeats,
        "instructions_per_sec": optimized_ips,
        "iterations_per_sec": optimized_itps,
        "reference_instructions_per_sec": reference_ips,
        "speedup_vs_reference": (
            statistics.median(pair_ratios) if pair_ratios else None
        ),
        "block_compile": compile_stats,
    }


def measure_grid(budget_iterations=12, instructions_per_iteration=500):
    """Small fig11-style grid (the CI smoke workload): every registered
    DUT core under the optimized layout, one TurboFuzz campaign each."""
    rows = {}
    for core in ("rocket", "cva6", "boom"):
        session = _build_session(core, "optimized",
                                 instructions_per_iteration)
        session.run_iterations(2)
        ips, itps = _measure_session(session, budget_iterations, 1)
        rows[core] = {
            "instructions_per_sec": ips,
            "iterations_per_sec": itps,
            "coverage_total": session.coverage_total,
        }
    return rows


def measure_micro():
    """Component benchmarks for the pieces the tentpole rewrote."""
    results = {}

    lfsr = Lfsr(0xBEEF)
    lfsr.fill_bytes(1 << 14)  # warm the basis cache
    start = time.perf_counter()
    filled = 0
    while filled < 1 << 22:
        lfsr.fill_bytes(1 << 14)
        filled += 1 << 14
    elapsed = time.perf_counter() - start
    results["lfsr_fill_mb_per_sec"] = filled / elapsed / (1 << 20)

    start = time.perf_counter()
    draws = 200_000
    for _ in range(draws):
        lfsr.below(32)
    results["lfsr_draws_per_sec"] = draws / (time.perf_counter() - start)

    from repro.isa.decoder import decode
    from repro.isa.encoder import encode

    words = [encode("addi", rd=5, rs1=6, imm=7), encode("add", rd=7, rs1=8, rs2=9),
             encode("lw", rd=10, rs1=5, imm=16), encode("beq", rs1=5, rs2=6, imm=8)]
    for word in words:
        decode(word)
    start = time.perf_counter()
    lookups = 50_000
    for _ in range(lookups):
        for word in words:
            decode(word)
    results["decode_hot_per_sec"] = (
        lookups * len(words) / (time.perf_counter() - start)
    )

    session = _build_session()
    session.run_iterations(1)
    core = session.core
    vals = core.vals
    fused = core._fused
    start = time.perf_counter()
    observations = 100_000
    for index in range(observations):
        vals["pc_lo"] = index & 7
        fused.observe(vals)
    results["observe_per_sec"] = (
        observations / (time.perf_counter() - start)
    )

    # Compile-then-run vs interpret: the same straight-line ALU body
    # executed through a compiled extent and through core.step, plus the
    # one-time compile cost per word (what the hotness gate amortizes).
    from repro.isa.encoder import encode as encode_word
    from repro.ref import blockcompile

    body = [encode_word("addi", rd=5, rs1=5, imm=1),
            encode_word("add", rd=6, rs1=5, rs2=6),
            encode_word("xori", rd=7, rs1=6, imm=0x55),
            encode_word("sltu", rd=8, rs1=7, rs2=5)] * 8
    base = core.reset_pc
    core.memory.write_program(base, body)
    state = core.executor.state
    extent = blockcompile.compile_extent(core, body)
    passes = 2_000
    start = time.perf_counter()
    for _ in range(passes):
        state.pc = base
        blockcompile.run_block(core, extent, base, len(body))
    compiled_elapsed = time.perf_counter() - start
    results["block_run_instr_per_sec"] = (
        passes * len(body) / compiled_elapsed
    )
    step = core.step
    start = time.perf_counter()
    for _ in range(passes):
        state.pc = base
        for _ in body:
            step()
    interp_elapsed = time.perf_counter() - start
    results["interp_run_instr_per_sec"] = (
        passes * len(body) / interp_elapsed
    )
    results["block_run_speedup_vs_interp"] = (
        interp_elapsed / compiled_elapsed if compiled_elapsed else 0.0
    )
    start = time.perf_counter()
    compiles = 200
    for _ in range(compiles):
        core._slot_cache.clear()
        blockcompile.compile_extent(core, body)
    results["block_compile_words_per_sec"] = (
        compiles * len(body) / (time.perf_counter() - start)
    )
    return results


_STAGE_MARKERS = {
    "generate": (("fuzzer.py", "generate_iteration"),),
    "execute": (("executor.py", "step"),),
    "microarch_update": (("core.py", "_update_microarch"),),
    "observe": (("core.py", "_observe_active"),),
    "latency": (("core.py", "_latency"),),
    "image_build": (("image.py", "build_image"),),
    # Compiled dispatch: time spent running extents vs building them
    # (map scan + lazy promotion compiles) — the compile-time share the
    # hotness gate is meant to keep negligible.
    "block_execute": (("blockcompile.py", "run_block"),),
    "block_compile": (("blockcompile.py", "build_block_map"),
                      ("blockcompile.py", "promote"),),
}


def profile_stages(iterations=10, instructions_per_iteration=1000):
    """Per-stage cumulative seconds from a short cProfile capture."""
    session = _build_session(
        instructions_per_iteration=instructions_per_iteration)
    session.run_iterations(2)
    profiler = cProfile.Profile()
    profiler.enable()
    session.run_iterations(iterations)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stages = {name: 0.0 for name in _STAGE_MARKERS}
    total = 0.0
    for (filename, _line, function), row in stats.stats.items():
        cumulative = row[3]
        total += row[2]  # tottime sums to wall
        for stage, markers in _STAGE_MARKERS.items():
            for file_marker, function_name in markers:
                if (function == function_name
                        and filename.endswith(file_marker)):
                    stages[stage] += cumulative
    stages["profiled_total"] = total
    return stages


def collect(repeats=7, iterations=30, with_stages=False):
    """Everything the baseline file persists, in one call."""
    result = {
        "macro": measure_macro(repeats=repeats, iterations=iterations),
        "micro": measure_micro(),
    }
    if with_stages:
        result["stages"] = profile_stages()
    return result


def flat_metrics(result):
    """Flatten a :func:`collect` result into dotted metric names."""
    metrics = {}
    macro = result.get("macro", {})
    for key in ("instructions_per_sec", "iterations_per_sec",
                "speedup_vs_reference"):
        if macro.get(key) is not None:
            metrics[f"macro.{key}"] = macro[key]
    for key, value in macro.get("block_compile", {}).items():
        metrics[f"macro.block_compile.{key}"] = value
    for key, value in result.get("micro", {}).items():
        metrics[f"micro.{key}"] = value
    return metrics
