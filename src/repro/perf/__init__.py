"""Performance infrastructure: benchmark harness, baselines, cache policies.

Split so the hot paths can import the tiny pieces without pulling in the
benchmark machinery:

* :mod:`repro.perf.evict` — the shared bounded-cache eviction policy used
  by the decoder cache and the coverage memo tables.
* :mod:`repro.perf.harness` — micro/macro benchmark runners
  (instructions/sec, iterations/sec, per-stage ``cProfile`` breakdowns).
* :mod:`repro.perf.baseline` — persistence and comparison of
  ``benchmarks/data/perf_baseline.json`` plus the >10% regression gate.

Run ``python -m repro.perf --help`` for the CLI (measure, update the
committed baseline, or gate against it).
"""

from repro.perf.evict import evict_half

__all__ = ["evict_half"]


def __getattr__(name):
    # Lazy re-exports: the hot paths import repro.perf.evict at startup;
    # the benchmark machinery should only load when actually used.
    if name in ("measure_macro", "measure_micro", "measure_grid",
                "profile_stages", "collect", "flat_metrics"):
        from repro.perf import harness
        return getattr(harness, name)
    if name in ("save_baseline", "load_baseline", "compare", "gate",
                "baseline_path"):
        from repro.perf import baseline
        return getattr(baseline, name)
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
