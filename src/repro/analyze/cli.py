"""CLI for the static analyzer.

Examples::

    PYTHONPATH=src python -m repro.analyze check src/
    PYTHONPATH=src python -m repro.analyze report --select HOT src/
    PYTHONPATH=src python -m repro.analyze report --json src/
    PYTHONPATH=src python -m repro.analyze check --ignore DET005 src/
    PYTHONPATH=src python -m repro.analyze update-baseline src/
    PYTHONPATH=src python -m repro.analyze rules

``check`` exits 1 when any finding is not covered by the committed
baseline (``.analyze-baseline.json``); ``report`` always exits 0 and is
for humans (or ``--json`` consumers).
"""

import argparse
import json
import sys

from repro.analyze.baseline import (
    BASELINE_FILENAME,
    load_baseline,
    save_baseline,
    split_by_baseline,
)
from repro.analyze.engine import analyze_paths, rule_catalog


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Invariant-enforcing static analysis: checkpoint "
                    "protocol, determinism, hot-path allocations, registry "
                    "hygiene.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scan_args(cmd):
        cmd.add_argument("paths", nargs="+",
                         help="files or directories to scan")
        cmd.add_argument("--select", action="append", default=None,
                         metavar="PREFIX",
                         help="only run rules matching this id prefix "
                              "(repeatable: --select CHK --select HOT002)")
        cmd.add_argument("--ignore", action="append", default=None,
                         metavar="PREFIX",
                         help="skip rules matching this id prefix "
                              "(repeatable)")
        cmd.add_argument("--root", default=None,
                         help="anchor for relative paths / fingerprints "
                              "(default: common parent of scanned files)")
        cmd.add_argument("--json", action="store_true", dest="as_json",
                         help="emit findings as a JSON array")

    check = sub.add_parser(
        "check", help="scan and fail (exit 1) on non-baselined findings")
    add_scan_args(check)
    check.add_argument("--baseline", default=BASELINE_FILENAME,
                       help=f"baseline file (default: {BASELINE_FILENAME}; "
                            f"'none' disables)")

    report = sub.add_parser(
        "report", help="scan and print every finding (always exit 0)")
    add_scan_args(report)

    update = sub.add_parser(
        "update-baseline",
        help="scan and accept all current findings into the baseline")
    add_scan_args(update)
    update.add_argument("--baseline", default=BASELINE_FILENAME)

    sub.add_parser("rules", help="list the rule catalog")
    return parser


def _emit(findings, as_json):
    if as_json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())


def main(argv=None):
    args = _parser().parse_args(argv)

    if args.command == "rules":
        for rule in rule_catalog():
            scope = " [project]" if rule.scope == "project" else ""
            print(f"{rule.rule_id}{scope}  {rule.summary}")
        return 0

    findings = analyze_paths(args.paths, select=args.select,
                             ignore=args.ignore, root=args.root)

    if args.command == "report":
        _emit(findings, args.as_json)
        if not args.as_json:
            print(f"{len(findings)} finding(s)")
        return 0

    if args.command == "update-baseline":
        path = save_baseline(findings, args.baseline)
        print(f"baseline written: {path} ({len(findings)} accepted)")
        _emit(findings, args.as_json)
        return 0

    # check
    baseline_path = None if args.baseline == "none" else args.baseline
    accepted = load_baseline(baseline_path)
    new, baselined = split_by_baseline(findings, accepted)
    _emit(new, args.as_json)
    if new:
        if not args.as_json:
            print(f"{len(new)} new finding(s) "
                  f"({len(baselined)} baselined)", file=sys.stderr)
            print("fix them, suppress inline with '# analyze: ignore[RULE] "
                  "reason', or accept via 'python -m repro.analyze "
                  "update-baseline'", file=sys.stderr)
        return 1
    if not args.as_json:
        print(f"analyze OK ({len(baselined)} baselined finding(s))"
              if baselined else "analyze OK")
    return 0
