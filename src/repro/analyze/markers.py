"""Zero-dependency markers consumed by the static analyzer.

This module is imported by production code on the hot path (``dut``,
``ref``, ``coverage``, ``fuzzer``), so it must stay free of imports and
side effects: marking a function must cost one attribute write at
definition time and nothing per call.
"""

HOT_PATH_ATTR = "__hot_path__"


def hot_path(fn):
    """Mark ``fn`` as hot-path: called per instruction or per draw.

    The marker is a contract with ``repro.analyze``'s allocation guard
    (HOT0xx rules): the function body must not allocate per call — no
    comprehensions, collection displays/constructors, closures,
    f-strings, or try/except control flow.  The decorator itself is a
    no-op at runtime beyond tagging the function object.
    """
    try:
        setattr(fn, HOT_PATH_ATTR, True)
    except (AttributeError, TypeError):  # e.g. slotted callables
        pass
    return fn
