"""DET — determinism lint for the reproducible path.

A campaign must replay bit-identically from (seed, spec) and from any
checkpoint, so modules inside ``ref/``, ``dut/``, ``fuzzer/``,
``coverage/``, and ``campaign/`` must not consult wall-clock time, the
stdlib PRNG (all randomness flows through the checkpointable ``Lfsr``),
object identity, unordered-set iteration order, or the process
environment.  Modules outside those path segments are not checked.

* **DET001** — ``time``/``datetime`` import or ``time.*()`` call.
* **DET002** — ``random``/``secrets``/``uuid`` import or ``random.*()``
  call (use ``repro.fuzzer.lfsr.Lfsr``).
* **DET003** — ``id(...)`` used as a mapping key or in a comparison:
  object identity varies run to run.
* **DET004** — iterating a set expression into ordered output
  (``list(set(...))``, ``sorted`` is fine; ``for x in {...}`` /
  ``"".join(set(...))`` / ``tuple(set(...))`` / ``enumerate(set(...))``
  are not).
* **DET005** — ``os.environ`` / ``os.getenv`` read: behaviour must not
  depend on the caller's environment.
"""

import ast

from repro.analyze.engine import register_rule

_TIME_MODULES = frozenset({"time", "datetime"})
_RANDOM_MODULES = frozenset({"random", "secrets", "uuid"})

#: Consumers that expose set iteration order in their output.  ``sorted``
#: and ``len``/``min``/``max``/``sum``/``any``/``all`` are order-safe.
_ORDER_EXPOSING_CALLS = frozenset({"list", "tuple", "iter", "enumerate"})


def _enclosing_symbols(tree):
    """Map id(node) -> dotted symbol of the enclosing def/class."""
    symbols = {}

    def visit(node, stack):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack = stack + [node.name]
        for child in ast.iter_child_nodes(node):
            symbols[id(child)] = ".".join(stack)
            visit(child, stack)

    visit(tree, [])
    return symbols


def _symbol(symbols, node):
    return symbols.get(id(node), "")


def _banned_imports(module, modules, rule_id, hint):
    symbols = _enclosing_symbols(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in modules:
                    yield module.finding(
                        rule_id,
                        f"import of {alias.name!r} on the reproducible path "
                        f"({hint})",
                        node, symbol=_symbol(symbols, node) or alias.name,
                    )
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if top in modules:
                yield module.finding(
                    rule_id,
                    f"import from {node.module!r} on the reproducible path "
                    f"({hint})",
                    node, symbol=_symbol(symbols, node) or top,
                )


@register_rule("DET001", "wall-clock use on the reproducible path")
def check_time(module):
    if not module.on_reproducible_path:
        return
    yield from _banned_imports(
        module, _TIME_MODULES, "DET001",
        "wall-clock state breaks bit-identical replay; use the campaign's "
        "VirtualClock",
    )


@register_rule("DET002", "stdlib PRNG use on the reproducible path")
def check_random(module):
    if not module.on_reproducible_path:
        return
    yield from _banned_imports(
        module, _RANDOM_MODULES, "DET002",
        "all randomness must flow through the checkpointable Lfsr",
    )


@register_rule("DET003", "id()-keyed lookup on the reproducible path")
def check_id_keys(module):
    if not module.on_reproducible_path:
        return
    symbols = _enclosing_symbols(module.tree)
    for node in ast.walk(module.tree):
        # d[id(x)], d[id(x)] = ..., and {id(x): ...} literals.
        if isinstance(node, ast.Subscript) and _is_id_call(node.slice):
            yield module.finding(
                "DET003",
                "id() used as a mapping key: object identity is not stable "
                "across runs",
                node, symbol=_symbol(symbols, node),
            )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and _is_id_call(key):
                    yield module.finding(
                        "DET003",
                        "id() used as a dict-literal key: object identity is "
                        "not stable across runs",
                        key, symbol=_symbol(symbols, node),
                    )
        elif isinstance(node, ast.Compare) and (
                _is_id_call(node.left)
                or any(_is_id_call(c) for c in node.comparators)):
            yield module.finding(
                "DET003",
                "id() used in a comparison: object identity is not stable "
                "across runs",
                node, symbol=_symbol(symbols, node),
            )


def _is_id_call(node):
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id")


def _is_set_expr(node):
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    return False


@register_rule("DET004", "set iteration feeding ordered output")
def check_set_iteration(module):
    if not module.on_reproducible_path:
        return
    symbols = _enclosing_symbols(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            yield module.finding(
                "DET004",
                "iterating a set expression: iteration order is "
                "hash-randomized; wrap in sorted(...)",
                node.iter, symbol=_symbol(symbols, node),
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name)
                    and func.id in _ORDER_EXPOSING_CALLS
                    and node.args and _is_set_expr(node.args[0])):
                yield module.finding(
                    "DET004",
                    f"{func.id}(set-expression) exposes hash-randomized set "
                    f"order; wrap in sorted(...)",
                    node, symbol=_symbol(symbols, node),
                )
            elif (isinstance(func, ast.Attribute) and func.attr == "join"
                    and node.args and _is_set_expr(node.args[0])):
                yield module.finding(
                    "DET004",
                    "str.join over a set expression exposes hash-randomized "
                    "set order; wrap in sorted(...)",
                    node, symbol=_symbol(symbols, node),
                )
        elif isinstance(node, (ast.comprehension,)) and _is_set_expr(node.iter):
            yield module.finding(
                "DET004",
                "comprehension over a set expression: iteration order is "
                "hash-randomized; wrap in sorted(...)",
                node.iter, symbol=_symbol(symbols, node.iter),
            )


@register_rule("DET005", "environment read on the reproducible path")
def check_environ(module):
    if not module.on_reproducible_path:
        return
    symbols = _enclosing_symbols(module.tree)
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
                and node.attr in ("environ", "getenv")):
            yield module.finding(
                "DET005",
                f"os.{node.attr} read on the reproducible path: behaviour "
                f"must depend only on (seed, spec)",
                node, symbol=_symbol(symbols, node),
            )
