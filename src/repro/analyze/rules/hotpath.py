"""HOT — allocation guard for ``@hot_path``-marked functions.

PR 5's 1.6-1.9x speedup came from making the per-instruction loop
allocation-free; these rules keep it that way.  A function decorated
with :func:`repro.analyze.markers.hot_path` (any decorator spelled
``hot_path`` or ``...hot_path``) must not contain:

* **HOT001** — comprehensions / generator expressions (allocate a new
  container or generator frame per call).
* **HOT002** — collection displays (``[...]``, ``{...}``, non-constant
  ``(...)``) or ``dict()``/``list()``/``set()``/``tuple()`` constructor
  calls.  Tuples of compile-time constants are exempt: CPython folds
  them into ``co_consts``, so they cost nothing per call.
* **HOT003** — nested ``def`` / ``lambda`` (allocates a function object,
  and usually a closure cell, per call).
* **HOT004** — f-strings, ``str.format``, ``%``-formatting on string
  literals (allocate the formatted string per call).
* **HOT005** — ``try``/``except`` blocks (zero-cost until raised, but a
  raise in the hot loop allocates the exception and traceback; keep
  trap-style dispatch out of marked functions or suppress with a
  justification).

Nested functions are not scanned beyond being flagged by HOT003 — the
closure itself is the allocation.
"""

import ast

from repro.analyze.engine import register_rule

_CONSTRUCTOR_CALLS = frozenset({"dict", "list", "set", "tuple", "frozenset"})


def _is_hot_path_decorator(node):
    if isinstance(node, ast.Name):
        return node.id == "hot_path"
    if isinstance(node, ast.Attribute):
        return node.attr == "hot_path"
    if isinstance(node, ast.Call):
        return _is_hot_path_decorator(node.func)
    return False


def _hot_functions(tree):
    """Yield (qualname, func node) for every @hot_path function."""
    def visit(node, stack):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join(stack + [child.name])
                if any(_is_hot_path_decorator(d) for d in child.decorator_list):
                    yield qual, child
                yield from visit(child, stack + [child.name])
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, stack + [child.name])
            else:
                yield from visit(child, stack)

    yield from visit(tree, [])


def _body_nodes(func):
    """Walk the function body, skipping nested function/lambda bodies.

    The nested callable is flagged once by HOT003; its body runs only
    when called, which is the nested function's problem, not this one's.
    Decorators and default-argument expressions of nested defs still
    execute in the outer frame, so they are walked.
    """
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.Lambda):
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        stack.extend(ast.iter_child_nodes(node))


def _all_constants(node):
    """True if every element of a tuple display is a compile-time constant."""
    for element in node.elts:
        if isinstance(element, ast.Constant):
            continue
        if isinstance(element, ast.Tuple) and _all_constants(element):
            continue
        if (isinstance(element, ast.UnaryOp)
                and isinstance(element.operand, ast.Constant)):
            continue
        return False
    return True


def _check_hot_body(module, qual, func):
    for node in _body_nodes(func):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            kind = type(node).__name__
            yield module.finding(
                "HOT001",
                f"{kind} allocates per call in hot-path function {qual}()",
                node, symbol=qual,
            )
        elif isinstance(node, (ast.List, ast.Set, ast.Dict)):
            kind = {"List": "list", "Set": "set", "Dict": "dict"}[
                type(node).__name__]
            yield module.finding(
                "HOT002",
                f"{kind} display allocates per call in hot-path function "
                f"{qual}()",
                node, symbol=qual,
            )
        elif isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
            if not _all_constants(node):
                yield module.finding(
                    "HOT002",
                    f"non-constant tuple display allocates per call in "
                    f"hot-path function {qual}() (all-constant tuples are "
                    f"folded by the compiler and exempt)",
                    node, symbol=qual,
                )
        elif isinstance(node, ast.Call):
            callee = node.func
            if (isinstance(callee, ast.Name)
                    and callee.id in _CONSTRUCTOR_CALLS):
                yield module.finding(
                    "HOT002",
                    f"{callee.id}() constructor allocates per call in "
                    f"hot-path function {qual}()",
                    node, symbol=qual,
                )
            elif (isinstance(callee, ast.Attribute)
                    and callee.attr == "format"
                    and isinstance(callee.value, ast.Constant)
                    and isinstance(callee.value.value, str)):
                yield module.finding(
                    "HOT004",
                    f"str.format allocates per call in hot-path function "
                    f"{qual}()",
                    node, symbol=qual,
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            what = ("lambda" if isinstance(node, ast.Lambda)
                    else f"nested def {node.name}")
            yield module.finding(
                "HOT003",
                f"{what} allocates a function object per call in hot-path "
                f"function {qual}()",
                node, symbol=qual,
            )
        elif isinstance(node, ast.JoinedStr):
            yield module.finding(
                "HOT004",
                f"f-string allocates per call in hot-path function {qual}()",
                node, symbol=qual,
            )
        elif (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)):
            yield module.finding(
                "HOT004",
                f"%-formatting allocates per call in hot-path function "
                f"{qual}()",
                node, symbol=qual,
            )
        elif isinstance(node, (ast.Try,)):
            yield module.finding(
                "HOT005",
                f"try/except in hot-path function {qual}(): a raise here "
                f"allocates the exception and traceback per occurrence",
                node, symbol=qual,
            )


def _run_family(module, rule_ids):
    for qual, func in _hot_functions(module.tree):
        for finding in _check_hot_body(module, qual, func):
            if finding.rule in rule_ids:
                yield finding


@register_rule("HOT001", "comprehension in @hot_path function")
def check_comprehensions(module):
    yield from _run_family(module, ("HOT001",))


@register_rule("HOT002", "collection display/constructor in @hot_path function")
def check_displays(module):
    yield from _run_family(module, ("HOT002",))


@register_rule("HOT003", "closure allocation in @hot_path function")
def check_closures(module):
    yield from _run_family(module, ("HOT003",))


@register_rule("HOT004", "string formatting in @hot_path function")
def check_formatting(module):
    yield from _run_family(module, ("HOT004",))


@register_rule("HOT005", "try/except in @hot_path function")
def check_try(module):
    yield from _run_family(module, ("HOT005",))
