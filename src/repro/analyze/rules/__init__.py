"""Built-in rule families; each module self-registers into ``RULES``."""
