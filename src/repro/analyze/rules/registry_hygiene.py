"""REG — registry hygiene for the ``@register_*`` plugin surface.

PR 1 made fuzzers, cores, timing models, backends, and instrumentations
registry-driven; these rules keep the plugin surface honest.  The first
two are pure AST checks; the introspection checks (REG003/REG005) run
the live registries, so they only fire when the scan actually covers
the ``repro`` package itself — fixture trees in tests never trip them.

* **REG001** — two ``@register_*("name")`` decorations with the same
  literal name for the same registrar without ``replace=True``
  (project scope: collisions across files are the dangerous ones).
* **REG002** — a ``@register_*`` decoration on a nested (non-top-level)
  def/class: the target is not importable by name, so a campaign spec
  naming it cannot be reconstructed in a fresh process.
* **REG003** — live check: every name in every known registry resolves
  via ``get()`` and the entry (or its plugin payload) is importable —
  i.e. reachable under its ``__module__.__qualname__``.
* **REG005** — live check: ``CampaignSpec`` survives a
  ``to_dict -> json -> from_dict`` round trip and every registered
  plugin's ``build_config({})`` produces a config (spec classes stay
  constructible from serialized form).
"""

import ast
import importlib
import json

from repro.analyze.engine import register_rule
from repro.analyze.findings import Finding

_REGISTER_PREFIX = "register_"


def _register_name(decorator):
    """(registrar, literal-name, has-replace) for ``@register_*`` calls."""
    if not isinstance(decorator, ast.Call):
        return None
    func = decorator.func
    if isinstance(func, ast.Attribute):
        registrar = func.attr
    elif isinstance(func, ast.Name):
        registrar = func.id
    else:
        return None
    if not (registrar.startswith(_REGISTER_PREFIX)
            or registrar == "register"):
        return None
    name = None
    if decorator.args:
        first = decorator.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            name = first.value
    replace = any(
        kw.arg == "replace"
        and isinstance(kw.value, ast.Constant) and kw.value.value
        for kw in decorator.keywords
    )
    return registrar, name, replace


def _registrations(module):
    """Yield (registrar, name, replace, node, depth) for decorated defs."""
    def visit(node, depth):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                for deco in child.decorator_list:
                    reg = _register_name(deco)
                    if reg:
                        yield (*reg, child, depth)
                yield from visit(child, depth + 1)
            else:
                yield from visit(child, depth)

    yield from visit(module.tree, 0)


@register_rule("REG001", "duplicate registry name", scope="project")
def check_duplicate_names(modules):
    seen = {}
    for module in modules:
        for registrar, name, replace, node, _depth in _registrations(module):
            if name is None or replace:
                continue
            key = (registrar, name)
            if key in seen:
                first_module, first_node = seen[key]
                yield module.finding(
                    "REG001",
                    f"@{registrar}({name!r}) collides with the registration "
                    f"at {first_module.relpath}:{first_node.lineno} "
                    f"(pass replace=True to shadow deliberately)",
                    node, symbol=f"{registrar}:{name}",
                )
            else:
                seen[key] = (module, node)


@register_rule("REG002", "registry target not importable by name")
def check_nested_registration(module):
    # A class attribute is importable via the class, so only
    # function-local defs are unreachable — track function nesting, not
    # plain scope depth.
    yield from _check_function_local(module)


def _check_function_local(module):
    def visit(node, inside_function):
        for child in ast.iter_child_nodes(node):
            is_func = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_func or isinstance(child, ast.ClassDef):
                if inside_function:
                    for deco in child.decorator_list:
                        reg = _register_name(deco)
                        if reg:
                            registrar, name, _replace = reg
                            yield module.finding(
                                "REG002",
                                f"@{registrar} target {child.name!r} is "
                                f"defined inside a function: it is not "
                                f"importable by name, so a spec naming it "
                                f"cannot be rebuilt in a fresh process",
                                child,
                                symbol=f"{registrar}:{name or child.name}",
                            )
                yield from visit(child, inside_function or is_func)
            else:
                yield from visit(child, inside_function)

    yield from visit(module.tree, False)


def _scans_repro(modules):
    """True when the scan includes the live ``repro.campaign`` package."""
    return any(m.relpath.endswith("repro/campaign/registry.py")
               or m.relpath == "campaign/registry.py"
               for m in modules)


def _known_registries():
    """(label, registry) pairs, imported lazily at check time."""
    from repro.campaign.backends import BACKENDS
    from repro.campaign.registry import CORES, FUZZERS, TIMINGS
    from repro.coverage.layout import INSTRUMENTATIONS

    return [
        ("FUZZERS", FUZZERS),
        ("CORES", CORES),
        ("TIMINGS", TIMINGS),
        ("BACKENDS", BACKENDS),
        ("INSTRUMENTATIONS", INSTRUMENTATIONS),
    ]


def _importable(obj):
    """True if ``obj`` is reachable under module.qualname in a fresh import."""
    module_name = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module_name or not qualname or "<locals>" in qualname:
        return False
    try:
        target = importlib.import_module(module_name)
    except ImportError:
        return False
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            return False
    return target is obj


def _entry_payloads(entry):
    """Callables hiding inside a registry entry (plugin dataclass or raw)."""
    payloads = []
    for attr in ("factory", "cls", "build", "build_config", "builder"):
        value = getattr(entry, attr, None)
        if callable(value):
            payloads.append(value)
    if callable(entry):
        payloads.append(entry)
    return payloads


@register_rule("REG003", "registry entry not importable", scope="project")
def check_live_importability(modules):
    if not _scans_repro(modules):
        return
    anchor = next(m for m in modules
                  if m.relpath.endswith("campaign/registry.py"))
    for label, registry in _known_registries():
        for name in registry.names():
            entry = registry.get(name)
            payloads = _entry_payloads(entry)
            if not payloads:
                continue
            for payload in payloads:
                if isinstance(payload, type) or hasattr(payload, "__qualname__"):
                    if not _importable(payload):
                        yield Finding(
                            rule="REG003",
                            message=(
                                f"{label}[{name!r}] entry "
                                f"{getattr(payload, '__qualname__', payload)!r}"
                                f" is not importable by name; campaign specs "
                                f"naming it cannot be rebuilt in a fresh "
                                f"process"
                            ),
                            path=anchor.path,
                            line=1,
                            symbol=f"{label}:{name}",
                            relpath=anchor.relpath,
                        )
                    break


@register_rule("REG005", "spec not JSON-round-trippable", scope="project")
def check_spec_round_trip(modules):
    if not _scans_repro(modules):
        return
    anchor = next(m for m in modules
                  if m.relpath.endswith("campaign/registry.py"))

    def _finding(message, symbol):
        return Finding(
            rule="REG005", message=message, path=anchor.path, line=1,
            symbol=symbol, relpath=anchor.relpath,
        )

    from repro.campaign.registry import FUZZERS
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec(name="analyze-roundtrip-probe")
    try:
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    except (TypeError, ValueError, KeyError) as exc:
        yield _finding(
            f"CampaignSpec failed the to_dict -> json -> from_dict round "
            f"trip: {exc!r}", "CampaignSpec",
        )
    else:
        if rebuilt != spec:
            yield _finding(
                "CampaignSpec round trip is lossy: from_dict(to_dict(spec)) "
                "!= spec", "CampaignSpec",
            )

    for name in FUZZERS.names():
        plugin = FUZZERS.get(name)
        build_config = getattr(plugin, "build_config", None)
        if build_config is None:
            continue
        try:
            build_config({})
        except Exception as exc:  # noqa: BLE001 — report, don't crash the scan
            yield _finding(
                f"FUZZERS[{name!r}].build_config({{}}) raised {exc!r}: "
                f"fuzzer configs must be constructible from serialized "
                f"(dict) form", f"FUZZERS:{name}",
            )
