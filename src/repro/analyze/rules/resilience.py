"""RES — resilience lint for the campaign execution layer.

The fault-tolerance layer (:mod:`repro.campaign.resilience`, the
supervised queue backend) is exactly the kind of code where sloppy
error handling hides real failures: a swallowed exception turns a dead
worker into silent data loss, and an unbounded retry loop turns a
poison shard into a hung grid.  Modules under a ``campaign/`` path
segment are checked; everything else is out of scope.

* **RES001** — an ``except`` handler that catches a broad class (bare
  ``except``, ``Exception``, or ``BaseException``) and does nothing
  (body is only ``pass``/``...``): failures must be counted, logged,
  re-raised, or routed through the recovery path —
  ``contextlib.suppress`` states intent explicitly for narrow cases.
* **RES002** — a ``while True`` loop containing a ``try`` but no
  ``break``/``return``/``raise`` anywhere in the loop body: a retry
  loop with no attempt bound or exit path can spin forever; bound it
  with a retry budget (see ``FaultPolicy.max_retries``).
"""

import ast

from repro.analyze.engine import register_rule

_BROAD = frozenset({"Exception", "BaseException"})


def _enclosing_symbols(tree):
    """Map id(node) -> dotted symbol of the enclosing def/class."""
    symbols = {}

    def visit(node, stack):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack = stack + [node.name]
        for child in ast.iter_child_nodes(node):
            symbols[id(child)] = ".".join(stack)
            visit(child, stack)

    visit(tree, [])
    return symbols


def _in_scope(module):
    return "campaign" in module.path_segments


def _is_broad(handler_type):
    if handler_type is None:  # bare except
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD
    if isinstance(handler_type, ast.Attribute):
        return handler_type.attr in _BROAD
    return False


def _does_nothing(body):
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in body
    )


@register_rule("RES001", "swallowed broad exception in campaign code")
def check_swallowed_exceptions(module):
    if not _in_scope(module):
        return
    symbols = _enclosing_symbols(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _is_broad(node.type) and _does_nothing(node.body):
            caught = "bare except" if node.type is None else ast.unparse(node.type)
            yield module.finding(
                "RES001",
                f"{caught} handler silently swallows the failure; count it, "
                f"route it through the recovery path, or use "
                f"contextlib.suppress for a narrow class",
                node, symbol=symbols.get(id(node), ""),
            )


def _loop_exits(loop):
    """break/return/raise statements lexically inside the loop body,
    excluding nested function/class definitions (their control flow does
    not exit this loop) and nested loops' own breaks."""

    def walk(nodes, in_nested_loop):
        for stmt in nodes:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Break) and not in_nested_loop:
                return True
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return True
            nested = in_nested_loop or isinstance(stmt, (ast.For, ast.AsyncFor,
                                                         ast.While))
            for field in ast.iter_child_nodes(stmt):
                if walk([field], nested):
                    return True
        return False

    return walk(loop.body, False)


def _is_while_true(node):
    return (isinstance(node, ast.While)
            and isinstance(node.test, ast.Constant)
            and node.test.value is True)


@register_rule("RES002", "unbounded retry loop in campaign code")
def check_unbounded_retry(module):
    if not _in_scope(module):
        return
    symbols = _enclosing_symbols(module.tree)
    for node in ast.walk(module.tree):
        if not _is_while_true(node):
            continue
        has_try = any(isinstance(inner, ast.Try)
                      for stmt in node.body
                      for inner in ast.walk(stmt))
        if has_try and not _loop_exits(node):
            yield module.finding(
                "RES002",
                "while True retry loop with no break/return/raise: a "
                "persistent failure spins forever; bound attempts with a "
                "retry budget (FaultPolicy.max_retries)",
                node, symbol=symbols.get(id(node), ""),
            )
