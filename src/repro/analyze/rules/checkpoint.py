"""CHK — checkpoint-protocol auditor.

For every class implementing one of the two save/load protocol pairs —

* ``state_dict()`` / ``load_state()`` (PR 2; resume = fresh build +
  ``load_state``, no reset in between), and
* ``core_state_dict()`` / ``load_core_state()`` (PR 5; cross-iteration
  core state — ``reset()`` runs at the start of every iteration, so
  anything ``reset()`` rewrites is per-iteration and exempt)

statically cross-check the attributes the class mutates against what
the save method reads and the key sets the pair produces/consumes.
This is the lint-time answer to the BOOM-predictor incident: mutable
state that never appears in the save method is exactly "state that
doesn't travel".

Rules:

* **CHK001** — attribute mutated outside the protocol methods but never
  read in the save method: it will not survive a checkpoint/resume.
  Escape hatches: a class-level ``_checkpoint_transient = frozenset({...})``
  declaration (self-documenting runtime-only state), or — for the core
  pair only — being (re)assigned in ``reset()``.
* **CHK002** — key asymmetry: keys produced by the save method vs keys
  consumed by the load method (``state["k"]``, ``state.get("k")``).
* **CHK003** — one half of a protocol pair without the other.
* **CHK004** — stale ``_checkpoint_transient`` entry naming an
  attribute the class never touches.

The load half may also be a ``from_state`` classmethod (value-object
style: ``Seed.from_state``), which counts for pairing and key analysis.
"""

import ast

from repro.analyze.engine import register_rule

#: (save method, load methods, reset-exempt) — the two protocol pairs.
PROTOCOL_PAIRS = (
    ("state_dict", ("load_state", "from_state"), False),
    ("core_state_dict", ("load_core_state",), True),
)

#: Method calls on ``self.X`` that mutate the attribute in place.
MUTATOR_METHODS = frozenset({
    "append", "add", "clear", "update", "pop", "popleft", "extend",
    "insert", "setdefault", "discard", "remove", "appendleft",
})

TRANSIENT_DECL = "_checkpoint_transient"


def _self_attr(node):
    """Return the attribute name if ``node`` is ``self.X``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _attr_writes(func):
    """Attribute names mutated anywhere inside ``func``.

    Covers plain/aug/ann assignment to ``self.X``, stores through
    ``self.X[...]`` and ``self.X.Y``, and in-place mutator calls like
    ``self.X.append(...)``.
    """
    writes = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                writes.update(_store_targets(target))
        elif isinstance(node, ast.Call):
            callee = node.func
            if (isinstance(callee, ast.Attribute)
                    and callee.attr in MUTATOR_METHODS):
                name = _self_attr(callee.value)
                if name is None and isinstance(callee.value, ast.Subscript):
                    name = _self_attr(callee.value.value)
                if name:
                    writes.add(name)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            writes.update(_store_targets(node.target))
    return writes


def _store_targets(target):
    """Self-attributes stored into by one assignment target."""
    out = set()
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            out.update(_store_targets(element))
        return out
    if isinstance(target, ast.Starred):
        return _store_targets(target.value)
    name = _self_attr(target)
    if name:
        out.add(name)
        return out
    # self.X[...] = ... and self.X.Y = ... mutate self.X in place.
    if isinstance(target, (ast.Subscript, ast.Attribute)):
        name = _self_attr(target.value)
        if name:
            out.add(name)
    return out


def _attr_reads(func):
    """Attribute names loaded (``self.X`` in load context) inside ``func``."""
    reads = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            name = _self_attr(node)
            if name:
                reads.add(name)
    return reads


def _produced_keys(func):
    """String keys the save method emits.

    Dict-literal keys anywhere in the body, plus ``var["key"] = ...``
    subscript stores (the conditional-key pattern:
    ``state["triggered_bugs"] = ...``).  Returns (keys, opaque) where
    ``opaque`` means non-literal keys or ``**spread`` were seen, so key
    comparison would be unsound.
    """
    keys, opaque = set(), False
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is None:  # **spread
                    opaque = True
                elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
                else:
                    opaque = True
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                keys.add(sl.value)
            else:
                opaque = True
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name) and node.func.id == "dict"
                    and node.keywords):
                for kw in node.keywords:
                    if kw.arg is None:
                        opaque = True
                    else:
                        keys.add(kw.arg)
    return keys, opaque


def _consumed_keys(func):
    """String keys the load method consumes from its state argument.

    ``state["key"]`` subscript loads and ``state.get("key", ...)``
    calls, where ``state`` is the first non-self parameter.  Returns
    (keys, opaque); iterating the mapping itself (``state.items()``,
    ``**state``, passing ``state`` on whole) sets ``opaque``.
    """
    args = func.args.posonlyargs + func.args.args
    names = [arg.arg for arg in args if arg.arg not in ("self", "cls")]
    if not names:
        return set(), True
    state_name = names[0]
    keys, opaque = set(), False
    for node in ast.walk(func):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == state_name
                and isinstance(node.ctx, ast.Load)):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                keys.add(sl.value)
            else:
                opaque = True
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == state_name):
            if node.func.attr == "get" and node.args:
                key = node.args[0]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
                else:
                    opaque = True
            elif node.func.attr in ("items", "keys", "values", "pop"):
                opaque = True
    # Bare uses of the state mapping (passed on whole, iterated,
    # **-spread) make key analysis unsound; detect them with a
    # parent-aware pass since ast.walk has no parent links.  A literal
    # membership test (``"k" in state``) is key consumption, not a
    # bare use.
    for parent in ast.walk(func):
        if (isinstance(parent, ast.Compare)
                and all(isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops)
                and any(isinstance(c, ast.Name) and c.id == state_name
                        for c in parent.comparators)):
            left = parent.left
            if isinstance(left, ast.Constant) and isinstance(left.value, str):
                keys.add(left.value)
            else:
                opaque = True
            continue
        for child in ast.iter_child_nodes(parent):
            if (isinstance(child, ast.Name) and child.id == state_name
                    and isinstance(child.ctx, ast.Load)
                    and not isinstance(parent, (ast.Subscript, ast.Attribute))):
                opaque = True
    return keys, opaque


def _transient_decl(cls):
    """The literal ``_checkpoint_transient`` set, or None."""
    for stmt in cls.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
            value = stmt.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == TRANSIENT_DECL):
            continue
        names = set()
        for node in ast.walk(value):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
        return names, stmt
    return None


def _methods(cls):
    out = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[stmt.name] = stmt
    return out


def _audit_class(module, cls):
    methods = _methods(cls)
    transient = _transient_decl(cls)
    transient_names = transient[0] if transient else set()
    all_touched = set()
    audited = False

    for save_name, load_names, reset_exempt in PROTOCOL_PAIRS:
        save = methods.get(save_name)
        load = next((methods[n] for n in load_names if n in methods), None)
        if save is None and load is None:
            continue
        audited = True
        qual = f"{cls.name}.{save_name}" if save else f"{cls.name}.{load.name}"

        # CHK003 — missing half.
        if save is None:
            yield module.finding(
                "CHK003",
                f"class {cls.name} implements {load.name}() but not "
                f"{save_name}(): state can be loaded but never saved",
                load, symbol=qual,
            )
            continue
        if load is None:
            yield module.finding(
                "CHK003",
                f"class {cls.name} implements {save_name}() but no matching "
                f"load method ({' or '.join(load_names)}): state is saved "
                f"but can never be restored",
                save, symbol=qual,
            )

        # CHK001 — mutable state that does not travel.
        exempt_methods = {"__init__", save_name, *load_names}
        if reset_exempt and "reset" in methods:
            exempt_methods.add("reset")
        reset_writes = (
            _attr_writes(methods["reset"])
            if reset_exempt and "reset" in methods else set()
        )
        save_reads = _attr_reads(save)
        for name, func in methods.items():
            if name in exempt_methods:
                continue
            for attr in sorted(_attr_writes(func)):
                all_touched.add(attr)
                if attr in save_reads:
                    continue
                if attr in transient_names:
                    continue
                if attr in reset_writes:
                    continue
                if attr.startswith("__"):
                    continue
                yield module.finding(
                    "CHK001",
                    f"attribute self.{attr} is mutated in {cls.name}.{name}() "
                    f"but never read in {save_name}(): it will not survive a "
                    f"checkpoint/resume (declare it in {TRANSIENT_DECL} if "
                    f"runtime-only)",
                    func, symbol=f"{cls.name}.{attr}",
                )

        # CHK002 — produced/consumed key asymmetry.
        if load is not None:
            produced, p_opaque = _produced_keys(save)
            consumed, c_opaque = _consumed_keys(load)
            if not p_opaque and not c_opaque:
                for key in sorted(produced - consumed):
                    yield module.finding(
                        "CHK002",
                        f"key {key!r} is produced by {cls.name}.{save_name}() "
                        f"but never consumed by {load.name}()",
                        save, symbol=f"{cls.name}[{key}]",
                    )
                for key in sorted(consumed - produced):
                    yield module.finding(
                        "CHK002",
                        f"key {key!r} is consumed by {cls.name}.{load.name}() "
                        f"but never produced by {save_name}()",
                        load, symbol=f"{cls.name}[{key}]",
                    )

    # CHK004 — stale transient declarations.
    if audited and transient:
        names, stmt = transient
        for name, func in _methods(cls).items():
            all_touched.update(_attr_writes(func))
            all_touched.update(_attr_reads(func))
        for name in sorted(names - all_touched):
            yield module.finding(
                "CHK004",
                f"{TRANSIENT_DECL} names self.{name} but {cls.name} never "
                f"touches that attribute: stale declaration",
                stmt, symbol=f"{cls.name}.{name}",
            )


@register_rule("CHK001", "mutable attribute absent from state_dict")
def check_untracked_state(module):
    yield from _run_family(module, ("CHK001",))


@register_rule("CHK002", "state_dict/load_state key asymmetry")
def check_key_asymmetry(module):
    yield from _run_family(module, ("CHK002",))


@register_rule("CHK003", "unpaired save/load protocol half")
def check_unpaired(module):
    yield from _run_family(module, ("CHK003",))


@register_rule("CHK004", "stale _checkpoint_transient declaration")
def check_stale_transient(module):
    yield from _run_family(module, ("CHK004",))


def _run_family(module, rule_ids):
    """Run the whole-class audit once per class, filter to ``rule_ids``.

    The audit is cheap (pure AST walks), so re-running it per rule keeps
    each rule independently selectable without a shared-cache layer.
    """
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            for finding in _audit_class(module, node):
                if finding.rule in rule_ids:
                    yield finding
