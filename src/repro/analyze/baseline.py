"""Accepted-findings baseline: ``.analyze-baseline.json``.

The baseline records fingerprints (``rule::relpath::symbol``) of
findings the team has explicitly accepted, so ``check`` fails only on
*new* findings.  Fingerprints deliberately omit line numbers — moving
code around does not invalidate an acceptance; renaming the symbol or
fixing the finding does.  The file is committed and updated via
``python -m repro.analyze update-baseline``.
"""

import json
import os

BASELINE_FILENAME = ".analyze-baseline.json"
_SCHEMA_VERSION = 1


def load_baseline(path):
    """Fingerprint set from ``path``; empty set if the file is absent."""
    if path is None or not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema {data.get('schema')!r} in {path} "
            f"(expected {_SCHEMA_VERSION})"
        )
    return set(data.get("accepted", ()))


def save_baseline(findings, path):
    """Write the fingerprints of ``findings`` as the new baseline."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "accepted": sorted({f.fingerprint for f in findings}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def split_by_baseline(findings, accepted):
    """(new, baselined) partition of ``findings`` against ``accepted``."""
    new, baselined = [], []
    for finding in findings:
        (baselined if finding.fingerprint in accepted else new).append(finding)
    return new, baselined
