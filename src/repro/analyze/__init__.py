"""repro.analyze — invariant-enforcing static analysis.

The repo's three load-bearing invariants — bit-identical checkpoint
resume, bit-identical hot-path semantics, and registry-driven
pluggability — were historically enforced only at runtime, and the PR-5
BOOM-predictor incident (cross-iteration state silently absent from
``core_state_dict()`` for three PRs) showed that runtime tests alone let
whole bug classes ship.  This package is the lint-time complement: a
custom AST/introspection rule engine with four rule families,

* **checkpoint** (``CHK*``) — audits every ``state_dict()`` /
  ``load_state()`` (and ``core_state_dict()`` / ``load_core_state()``)
  implementation: mutable attributes that do not travel, asymmetric
  save/load key sets, missing protocol halves, stale transient
  declarations;
* **determinism** (``DET*``) — forbids wall-clock, stdlib ``random``,
  ``id()``-keyed lookups, set-iteration feeding ordered output, and
  environment-dependent behaviour inside the reproducible path
  (``ref/``, ``dut/``, ``fuzzer/``, ``coverage/``, ``campaign/``);
* **hotpath** (``HOT*``) — functions marked :func:`hot_path` must stay
  free of per-call allocations (comprehensions, collection displays and
  constructors, closures, f-strings, try/except control flow);
* **registry** (``REG*``) — every ``@register_*`` target importable and
  top-level, names unique, spec/config classes JSON-round-trippable.

Use as a library (:func:`analyze_paths`) or via the CLI::

    python -m repro.analyze check src/
    python -m repro.analyze report --select HOT --json src/

Findings are suppressed inline with ``# analyze: ignore[RULE] reason``
(same line or the line above) or accepted wholesale in the committed
baseline file ``.analyze-baseline.json`` (see ``docs/ANALYSIS.md``).
"""

from repro.analyze.baseline import (
    BASELINE_FILENAME,
    load_baseline,
    save_baseline,
    split_by_baseline,
)
from repro.analyze.engine import (
    RULES,
    Rule,
    SourceModule,
    analyze_paths,
    collect_modules,
    register_rule,
    rule_catalog,
)
from repro.analyze.findings import Finding
from repro.analyze.markers import hot_path

__all__ = [
    "BASELINE_FILENAME",
    "Finding",
    "RULES",
    "Rule",
    "SourceModule",
    "analyze_paths",
    "collect_modules",
    "hot_path",
    "load_baseline",
    "register_rule",
    "rule_catalog",
    "save_baseline",
    "split_by_baseline",
]
