"""Rule engine: source loading, suppression parsing, rule dispatch.

A *rule* is a callable ``rule(module) -> iterable[Finding]`` for
per-module rules, or ``rule(modules) -> iterable[Finding]`` for
project-scope rules (``scope="project"``) that need to see the whole
scanned tree at once (e.g. cross-file registry-name collisions).  Rules
register themselves in the :data:`RULES` registry — the same generic
``Registry`` that backs fuzzers, cores, and backends — via
:func:`register_rule`, so adding a rule is declaring a function.

Suppressions are inline comments::

    rng = random.Random(self.seed)  # analyze: ignore[DET002] seeded, deterministic

    # analyze: ignore[HOT005] trap dispatch is the cold branch
    try:

A suppression applies to findings on its own line or the line directly
below (so it can sit above a long statement).  ``ignore[*]`` suppresses
every rule on that line.  Project-wide acceptance of pre-existing
findings lives in ``.analyze-baseline.json`` (see
:mod:`repro.analyze.baseline`), not here.
"""

import ast
import io
import os
import re
import tokenize

from repro.analyze.findings import Finding
from repro.registry import Registry

RULES = Registry("analyze rule")

_SUPPRESS_RE = re.compile(r"analyze:\s*ignore\[([^\]]*)\]")

#: Path segments that put a module on the "reproducible path" — the DET
#: rules only fire inside these packages.
REPRODUCIBLE_SEGMENTS = frozenset(
    {"ref", "dut", "fuzzer", "coverage", "campaign"}
)


class Rule:
    """A registered rule: id, summary, family, scope, and the check."""

    __slots__ = ("rule_id", "summary", "scope", "check")

    def __init__(self, rule_id, summary, scope, check):
        self.rule_id = rule_id
        self.summary = summary
        self.scope = scope
        self.check = check

    @property
    def family(self):
        return self.rule_id.rstrip("0123456789")


def register_rule(rule_id, summary, scope="module"):
    """Decorator: register ``check`` under ``rule_id`` in :data:`RULES`."""
    if scope not in ("module", "project"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def deco(check):
        RULES.register(rule_id, Rule(rule_id, summary, scope, check))
        return check

    return deco


def rule_catalog():
    """All registered rules, sorted by id."""
    _load_builtin_rules()
    return [RULES.get(rule_id) for rule_id in RULES.names()]


class SourceModule:
    """A parsed source file plus everything rules need to know about it."""

    def __init__(self, path, source, root=None):
        self.path = os.path.abspath(path)
        self.source = source
        self.root = os.path.abspath(root) if root else None
        if self.root:
            self.relpath = os.path.relpath(self.path, self.root).replace(os.sep, "/")
        else:
            self.relpath = os.path.basename(self.path)
        self.tree = ast.parse(source, filename=path)
        self.suppressions = _parse_suppressions(source)
        parts = self.relpath.split("/")
        self.path_segments = frozenset(parts[:-1])
        self.on_reproducible_path = bool(
            self.path_segments & REPRODUCIBLE_SEGMENTS
        )

    def is_suppressed(self, rule_id, line):
        """True if ``rule_id`` is suppressed at ``line`` (same line or above)."""
        for probe in (line, line - 1):
            rules = self.suppressions.get(probe)
            if rules is not None and ("*" in rules or rule_id in rules):
                return True
        return False

    def finding(self, rule_id, message, node, symbol=""):
        return Finding(
            rule=rule_id,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            symbol=symbol,
            relpath=self.relpath,
        )


def _parse_suppressions(source):
    """Map line number -> set of suppressed rule ids (or {"*"})."""
    suppressions = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            } or {"*"}
            suppressions.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return suppressions


def collect_modules(paths, root=None):
    """Parse every ``.py`` file under ``paths`` into ``SourceModule``s.

    ``root`` anchors relative paths (and therefore baseline
    fingerprints); it defaults to the common parent of ``paths``.
    Unparseable files yield a synthetic E001 finding instead of
    aborting the whole scan.
    """
    files = []
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__", ".git", ".hypothesis")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    if root is None:
        root = _common_root(files)
    modules, errors = [], []
    for path in files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        try:
            modules.append(SourceModule(path, source, root=root))
        except SyntaxError as exc:
            errors.append(Finding(
                rule="E001",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                relpath=os.path.relpath(path, root).replace(os.sep, "/"),
            ))
    return modules, errors


def _common_root(files):
    if not files:
        return os.getcwd()
    root = os.path.commonpath([os.path.dirname(f) for f in files] or [os.getcwd()])
    return root or os.getcwd()


def _selected(rule, select, ignore):
    rid = rule.rule_id
    if select:
        if not any(rid.startswith(prefix) for prefix in select):
            return False
    if ignore:
        if any(rid.startswith(prefix) for prefix in ignore):
            return False
    return True


def analyze_paths(paths, select=None, ignore=None, root=None):
    """Run every selected rule over every module under ``paths``.

    ``select``/``ignore`` are sequences of rule-id prefixes ("CHK",
    "HOT002", ...); select narrows first, then ignore drops.  Returns a
    sorted list of :class:`Finding` (inline suppressions already
    applied; baseline filtering is the caller's job).
    """
    _load_builtin_rules()
    modules, findings = collect_modules(paths, root=root)
    rules = [RULES.get(rule_id) for rule_id in RULES.names()]
    rules = [rule for rule in rules if _selected(rule, select, ignore)]

    for rule in rules:
        if rule.scope == "project":
            findings.extend(rule.check(modules))
        else:
            for module in modules:
                findings.extend(rule.check(module))

    kept = []
    by_path = {module.path: module for module in modules}
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept


_BUILTINS_LOADED = False


def _load_builtin_rules():
    """Import the rule modules exactly once (they self-register)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.analyze.rules import (  # noqa: F401
        checkpoint,
        determinism,
        hotpath,
        registry_hygiene,
        resilience,
    )
