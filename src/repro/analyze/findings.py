"""The ``Finding`` model shared by every rule, the CLI, and the baseline."""

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one location.

    ``fingerprint`` identifies the finding across line-number churn —
    it hashes the rule, the file (repo-relative when known), and the
    enclosing symbol rather than the line — so baselines survive
    unrelated edits to the same file.
    """

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    symbol: str = ""
    relpath: str = field(default="", compare=False)

    @property
    def fingerprint(self):
        where = self.relpath or self.path
        return f"{self.rule}::{where}::{self.symbol}"

    def to_dict(self):
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.relpath or self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def format(self):
        where = self.relpath or self.path
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}:{self.line}:{self.col}: {self.rule}{sym} {self.message}"

    def sort_key(self):
        return (self.relpath or self.path, self.line, self.col, self.rule)
