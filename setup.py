"""Setup shim so editable installs work without the `wheel` package.

The sandboxed environment has no network access and an old setuptools that
cannot build PEP-517 editable wheels; `python setup.py develop` (or
`pip install -e . --no-build-isolation` on newer toolchains) both work via
this shim.
"""

from setuptools import setup

setup()
