#!/usr/bin/env python3
"""deepExplore: the hybrid direct-test + fuzzing campaign (paper Section V).

Stage 1 profiles synthetic coremark/dhrystone/microbench programs on the
DUT, extracts SimPoint-representative intervals, and plants them as corpus
seeds with reconstructed initialization contexts.  Stage 2 fuzzes over the
enriched corpus.  The script compares the final coverage against a pure
fuzzing campaign with the same virtual-time budget; both sessions come
from one :class:`~repro.campaign.CampaignSpec` and share an
instrumentation cache, so the Rocket netlist is instrumented once.
"""

from repro.campaign import CampaignSpec, InstrumentationCache, build_session
from repro.deepexplore import DeepExplore, DeepExploreConfig
from repro.workloads import all_workloads

SPEC = CampaignSpec(core="rocket").with_fuzzer(
    "turbofuzz", instructions_per_iteration=1000
)


def main():
    cache = InstrumentationCache()

    # Pure fuzzing reference.
    fuzz_session = build_session(SPEC.named("fuzz_only"), cache=cache)
    fuzz_session.run_iterations(150)
    budget = fuzz_session.clock.seconds
    print(f"pure fuzzing: {fuzz_session.coverage_total} points in "
          f"{budget * 1e3:.1f} virtual ms")

    # deepExplore.
    session = build_session(SPEC.named("deepexplore"), cache=cache)
    explorer = DeepExplore(session, DeepExploreConfig(
        interval_length=800, clusters=6, profile_cap=40_000,
        refine_rounds=2))

    reports = explorer.run_stage1(all_workloads(scale=1))
    print("\nstage 1 (SimPoint interval extraction):")
    for report in reports:
        print(f"  {report.workload:10s}: {report.intervals} intervals -> "
              f"{report.simpoints} simpoints, {report.marked} marked, "
              f"coverage now {report.coverage_after}")

    rounds = explorer.refine_marked_seeds()
    print(f"stage 1.5: init-state refinement ran {rounds} rounds")
    interval_seeds = [seed for seed in session.fuzzer.corpus.seeds
                      if seed.origin == "interval"]
    print(f"  corpus now holds {len(interval_seeds)} interval seeds")

    explorer.run_stage2(budget)
    print(f"\nstage 2 (fuzzing over the enriched corpus) done at "
          f"{session.clock.seconds * 1e3:.1f} virtual ms")
    print(f"deepExplore: {session.coverage_total} points")
    ratio = session.coverage_total / max(1, fuzz_session.coverage_total)
    print(f"vs pure fuzzing: {ratio:.3f}x   (paper: +2.6% at the 1h scale)")
    print(f"instrumentation cache: {cache.stats}")


if __name__ == "__main__":
    main()
