#!/usr/bin/env python3
"""Hardware-snapshot debugging workflow (paper Section III).

Fuzz a buggy BOOM until the checker halts — observed through the campaign
event bus's ``mismatch`` event — capture the full design state, serialize
it (the FPGA-readback-to-host transfer), restore it into a fresh core, and
replay the run deterministically — the StateMover-style offline analysis
loop TurboFuzz automates.
"""

from repro.campaign import CampaignSpec, build_session
from repro.dut import make_core
from repro.harness import HardwareSnapshot


def main():
    spec = (
        CampaignSpec(core="boom", bugs=("B2",))  # invalid frm accepted
        .with_checking(with_ref=True, capture_snapshots=True)
        .with_fuzzer("turbofuzz", instructions_per_iteration=800)
    )
    session = build_session(spec)

    @session.bus.on_mismatch
    def triage(session, outcome, mismatch, snapshot):
        print(f"  [bus] divergence at iteration {outcome.index}: "
              f"{mismatch.describe()}")

    seconds, mismatch = session.run_until_mismatch(max_iterations=200)
    print(f"mismatch after {seconds:.3f} virtual s:")
    print(f"  {mismatch.describe()}")

    snapshot = HardwareSnapshot.capture(session.core,
                                        annotation=mismatch.describe())
    blob = snapshot.to_bytes()
    print(f"\nsnapshot captured: {len(blob):,} bytes serialized "
          f"({snapshot.resident_memory_bytes:,} bytes of design memory)")
    print(f"  cycles={snapshot.cycles:.0f} retired={snapshot.retired}")
    print(f"  coverage at capture: {snapshot.coverage_counts}")

    # Host-side restore into a fresh core (the offline simulator stand-in).
    replay_core = make_core("boom", bugs=("B2",))
    HardwareSnapshot.from_bytes(blob).restore(replay_core)
    print("\nreplaying 5 instructions from the snapshot point:")
    for _ in range(5):
        record = replay_core.step()
        from repro.isa.disasm import disassemble

        print(f"  {record.pc:#010x}: {disassemble(record.word)}")


if __name__ == "__main__":
    main()
