#!/usr/bin/env python3
"""Bug hunt: inject a Table II bug into CVA6 and catch it two ways.

1. TurboFuzz with instruction-level lockstep checking (ENCORE-style):
   the campaign halts at the exact instruction where DUT and REF diverge
   and captures a hardware snapshot for offline debugging.
2. The DifuzzRTL software baseline on the same DUT, for the Table II
   acceleration-ratio comparison.

Both campaigns are declared as :class:`~repro.campaign.CampaignSpec`
variants of one base spec and share an instrumentation cache.
"""

from repro.campaign import CampaignSpec, InstrumentationCache, build_session
from repro.dut import BUGS_BY_ID

BUG_ID = "C1"  # incorrect DZ flag for 0/0 division
BASE = CampaignSpec(core="cva6", bugs=(BUG_ID,))


def main():
    bug = BUGS_BY_ID[BUG_ID]
    print(f"hunting {BUG_ID}: {bug.description}")
    print(f"(paper: SW {bug.sw_time_s:.1f} s, HW {bug.hw_time_s:.2f} s, "
          f"{bug.sw_time_s / bug.hw_time_s:.1f}x)")
    print()
    cache = InstrumentationCache()

    # --- TurboFuzz with full lockstep checking + snapshots ---------------
    session = build_session(
        BASE.named("turbofuzz")
        .with_checking(with_ref=True, capture_snapshots=True)
        .with_fuzzer("turbofuzz", instructions_per_iteration=1000),
        cache=cache,
    )
    seconds, mismatch = session.run_until_mismatch(max_iterations=300)
    print(f"TurboFuzz: divergence after {session.iterations} iterations, "
          f"{seconds:.3f} virtual s")
    print(f"  {mismatch.describe()}")
    last = session.history[-1]
    print(f"  coverage at detection: {last.coverage_total}")

    # --- DifuzzRTL baseline ----------------------------------------------
    sw_session = build_session(
        BASE.named("difuzzrtl").with_fuzzer("difuzzrtl"), cache=cache
    )
    sw_seconds = sw_session.run_until_bug_triggered(
        BUG_ID, max_iterations=3000, coarse_detection=(1, 2))
    if sw_seconds is None:
        print("DifuzzRTL: bug not detected within the iteration budget")
    else:
        print(f"DifuzzRTL: detected after {sw_session.iterations} "
              f"iterations, {sw_seconds:.1f} virtual s")
        print(f"  acceleration ratio: {sw_seconds / seconds:.1f}x")


if __name__ == "__main__":
    main()
