#!/usr/bin/env python3
"""Coverage instrumentation deep dive (paper Section VI).

Runs the control-register extraction pass over the Rocket netlist, builds
both the legacy (random-shift XOR) and optimized (sequential rollback)
layouts at the paper's three instrumentation widths, and prints the exact
instrumented-vs-achievable analysis behind Fig. 6 — plus the per-module
feedback weighting mechanism.
"""

from repro.coverage import (
    FeedbackWeights,
    design_reachability,
    instrument_design,
)
from repro.dut import RocketCore
from repro.rtl.netlist import control_registers


def main():
    core = RocketCore()

    print("control-register extraction (mux select trace-back):")
    for module in core.top.walk():
        registers = control_registers(module, recursive=False)
        if registers:
            bits = sum(register.width for register in registers)
            print(f"  {module.path:22s} {len(registers):2d} registers, "
                  f"{bits:3d} bits")

    print("\ninstrumented vs achievable (Fig. 6):")
    for bits in (13, 14, 15):
        for style in ("legacy", "optimized"):
            design = instrument_design(core.top, style=style,
                                       max_state_size=bits, seed=7)
            report = design_reachability(design)
            print(f"  {style:9s} @{bits}-bit: "
                  f"{report['achievable']:>7d}/{report['instrumented']:>7d} "
                  f"achievable ({report['fraction']:.1%})")

    print("\nper-module weighting (the auxiliary N_cov shift):")
    weights = FeedbackWeights.attenuate_arithmetic()
    counts = {"MulDiv": 800, "FPU": 400, "CSRFile": 90, "Execute": 300}
    for name, count in counts.items():
        print(f"  {name:8s} raw N_cov={count:>4d} -> weighted "
              f"{weights.weighted(name, count):>4d} "
              f"(shift {weights.shift_for(name):+d})")
    print(f"  feedback total: raw={sum(counts.values())} "
          f"weighted={weights.weighted_total(counts)}")


if __name__ == "__main__":
    main()
