#!/usr/bin/env python3
"""Quickstart: fuzz the Rocket core for a few hundred iterations.

Builds a TurboFuzz session (Rocket DUT + optimized 15-bit register-coverage
instrumentation + the hardware-timing model), runs a short campaign, and
prints the coverage trajectory and fuzzer statistics.
"""

from repro.fuzzer import TurboFuzzConfig
from repro.harness import FuzzSession, SessionConfig


def main():
    config = SessionConfig(
        core="rocket",
        instrument_style="optimized",
        max_state_size=15,
        fuzzer_config=TurboFuzzConfig(instructions_per_iteration=1000),
    )
    session = FuzzSession(config)

    print("fuzzing Rocket (1000 instructions/iteration)...")
    for index in range(60):
        outcome = session.run_iteration()
        if index % 10 == 0:
            print(
                f"  iter {index:3d}: coverage={outcome.coverage_total:>7d} "
                f"(+{outcome.new_coverage}) prevalence="
                f"{outcome.prevalence:.3f} virtual t="
                f"{outcome.virtual_seconds * 1e3:7.1f} ms"
            )

    print()
    print(f"total coverage points: {session.coverage_total}")
    print("coverage by module:")
    for name, count in session.coverage.counts_by_module().items():
        print(f"  {name:10s} {count:>7d}")
    print()
    stats = session.fuzzer.stats
    print(f"fuzzing speed: {session.iteration_rate_hz():.1f} Hz (virtual)")
    print(f"executed instructions/s: {session.executed_per_second():,.0f}")
    print(f"corpus: {len(session.fuzzer.corpus)} seeds "
          f"({stats.seeds_added} added)")
    print(f"blocks: {stats.blocks_generated} generated, "
          f"{stats.blocks_retained} retained, "
          f"{stats.blocks_deleted} deleted")


if __name__ == "__main__":
    main()
