#!/usr/bin/env python3
"""Quickstart: fuzz the Rocket core for a few hundred iterations.

Declares the campaign as a :class:`~repro.campaign.CampaignSpec` (Rocket
DUT + optimized 15-bit register-coverage instrumentation + the hardware
timing model), subscribes a progress observer on the session's event bus,
runs a short campaign, and prints the coverage trajectory and fuzzer
statistics.
"""

from repro.campaign import CampaignSpec, build_session


def main():
    spec = (
        CampaignSpec(core="rocket")
        .named("quickstart")
        .with_instrumentation(style="optimized", max_state_size=15)
        .with_fuzzer("turbofuzz", instructions_per_iteration=1000)
    )
    session = build_session(spec)

    @session.bus.on_iteration
    def progress(session, iteration, result, outcome):
        if outcome.index % 10 == 0:
            print(
                f"  iter {outcome.index:3d}: "
                f"coverage={outcome.coverage_total:>7d} "
                f"(+{outcome.new_coverage}) prevalence="
                f"{outcome.prevalence:.3f} virtual t="
                f"{outcome.virtual_seconds * 1e3:7.1f} ms"
            )

    print("fuzzing Rocket (1000 instructions/iteration)...")
    session.run_iterations(60)

    print()
    print(f"total coverage points: {session.coverage_total}")
    print("coverage by module:")
    for name, count in session.coverage.counts_by_module().items():
        print(f"  {name:10s} {count:>7d}")
    print()
    stats = session.fuzzer.stats
    print(f"fuzzing speed: {session.iteration_rate_hz():.1f} Hz (virtual)")
    print(f"executed instructions/s: {session.executed_per_second():,.0f}")
    print(f"corpus: {len(session.fuzzer.corpus)} seeds "
          f"({stats.seeds_added} added)")
    print(f"blocks: {stats.blocks_generated} generated, "
          f"{stats.blocks_retained} retained, "
          f"{stats.blocks_deleted} deleted")


if __name__ == "__main__":
    main()
