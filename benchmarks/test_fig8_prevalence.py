"""Fig. 8 — prevalence comparison across fuzzers."""

from benchmarks.conftest import persist, print_header, scaled
from repro.harness import experiments as ex


def test_fig8_prevalence(benchmark):
    iterations = scaled(10, 40)
    result = benchmark.pedantic(
        ex.fig8_prevalence, kwargs={"iterations": iterations},
        rounds=1, iterations=1,
    )
    persist("fig8", result)
    print_header("Fig. 8: prevalence (fuzzing / executed instructions)")
    paper = {
        "difuzzrtl": "< 0.20",
        "cascade": "0.93 (0.72-0.98)",
        "turbofuzz_1000": "~0.96",
        "turbofuzz_4000": "0.97 (0.96-0.97)",
    }
    for name, stats in result.items():
        print(f"{name:16s} mean={stats['mean']:.3f} "
              f"range=({stats['min']:.3f}, {stats['max']:.3f})"
              f"   (paper {paper[name]})")
    assert result["difuzzrtl"]["mean"] < 0.2
    assert result["cascade"]["mean"] > 0.85
    assert result["turbofuzz_4000"]["mean"] > 0.93
