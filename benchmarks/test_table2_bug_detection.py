"""Table II — bug identification performance (time-to-trigger, HW vs SW).

The default scale runs the five fast-triggering bugs; ``TURBOFUZZ_SCALE=full``
runs all thirteen (the FP corner-case bugs need thousands of software-fuzzer
iterations to trigger, exactly as the paper's hour-scale SW times suggest).
"""

from benchmarks.conftest import persist, print_header, scaled
from repro.harness import experiments as ex

FAST_BUGS = ("C1", "C5", "C7", "C10", "R1")
ALL_BUGS = ("C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10",
            "B1", "B2", "R1")


def test_table2_bug_detection(benchmark):
    bug_ids = scaled(FAST_BUGS, ALL_BUGS)
    result = benchmark.pedantic(
        ex.table2_bug_detection,
        kwargs={
            "bug_ids": bug_ids,
            "hw_max_iterations": scaled(300, 2000),
            "sw_max_iterations": scaled(6000, 40_000),
        },
        rounds=1, iterations=1,
    )
    persist("table2", result)
    print_header("Table II: bug identification performance")
    print(f"{'bug':5s} {'HW (s)':>8s} {'SW (s)':>9s} {'ratio':>8s} "
          f"{'paper HW':>9s} {'paper SW':>9s} {'paper ratio':>12s}")
    detected = 0
    for bug_id, row in result["bugs"].items():
        hw = f"{row['hw_seconds']:.2f}" if row["hw_seconds"] else "miss"
        sw = f"{row['sw_seconds']:.2f}" if row["sw_seconds"] else "miss"
        ratio = f"{row['acceleration']:.1f}x" if row["acceleration"] else "-"
        print(f"{bug_id:5s} {hw:>8s} {sw:>9s} {ratio:>8s} "
              f"{row['paper_hw_seconds']:9.2f} {row['paper_sw_seconds']:9.2f} "
              f"{row['paper_acceleration']:11.1f}x")
        if row["acceleration"]:
            detected += 1
    print(f"geomean acceleration (detected): "
          f"{result['geomean_acceleration']:.1f}x"
          f"   (paper geomeans: 194x CVA6, 317.7x BOOM)")
    # Shape: TurboFuzz finds every bug it attempts; software detection is
    # at least an order of magnitude slower wherever it succeeds.
    for bug_id, row in result["bugs"].items():
        assert row["hw_seconds"] is not None, f"{bug_id} missed by TurboFuzz"
    assert detected >= len(bug_ids) // 2
    assert result["geomean_acceleration"] > 5
