"""Fig. 9 — coverage-increment corpus scheduling vs FIFO."""

from benchmarks.conftest import persist, print_header, scaled
from repro.harness import experiments as ex


def test_fig9_corpus_scheduling(benchmark):
    iterations = scaled(200, 800)
    result = benchmark.pedantic(
        ex.fig9_corpus_scheduling, kwargs={"iterations": iterations},
        rounds=1, iterations=1,
    )
    persist("fig9", result)
    print_header("Fig. 9: corpus scheduling (coverage-increment vs FIFO)")
    finals = result["final_coverage"]
    print(f"coverage policy final: {finals['coverage']}")
    print(f"FIFO policy final:     {finals['fifo']}")
    print(f"improvement: {result['improvement']:+.2%}   (paper: +7.5% @ 1h)")
    print(f"time-to-target speedup: {result['time_to_target_speedup']}"
          f"   (paper: 17.7x to 27500 points)")
    print("NOTE: at this scaled-down budget the policies differ by a few "
          "percent at most; see EXPERIMENTS.md for the scale caveat.")
    # Shape assertion: the coverage policy is not *worse* beyond noise.
    assert finals["coverage"] > finals["fifo"] * 0.97
