"""Table III — FPGA resource usage."""

from benchmarks.conftest import print_header
from repro.harness import experiments as ex

PAPER = {
    "dut": (308_739, 20, 170_400),
    "fuzzer_ip": (67_523, 176, 91_445),
    "turbofuzz": (89_394, 227, 139_477),
    "ila_config1": (8_142, 465, 14_294),
    "ila_config2": (10_078, 578, 17_322),
}


def test_table3_area(benchmark):
    report = benchmark.pedantic(ex.table3_area, rounds=1, iterations=1)
    print_header("Table III: resource usage (LUTs / BRAM36 / registers)")
    for row in ("dut", "fuzzer_ip", "turbofuzz", "ila_config1", "ila_config2"):
        estimate = report[row]
        paper = PAPER[row]
        print(f"{row:12s} {estimate.luts:>8d}/{estimate.brams:>4d}/"
              f"{estimate.registers:>8d}   paper {paper[0]:>8d}/{paper[1]:>4d}/"
              f"{paper[2]:>8d}")
    print(f"ILA/TurboFuzz BRAM ratios: {report['ila1_bram_ratio']:.2f}x, "
          f"{report['ila2_bram_ratio']:.2f}x   (paper: 2.05x, 2.55x)")
    for row in ("dut", "fuzzer_ip", "turbofuzz"):
        estimate, paper = report[row], PAPER[row]
        assert abs(estimate.luts - paper[0]) / paper[0] < 0.15, row
        assert abs(estimate.brams - paper[1]) <= max(3, paper[1] * 0.1), row
        assert abs(estimate.registers - paper[2]) / paper[2] < 0.15, row
    assert abs(report["ila1_bram_ratio"] - 2.05) < 0.15
    assert abs(report["ila2_bram_ratio"] - 2.55) < 0.15
