"""Fig. 10 — deepExplore vs pure fuzzing vs benchmark-only execution."""

from benchmarks.conftest import persist, print_header, scaled
from repro.harness import experiments as ex


def test_fig10_deepexplore(benchmark):
    iterations = scaled(80, 400)
    result = benchmark.pedantic(
        ex.fig10_deepexplore, kwargs={"fuzz_iterations": iterations},
        rounds=1, iterations=1,
    )
    persist("fig10", result)
    print_header("Fig. 10: deepExplore coverage convergence")
    final = result["final"]
    print(f"deepExplore final:    {final['deepexplore']}")
    print(f"pure fuzzing final:   {final['fuzz_only']}")
    print(f"benchmark-only final: {final['benchmark_only']}")
    print(f"gain vs benchmarks: {result['gain_vs_benchmarks']:.2f}x"
          f"   (paper: up to 1.67x)")
    print(f"gain vs pure fuzzing: {result['gain_vs_fuzz_only']:.3f}x"
          f"   (paper: +2.6%)")
    crossover = result["crossover_seconds"]
    print(f"crossover (deepExplore overtakes fuzz-only): "
          f"{crossover if crossover else 'n/a'} virtual s   (paper: ~22 s)")
    # Shapes: fuzzing beats benchmark-only by a wide margin; deepExplore
    # ends in the same band as pure fuzzing (its +2.6% edge appears near
    # convergence — billions of instructions; see EXPERIMENTS.md, which
    # records the 0.85-1.0x band measured at this scale).
    assert final["fuzz_only"] > final["benchmark_only"]
    assert result["gain_vs_benchmarks"] > 1.2
    assert result["gain_vs_fuzz_only"] > 0.8
