"""Fig. 11 — coverage convergence across all three fuzzing systems."""

from benchmarks.conftest import persist, print_header, scaled
from repro.harness import experiments as ex


def test_fig11_convergence(benchmark):
    budget = scaled(2.0, 10.0)  # virtual seconds (paper: 1/2/4 hours)
    checkpoints = tuple(budget * f for f in (0.25, 0.5, 1.0))
    result = benchmark.pedantic(
        ex.fig11_convergence,
        kwargs={"budget_seconds": budget, "checkpoints": checkpoints,
                "max_iterations": scaled(160, 900)},
        rounds=1, iterations=1,
    )
    persist("fig11", result)
    print_header("Fig. 11: coverage convergence (virtual-time axis)")
    print("paper @1/2/4h: TurboFuzz 1.26-1.31x vs Cascade, "
          "1.64-2.23x vs DifuzzRTL, 1000->4000 instr/iter up to 1.11x")
    for checkpoint, row in result["checkpoints"].items():
        print(f"t={checkpoint:6.2f}s  tf4000={row['turbofuzz_4000']:>7d} "
              f"tf1000={row['turbofuzz_1000']:>7d} "
              f"cascade={row['cascade']:>7d} "
              f"difuzzrtl={row['difuzzrtl']:>7d}  "
              f"tf/cascade={row['tf_vs_cascade']:.2f}x "
              f"tf/difuzz={row['tf_vs_difuzzrtl']:.2f}x")
    print(f"speedup to {result['target_points']} points vs Cascade: "
          f"{result['speedup_vs_cascade_to_target']}"
          f"   (paper: 278x to 35000 points)")
    final = result["checkpoints"][checkpoints[-1]]
    assert final["turbofuzz_4000"] > final["cascade"] > final["difuzzrtl"]
    assert final["tf_vs_cascade"] > 1.0
    assert final["tf_vs_difuzzrtl"] > final["tf_vs_cascade"]
