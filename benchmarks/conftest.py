"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down budget (so the whole suite completes in minutes) and prints the
paper-vs-measured rows.  Set ``TURBOFUZZ_SCALE=full`` for budgets closer to
paper scale (much slower).
"""

import os

import pytest

SCALE = os.environ.get("TURBOFUZZ_SCALE", "default")


def scaled(default_value, full_value):
    """Pick an experiment budget by scale setting."""
    return full_value if SCALE == "full" else default_value


@pytest.fixture
def budget():
    return scaled


def print_header(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def persist(name, payload):
    """Persist a figure/table's data as JSON so runs can be diffed across
    PRs (``$TURBOFUZZ_DATA_DIR`` overrides the default ``benchmarks/data``
    location)."""
    from repro.campaign.report import dump_json

    path = dump_json(payload, name)
    print(f"[data] {name} -> {path}")
    return path
