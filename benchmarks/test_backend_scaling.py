"""Execution-backend scaling: serial vs process-pool vs supervised queue.

Not a paper figure: this benchmark guards the backend abstraction — the
parallel backends must produce *bit-identical* per-shard reports while
their wall-clock scales with worker count (on multi-core hosts; on a
single core the checkpoint round-trips make them strictly slower, which
the persisted JSON records honestly).  The supervised-queue column
measures the fault-free **supervision tax** relative to the process
pool: heartbeats, claim/result messaging, and the supervisor poll loop,
with no faults injected.  Throughput is reported through the
``repro.perf`` harness conventions (instructions/sec + iterations/sec,
best-of-variant wall time) so the numbers line up with
``perf_baseline.json``.
"""

import os
import time

from benchmarks.conftest import persist, print_header, scaled
from repro.campaign import (
    CampaignOrchestrator,
    CampaignSpec,
    ProcessPoolBackend,
    SupervisedQueueBackend,
)


def _grid_specs(iterations_size=300):
    return [
        CampaignSpec()
        .with_fuzzer("turbofuzz", instructions_per_iteration=iterations_size,
                     seed=seed)
        .named(f"shard{index}")
        for index, seed in enumerate((0xA11CE, 0xB0B))
    ]


def _timed_run(backend, iterations):
    orchestrator = CampaignOrchestrator(_grid_specs(), backend=backend)
    start = time.perf_counter()
    orchestrator.run_iterations(iterations)
    elapsed = time.perf_counter() - start
    return orchestrator, elapsed


def _throughput(orchestrator, elapsed):
    """Harness-style throughput row for one backend run."""
    executed = sum(session.total_executed
                   for session in orchestrator.sessions.values())
    iterations = sum(len(session.history)
                     for session in orchestrator.sessions.values())
    return {
        "wall_s": elapsed,
        "instructions_per_sec": executed / elapsed if elapsed else None,
        "iterations_per_sec": iterations / elapsed if elapsed else None,
    }


def test_backend_scaling():
    iterations = scaled(15, 60)
    serial, serial_s = _timed_run("serial", iterations)
    pool, pool_s = _timed_run(ProcessPoolBackend(), iterations)
    supervised, supervised_s = _timed_run(SupervisedQueueBackend(), iterations)

    assert pool.coverage_series() == serial.coverage_series()
    assert pool.shard_stats() == serial.shard_stats()
    assert supervised.coverage_series() == serial.coverage_series()
    assert supervised.shard_stats() == serial.shard_stats()

    serial_rate = _throughput(serial, serial_s)
    pool_rate = _throughput(pool, pool_s)
    supervised_rate = _throughput(supervised, supervised_s)
    result = {
        "shards": len(serial.labels),
        "iterations_per_shard": iterations,
        "cpu_count": os.cpu_count(),
        "serial": serial_rate,
        "process_pool": pool_rate,
        "supervised_queue": supervised_rate,
        "speedup": serial_s / pool_s if pool_s else None,
        # The supervision tax: fault-free supervised wall vs pool wall.
        "supervision_overhead": (supervised_s / pool_s - 1.0) if pool_s else None,
        "supervised_resilience": supervised.report().get("resilience"),
        "reports_identical": True,
        "serial_report": serial.report(),
    }
    persist("backend_scaling", result)
    print_header(
        "Backend scaling: serial vs process-pool vs supervised (2-shard grid)")
    print(f"cpu_count={result['cpu_count']}  "
          f"serial={serial_s:.2f}s ({serial_rate['instructions_per_sec']:.0f} instr/s)  "
          f"pool={pool_s:.2f}s ({pool_rate['instructions_per_sec']:.0f} instr/s)  "
          f"speedup={result['speedup']:.2f}x")
    print(f"supervised={supervised_s:.2f}s "
          f"({supervised_rate['instructions_per_sec']:.0f} instr/s)  "
          f"supervision tax vs pool={result['supervision_overhead']:+.1%}")
    print("per-shard reports: identical (bit-for-bit)")
