"""Fig. 6 — instrumented vs achievable coverage points per layout."""

from benchmarks.conftest import persist, print_header
from repro.harness import experiments as ex


def test_fig6_reachable_points(benchmark):
    rows = benchmark.pedantic(
        ex.fig6_reachable_points, kwargs={"state_sizes": (13, 14, 15)},
        rounds=1, iterations=1,
    )
    persist("fig6", rows)
    print_header("Fig. 6: instrumented vs achievable coverage points")
    paper = {13: 0.768, 14: 0.655, 15: 0.614}
    for bits, row in rows.items():
        legacy, optimized = row["legacy"], row["optimized"]
        print(f"maxStateSize={bits}: legacy {legacy['achievable']:>7d}"
              f"/{legacy['instrumented']:>7d} ({legacy['fraction']:.1%})"
              f"  [paper {paper[bits]:.1%}]   optimized "
              f"{optimized['achievable']:>7d}/{optimized['instrumented']:>7d}"
              f" ({optimized['fraction']:.1%})  [paper ~100%]")
    print("per-module (15-bit, legacy):")
    for name, report in rows[15]["legacy"]["modules"].items():
        print(f"  {name:10s} {report['fraction']:7.1%}  "
              f"({report['register_bits']} control-register bits)")
    for bits, row in rows.items():
        assert row["optimized"]["fraction"] > 0.99
        assert row["legacy"]["fraction"] < 0.8
    fractions = [rows[bits]["legacy"]["fraction"] for bits in (13, 14, 15)]
    assert fractions[2] <= fractions[0] + 0.02  # decreasing trend
