"""Ablations for the design choices DESIGN.md calls out.

These are not paper figures; they probe the sensitivity of TurboFuzz's
coverage performance to its headline parameters (jump window, mutation
probability, block-operation split).
"""

from benchmarks.conftest import print_header, scaled
from repro.fuzzer import TurboFuzzConfig
from repro.harness import FuzzSession, SessionConfig


def _coverage_with(config, iterations):
    session = FuzzSession(SessionConfig(fuzzer_config=config))
    session.run_iterations(iterations)
    mean_prevalence = sum(
        h.prevalence for h in session.history) / len(session.history)
    return session.coverage_total, mean_prevalence


def test_ablation_jump_window(benchmark):
    iterations = scaled(20, 80)

    def run():
        rows = {}
        for window in (1, 2, 8, None):
            config = TurboFuzzConfig(instructions_per_iteration=1000,
                                     jump_window_blocks=window)
            rows[window] = _coverage_with(config, iterations)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: control-flow jump window (paper Section IV-C)")
    for window, (coverage, prevalence) in rows.items():
        label = "unbounded" if window is None else f"{window} blocks"
        print(f"window={label:>10s}: coverage={coverage:>7d} "
              f"prevalence={prevalence:.3f}")
    # The paper's motivation: unbounded jumps skip instructions, hurting
    # prevalence (executed share).
    assert rows[None][1] < rows[2][1]


def test_ablation_mutation_probability(benchmark):
    iterations = scaled(20, 80)

    def run():
        rows = {}
        for numerator in (0, 7, 15):
            config = TurboFuzzConfig(instructions_per_iteration=1000,
                                     mutation_mode_prob=(numerator, 16))
            rows[numerator] = _coverage_with(config, iterations)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: mutation-mode probability (default 7/16)")
    for numerator, (coverage, prevalence) in rows.items():
        print(f"p(mutation)={numerator:>2d}/16: coverage={coverage:>7d} "
              f"prevalence={prevalence:.3f}")
    assert all(coverage > 0 for coverage, _ in rows.values())


def test_ablation_block_operations(benchmark):
    iterations = scaled(20, 80)

    def run():
        rows = {}
        for label, probs in (
            ("paper 3/11/2", ((3, 16), (11, 16), (2, 16))),
            ("retain-heavy 3/5/8", ((3, 16), (5, 16), (8, 16))),
            ("delete-only 3/13/0", ((3, 16), (13, 16), (0, 16))),
        ):
            generate, delete, retain = probs
            config = TurboFuzzConfig(
                instructions_per_iteration=1000,
                block_generate_prob=generate,
                block_delete_prob=delete,
                block_retain_prob=retain,
            )
            rows[label] = _coverage_with(config, iterations)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: block operation probabilities (gen/del/retain)")
    for label, (coverage, prevalence) in rows.items():
        print(f"{label:22s}: coverage={coverage:>7d} "
              f"prevalence={prevalence:.3f}")
    assert all(coverage > 0 for coverage, _ in rows.values())
