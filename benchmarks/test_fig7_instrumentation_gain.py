"""Fig. 7 — coverage gain from the optimized instrumentation, per fuzzer."""

from benchmarks.conftest import persist, print_header, scaled
from repro.harness import experiments as ex


def test_fig7_instrumentation_gain(benchmark):
    iterations = scaled(25, 150)
    result = benchmark.pedantic(
        ex.fig7_instrumentation_gain, kwargs={"iterations": iterations},
        rounds=1, iterations=1,
    )
    persist("fig7", result)
    print_header("Fig. 7: max coverage, legacy vs optimized instrumentation")
    paper = {"difuzzrtl": 1.91, "cascade": 1.21, "turbofuzz": 1.56}
    for fuzzer, row in result.items():
        print(f"{fuzzer:10s} legacy={row['legacy']:>7d} "
              f"optimized={row['optimized']:>7d} gain={row['gain']:.2f}x"
              f"   (paper {paper[fuzzer]:.2f}x)")
    # Shape: the optimized layout helps every fuzzer.
    for fuzzer, row in result.items():
        assert row["gain"] > 1.05, fuzzer
