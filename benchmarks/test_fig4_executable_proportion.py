"""Fig. 4 — proportion of executable instructions in prior-work streams."""

from benchmarks.conftest import persist, print_header, scaled
from repro.harness import experiments as ex


def test_fig4_executable_proportion(benchmark):
    iterations = scaled(12, 60)
    result = benchmark.pedantic(
        ex.fig4_executable_proportion, kwargs={"iterations": iterations},
        rounds=1, iterations=1,
    )
    persist("fig4", result)
    print_header("Fig. 4: proportion of executable instructions (DifuzzRTL)")
    print(f"executed fraction of generated: {result['executed_fraction']:.3f}"
          f"   (paper: ~0.193)")
    print(f"control-flow share of generated: "
          f"{result['control_flow_share_generated']:.3f}   (paper: >1/6)")
    print("top generated categories:")
    top = sorted(result["generated_by_category"].items(),
                 key=lambda item: -item[1])[:8]
    for category, count in top:
        executed = result["executed_by_category"].get(category, 0)
        print(f"  {category:10s} generated={count:6d} executed={executed}")
    assert result["executed_fraction"] < 0.35
    assert result["control_flow_share_generated"] > 1 / 7
