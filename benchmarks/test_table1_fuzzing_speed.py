"""Table I — fuzzing speed and executed instructions per second."""

from benchmarks.conftest import persist, print_header, scaled
from repro.harness import experiments as ex

PAPER = {
    "difuzzrtl": (4.13, 728),
    "cascade": (12.80, 2489),
    "turbofuzz": (75.12, 309_676),
}


def test_table1_fuzzing_speed(benchmark):
    iterations = scaled(10, 40)
    rows = benchmark.pedantic(
        ex.table1_fuzzing_speed, kwargs={"iterations": iterations},
        rounds=1, iterations=1,
    )
    persist("table1", rows)
    print_header("Table I: fuzzing performance comparison")
    print(f"{'fuzzer':12s} {'speed (Hz)':>12s} {'paper':>8s} "
          f"{'exec inst/s':>14s} {'paper':>10s}")
    for name, row in rows.items():
        paper_hz, paper_eps = PAPER[name]
        print(f"{name:12s} {row['fuzzing_speed_hz']:12.2f} {paper_hz:8.2f} "
              f"{row['executed_per_second']:14.0f} {paper_eps:10d}")
    assert abs(rows["difuzzrtl"]["fuzzing_speed_hz"] - 4.13) / 4.13 < 0.05
    assert abs(rows["turbofuzz"]["fuzzing_speed_hz"] - 75.12) / 75.12 < 0.15
    assert abs(rows["turbofuzz"]["executed_per_second"] - 309_676) / 309_676 < 0.10
    assert rows["cascade"]["fuzzing_speed_hz"] > rows["difuzzrtl"]["fuzzing_speed_hz"]
    assert rows["turbofuzz"]["fuzzing_speed_hz"] > rows["cascade"]["fuzzing_speed_hz"]
